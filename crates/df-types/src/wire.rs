//! **DFW1** — the binary span-batch wire format.
//!
//! Agents ship span batches to trace servers as compact bytes, not
//! constructed structs: the paper's millions-of-spans/sec-per-node ingest
//! rate depends on a cheap decode path feeding the columnar smart-encoded
//! store. DFW1 is that byte layout. The normative spec lives in
//! `docs/WIRE_FORMAT.md`; this module is the reference implementation, and
//! `ci.sh` runs a spec-sync gate (`df-spec-sync`) asserting the doc's
//! magic, version and field order match [`WIRE_MAGIC`], [`WIRE_VERSION`]
//! and [`FIELD_ORDER`] exactly.
//!
//! ## Frame shape
//!
//! ```text
//! "DFW1" | version u8 | span_count varint | tag dictionary | span records
//! ```
//!
//! * All multi-byte integers are **LEB128 varints** unless a field is
//!   documented as fixed-width (the five-tuple and the resource-tag
//!   bitmap are little-endian fixed-width; see `docs/WIRE_FORMAT.md`).
//! * The **tag dictionary** interns every string the batch carries
//!   (endpoints, interface names, process names, custom tag keys and
//!   values) once, at encode time. Records reference strings by dictionary
//!   id, so repeated strings cost one varint per use and arrive server-side
//!   as small dense integers — ready for the SmartInt tag columns without
//!   per-span string hashing (paper §3.4 smart encoding).
//! * Each **span record** is a fixed field order ([`FIELD_ORDER`]): hot
//!   fixed-width routing/timestamp fields first, optional association keys
//!   behind a presence bitmap, variable-length tag and metric sections
//!   last. Decoding is branch-light forward parsing over `&[u8]` — no
//!   intermediate structs, no per-span allocation beyond the `Span` being
//!   materialised.
//!
//! Decoding never panics on hostile input: every failure is a structured
//! [`WireDecodeError`].
//!
//! ## Example
//!
//! ```
//! use df_types::span::{Span, TapSide};
//! use df_types::wire;
//!
//! let mut a = Span::synthetic(TapSide::ClientProcess, 1_000, 5_000);
//! a.endpoint = "GET /api/v1/products".into();
//! let b = Span::synthetic(TapSide::ServerProcess, 2_000, 4_000);
//!
//! let bytes = wire::encode_batch(&[a.clone(), b.clone()]);
//! assert_eq!(&bytes[..4], wire::WIRE_MAGIC);
//! assert_eq!(wire::peek_span_count(&bytes), Ok(2));
//!
//! let back = wire::decode_batch(&bytes).expect("well-formed batch");
//! assert_eq!(back, vec![a, b]);
//! ```

use crate::ids::{
    AgentId, FlowId, NodeId, OtelSpanId, OtelTraceId, Pid, PseudoThreadId, SpanId, SysTraceId, Tid,
    XRequestId,
};
use crate::l7::L7Protocol;
use crate::metrics::FlowMetrics;
use crate::net::{FiveTuple, TransportProtocol};
use crate::span::{CapturePoint, Span, SpanKind, SpanStatus, TapSide};
use crate::tags::{ResourceTags, TagSet};
use crate::time::{DurationNs, TimeNs};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Magic prefixing every DFW1 batch.
pub const WIRE_MAGIC: &[u8; 4] = b"DFW1";

/// Current wire-format version. Decoders reject any other value with
/// [`WireDecodeError::BadVersion`]; see `docs/WIRE_FORMAT.md` for the
/// evolution rules.
pub const WIRE_VERSION: u8 = 1;

/// Fixed prefix length: magic (4) + version (1). The span count that
/// follows is a varint, so the full header is variable-length.
pub const WIRE_PREFIX_LEN: usize = 5;

/// The span-record field order, normative and version-locked. The
/// spec-sync gate asserts `docs/WIRE_FORMAT.md` lists exactly these
/// fields in exactly this order; changing it requires a version bump.
pub const FIELD_ORDER: [&str; 32] = [
    "span_id",
    "flags",
    "kind_tap",
    "node",
    "interface",
    "agent",
    "flow_id",
    "five_tuple",
    "l7_protocol",
    "endpoint",
    "req_time",
    "resp_delta",
    "status",
    "status_code",
    "req_bytes",
    "resp_bytes",
    "pid",
    "tid",
    "process_name",
    "systrace_id_req",
    "systrace_id_resp",
    "pseudo_thread_id",
    "x_request_id_req",
    "x_request_id_resp",
    "tcp_seq_req",
    "tcp_seq_resp",
    "otel_trace_id",
    "otel_span_id",
    "otel_parent_span_id",
    "resource_tags",
    "custom_tags",
    "flow_metrics",
];

// Presence-bitmap bits (the `flags` field). Bit set = field present.
const F_INTERFACE: u32 = 1 << 0;
const F_STATUS_CODE: u32 = 1 << 1;
const F_PID: u32 = 1 << 2;
const F_TID: u32 = 1 << 3;
const F_PROCESS_NAME: u32 = 1 << 4;
const F_SYSTRACE_REQ: u32 = 1 << 5;
const F_SYSTRACE_RESP: u32 = 1 << 6;
const F_PSEUDO_THREAD: u32 = 1 << 7;
const F_XREQ_REQ: u32 = 1 << 8;
const F_XREQ_RESP: u32 = 1 << 9;
const F_TCP_SEQ_REQ: u32 = 1 << 10;
const F_TCP_SEQ_RESP: u32 = 1 << 11;
const F_OTEL_TRACE: u32 = 1 << 12;
const F_OTEL_SPAN: u32 = 1 << 13;
const F_OTEL_PARENT: u32 = 1 << 14;
const F_FLOW_METRICS: u32 = 1 << 15;
const F_KNOWN: u32 = (1 << 16) - 1;

/// [`TapSide`] variants indexed by [`TapSide::path_rank`] — the wire code.
const TAP_SIDES: [TapSide; 11] = [
    TapSide::ClientApp,
    TapSide::ClientProcess,
    TapSide::ClientPodNic,
    TapSide::ClientNodeNic,
    TapSide::ClientHypervisor,
    TapSide::Gateway,
    TapSide::ServerHypervisor,
    TapSide::ServerNodeNic,
    TapSide::ServerPodNic,
    TapSide::ServerProcess,
    TapSide::ServerApp,
];

/// Why a byte buffer failed to decode as a DFW1 batch.
///
/// Every variant carries enough context to point at the failing field;
/// none of the decode paths panic on hostile input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireDecodeError {
    /// The first four bytes are not [`WIRE_MAGIC`] (`DFW1`) — the buffer is
    /// not a span batch at all.
    BadMagic,
    /// The version byte is not [`WIRE_VERSION`]. Carries the byte found so
    /// callers can log what a peer is speaking.
    BadVersion {
        /// The version byte actually present.
        found: u8,
    },
    /// The buffer ended in the middle of the named field.
    Truncated {
        /// Name of the field being read when input ran out.
        context: &'static str,
    },
    /// A varint in the named field ran past its maximum encoded width or
    /// overflowed the field's integer type.
    BadVarint {
        /// Name of the field being read.
        context: &'static str,
    },
    /// A discriminant byte in the named field has no assigned meaning in
    /// this version.
    BadEnum {
        /// Name of the enum field.
        field: &'static str,
        /// The unassigned discriminant value.
        value: u8,
    },
    /// The tag-dictionary entry at `index` is not valid UTF-8.
    BadUtf8 {
        /// Index of the malformed dictionary entry.
        index: u32,
    },
    /// A record references tag-dictionary id `index`, but the dictionary
    /// only holds `len` entries.
    BadDictIndex {
        /// The out-of-range id.
        index: u32,
        /// Number of entries the dictionary declared.
        len: u32,
    },
    /// Bytes remain after the last declared span record.
    TrailingBytes {
        /// How many undeclared bytes follow the final record.
        extra: usize,
    },
}

impl fmt::Display for WireDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireDecodeError::BadMagic => write!(f, "buffer does not start with DFW1"),
            WireDecodeError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported DFW1 version {found} (expected {WIRE_VERSION})"
                )
            }
            WireDecodeError::Truncated { context } => {
                write!(f, "input truncated while reading {context}")
            }
            WireDecodeError::BadVarint { context } => {
                write!(f, "varint too wide for {context}")
            }
            WireDecodeError::BadEnum { field, value } => {
                write!(f, "unassigned discriminant {value} for {field}")
            }
            WireDecodeError::BadUtf8 { index } => {
                write!(f, "dictionary entry {index} is not valid UTF-8")
            }
            WireDecodeError::BadDictIndex { index, len } => {
                write!(
                    f,
                    "dictionary id {index} out of range (dictionary holds {len})"
                )
            }
            WireDecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last span record")
            }
        }
    }
}

impl std::error::Error for WireDecodeError {}

// ---------------------------------------------------------------------------
// Varint primitives
// ---------------------------------------------------------------------------

pub(crate) fn put_varint_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn put_varint_u128(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-map a signed delta so small magnitudes of either sign encode
/// short. The response-time delta can be negative (a response-only
/// fragment re-aggregated against a late request may carry resp < req).
fn zigzag(n: i128) -> u128 {
    ((n << 1) ^ (n >> 127)) as u128
}

fn unzigzag(z: u128) -> i128 {
    ((z >> 1) as i128) ^ -((z & 1) as i128)
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

/// Incremental DFW1 encoder: push spans one at a time, interning every
/// string into the batch dictionary, then [`WireEncoder::finish`] to
/// assemble the frame. Encoding is infallible by construction — every
/// `Span` value has exactly one encoding.
///
/// For the common whole-slice case use [`encode_batch`].
#[derive(Debug, Default)]
pub struct WireEncoder {
    dict: Vec<String>,
    index: HashMap<String, u32>,
    records: Vec<u8>,
    count: u64,
}

impl WireEncoder {
    /// An empty encoder.
    pub fn new() -> WireEncoder {
        WireEncoder::default()
    }

    /// Spans pushed so far.
    pub fn span_count(&self) -> u64 {
        self.count
    }

    /// Whether any span has been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = self.dict.len() as u32;
        self.dict.push(s.to_owned());
        self.index.insert(s.to_owned(), id);
        id
    }

    /// Append one span record, interning its strings.
    pub fn push(&mut self, span: &Span) {
        self.count = self.count.saturating_add(1);

        let mut flags = 0u32;
        if span.capture.interface.is_some() {
            flags |= F_INTERFACE;
        }
        if span.status_code.is_some() {
            flags |= F_STATUS_CODE;
        }
        if span.pid.is_some() {
            flags |= F_PID;
        }
        if span.tid.is_some() {
            flags |= F_TID;
        }
        if span.process_name.is_some() {
            flags |= F_PROCESS_NAME;
        }
        if span.systrace_id_req.is_some() {
            flags |= F_SYSTRACE_REQ;
        }
        if span.systrace_id_resp.is_some() {
            flags |= F_SYSTRACE_RESP;
        }
        if span.pseudo_thread_id.is_some() {
            flags |= F_PSEUDO_THREAD;
        }
        if span.x_request_id_req.is_some() {
            flags |= F_XREQ_REQ;
        }
        if span.x_request_id_resp.is_some() {
            flags |= F_XREQ_RESP;
        }
        if span.tcp_seq_req.is_some() {
            flags |= F_TCP_SEQ_REQ;
        }
        if span.tcp_seq_resp.is_some() {
            flags |= F_TCP_SEQ_RESP;
        }
        if span.otel_trace_id.is_some() {
            flags |= F_OTEL_TRACE;
        }
        if span.otel_span_id.is_some() {
            flags |= F_OTEL_SPAN;
        }
        if span.otel_parent_span_id.is_some() {
            flags |= F_OTEL_PARENT;
        }
        if span.flow_metrics.is_some() {
            flags |= F_FLOW_METRICS;
        }

        // Interning must happen before borrowing `records` mutably below.
        let interface_id = span.capture.interface.as_deref().map(|s| self.intern(s));
        let endpoint_id = self.intern(&span.endpoint);
        let process_name_id = span.process_name.as_deref().map(|s| self.intern(s));
        let custom_ids: Vec<(u32, u32)> = span
            .tags
            .custom
            .iter()
            .map(|(k, v)| (self.intern(k), self.intern(v)))
            .collect();

        let out = &mut self.records;
        put_varint_u64(out, span.span_id.0);
        put_varint_u64(out, flags as u64);
        let kind_code = match span.kind {
            SpanKind::Sys => 0u8,
            SpanKind::Net => 1,
            SpanKind::App => 2,
        };
        out.push((kind_code << 4) | span.capture.tap_side.path_rank());
        put_varint_u64(out, span.capture.node.0 as u64);
        if let Some(id) = interface_id {
            put_varint_u64(out, id as u64);
        }
        put_varint_u64(out, span.agent.0 as u64);
        put_varint_u64(out, span.flow_id.0);
        let ft = &span.five_tuple;
        out.extend_from_slice(&ft.src_ip.octets());
        out.extend_from_slice(&ft.dst_ip.octets());
        out.extend_from_slice(&ft.src_port.to_le_bytes());
        out.extend_from_slice(&ft.dst_port.to_le_bytes());
        out.push(match ft.protocol {
            TransportProtocol::Tcp => 0,
            TransportProtocol::Udp => 1,
        });
        match span.l7_protocol {
            L7Protocol::Http1 => out.push(0),
            L7Protocol::Http2 => out.push(1),
            L7Protocol::Dns => out.push(2),
            L7Protocol::Redis => out.push(3),
            L7Protocol::Mysql => out.push(4),
            L7Protocol::Kafka => out.push(5),
            L7Protocol::Mqtt => out.push(6),
            L7Protocol::Dubbo => out.push(7),
            L7Protocol::Amqp => out.push(8),
            L7Protocol::Tls => out.push(9),
            L7Protocol::Unknown => out.push(10),
            L7Protocol::Custom(slot) => {
                out.push(11);
                out.push(slot);
            }
        }
        put_varint_u64(out, endpoint_id as u64);
        put_varint_u64(out, span.req_time.0);
        let delta = span.resp_time.0 as i128 - span.req_time.0 as i128;
        put_varint_u128(out, zigzag(delta));
        out.push(match span.status {
            SpanStatus::Ok => 0,
            SpanStatus::ClientError => 1,
            SpanStatus::ServerError => 2,
            SpanStatus::Incomplete => 3,
            SpanStatus::ResponseOnly => 4,
        });
        if let Some(code) = span.status_code {
            put_varint_u64(out, code as u64);
        }
        put_varint_u64(out, span.req_bytes);
        put_varint_u64(out, span.resp_bytes);
        if let Some(pid) = span.pid {
            put_varint_u64(out, pid.0 as u64);
        }
        if let Some(tid) = span.tid {
            put_varint_u64(out, tid.0 as u64);
        }
        if let Some(id) = process_name_id {
            put_varint_u64(out, id as u64);
        }
        if let Some(v) = span.systrace_id_req {
            put_varint_u64(out, v.0);
        }
        if let Some(v) = span.systrace_id_resp {
            put_varint_u64(out, v.0);
        }
        if let Some(v) = span.pseudo_thread_id {
            put_varint_u64(out, v.0);
        }
        if let Some(v) = span.x_request_id_req {
            put_varint_u128(out, v.0);
        }
        if let Some(v) = span.x_request_id_resp {
            put_varint_u128(out, v.0);
        }
        if let Some(v) = span.tcp_seq_req {
            put_varint_u64(out, v as u64);
        }
        if let Some(v) = span.tcp_seq_resp {
            put_varint_u64(out, v as u64);
        }
        if let Some(v) = span.otel_trace_id {
            put_varint_u128(out, v.0);
        }
        if let Some(v) = span.otel_span_id {
            put_varint_u64(out, v.0);
        }
        if let Some(v) = span.otel_parent_span_id {
            put_varint_u64(out, v.0);
        }

        let rt = &span.tags.resource;
        let rt_fields = [
            rt.vpc_id,
            rt.ip,
            rt.region_id,
            rt.az_id,
            rt.subnet_id,
            rt.host_id,
            rt.cluster_id,
            rt.k8s_node_id,
            rt.namespace_id,
            rt.workload_id,
            rt.service_id,
            rt.pod_id,
        ];
        let mut rt_bits = 0u16;
        for (i, f) in rt_fields.iter().enumerate() {
            if f.is_some() {
                rt_bits |= 1 << i;
            }
        }
        out.extend_from_slice(&rt_bits.to_le_bytes());
        for f in rt_fields.into_iter().flatten() {
            put_varint_u64(out, f as u64);
        }

        put_varint_u64(out, custom_ids.len() as u64);
        for (k, v) in custom_ids {
            put_varint_u64(out, k as u64);
            put_varint_u64(out, v as u64);
        }

        if let Some(fm) = &span.flow_metrics {
            put_varint_u64(out, fm.packets_tx);
            put_varint_u64(out, fm.packets_rx);
            put_varint_u64(out, fm.bytes_tx);
            put_varint_u64(out, fm.bytes_rx);
            put_varint_u64(out, fm.retransmissions);
            put_varint_u64(out, fm.resets);
            put_varint_u64(out, fm.zero_windows);
            put_varint_u64(out, fm.syn_retries);
            put_varint_u64(out, fm.rtt.0);
            put_varint_u64(out, fm.srt.0);
            out.push(fm.established as u8);
        }
    }

    /// Assemble the frame: magic, version, span count, tag dictionary,
    /// then the accumulated records.
    pub fn finish(self) -> Vec<u8> {
        // Capacity estimate only — saturating so a pathological dictionary
        // can at worst under-reserve, never wrap.
        let dict_bytes: usize = self
            .dict
            .iter()
            .map(|s| s.len().saturating_add(5))
            .fold(0usize, usize::saturating_add);
        let mut out = Vec::with_capacity(
            (WIRE_PREFIX_LEN + 10)
                .saturating_add(dict_bytes)
                .saturating_add(self.records.len()),
        );
        out.extend_from_slice(WIRE_MAGIC);
        out.push(WIRE_VERSION);
        put_varint_u64(&mut out, self.count);
        put_varint_u64(&mut out, self.dict.len() as u64);
        for s in &self.dict {
            put_varint_u64(&mut out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        out.extend_from_slice(&self.records);
        out
    }
}

/// Encode a slice of spans as one DFW1 batch.
pub fn encode_batch(spans: &[Span]) -> Vec<u8> {
    let mut enc = WireEncoder::new();
    for span in spans {
        enc.push(span);
    }
    enc.finish()
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// Everything after the cursor (empty when exhausted).
    pub(crate) fn rest(&self) -> &'a [u8] {
        self.buf.get(self.pos..).unwrap_or(&[])
    }

    pub(crate) fn u8(&mut self, context: &'static str) -> Result<u8, WireDecodeError> {
        match self.buf.get(self.pos) {
            Some(&b) => {
                self.pos = self.pos.saturating_add(1);
                Ok(b)
            }
            None => Err(WireDecodeError::Truncated { context }),
        }
    }

    pub(crate) fn take(
        &mut self,
        n: usize,
        context: &'static str,
    ) -> Result<&'a [u8], WireDecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(WireDecodeError::Truncated { context })?;
        let out = self
            .buf
            .get(self.pos..end)
            .ok_or(WireDecodeError::Truncated { context })?;
        self.pos = end;
        Ok(out)
    }

    /// LEB128 decode with a bit-width cap; rejects encodings that shift
    /// significant bits past `max_bits`.
    fn varint(&mut self, max_bits: u32, context: &'static str) -> Result<u128, WireDecodeError> {
        let mut value: u128 = 0;
        let mut shift: u32 = 0;
        loop {
            let byte = self.u8(context)?;
            let chunk = (byte & 0x7f) as u128;
            if shift >= max_bits {
                return Err(WireDecodeError::BadVarint { context });
            }
            let headroom = max_bits - shift;
            if headroom < 7 && (chunk >> headroom) != 0 {
                return Err(WireDecodeError::BadVarint { context });
            }
            value |= chunk << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    pub(crate) fn varint_u64(&mut self, context: &'static str) -> Result<u64, WireDecodeError> {
        Ok(self.varint(64, context)? as u64)
    }

    pub(crate) fn varint_u32(&mut self, context: &'static str) -> Result<u32, WireDecodeError> {
        Ok(self.varint(32, context)? as u32)
    }

    pub(crate) fn varint_u16(&mut self, context: &'static str) -> Result<u16, WireDecodeError> {
        Ok(self.varint(16, context)? as u16)
    }

    pub(crate) fn varint_u128(&mut self, context: &'static str) -> Result<u128, WireDecodeError> {
        self.varint(128, context)
    }
}

/// A parsed DFW1 batch borrowing the input buffer: header validated, tag
/// dictionary indexed zero-copy (`&str` slices into the input), span
/// records still raw bytes. Iterate with [`WireBatch::spans`] or
/// materialise everything with [`WireBatch::decode_all`].
pub struct WireBatch<'a> {
    count: u64,
    dict: Vec<&'a str>,
    records: &'a [u8],
}

impl<'a> WireBatch<'a> {
    /// Validate the magic, version, span count and tag dictionary.
    /// Record bytes are not touched yet; per-span errors surface from the
    /// iterator.
    pub fn parse(bytes: &'a [u8]) -> Result<WireBatch<'a>, WireDecodeError> {
        let mut cur = Cursor::new(bytes);
        if cur
            .take(4, "magic")
            .map_err(|_| WireDecodeError::BadMagic)?
            != WIRE_MAGIC
        {
            return Err(WireDecodeError::BadMagic);
        }
        let version = cur.u8("version")?;
        if version != WIRE_VERSION {
            return Err(WireDecodeError::BadVersion { found: version });
        }
        let count = cur.varint_u64("span_count")?;
        let dict_len = cur.varint_u32("dict_count")?;
        // Hostile counts cannot force huge allocations: capacity is capped
        // by what the remaining bytes could possibly hold (≥1 byte/entry).
        let mut dict = Vec::with_capacity((dict_len as usize).min(cur.remaining()));
        for index in 0..dict_len {
            let len = cur.varint_u32("dict_entry_len")? as usize;
            let raw = cur.take(len, "dict_entry")?;
            let s = std::str::from_utf8(raw).map_err(|_| WireDecodeError::BadUtf8 { index })?;
            dict.push(s);
        }
        Ok(WireBatch {
            count,
            dict,
            records: cur.rest(),
        })
    }

    /// Number of span records the header declares.
    pub fn span_count(&self) -> u64 {
        self.count
    }

    /// The batch's interned strings, in dictionary order (zero-copy).
    pub fn dict(&self) -> &[&'a str] {
        &self.dict
    }

    /// Iterate the span records. Each item is a decoded [`Span`] or the
    /// structured error that stopped the parse (after an error the
    /// iterator yields nothing further).
    pub fn spans(&self) -> WireSpanIter<'a, '_> {
        WireSpanIter {
            batch: self,
            cur: Cursor::new(self.records),
            remaining: self.count,
            poisoned: false,
        }
    }

    /// Decode every record, verifying no trailing bytes follow the last
    /// one.
    pub fn decode_all(&self) -> Result<Vec<Span>, WireDecodeError> {
        // Capacity capped by input size (a record is ≥28 bytes) so a
        // hostile count can't force a huge allocation.
        let mut out = Vec::with_capacity((self.count as usize).min(self.records.len() / 28 + 1));
        let mut iter = self.spans();
        for span in iter.by_ref() {
            out.push(span?);
        }
        iter.finish()?;
        Ok(out)
    }

    fn dict_str(&self, index: u32) -> Result<&'a str, WireDecodeError> {
        self.dict
            .get(index as usize)
            .copied()
            .ok_or(WireDecodeError::BadDictIndex {
                index,
                len: self.dict.len() as u32,
            })
    }

    fn decode_record(&self, cur: &mut Cursor<'a>) -> Result<Span, WireDecodeError> {
        let span_id = SpanId(cur.varint_u64("span_id")?);
        let flags = cur.varint_u32("flags")?;
        if flags & !F_KNOWN != 0 {
            // Unknown presence bits would desynchronise the parse: the
            // fields they announce have widths this version cannot know.
            return Err(WireDecodeError::BadEnum {
                field: "flags",
                value: (flags >> 16) as u8,
            });
        }
        let kind_tap = cur.u8("kind_tap")?;
        let kind = match kind_tap >> 4 {
            0 => SpanKind::Sys,
            1 => SpanKind::Net,
            2 => SpanKind::App,
            v => {
                return Err(WireDecodeError::BadEnum {
                    field: "kind",
                    value: v,
                })
            }
        };
        let tap_side =
            *TAP_SIDES
                .get((kind_tap & 0x0f) as usize)
                .ok_or(WireDecodeError::BadEnum {
                    field: "tap_side",
                    value: kind_tap & 0x0f,
                })?;
        let node = NodeId(cur.varint_u32("node")?);
        let interface = if flags & F_INTERFACE != 0 {
            let id = cur.varint_u32("interface")?;
            Some(self.dict_str(id)?.to_owned())
        } else {
            None
        };
        let agent = AgentId(cur.varint_u32("agent")?);
        let flow_id = FlowId(cur.varint_u64("flow_id")?);
        let &[s0, s1, s2, s3, d0, d1, d2, d3, sp0, sp1, dp0, dp1, proto] =
            cur.take(13, "five_tuple")?
        else {
            return Err(WireDecodeError::Truncated {
                context: "five_tuple",
            });
        };
        let five_tuple = FiveTuple {
            src_ip: Ipv4Addr::new(s0, s1, s2, s3),
            dst_ip: Ipv4Addr::new(d0, d1, d2, d3),
            src_port: u16::from_le_bytes([sp0, sp1]),
            dst_port: u16::from_le_bytes([dp0, dp1]),
            protocol: match proto {
                0 => TransportProtocol::Tcp,
                1 => TransportProtocol::Udp,
                v => {
                    return Err(WireDecodeError::BadEnum {
                        field: "transport_protocol",
                        value: v,
                    })
                }
            },
        };
        let l7_protocol = match cur.u8("l7_protocol")? {
            0 => L7Protocol::Http1,
            1 => L7Protocol::Http2,
            2 => L7Protocol::Dns,
            3 => L7Protocol::Redis,
            4 => L7Protocol::Mysql,
            5 => L7Protocol::Kafka,
            6 => L7Protocol::Mqtt,
            7 => L7Protocol::Dubbo,
            8 => L7Protocol::Amqp,
            9 => L7Protocol::Tls,
            10 => L7Protocol::Unknown,
            11 => L7Protocol::Custom(cur.u8("l7_custom_slot")?),
            v => {
                return Err(WireDecodeError::BadEnum {
                    field: "l7_protocol",
                    value: v,
                })
            }
        };
        let endpoint = self.dict_str(cur.varint_u32("endpoint")?)?.to_owned();
        let req_time = TimeNs(cur.varint_u64("req_time")?);
        let delta = unzigzag(cur.varint_u128("resp_delta")?);
        let resp = req_time.0 as i128 + delta;
        if !(0..=u64::MAX as i128).contains(&resp) {
            return Err(WireDecodeError::BadVarint {
                context: "resp_delta",
            });
        }
        let resp_time = TimeNs(resp as u64);
        let status = match cur.u8("status")? {
            0 => SpanStatus::Ok,
            1 => SpanStatus::ClientError,
            2 => SpanStatus::ServerError,
            3 => SpanStatus::Incomplete,
            4 => SpanStatus::ResponseOnly,
            v => {
                return Err(WireDecodeError::BadEnum {
                    field: "status",
                    value: v,
                })
            }
        };
        let status_code = if flags & F_STATUS_CODE != 0 {
            Some(cur.varint_u16("status_code")?)
        } else {
            None
        };
        let req_bytes = cur.varint_u64("req_bytes")?;
        let resp_bytes = cur.varint_u64("resp_bytes")?;
        let pid = if flags & F_PID != 0 {
            Some(Pid(cur.varint_u32("pid")?))
        } else {
            None
        };
        let tid = if flags & F_TID != 0 {
            Some(Tid(cur.varint_u32("tid")?))
        } else {
            None
        };
        let process_name = if flags & F_PROCESS_NAME != 0 {
            let id = cur.varint_u32("process_name")?;
            Some(self.dict_str(id)?.to_owned())
        } else {
            None
        };
        let systrace_id_req = if flags & F_SYSTRACE_REQ != 0 {
            Some(SysTraceId(cur.varint_u64("systrace_id_req")?))
        } else {
            None
        };
        let systrace_id_resp = if flags & F_SYSTRACE_RESP != 0 {
            Some(SysTraceId(cur.varint_u64("systrace_id_resp")?))
        } else {
            None
        };
        let pseudo_thread_id = if flags & F_PSEUDO_THREAD != 0 {
            Some(PseudoThreadId(cur.varint_u64("pseudo_thread_id")?))
        } else {
            None
        };
        let x_request_id_req = if flags & F_XREQ_REQ != 0 {
            Some(XRequestId(cur.varint_u128("x_request_id_req")?))
        } else {
            None
        };
        let x_request_id_resp = if flags & F_XREQ_RESP != 0 {
            Some(XRequestId(cur.varint_u128("x_request_id_resp")?))
        } else {
            None
        };
        let tcp_seq_req = if flags & F_TCP_SEQ_REQ != 0 {
            Some(cur.varint_u32("tcp_seq_req")?)
        } else {
            None
        };
        let tcp_seq_resp = if flags & F_TCP_SEQ_RESP != 0 {
            Some(cur.varint_u32("tcp_seq_resp")?)
        } else {
            None
        };
        let otel_trace_id = if flags & F_OTEL_TRACE != 0 {
            Some(OtelTraceId(cur.varint_u128("otel_trace_id")?))
        } else {
            None
        };
        let otel_span_id = if flags & F_OTEL_SPAN != 0 {
            Some(OtelSpanId(cur.varint_u64("otel_span_id")?))
        } else {
            None
        };
        let otel_parent_span_id = if flags & F_OTEL_PARENT != 0 {
            Some(OtelSpanId(cur.varint_u64("otel_parent_span_id")?))
        } else {
            None
        };

        let &[rt0, rt1] = cur.take(2, "resource_tags")? else {
            return Err(WireDecodeError::Truncated {
                context: "resource_tags",
            });
        };
        let rt_bits = u16::from_le_bytes([rt0, rt1]);
        if rt_bits & !0x0fff != 0 {
            return Err(WireDecodeError::BadEnum {
                field: "resource_tags",
                value: (rt_bits >> 12) as u8,
            });
        }
        let mut rt_vals = [None; 12];
        for (i, v) in rt_vals.iter_mut().enumerate() {
            if rt_bits & (1 << i) != 0 {
                *v = Some(cur.varint_u32("resource_tag")?);
            }
        }
        let [vpc_id, ip, region_id, az_id, subnet_id, host_id, cluster_id, k8s_node_id, namespace_id, workload_id, service_id, pod_id] =
            rt_vals;
        let resource = ResourceTags {
            vpc_id,
            ip,
            region_id,
            az_id,
            subnet_id,
            host_id,
            cluster_id,
            k8s_node_id,
            namespace_id,
            workload_id,
            service_id,
            pod_id,
        };

        let custom_len = cur.varint_u32("custom_tag_count")? as usize;
        let mut custom = Vec::with_capacity(custom_len.min(cur.remaining() / 2 + 1));
        for _ in 0..custom_len {
            let k = self.dict_str(cur.varint_u32("custom_tag_key")?)?;
            let v = self.dict_str(cur.varint_u32("custom_tag_value")?)?;
            custom.push((k.to_owned(), v.to_owned()));
        }

        let flow_metrics = if flags & F_FLOW_METRICS != 0 {
            let packets_tx = cur.varint_u64("fm_packets_tx")?;
            let packets_rx = cur.varint_u64("fm_packets_rx")?;
            let bytes_tx = cur.varint_u64("fm_bytes_tx")?;
            let bytes_rx = cur.varint_u64("fm_bytes_rx")?;
            let retransmissions = cur.varint_u64("fm_retransmissions")?;
            let resets = cur.varint_u64("fm_resets")?;
            let zero_windows = cur.varint_u64("fm_zero_windows")?;
            let syn_retries = cur.varint_u64("fm_syn_retries")?;
            let rtt = DurationNs(cur.varint_u64("fm_rtt")?);
            let srt = DurationNs(cur.varint_u64("fm_srt")?);
            let established = match cur.u8("fm_established")? {
                0 => false,
                1 => true,
                v => {
                    return Err(WireDecodeError::BadEnum {
                        field: "fm_established",
                        value: v,
                    })
                }
            };
            Some(FlowMetrics {
                packets_tx,
                packets_rx,
                bytes_tx,
                bytes_rx,
                retransmissions,
                resets,
                zero_windows,
                syn_retries,
                rtt,
                srt,
                established,
            })
        } else {
            None
        };

        Ok(Span {
            span_id,
            kind,
            capture: CapturePoint {
                node,
                tap_side,
                interface,
            },
            agent,
            flow_id,
            five_tuple,
            l7_protocol,
            endpoint,
            req_time,
            resp_time,
            status,
            status_code,
            req_bytes,
            resp_bytes,
            pid,
            tid,
            process_name,
            systrace_id_req,
            systrace_id_resp,
            pseudo_thread_id,
            x_request_id_req,
            x_request_id_resp,
            tcp_seq_req,
            tcp_seq_resp,
            otel_trace_id,
            otel_span_id,
            otel_parent_span_id,
            tags: TagSet { resource, custom },
            flow_metrics,
        })
    }
}

/// Streaming record decoder over a [`WireBatch`]; yields each [`Span`] (or
/// the error that stopped the parse) without materialising the whole
/// batch.
pub struct WireSpanIter<'a, 'b> {
    batch: &'b WireBatch<'a>,
    cur: Cursor<'a>,
    remaining: u64,
    poisoned: bool,
}

impl WireSpanIter<'_, '_> {
    /// After the final record, verify the record section is fully
    /// consumed. Call once the iterator returns `None`.
    pub fn finish(&self) -> Result<(), WireDecodeError> {
        if !self.poisoned && self.remaining == 0 && self.cur.remaining() != 0 {
            return Err(WireDecodeError::TrailingBytes {
                extra: self.cur.remaining(),
            });
        }
        Ok(())
    }
}

impl Iterator for WireSpanIter<'_, '_> {
    type Item = Result<Span, WireDecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.poisoned || self.remaining == 0 {
            return None;
        }
        self.remaining = self.remaining.saturating_sub(1);
        match self.batch.decode_record(&mut self.cur) {
            Ok(span) => Some(Ok(span)),
            Err(e) => {
                self.poisoned = true;
                Some(Err(e))
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.poisoned {
            return (0, Some(0));
        }
        // Lower bound stays 0: a truncated buffer may hold fewer records
        // than the header declares.
        (0, Some(self.remaining.min(usize::MAX as u64) as usize))
    }
}

/// Decode a whole DFW1 batch into spans. Convenience over
/// [`WireBatch::parse`] + [`WireBatch::decode_all`].
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<Span>, WireDecodeError> {
    WireBatch::parse(bytes)?.decode_all()
}

/// Read the span count from a batch header without touching the
/// dictionary or records — how forwarding nodes account spans in a batch
/// they never decode.
pub fn peek_span_count(bytes: &[u8]) -> Result<u64, WireDecodeError> {
    let mut cur = Cursor::new(bytes);
    if cur
        .take(4, "magic")
        .map_err(|_| WireDecodeError::BadMagic)?
        != WIRE_MAGIC
    {
        return Err(WireDecodeError::BadMagic);
    }
    let version = cur.u8("version")?;
    if version != WIRE_VERSION {
        return Err(WireDecodeError::BadVersion { found: version });
    }
    cur.varint_u64("span_count")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TapSide;

    fn rich_span() -> Span {
        let mut s = Span::synthetic(TapSide::Gateway, 5_000, 9_000);
        s.span_id = SpanId(42);
        s.kind = SpanKind::Net;
        s.capture.interface = Some("veth-ab12".into());
        s.l7_protocol = L7Protocol::Custom(7);
        s.endpoint = "SELECT products".into();
        s.status = SpanStatus::ServerError;
        s.status_code = Some(503);
        s.req_bytes = u64::MAX;
        s.resp_bytes = 1;
        s.pid = Some(Pid(4242));
        s.tid = Some(Tid(4243));
        s.process_name = Some("mysqld".into());
        s.systrace_id_req = Some(SysTraceId(u64::MAX));
        s.systrace_id_resp = Some(SysTraceId(1));
        s.pseudo_thread_id = Some(PseudoThreadId(9));
        s.x_request_id_req = Some(XRequestId(u128::MAX));
        s.x_request_id_resp = Some(XRequestId(1));
        s.tcp_seq_req = Some(u32::MAX);
        s.tcp_seq_resp = Some(0);
        s.otel_trace_id = Some(OtelTraceId((u64::MAX as u128) + 1));
        s.otel_span_id = Some(OtelSpanId(77));
        s.otel_parent_span_id = Some(OtelSpanId(78));
        s.tags.resource.region_id = Some(3);
        s.tags.resource.pod_id = Some(1234);
        s.tags.custom = vec![
            ("team".into(), "checkout".into()),
            ("tier".into(), "checkout".into()),
        ];
        s.flow_metrics = Some(FlowMetrics {
            packets_tx: 10,
            packets_rx: 12,
            bytes_tx: 1000,
            bytes_rx: 2000,
            retransmissions: 1,
            resets: 0,
            zero_windows: 2,
            syn_retries: 0,
            rtt: DurationNs(250_000),
            srt: DurationNs(1_000_000),
            established: true,
        });
        s
    }

    #[test]
    fn round_trips_minimal_and_rich_spans() {
        let spans = vec![
            Span::synthetic(TapSide::ClientProcess, 1_000, 5_000),
            rich_span(),
        ];
        let bytes = encode_batch(&spans);
        assert_eq!(decode_batch(&bytes).expect("decodes"), spans);
    }

    #[test]
    fn round_trips_empty_batch() {
        let bytes = encode_batch(&[]);
        assert_eq!(bytes.len(), WIRE_PREFIX_LEN + 2);
        assert_eq!(decode_batch(&bytes).expect("decodes"), Vec::<Span>::new());
        assert_eq!(peek_span_count(&bytes), Ok(0));
    }

    #[test]
    fn dictionary_interns_repeated_strings_once() {
        let mut a = rich_span();
        a.endpoint = "GET /".into();
        let batch = encode_batch(&[a.clone(), a.clone(), a]);
        let parsed = WireBatch::parse(&batch).expect("parses");
        // "GET /", "veth-ab12", "mysqld", "team", "checkout", "tier".
        assert_eq!(parsed.dict().len(), 6);
        assert_eq!(
            parsed.dict().iter().filter(|s| **s == "checkout").count(),
            1,
            "repeated value interned once"
        );
    }

    #[test]
    fn resp_before_req_survives() {
        // Response-only fragments can carry resp_time < req_time.
        let mut s = Span::synthetic(TapSide::ServerProcess, 9_000, 2_000);
        s.status = SpanStatus::ResponseOnly;
        let back = decode_batch(&encode_batch(&[s.clone()])).expect("decodes");
        assert_eq!(back, vec![s]);
    }

    #[test]
    fn extreme_times_survive() {
        for (req, resp) in [(0, u64::MAX), (u64::MAX, 0), (u64::MAX, u64::MAX)] {
            let s = Span::synthetic(TapSide::ClientApp, req, resp);
            let one = std::slice::from_ref(&s);
            assert_eq!(decode_batch(&encode_batch(one)).unwrap(), vec![s]);
        }
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let bytes = encode_batch(&[rich_span()]);
        assert_eq!(decode_batch(&[]), Err(WireDecodeError::BadMagic));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode_batch(&bad), Err(WireDecodeError::BadMagic));
        let mut vers = bytes.clone();
        vers[4] = WIRE_VERSION + 1;
        assert_eq!(
            decode_batch(&vers),
            Err(WireDecodeError::BadVersion {
                found: WIRE_VERSION + 1
            })
        );
        for cut in 0..bytes.len() {
            let r = decode_batch(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut bytes = encode_batch(&[rich_span()]);
        bytes.push(0);
        assert_eq!(
            decode_batch(&bytes),
            Err(WireDecodeError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn rejects_dict_index_out_of_range() {
        // A single-span batch whose endpoint id points past the dictionary.
        let mut s = Span::synthetic(TapSide::ClientProcess, 1, 2);
        s.endpoint = String::new();
        let mut bytes = encode_batch(&[s]);
        // The record's endpoint varint is the id 0; the dictionary holds one
        // entry. Flip the id to 9 (single-byte varint, position: find it by
        // decoding structure — endpoint is right after the fixed 13-byte
        // five-tuple + l7 byte from the record start).
        let parsed = WireBatch::parse(&bytes).unwrap();
        let record_off = bytes.len() - parsed.records.len();
        drop(parsed);
        // span_id(1) flags(1) kind_tap(1) node(1) agent(1) flow_id(1)
        // five_tuple(13) l7(1) endpoint(1).
        let endpoint_off = record_off + 1 + 1 + 1 + 1 + 1 + 1 + 13 + 1;
        assert_eq!(bytes[endpoint_off], 0);
        bytes[endpoint_off] = 9;
        assert_eq!(
            decode_batch(&bytes),
            Err(WireDecodeError::BadDictIndex { index: 9, len: 1 })
        );
    }

    #[test]
    fn rejects_unknown_flag_bits() {
        let mut s = Span::synthetic(TapSide::ClientProcess, 1, 2);
        s.endpoint = String::new();
        let mut bytes = encode_batch(&[s]);
        let parsed = WireBatch::parse(&bytes).unwrap();
        let record_off = bytes.len() - parsed.records.len();
        drop(parsed);
        // flags is the second varint in the record (after span_id = 0);
        // synthetic spans set only F_STATUS_CODE (bit 1).
        let flags_off = record_off + 1;
        assert_eq!(bytes[flags_off], 0x02);
        // Add bit 16 (first unknown bit): varint of 0x10002 = 0x82 0x80 0x04.
        bytes.splice(flags_off..flags_off + 1, [0x82u8, 0x80, 0x04]);
        assert!(matches!(
            decode_batch(&bytes),
            Err(WireDecodeError::BadEnum { field: "flags", .. })
        ));
    }

    #[test]
    fn varint_rejects_overwide_encodings() {
        let mut cur = Cursor::new(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02]);
        assert_eq!(
            cur.varint_u64("x"),
            Err(WireDecodeError::BadVarint { context: "x" })
        );
        let mut cur = Cursor::new(&[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01]);
        assert_eq!(cur.varint_u64("x"), Ok(u64::MAX));
        let mut cur = Cursor::new(&[0x80]);
        assert_eq!(
            cur.varint_u64("x"),
            Err(WireDecodeError::Truncated { context: "x" })
        );
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for n in [
            0i128,
            -1,
            1,
            i64::MAX as i128,
            -(u64::MAX as i128),
            u64::MAX as i128,
        ] {
            assert_eq!(unzigzag(zigzag(n)), n);
        }
    }

    #[test]
    fn peek_span_count_matches_header() {
        let spans: Vec<Span> = (0..300)
            .map(|i| Span::synthetic(TapSide::ClientProcess, i, i + 1))
            .collect();
        let bytes = encode_batch(&spans);
        assert_eq!(peek_span_count(&bytes), Ok(300));
        assert_eq!(
            peek_span_count(b"DFW1"),
            Err(WireDecodeError::Truncated { context: "version" })
        );
    }

    #[test]
    fn streaming_iterator_matches_decode_all() {
        let spans = vec![rich_span(), Span::synthetic(TapSide::ClientApp, 1, 2)];
        let bytes = encode_batch(&spans);
        let batch = WireBatch::parse(&bytes).unwrap();
        let streamed: Vec<Span> = batch.spans().map(|r| r.unwrap()).collect();
        assert_eq!(streamed, spans);
        assert_eq!(batch.decode_all().unwrap(), spans);
    }
}
