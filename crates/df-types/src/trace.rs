//! [`Trace`] — the output of Algorithm 1: a tree of spans describing one
//! end-to-end request.

use crate::ids::SpanId;
use crate::span::Span;
use crate::time::{DurationNs, TimeNs};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A span plus its resolved parent, as produced by the parent-setting phase
/// of Algorithm 1 (lines 18–24).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssembledSpan {
    /// The span.
    pub span: Span,
    /// Parent span id within the same trace, if any.
    pub parent: Option<SpanId>,
}

/// An assembled distributed trace: spans sorted by time and parent
/// relationship (Algorithm 1, line 25).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Spans in display order (parents before children, then by start time).
    pub spans: Vec<AssembledSpan>,
}

impl Trace {
    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Root spans (no parent).
    pub fn roots(&self) -> impl Iterator<Item = &AssembledSpan> {
        self.spans.iter().filter(|s| s.parent.is_none())
    }

    /// Children of a given span.
    pub fn children_of(&self, parent: SpanId) -> impl Iterator<Item = &AssembledSpan> + '_ {
        self.spans.iter().filter(move |s| s.parent == Some(parent))
    }

    /// Earliest request time across spans.
    pub fn start_time(&self) -> Option<TimeNs> {
        self.spans.iter().map(|s| s.span.req_time).min()
    }

    /// End-to-end duration: latest response − earliest request.
    pub fn duration(&self) -> DurationNs {
        let start = self.spans.iter().map(|s| s.span.req_time).min();
        let end = self.spans.iter().map(|s| s.span.resp_time).max();
        match (start, end) {
            (Some(s), Some(e)) => e.saturating_since(s),
            _ => DurationNs::ZERO,
        }
    }

    /// Depth of each span (root = 0), for rendering. Spans whose parent is
    /// missing from the trace are treated as roots.
    pub fn depths(&self) -> HashMap<SpanId, usize> {
        let parent_of: HashMap<SpanId, Option<SpanId>> = self
            .spans
            .iter()
            .map(|s| (s.span.span_id, s.parent))
            .collect();
        let mut depths = HashMap::new();
        for s in &self.spans {
            let mut depth = 0usize;
            let mut cur = s.parent;
            // Walk up; bail out defensively if a cycle slipped through.
            let mut hops = 0;
            while let Some(p) = cur {
                if hops > self.spans.len() {
                    break;
                }
                if !parent_of.contains_key(&p) {
                    break;
                }
                depth += 1;
                hops += 1;
                cur = parent_of.get(&p).copied().flatten();
            }
            depths.insert(s.span.span_id, depth);
        }
        depths
    }

    /// Verify the parent relation is acyclic and every parent exists in the
    /// trace. Used by tests and debug assertions.
    pub fn is_well_formed(&self) -> bool {
        let ids: std::collections::HashSet<SpanId> =
            self.spans.iter().map(|s| s.span.span_id).collect();
        if ids.len() != self.spans.len() {
            return false; // duplicate span ids
        }
        let parent_of: HashMap<SpanId, Option<SpanId>> = self
            .spans
            .iter()
            .map(|s| (s.span.span_id, s.parent))
            .collect();
        for s in &self.spans {
            if let Some(p) = s.parent {
                if !ids.contains(&p) {
                    return false;
                }
            }
            // cycle check by walking up with a hop bound
            let mut cur = s.parent;
            let mut hops = 0;
            while let Some(p) = cur {
                hops += 1;
                if hops > self.spans.len() {
                    return false;
                }
                cur = parent_of.get(&p).copied().flatten();
            }
        }
        true
    }

    /// Render a text waterfall of the trace, for examples and debugging.
    pub fn render_text(&self) -> String {
        let depths = self.depths();
        let mut out = String::new();
        let base = self.start_time().unwrap_or(TimeNs::ZERO);
        for s in &self.spans {
            let depth = depths.get(&s.span.span_id).copied().unwrap_or(0);
            let indent = "  ".repeat(depth);
            out.push_str(&format!(
                "{indent}[{}] {} {} {} +{} dur={} {}\n",
                s.span.capture.tap_side,
                s.span.kind,
                s.span.l7_protocol,
                s.span.endpoint,
                s.span.req_time.saturating_since(base),
                s.span.duration(),
                if s.span.status.is_error() {
                    "ERROR"
                } else {
                    "ok"
                },
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::*;
    use crate::l7::L7Protocol;
    use crate::net::FiveTuple;
    use crate::span::{CapturePoint, SpanKind, SpanStatus, TapSide};
    use crate::tags::TagSet;
    use std::net::Ipv4Addr;

    fn mk_span(id: u64, req: u64, resp: u64) -> Span {
        Span {
            span_id: SpanId(id),
            kind: SpanKind::Sys,
            capture: CapturePoint {
                node: NodeId(1),
                tap_side: TapSide::ClientProcess,
                interface: None,
            },
            agent: AgentId(1),
            flow_id: FlowId(1),
            five_tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                40000,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            ),
            l7_protocol: L7Protocol::Http1,
            endpoint: format!("op-{id}"),
            req_time: TimeNs(req),
            resp_time: TimeNs(resp),
            status: SpanStatus::Ok,
            status_code: Some(200),
            req_bytes: 0,
            resp_bytes: 0,
            pid: None,
            tid: None,
            process_name: None,
            systrace_id_req: None,
            systrace_id_resp: None,
            pseudo_thread_id: None,
            x_request_id_req: None,
            x_request_id_resp: None,
            tcp_seq_req: None,
            tcp_seq_resp: None,
            otel_trace_id: None,
            otel_span_id: None,
            otel_parent_span_id: None,
            tags: TagSet::default(),
            flow_metrics: None,
        }
    }

    fn three_span_trace() -> Trace {
        // Figure 1 shape: A receives (span 1), A calls B (span 2, child of 1),
        // B serves (span 3, child of 2).
        Trace {
            spans: vec![
                AssembledSpan {
                    span: mk_span(1, 0, 100),
                    parent: None,
                },
                AssembledSpan {
                    span: mk_span(2, 10, 80),
                    parent: Some(SpanId(1)),
                },
                AssembledSpan {
                    span: mk_span(3, 20, 70),
                    parent: Some(SpanId(2)),
                },
            ],
        }
    }

    #[test]
    fn duration_spans_the_whole_trace() {
        let t = three_span_trace();
        assert_eq!(t.duration().as_nanos(), 100);
        assert_eq!(t.start_time(), Some(TimeNs(0)));
    }

    #[test]
    fn depths_follow_parent_chain() {
        let t = three_span_trace();
        let d = t.depths();
        assert_eq!(d[&SpanId(1)], 0);
        assert_eq!(d[&SpanId(2)], 1);
        assert_eq!(d[&SpanId(3)], 2);
    }

    #[test]
    fn well_formedness_checks() {
        let mut t = three_span_trace();
        assert!(t.is_well_formed());
        // dangling parent
        t.spans[2].parent = Some(SpanId(99));
        assert!(!t.is_well_formed());
        // cycle
        let mut t2 = three_span_trace();
        t2.spans[0].parent = Some(SpanId(3));
        assert!(!t2.is_well_formed());
        // duplicate ids
        let mut t3 = three_span_trace();
        t3.spans[1].span.span_id = SpanId(1);
        assert!(!t3.is_well_formed());
    }

    #[test]
    fn roots_and_children() {
        let t = three_span_trace();
        assert_eq!(t.roots().count(), 1);
        assert_eq!(t.children_of(SpanId(1)).count(), 1);
        assert_eq!(t.children_of(SpanId(3)).count(), 0);
    }

    #[test]
    fn render_text_indents_by_depth() {
        let t = three_span_trace();
        let text = t.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with('['));
        assert!(lines[1].starts_with("  ["));
        assert!(lines[2].starts_with("    ["));
    }
}
