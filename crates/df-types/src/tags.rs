//! Tag model for tag-based correlation (paper §3.4, Figure 8).
//!
//! DeepFlow injects three families of tags into spans:
//!
//! 1. **Kubernetes resource tags** — node, namespace, workload, service, pod;
//! 2. **Cloud resource tags** — region, availability zone, VPC, subnet, host;
//! 3. **Self-defined labels** — `version`, `commit-id`, anything the user set.
//!
//! Smart-encoding stores families 1–2 as integers resolved against a
//! dictionary ([`ResourceTags`]); the agent only ever writes the VPC id and
//! IP (phase 1), the server resolves the remaining resource ints (phase 2),
//! and self-defined string labels are joined at query time (phase 3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A tag key. Resource keys are a closed enum (so they can be columnar);
/// custom keys are free-form strings.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TagKey {
    /// Cloud region.
    Region,
    /// Availability zone.
    AvailabilityZone,
    /// Virtual private cloud.
    Vpc,
    /// Subnet within a VPC.
    Subnet,
    /// Physical/virtual host machine.
    Host,
    /// Kubernetes cluster.
    Cluster,
    /// Kubernetes node.
    K8sNode,
    /// Kubernetes namespace.
    Namespace,
    /// Kubernetes workload (Deployment/StatefulSet...).
    Workload,
    /// Kubernetes service.
    Service,
    /// Kubernetes pod.
    Pod,
    /// User-defined label key.
    Custom(String),
}

impl fmt::Display for TagKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagKey::Region => write!(f, "region"),
            TagKey::AvailabilityZone => write!(f, "az"),
            TagKey::Vpc => write!(f, "vpc"),
            TagKey::Subnet => write!(f, "subnet"),
            TagKey::Host => write!(f, "host"),
            TagKey::Cluster => write!(f, "cluster"),
            TagKey::K8sNode => write!(f, "k8s.node"),
            TagKey::Namespace => write!(f, "k8s.namespace"),
            TagKey::Workload => write!(f, "k8s.workload"),
            TagKey::Service => write!(f, "k8s.service"),
            TagKey::Pod => write!(f, "k8s.pod"),
            TagKey::Custom(k) => write!(f, "label.{k}"),
        }
    }
}

/// A tag value: either a resolved string or a smart-encoded integer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TagValue {
    /// Human-readable resolved value.
    Str(String),
    /// Smart-encoded dictionary id.
    Int(u32),
}

impl fmt::Display for TagValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagValue::Str(s) => write!(f, "{s}"),
            TagValue::Int(i) => write!(f, "#{i}"),
        }
    }
}

/// The smart-encoded (integer) resource tag block attached to every span.
///
/// `None` means "not applicable / unknown" (e.g. a bare-metal flow has no pod
/// id). `vpc_id` and `ip` are the only fields written by the *agent*
/// (Figure 8 steps ④–⑥); everything else is injected by the *server* from
/// its resource dictionary (step ⑦).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ResourceTags {
    /// VPC dictionary id — agent-written (phase 1).
    pub vpc_id: Option<u32>,
    /// Endpoint IPv4 as a raw u32 — agent-written (phase 1).
    pub ip: Option<u32>,
    /// Region dictionary id.
    pub region_id: Option<u32>,
    /// Availability-zone dictionary id.
    pub az_id: Option<u32>,
    /// Subnet dictionary id.
    pub subnet_id: Option<u32>,
    /// Host dictionary id.
    pub host_id: Option<u32>,
    /// Cluster dictionary id.
    pub cluster_id: Option<u32>,
    /// K8s node dictionary id.
    pub k8s_node_id: Option<u32>,
    /// Namespace dictionary id.
    pub namespace_id: Option<u32>,
    /// Workload dictionary id.
    pub workload_id: Option<u32>,
    /// Service dictionary id.
    pub service_id: Option<u32>,
    /// Pod dictionary id.
    pub pod_id: Option<u32>,
}

impl ResourceTags {
    /// Count of populated resource fields.
    pub fn populated(&self) -> usize {
        [
            self.vpc_id,
            self.ip,
            self.region_id,
            self.az_id,
            self.subnet_id,
            self.host_id,
            self.cluster_id,
            self.k8s_node_id,
            self.namespace_id,
            self.workload_id,
            self.service_id,
            self.pod_id,
        ]
        .iter()
        .filter(|v| v.is_some())
        .count()
    }

    /// Whether the server-side enrichment (phase 2) has run: any field beyond
    /// the agent-written `vpc_id`/`ip` is populated.
    pub fn is_enriched(&self) -> bool {
        self.populated() > self.vpc_id.is_some() as usize + self.ip.is_some() as usize
    }
}

/// The complete tag payload of a span: smart-encoded resource ints plus
/// (query-time-joined) custom labels.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TagSet {
    /// Smart-encoded resource block.
    pub resource: ResourceTags,
    /// Self-defined labels, resolved at query time (phase 3). Empty in
    /// storage; populated on query results.
    pub custom: Vec<(String, String)>,
}

impl TagSet {
    /// Attach a custom label.
    pub fn with_label(mut self, key: &str, value: &str) -> Self {
        self.custom.push((key.to_string(), value.to_string()));
        self
    }

    /// Look up a custom label value.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.custom
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Metadata for one pod, as discovered from the orchestrator (Figure 8 ①:
/// "DeepFlow Agents inside the cluster will collect Kubernetes tags").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PodResource {
    /// Pod name.
    pub name: String,
    /// Pod IP as a raw u32 (network byte order semantics are irrelevant in
    /// the simulation; it is a dictionary key).
    pub ip: u32,
    /// Hosting node name.
    pub node: String,
    /// Namespace.
    pub namespace: String,
    /// Owning workload (Deployment/StatefulSet).
    pub workload: String,
    /// Fronting service.
    pub service: String,
    /// Self-defined labels (version, commit-id, ... — resolved at query
    /// time, Figure 8 ⑧).
    pub labels: Vec<(String, String)>,
}

/// Metadata for one node / VM / physical machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeResource {
    /// Node name.
    pub name: String,
    /// Node primary IP.
    pub ip: u32,
    /// Cloud region.
    pub region: String,
    /// Availability zone.
    pub az: String,
    /// VPC name.
    pub vpc: String,
    /// Subnet name.
    pub subnet: String,
    /// Cluster name.
    pub cluster: String,
}

/// The full resource inventory the server builds its tag dictionary from:
/// K8s tags collected by agents (①→②) plus cloud tags gathered directly by
/// the server (③).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceInventory {
    /// All pods.
    pub pods: Vec<PodResource>,
    /// All nodes.
    pub nodes: Vec<NodeResource>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_tags_populated_count() {
        let mut t = ResourceTags::default();
        assert_eq!(t.populated(), 0);
        assert!(!t.is_enriched());
        t.vpc_id = Some(1);
        t.ip = Some(0x0a000001);
        assert_eq!(t.populated(), 2);
        assert!(!t.is_enriched(), "agent-written fields alone != enriched");
        t.pod_id = Some(42);
        assert!(t.is_enriched());
    }

    #[test]
    fn custom_labels() {
        let t = TagSet::default()
            .with_label("version", "v1.2.3")
            .with_label("commit", "abc123");
        assert_eq!(t.label("version"), Some("v1.2.3"));
        assert_eq!(t.label("missing"), None);
    }

    #[test]
    fn tag_key_display() {
        assert_eq!(TagKey::Pod.to_string(), "k8s.pod");
        assert_eq!(TagKey::Custom("team".into()).to_string(), "label.team");
        assert_eq!(TagValue::Int(5).to_string(), "#5");
        assert_eq!(TagValue::Str("x".into()).to_string(), "x");
    }
}
