//! # df-types — shared data model for the DeepFlow reproduction
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`time`] — virtual nanosecond timestamps ([`TimeNs`]) used by the
//!   discrete-event substrate;
//! * [`ids`] — strongly typed identifiers (processes, threads, coroutines,
//!   sockets, flows, spans, traces);
//! * [`net`] — five-tuples, directions, transport protocols;
//! * [`l7`] — application-layer protocol and message-type enums;
//! * [`message`] — [`MessageData`], the unit produced by associating the
//!   *enter* and *exit* halves of one instrumented syscall (paper §3.3.1,
//!   Figure 6 phase 1);
//! * [`span`] — [`Span`], one request/response session observed at one
//!   capture point, carrying every *implicit context* attribute Algorithm 1
//!   joins on (systrace ids, pseudo-thread ids, X-Request-IDs, TCP sequence
//!   numbers, third-party trace ids);
//! * [`trace`] — [`Trace`], an assembled span tree;
//! * [`rpc`] — the cluster RPC vocabulary ([`RpcEnvelope`], span-batch
//!   shipping and Phase 1 candidate-set probes) framed into fabric-segment
//!   payloads;
//! * [`wire`] — **DFW1**, the binary span-batch wire format (normative
//!   spec in `docs/WIRE_FORMAT.md`): the interning encoder agents use and
//!   the zero-copy batch decoder the ingest path runs on;
//! * [`tags`] — the resource-tag model used by tag-based correlation and
//!   smart-encoding (paper §3.4, Figure 8);
//! * [`metrics`] — network flow metrics (TCP retransmissions, RTT, resets)
//!   that DeepFlow attaches to traces.
//!
//! The types are deliberately plain data: all behaviour lives in the
//! substrate (`df-kernel`, `df-net`), the agent (`df-agent`) and the server
//! (`df-server`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ids;
pub mod l7;
pub mod message;
pub mod metrics;
pub mod net;
pub mod packet;
pub mod rpc;
pub mod span;
pub mod tags;
pub mod time;
pub mod trace;
pub mod wire;

pub use ids::*;
pub use l7::{L7Protocol, MessageType, SessionKey};
pub use message::MessageData;
pub use message::{CaptureSource, SyscallAbi};
pub use metrics::{FlowMetrics, L7Metrics};
pub use net::{Direction, FiveTuple, TcpFlags, TransportProtocol};
pub use packet::{ArpOp, CapturedFrame, Frame, Segment};
pub use rpc::{CandidateKeys, CandidateSpan, RpcBody, RpcDecodeError, RpcEnvelope};
pub use span::{CapturePoint, Span, SpanKind, SpanStatus, TapSide};
pub use tags::{
    NodeResource, PodResource, ResourceInventory, ResourceTags, TagKey, TagSet, TagValue,
};
pub use time::{DurationNs, TimeNs};
pub use trace::{AssembledSpan, Trace};
pub use wire::{WireBatch, WireDecodeError, WireEncoder};
