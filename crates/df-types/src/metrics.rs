//! Network and application metrics DeepFlow attaches to traces.
//!
//! The paper's motivating capability (§1, §4.1.3): when a trace shows a slow
//! or failed span, the correlated *network* metrics (retransmissions, RTT,
//! resets, zero-window stalls) tell the operator whether the network
//! infrastructure is the root cause — without a separate packet-analysis
//! tool.

use crate::time::DurationNs;
use serde::{Deserialize, Serialize};

/// L4 flow metrics, maintained per flow per capture point by the flow table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlowMetrics {
    /// Packets sent client→server.
    pub packets_tx: u64,
    /// Packets sent server→client.
    pub packets_rx: u64,
    /// Bytes sent client→server.
    pub bytes_tx: u64,
    /// Bytes sent server→client.
    pub bytes_rx: u64,
    /// Retransmitted segments observed (either direction).
    pub retransmissions: u64,
    /// TCP RST segments observed.
    pub resets: u64,
    /// Zero-window advertisements observed (receiver stall / backlog —
    /// the RabbitMQ case in Fig. 12).
    pub zero_windows: u64,
    /// SYN retries beyond the first (connection-establishment trouble —
    /// the ARP-storm case in §4.1.2).
    pub syn_retries: u64,
    /// Smoothed round-trip time estimate.
    pub rtt: DurationNs,
    /// Server response time (first response byte − last request byte),
    /// the L4-visible part of server latency.
    pub srt: DurationNs,
    /// Whether the connection completed the handshake.
    pub established: bool,
}

impl FlowMetrics {
    /// Merge a peer observation of the same flow (e.g. when re-aggregating
    /// at the server). Counters add; RTT/SRT take the max (worst observed).
    pub fn merge(&mut self, other: &FlowMetrics) {
        self.packets_tx += other.packets_tx;
        self.packets_rx += other.packets_rx;
        self.bytes_tx += other.bytes_tx;
        self.bytes_rx += other.bytes_rx;
        self.retransmissions += other.retransmissions;
        self.resets += other.resets;
        self.zero_windows += other.zero_windows;
        self.syn_retries += other.syn_retries;
        self.rtt = self.rtt.max(other.rtt);
        self.srt = self.srt.max(other.srt);
        self.established |= other.established;
    }

    /// A quick health verdict used by troubleshooting views: any
    /// retransmission, reset, zero-window or SYN retry marks the flow
    /// anomalous.
    pub fn is_anomalous(&self) -> bool {
        self.retransmissions > 0 || self.resets > 0 || self.zero_windows > 0 || self.syn_retries > 0
    }
}

/// L7 metrics aggregated per (flow, endpoint) by the agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct L7Metrics {
    /// Requests observed.
    pub request_count: u64,
    /// Responses observed.
    pub response_count: u64,
    /// Responses classified as client errors.
    pub client_errors: u64,
    /// Responses classified as server errors.
    pub server_errors: u64,
    /// Requests with no response (incomplete sessions).
    pub timeouts: u64,
    /// Sum of session durations (for mean latency).
    pub latency_sum: DurationNs,
    /// Maximum session duration.
    pub latency_max: DurationNs,
}

impl L7Metrics {
    /// Record one completed session.
    pub fn record_session(&mut self, latency: DurationNs, client_error: bool, server_error: bool) {
        self.request_count += 1;
        self.response_count += 1;
        if client_error {
            self.client_errors += 1;
        }
        if server_error {
            self.server_errors += 1;
        }
        self.latency_sum += latency;
        self.latency_max = self.latency_max.max(latency);
    }

    /// Record a request that never got a response.
    pub fn record_timeout(&mut self) {
        self.request_count += 1;
        self.timeouts += 1;
    }

    /// Mean latency over completed sessions.
    pub fn latency_mean(&self) -> DurationNs {
        self.latency_sum
            .as_nanos()
            .checked_div(self.response_count)
            .map_or(DurationNs::ZERO, DurationNs)
    }

    /// Error ratio over all requests.
    pub fn error_ratio(&self) -> f64 {
        if self.request_count == 0 {
            0.0
        } else {
            (self.client_errors + self.server_errors + self.timeouts) as f64
                / self.request_count as f64
        }
    }

    /// Merge another accumulator.
    pub fn merge(&mut self, other: &L7Metrics) {
        self.request_count += other.request_count;
        self.response_count += other.response_count;
        self.client_errors += other.client_errors;
        self.server_errors += other.server_errors;
        self.timeouts += other.timeouts;
        self.latency_sum += other.latency_sum;
        self.latency_max = self.latency_max.max(other.latency_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_metrics_merge_adds_counters_and_maxes_rtt() {
        let mut a = FlowMetrics {
            packets_tx: 10,
            retransmissions: 1,
            rtt: DurationNs::from_micros(100),
            ..Default::default()
        };
        let b = FlowMetrics {
            packets_tx: 5,
            retransmissions: 2,
            rtt: DurationNs::from_micros(250),
            established: true,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.packets_tx, 15);
        assert_eq!(a.retransmissions, 3);
        assert_eq!(a.rtt, DurationNs::from_micros(250));
        assert!(a.established);
    }

    #[test]
    fn anomaly_detection() {
        let healthy = FlowMetrics::default();
        assert!(!healthy.is_anomalous());
        let sick = FlowMetrics {
            zero_windows: 3,
            ..Default::default()
        };
        assert!(sick.is_anomalous());
    }

    #[test]
    fn l7_metrics_session_accounting() {
        let mut m = L7Metrics::default();
        m.record_session(DurationNs::from_millis(10), false, false);
        m.record_session(DurationNs::from_millis(30), false, true);
        m.record_timeout();
        assert_eq!(m.request_count, 3);
        assert_eq!(m.response_count, 2);
        assert_eq!(m.server_errors, 1);
        assert_eq!(m.timeouts, 1);
        assert_eq!(m.latency_mean(), DurationNs::from_millis(20));
        assert!((m.error_ratio() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.latency_max, DurationNs::from_millis(30));
    }

    #[test]
    fn l7_metrics_merge() {
        let mut a = L7Metrics::default();
        a.record_session(DurationNs::from_millis(5), false, false);
        let mut b = L7Metrics::default();
        b.record_session(DurationNs::from_millis(15), true, false);
        a.merge(&b);
        assert_eq!(a.request_count, 2);
        assert_eq!(a.client_errors, 1);
        assert_eq!(a.latency_mean(), DurationNs::from_millis(10));
    }
}
