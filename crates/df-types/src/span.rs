//! [`Span`] — one request/response session observed at one capture point.
//!
//! Paper §3.3.1: a span "always begins with a request and ends with a
//! response". Because DeepFlow is network-centric, the *same* logical
//! exchange produces multiple spans — one per capture point along the path
//! (client process, client pod NIC, node NIC, gateway, server side...). The
//! assembly step (§3.3.2, Algorithm 1) stitches them together using the
//! implicit-context attributes carried here.

use crate::ids::{
    AgentId, FlowId, NodeId, OtelSpanId, OtelTraceId, Pid, PseudoThreadId, SpanId, SysTraceId, Tid,
    XRequestId,
};
use crate::l7::L7Protocol;
use crate::metrics::FlowMetrics;
use crate::net::FiveTuple;
use crate::tags::TagSet;
use crate::time::{DurationNs, TimeNs};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What produced the span (paper Figure 5 and §3.2.1 extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// System span from eBPF syscall hooks ("sys span").
    Sys,
    /// Network span from cBPF / AF_PACKET captures on an interface
    /// ("net span").
    Net,
    /// Application span integrated from a third-party tracing framework
    /// (OpenTelemetry et al., §3.3.2 third-party span integration).
    App,
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanKind::Sys => write!(f, "sys"),
            SpanKind::Net => write!(f, "net"),
            SpanKind::App => write!(f, "app"),
        }
    }
}

/// Which side of the exchange, and at which layer of the infrastructure, the
/// span was observed. Ordered roughly client→server along the Appendix A
/// datacenter path (Figure 17/18); [`TapSide::path_rank`] exposes that order
/// for parent-rule evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TapSide {
    /// Client application span from a third-party tracer.
    ClientApp,
    /// Client process (eBPF syscall capture).
    ClientProcess,
    /// Client pod interface (veth).
    ClientPodNic,
    /// Client node / VM interface.
    ClientNodeNic,
    /// Client-side hypervisor / physical NIC.
    ClientHypervisor,
    /// A gateway traversed by the flow (L4 or L7; see [`Span::is_l7_gateway`]).
    Gateway,
    /// Server-side hypervisor / physical NIC.
    ServerHypervisor,
    /// Server node / VM interface.
    ServerNodeNic,
    /// Server pod interface (veth).
    ServerPodNic,
    /// Server process (eBPF syscall capture).
    ServerProcess,
    /// Server application span from a third-party tracer.
    ServerApp,
}

impl TapSide {
    /// Position along the client→server capture path. Smaller = closer to
    /// the client application. Used by the 16 parent rules: on the request
    /// path, a capture point earlier in the path is the parent of the next.
    pub fn path_rank(self) -> u8 {
        match self {
            TapSide::ClientApp => 0,
            TapSide::ClientProcess => 1,
            TapSide::ClientPodNic => 2,
            TapSide::ClientNodeNic => 3,
            TapSide::ClientHypervisor => 4,
            TapSide::Gateway => 5,
            TapSide::ServerHypervisor => 6,
            TapSide::ServerNodeNic => 7,
            TapSide::ServerPodNic => 8,
            TapSide::ServerProcess => 9,
            TapSide::ServerApp => 10,
        }
    }

    /// Whether this observation point is on the client side of the flow.
    pub fn is_client_side(self) -> bool {
        self.path_rank() <= TapSide::ClientHypervisor.path_rank()
    }

    /// Whether the span was captured in the network (between processes).
    pub fn is_network(self) -> bool {
        !matches!(
            self,
            TapSide::ClientApp
                | TapSide::ClientProcess
                | TapSide::ServerProcess
                | TapSide::ServerApp
        )
    }
}

impl fmt::Display for TapSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TapSide::ClientApp => "c-app",
            TapSide::ClientProcess => "c",
            TapSide::ClientPodNic => "c-pod",
            TapSide::ClientNodeNic => "c-nd",
            TapSide::ClientHypervisor => "c-hv",
            TapSide::Gateway => "gw",
            TapSide::ServerHypervisor => "s-hv",
            TapSide::ServerNodeNic => "s-nd",
            TapSide::ServerPodNic => "s-pod",
            TapSide::ServerProcess => "s",
            TapSide::ServerApp => "s-app",
        };
        write!(f, "{s}")
    }
}

/// Identifies the exact capture point: node + tap side (+ optional interface
/// name for network taps).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CapturePoint {
    /// The node whose agent produced the span.
    pub node: NodeId,
    /// The side/layer of the capture.
    pub tap_side: TapSide,
    /// Interface name for net spans (`"eth0"`, `"veth-ab12"`, ...).
    pub interface: Option<String>,
}

/// Outcome of the exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanStatus {
    /// Completed with a success response.
    Ok,
    /// Completed with a client-error response (e.g. HTTP 4xx).
    ClientError,
    /// Completed with a server-error response (e.g. HTTP 5xx).
    ServerError,
    /// No response observed — "unexpected execution termination" (§3.3.1),
    /// or not yet: the response may still be waiting server-side
    /// re-aggregation against a late [`SpanStatus::ResponseOnly`] fragment.
    Incomplete,
    /// A response whose request expired out of the agent's time window
    /// before it arrived. Shipped to the server so re-aggregation can
    /// reunite the pair (§3.3.1: "Messages received outside of the time
    /// period are uploaded to the DeepFlow Server, where they can be
    /// aggregated again using the same technique").
    ResponseOnly,
}

impl SpanStatus {
    /// Whether the exchange failed (any non-Ok outcome). Response-only
    /// fragments are bookkeeping, not failures.
    pub fn is_error(self) -> bool {
        !matches!(self, SpanStatus::Ok | SpanStatus::ResponseOnly)
    }
}

/// One observed request/response session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Storage-assigned id (0 until persisted).
    pub span_id: SpanId,
    /// What produced the span.
    pub kind: SpanKind,
    /// Where it was observed.
    pub capture: CapturePoint,
    /// Agent that reported it.
    pub agent: AgentId,
    /// Flow the session belongs to.
    pub flow_id: FlowId,
    /// Five-tuple, oriented client→server.
    pub five_tuple: FiveTuple,
    /// Inferred L7 protocol.
    pub l7_protocol: L7Protocol,
    /// Operation label, e.g. `"GET /api/v1/products"` or `"SELECT"`.
    pub endpoint: String,
    /// Capture time of the request message.
    pub req_time: TimeNs,
    /// Capture time of the response message ([`Span::req_time`] +
    /// [`Span::duration`]). Equal to `req_time` for incomplete spans.
    pub resp_time: TimeNs,
    /// Outcome.
    pub status: SpanStatus,
    /// Protocol status code if any (HTTP status, MySQL error code...).
    pub status_code: Option<u16>,
    /// Request body length in bytes.
    pub req_bytes: u64,
    /// Response body length in bytes.
    pub resp_bytes: u64,

    // ---- process context (sys spans only) ----
    /// Observed process id.
    pub pid: Option<Pid>,
    /// Observed thread id.
    pub tid: Option<Tid>,
    /// Observed process name.
    pub process_name: Option<String>,

    // ---- implicit-context association attributes (Algorithm 1 joins) ----
    /// Systrace id carried by the request message.
    pub systrace_id_req: Option<SysTraceId>,
    /// Systrace id carried by the response message.
    pub systrace_id_resp: Option<SysTraceId>,
    /// Pseudo-thread id (coroutine chain).
    pub pseudo_thread_id: Option<PseudoThreadId>,
    /// X-Request-ID seen on the request.
    pub x_request_id_req: Option<XRequestId>,
    /// X-Request-ID seen on the response.
    pub x_request_id_resp: Option<XRequestId>,
    /// TCP sequence of the first byte of the request message.
    pub tcp_seq_req: Option<u32>,
    /// TCP sequence of the first byte of the response message.
    pub tcp_seq_resp: Option<u32>,
    /// Third-party trace id (W3C/B3), if present in headers.
    pub otel_trace_id: Option<OtelTraceId>,
    /// Third-party span id.
    pub otel_span_id: Option<OtelSpanId>,
    /// Third-party parent span id.
    pub otel_parent_span_id: Option<OtelSpanId>,

    // ---- correlation payloads (§3.4) ----
    /// Resource / custom tags (smart-encoded server-side).
    pub tags: TagSet,
    /// Flow metrics snapshot for the session's flow, when the capture point
    /// tracks them (net spans and sys spans with a flow table entry).
    pub flow_metrics: Option<FlowMetrics>,
}

impl Span {
    /// A minimal well-formed span for examples, tests and synthetic
    /// workloads: an HTTP/1 `GET /` sys span observed at `tap_side` with the
    /// given request/response capture times (nanoseconds). All association
    /// attributes start `None` — set the ones the scenario needs
    /// (`tcp_seq_req`, `systrace_id_req`, ...). The span id is 0 until a
    /// store assigns one.
    ///
    /// # Examples
    ///
    /// ```
    /// use df_types::span::{Span, SpanStatus, TapSide};
    ///
    /// let mut span = Span::synthetic(TapSide::ServerProcess, 1_000, 5_000);
    /// span.tcp_seq_req = Some(42);
    /// assert_eq!(span.duration().as_nanos(), 4_000);
    /// assert_eq!(span.status, SpanStatus::Ok);
    /// assert!(span.span_id.raw() == 0, "unassigned until stored");
    /// ```
    pub fn synthetic(tap_side: TapSide, req_ns: u64, resp_ns: u64) -> Span {
        Span {
            span_id: SpanId(0),
            kind: SpanKind::Sys,
            capture: CapturePoint {
                node: NodeId(1),
                tap_side,
                interface: None,
            },
            agent: AgentId(1),
            flow_id: FlowId(1),
            five_tuple: FiveTuple::tcp(
                std::net::Ipv4Addr::new(10, 0, 0, 1),
                40000,
                std::net::Ipv4Addr::new(10, 0, 0, 2),
                80,
            ),
            l7_protocol: L7Protocol::Http1,
            endpoint: "GET /".into(),
            req_time: TimeNs(req_ns),
            resp_time: TimeNs(resp_ns),
            status: SpanStatus::Ok,
            status_code: Some(200),
            req_bytes: 0,
            resp_bytes: 0,
            pid: None,
            tid: None,
            process_name: None,
            systrace_id_req: None,
            systrace_id_resp: None,
            pseudo_thread_id: None,
            x_request_id_req: None,
            x_request_id_resp: None,
            tcp_seq_req: None,
            tcp_seq_resp: None,
            otel_trace_id: None,
            otel_span_id: None,
            otel_parent_span_id: None,
            tags: TagSet::default(),
            flow_metrics: None,
        }
    }

    /// Session duration (response capture − request capture).
    pub fn duration(&self) -> DurationNs {
        self.resp_time.saturating_since(self.req_time)
    }

    /// Whether this span was captured at an L7 gateway (which terminates TCP
    /// and therefore does *not* preserve sequence numbers; association must
    /// go through X-Request-ID — paper Appendix A).
    pub fn is_l7_gateway(&self) -> bool {
        self.capture.tap_side == TapSide::Gateway && self.kind == SpanKind::Sys
    }

    /// True if the two spans share at least one association attribute —
    /// the candidate test used during Algorithm 1's iterative search.
    pub fn shares_context_with(&self, other: &Span) -> bool {
        fn m<T: PartialEq + Copy>(a: Option<T>, b: Option<T>) -> bool {
            matches!((a, b), (Some(x), Some(y)) if x == y)
        }
        // systrace ids may match req-to-req, resp-to-resp, or cross
        // (the egress of one message is the ingress of the next).
        let sys = m(self.systrace_id_req, other.systrace_id_req)
            || m(self.systrace_id_resp, other.systrace_id_resp)
            || m(self.systrace_id_req, other.systrace_id_resp)
            || m(self.systrace_id_resp, other.systrace_id_req);
        let pth = m(self.pseudo_thread_id, other.pseudo_thread_id);
        let xreq = m(self.x_request_id_req, other.x_request_id_req)
            || m(self.x_request_id_resp, other.x_request_id_resp)
            || m(self.x_request_id_req, other.x_request_id_resp)
            || m(self.x_request_id_resp, other.x_request_id_req);
        let tcp =
            m(self.tcp_seq_req, other.tcp_seq_req) || m(self.tcp_seq_resp, other.tcp_seq_resp);
        let otel = m(self.otel_trace_id, other.otel_trace_id);
        sys || pth || xreq || tcp || otel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    pub(crate) fn blank_span() -> Span {
        Span {
            span_id: SpanId(0),
            kind: SpanKind::Sys,
            capture: CapturePoint {
                node: NodeId(1),
                tap_side: TapSide::ClientProcess,
                interface: None,
            },
            agent: AgentId(1),
            flow_id: FlowId(1),
            five_tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                40000,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            ),
            l7_protocol: L7Protocol::Http1,
            endpoint: "GET /".into(),
            req_time: TimeNs(1000),
            resp_time: TimeNs(5000),
            status: SpanStatus::Ok,
            status_code: Some(200),
            req_bytes: 100,
            resp_bytes: 900,
            pid: Some(Pid(10)),
            tid: Some(Tid(11)),
            process_name: Some("client".into()),
            systrace_id_req: None,
            systrace_id_resp: None,
            pseudo_thread_id: None,
            x_request_id_req: None,
            x_request_id_resp: None,
            tcp_seq_req: None,
            tcp_seq_resp: None,
            otel_trace_id: None,
            otel_span_id: None,
            otel_parent_span_id: None,
            tags: TagSet::default(),
            flow_metrics: None,
        }
    }

    #[test]
    fn duration_is_resp_minus_req() {
        let s = blank_span();
        assert_eq!(s.duration().as_nanos(), 4000);
    }

    #[test]
    fn tap_side_path_order_is_client_to_server() {
        let order = [
            TapSide::ClientApp,
            TapSide::ClientProcess,
            TapSide::ClientPodNic,
            TapSide::ClientNodeNic,
            TapSide::ClientHypervisor,
            TapSide::Gateway,
            TapSide::ServerHypervisor,
            TapSide::ServerNodeNic,
            TapSide::ServerPodNic,
            TapSide::ServerProcess,
            TapSide::ServerApp,
        ];
        for w in order.windows(2) {
            assert!(w[0].path_rank() < w[1].path_rank());
        }
        assert!(TapSide::ClientPodNic.is_network());
        assert!(!TapSide::ServerProcess.is_network());
        assert!(TapSide::ClientHypervisor.is_client_side());
        assert!(!TapSide::ServerHypervisor.is_client_side());
    }

    #[test]
    fn shares_context_matches_tcp_seq() {
        let mut a = blank_span();
        let mut b = blank_span();
        assert!(!a.shares_context_with(&b));
        a.tcp_seq_req = Some(777);
        b.tcp_seq_req = Some(777);
        assert!(a.shares_context_with(&b));
    }

    #[test]
    fn shares_context_matches_crossed_systrace_ids() {
        let mut a = blank_span();
        let mut b = blank_span();
        // server span's request systrace equals client span's request systrace
        // (the ingress→egress chain), and also test the crossed direction.
        a.systrace_id_resp = Some(SysTraceId(9));
        b.systrace_id_req = Some(SysTraceId(9));
        assert!(a.shares_context_with(&b));
    }

    #[test]
    fn status_error_classification() {
        assert!(!SpanStatus::Ok.is_error());
        assert!(SpanStatus::ServerError.is_error());
        assert!(SpanStatus::Incomplete.is_error());
    }
}
