//! Virtual time.
//!
//! The whole substrate runs on a discrete-event clock measured in
//! nanoseconds since simulation start. Using a dedicated newtype (instead of
//! bare `u64`) keeps timestamps from being confused with ids, byte counts or
//! sequence numbers, and gives us saturating arithmetic in one place.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimeNs(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DurationNs(pub u64);

impl TimeNs {
    /// The zero timestamp (simulation start).
    pub const ZERO: TimeNs = TimeNs(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        TimeNs(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        TimeNs(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        TimeNs(s * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole seconds since simulation start (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The elapsed duration since `earlier`, saturating to zero if `earlier`
    /// is in the future (defensive: capture timestamps from different CPUs
    /// may be slightly out of order, paper §3.3.1).
    pub fn saturating_since(self, earlier: TimeNs) -> DurationNs {
        DurationNs(self.0.saturating_sub(earlier.0))
    }

    /// The index of the aggregation time slot this timestamp falls in, for a
    /// given slot width (paper §3.3.1 uses 60 s slots).
    pub fn slot(self, slot_width: DurationNs) -> u64 {
        debug_assert!(slot_width.0 > 0, "slot width must be positive");
        self.0 / slot_width.0
    }
}

impl DurationNs {
    /// The zero duration.
    pub const ZERO: DurationNs = DurationNs(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        DurationNs(us * 1_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        DurationNs(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        DurationNs(s * 1_000_000_000)
    }

    /// Nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating duration subtraction.
    pub fn saturating_sub(self, other: DurationNs) -> DurationNs {
        DurationNs(self.0.saturating_sub(other.0))
    }

    /// Scale the duration by a non-negative factor, saturating on overflow.
    pub fn mul_f64(self, factor: f64) -> DurationNs {
        debug_assert!(factor >= 0.0, "duration scale factor must be non-negative");
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            DurationNs(u64::MAX)
        } else {
            DurationNs(scaled as u64)
        }
    }
}

impl Add<DurationNs> for TimeNs {
    type Output = TimeNs;
    fn add(self, rhs: DurationNs) -> TimeNs {
        TimeNs(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<DurationNs> for TimeNs {
    fn add_assign(&mut self, rhs: DurationNs) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<TimeNs> for TimeNs {
    type Output = DurationNs;
    fn sub(self, rhs: TimeNs) -> DurationNs {
        self.saturating_since(rhs)
    }
}

impl Add<DurationNs> for DurationNs {
    type Output = DurationNs;
    fn add(self, rhs: DurationNs) -> DurationNs {
        DurationNs(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<DurationNs> for DurationNs {
    fn add_assign(&mut self, rhs: DurationNs) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl fmt::Display for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for DurationNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(TimeNs::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(TimeNs::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(TimeNs::from_micros(3).as_nanos(), 3_000);
        assert_eq!(DurationNs::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = TimeNs(100);
        let b = TimeNs(250);
        assert_eq!(b.saturating_since(a), DurationNs(150));
        assert_eq!(a.saturating_since(b), DurationNs::ZERO);
    }

    #[test]
    fn slot_indexing_matches_paper_60s_windows() {
        let w = DurationNs::from_secs(60);
        assert_eq!(TimeNs::from_secs(0).slot(w), 0);
        assert_eq!(TimeNs::from_secs(59).slot(w), 0);
        assert_eq!(TimeNs::from_secs(60).slot(w), 1);
        assert_eq!(TimeNs::from_secs(121).slot(w), 2);
    }

    #[test]
    fn add_assign_advances_clock() {
        let mut t = TimeNs::ZERO;
        t += DurationNs::from_millis(5);
        t += DurationNs::from_micros(1);
        assert_eq!(t.as_nanos(), 5_001_000);
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(format!("{}", DurationNs(400)), "400ns");
        assert_eq!(format!("{}", DurationNs(2_500)), "2.50us");
        assert_eq!(format!("{}", DurationNs(2_500_000)), "2.50ms");
        assert_eq!(format!("{}", DurationNs(2_500_000_000)), "2.500s");
    }

    #[test]
    fn mul_f64_scales_and_saturates() {
        assert_eq!(DurationNs(1000).mul_f64(1.5), DurationNs(1500));
        assert_eq!(DurationNs(u64::MAX).mul_f64(2.0), DurationNs(u64::MAX));
        assert_eq!(DurationNs(1000).mul_f64(0.0), DurationNs::ZERO);
    }
}
