//! [`MessageData`] — the unit of trace data produced by the agent.
//!
//! Paper §3.3.1 / Figure 6, phase 1: the enter and exit halves of one
//! instrumented syscall are associated by `(Pid, Tid)` and combined into
//! *message data*. Phase 2 (protocol inference) and the association passes
//! (§3.3.2) then enrich it in place — DeepFlow "injects associations as tags
//! into the message data" rather than building separate records.

use crate::ids::{
    CoroutineId, NodeId, OtelSpanId, OtelTraceId, Pid, PseudoThreadId, SocketId, SysTraceId, Tid,
    XRequestId,
};
use crate::l7::{L7Protocol, MessageType, SessionKey};
use crate::net::{Direction, FiveTuple};
use crate::time::TimeNs;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The ten system call ABIs DeepFlow instruments (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // names are the syscall names themselves
pub enum SyscallAbi {
    Read,
    Readv,
    Recvfrom,
    Recvmsg,
    Recvmmsg,
    Write,
    Writev,
    Sendto,
    Sendmsg,
    Sendmmsg,
}

impl SyscallAbi {
    /// Classification per Table 3: read/recv* are ingress, write/send* egress.
    pub fn direction(self) -> Direction {
        match self {
            SyscallAbi::Read
            | SyscallAbi::Readv
            | SyscallAbi::Recvfrom
            | SyscallAbi::Recvmsg
            | SyscallAbi::Recvmmsg => Direction::Ingress,
            SyscallAbi::Write
            | SyscallAbi::Writev
            | SyscallAbi::Sendto
            | SyscallAbi::Sendmsg
            | SyscallAbi::Sendmmsg => Direction::Egress,
        }
    }

    /// All ten ABIs, ingress first (Table 3 order).
    pub const ALL: [SyscallAbi; 10] = [
        SyscallAbi::Recvmsg,
        SyscallAbi::Recvmmsg,
        SyscallAbi::Readv,
        SyscallAbi::Read,
        SyscallAbi::Recvfrom,
        SyscallAbi::Sendmsg,
        SyscallAbi::Sendmmsg,
        SyscallAbi::Writev,
        SyscallAbi::Write,
        SyscallAbi::Sendto,
    ];

    /// The syscall's name as it appears in the kernel symbol table.
    pub fn name(self) -> &'static str {
        match self {
            SyscallAbi::Read => "read",
            SyscallAbi::Readv => "readv",
            SyscallAbi::Recvfrom => "recvfrom",
            SyscallAbi::Recvmsg => "recvmsg",
            SyscallAbi::Recvmmsg => "recvmmsg",
            SyscallAbi::Write => "write",
            SyscallAbi::Writev => "writev",
            SyscallAbi::Sendto => "sendto",
            SyscallAbi::Sendmsg => "sendmsg",
            SyscallAbi::Sendmmsg => "sendmmsg",
        }
    }
}

impl fmt::Display for SyscallAbi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Where a message was captured (paper §3.2.1 "tracing information" plus the
/// instrumentation extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaptureSource {
    /// eBPF kprobe/tracepoint on a syscall ABI.
    Ebpf(SyscallAbi),
    /// uprobe/uretprobe on a user-space function (e.g. `ssl_read`), used to
    /// see plaintext before TLS encryption.
    Uprobe,
    /// cBPF / AF_PACKET capture on a network interface.
    Packet,
}

/// §3.2.1 category (i): program information.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramInfo {
    /// Process id.
    pub pid: Pid,
    /// Thread id.
    pub tid: Tid,
    /// Coroutine id, when the component runs a coroutine scheduler the agent
    /// tracks (Go-style).
    pub coroutine: Option<CoroutineId>,
    /// Executable name (`comm`).
    pub process_name: String,
}

/// §3.2.1 category (ii): network information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkInfo {
    /// DeepFlow-assigned globally unique socket id.
    pub socket_id: SocketId,
    /// Five-tuple from the capturing component's local perspective.
    pub five_tuple: FiveTuple,
    /// TCP sequence number of the first byte of this message. Preserved by
    /// L2/3/4 forwarding, hence usable for inter-component association
    /// (paper §3.3.2).
    pub tcp_seq: u32,
}

/// §3.2.1 category (iii): tracing information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracingInfo {
    /// Timestamp of the syscall *enter* (start of the message I/O).
    pub enter_ns: TimeNs,
    /// Timestamp of the syscall *exit*.
    pub exit_ns: TimeNs,
    /// Ingress or egress, per Table 3.
    pub direction: Direction,
    /// Which instrumentation mechanism captured the message.
    pub source: CaptureSource,
    /// The node whose agent captured it.
    pub node: NodeId,
}

/// §3.2.1 category (iv): system call information.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyscallInfo {
    /// Total length of the read/written data, in bytes.
    pub byte_len: usize,
    /// Payload prefix handed to the agent for protocol inference. DeepFlow
    /// truncates — deep inspection stops at headers (§3.3.1).
    pub payload: Bytes,
    /// True if this was the first syscall for the message; subsequent
    /// continuation syscalls are counted but not payload-captured (§3.3.1:
    /// "we only process the first system call for a message").
    pub first_syscall: bool,
}

/// Enrichment attached by protocol inference and the association passes.
/// Starts all-`None`/`Unknown`; the agent fills it in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MessageContext {
    /// Inferred L7 protocol of the flow.
    pub l7_protocol: Option<L7Protocol>,
    /// Inferred message type.
    pub message_type: Option<MessageType>,
    /// Session-aggregation key (order-based or embedded id).
    pub session_key: Option<SessionKey>,
    /// Implicit intra-component correlation id (paper Figure 7).
    pub systrace_id: Option<SysTraceId>,
    /// Pseudo-thread id for coroutine chains.
    pub pseudo_thread_id: Option<PseudoThreadId>,
    /// X-Request-ID parsed from proxy-injected headers.
    pub x_request_id: Option<XRequestId>,
    /// Third-party trace id parsed from traceparent/B3 headers.
    pub otel_trace_id: Option<OtelTraceId>,
    /// Third-party span id parsed from traceparent/B3 headers.
    pub otel_span_id: Option<OtelSpanId>,
}

/// One message observed at one capture point: the combined enter+exit record
/// of Figure 6 phase 1, later enriched in place.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageData {
    /// Program information.
    pub program: ProgramInfo,
    /// Network information.
    pub network: NetworkInfo,
    /// Tracing information.
    pub tracing: TracingInfo,
    /// System call information.
    pub syscall: SyscallInfo,
    /// Enrichment (inference + association) state.
    pub context: MessageContext,
}

impl MessageData {
    /// Duration the syscall spent in the kernel.
    pub fn syscall_latency(&self) -> crate::time::DurationNs {
        self.tracing.exit_ns.saturating_since(self.tracing.enter_ns)
    }

    /// The capture timestamp used for time-window slotting: the exit time,
    /// i.e. when the message was fully handed over.
    pub fn capture_ns(&self) -> TimeNs {
        self.tracing.exit_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sample() -> MessageData {
        MessageData {
            program: ProgramInfo {
                pid: Pid(100),
                tid: Tid(101),
                coroutine: None,
                process_name: "productpage".into(),
            },
            network: NetworkInfo {
                socket_id: SocketId(7),
                five_tuple: FiveTuple::tcp(
                    Ipv4Addr::new(10, 1, 0, 5),
                    40000,
                    Ipv4Addr::new(10, 1, 0, 9),
                    9080,
                ),
                tcp_seq: 1000,
            },
            tracing: TracingInfo {
                enter_ns: TimeNs(1_000),
                exit_ns: TimeNs(3_500),
                direction: Direction::Egress,
                source: CaptureSource::Ebpf(SyscallAbi::Write),
                node: NodeId(1),
            },
            syscall: SyscallInfo {
                byte_len: 512,
                payload: Bytes::from_static(b"GET / HTTP/1.1\r\n"),
                first_syscall: true,
            },
            context: MessageContext::default(),
        }
    }

    #[test]
    fn syscall_direction_classification_covers_table3() {
        use SyscallAbi::*;
        for abi in [Read, Readv, Recvfrom, Recvmsg, Recvmmsg] {
            assert_eq!(abi.direction(), Direction::Ingress, "{abi}");
        }
        for abi in [Write, Writev, Sendto, Sendmsg, Sendmmsg] {
            assert_eq!(abi.direction(), Direction::Egress, "{abi}");
        }
        assert_eq!(SyscallAbi::ALL.len(), 10);
    }

    #[test]
    fn latency_and_capture_time() {
        let m = sample();
        assert_eq!(m.syscall_latency().as_nanos(), 2_500);
        assert_eq!(m.capture_ns(), TimeNs(3_500));
    }

    #[test]
    fn context_starts_empty() {
        let m = sample();
        assert!(m.context.l7_protocol.is_none());
        assert!(m.context.systrace_id.is_none());
    }
}
