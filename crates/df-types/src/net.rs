//! Network-layer vocabulary: addresses, five-tuples, directions.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Transport protocol of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransportProtocol {
    /// Reliable byte stream with sequence numbers (what most microservice
    /// traffic uses, and what inter-component association relies on).
    Tcp,
    /// Datagram transport (DNS and friends).
    Udp,
}

impl fmt::Display for TransportProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportProtocol::Tcp => write!(f, "TCP"),
            TransportProtocol::Udp => write!(f, "UDP"),
        }
    }
}

/// Direction of a captured message relative to the observed component
/// (paper Table 3: ingress vs egress system calls).
///
/// Note the paper's caveat: neither direction maps 1:1 onto
/// request/response — a client's egress is a request while a server's egress
/// is a response. Request/response typing happens later, during protocol
/// inference (§3.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Data received by the component (read/recv* family).
    Ingress,
    /// Data sent by the component (write/send* family).
    Egress,
}

impl Direction {
    /// The opposite direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Ingress => Direction::Egress,
            Direction::Egress => Direction::Ingress,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Ingress => write!(f, "ingress"),
            Direction::Egress => write!(f, "egress"),
        }
    }
}

/// The classic five-tuple identifying a flow.
///
/// Stored from the *client's* canonical orientation when used as a flow key
/// (see [`FiveTuple::canonical`]), or from the capture point's local
/// perspective when attached to a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port.
    pub src_port: u16,
    /// Destination transport port.
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: TransportProtocol,
}

impl FiveTuple {
    /// Construct a TCP five-tuple.
    pub fn tcp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: TransportProtocol::Tcp,
        }
    }

    /// Construct a UDP five-tuple.
    pub fn udp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: TransportProtocol::Udp,
        }
    }

    /// The same connection viewed from the other endpoint.
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// A direction-independent key: the lexicographically smaller of
    /// `(self, reversed)`. Two captures of the same connection from opposite
    /// ends canonicalise to the same value, which is what flow tables key on.
    pub fn canonical(&self) -> FiveTuple {
        let rev = self.reversed();
        let a = (self.src_ip, self.src_port, self.dst_ip, self.dst_port);
        let b = (rev.src_ip, rev.src_port, rev.dst_ip, rev.dst_port);
        if a <= b {
            *self
        } else {
            rev
        }
    }

    /// Whether `other` is the same connection (either orientation).
    pub fn same_flow(&self, other: &FiveTuple) -> bool {
        self.canonical() == other.canonical()
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.protocol, self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

/// TCP header flags we model (enough for flow-state tracking and the reset /
/// retransmission metrics DeepFlow reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags {
    /// SYN flag.
    pub syn: bool,
    /// ACK flag.
    pub ack: bool,
    /// FIN flag.
    pub fin: bool,
    /// RST flag.
    pub rst: bool,
    /// PSH flag.
    pub psh: bool,
}

impl TcpFlags {
    /// A bare SYN (connection open).
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };
    /// SYN+ACK (connection accept).
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// Pure ACK.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// PSH+ACK (data segment).
    pub const PSH_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: true,
    };
    /// FIN+ACK (orderly close).
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
        psh: false,
    };
    /// RST (abort).
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
        psh: false,
    };
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.syn {
            parts.push("SYN");
        }
        if self.ack {
            parts.push("ACK");
        }
        if self.fin {
            parts.push("FIN");
        }
        if self.rst {
            parts.push("RST");
        }
        if self.psh {
            parts.push("PSH");
        }
        if parts.is_empty() {
            write!(f, "-")
        } else {
            write!(f, "{}", parts.join("|"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft() -> FiveTuple {
        FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            43210,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        )
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let t = ft();
        let r = t.reversed();
        assert_eq!(r.src_ip, t.dst_ip);
        assert_eq!(r.dst_port, t.src_port);
        assert_eq!(r.reversed(), t);
    }

    #[test]
    fn canonical_is_orientation_independent() {
        let t = ft();
        assert_eq!(t.canonical(), t.reversed().canonical());
        assert!(t.same_flow(&t.reversed()));
    }

    #[test]
    fn different_flows_do_not_match() {
        let t = ft();
        let mut other = t;
        other.src_port = 9999;
        assert!(!t.same_flow(&other));
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Ingress.flip(), Direction::Egress);
        assert_eq!(Direction::Egress.flip(), Direction::Ingress);
    }

    #[test]
    fn tcp_flags_display() {
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::default().to_string(), "-");
        assert_eq!(TcpFlags::RST.to_string(), "RST");
    }
}
