//! Wire-level packet vocabulary shared by the kernel (which emits segments),
//! the virtual network (which forwards them) and capture taps (which observe
//! them).
//!
//! The model is deliberately L4-centric: DeepFlow's inter-component
//! association needs exactly the properties modelled here — five-tuple, TCP
//! sequence number (preserved by L2/3/4 forwarding), flags, window and
//! payload bytes. ARP frames get their own variant because the §4.1.2 case
//! study (faulty physical NIC generating extra ARP requests) is about
//! observing them per infrastructure hop.

use crate::net::{FiveTuple, TcpFlags};
use crate::time::TimeNs;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// A TCP segment (or UDP datagram — `flags` all-false, `seq` 0) on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Flow five-tuple from the sender's perspective.
    pub five_tuple: FiveTuple,
    /// Sequence number of the first payload byte (TCP). Preserved end-to-end
    /// through L2/3/4 forwarding — the invariant inter-component association
    /// relies on (paper §3.3.2).
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// TCP flags.
    pub flags: TcpFlags,
    /// Advertised receive window (0 signals a stalled receiver).
    pub window: u16,
    /// Payload bytes.
    pub payload: Bytes,
    /// Set when this segment is a link/transport-level retransmission of an
    /// earlier one. Capture taps use it (together with duplicate-seq
    /// detection) to count retransmissions.
    pub is_retransmission: bool,
}

impl Segment {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the segment carries no payload (pure control segment).
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// The sequence number just past this segment's payload.
    pub fn end_seq(&self) -> u32 {
        // SYN and FIN each consume one sequence number, like real TCP.
        let ctl = (self.flags.syn as u32) + (self.flags.fin as u32);
        self.seq
            .wrapping_add(self.payload.len() as u32)
            .wrapping_add(ctl)
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} seq={} ack={} [{}] len={}{}",
            self.five_tuple,
            self.seq,
            self.ack,
            self.flags,
            self.payload.len(),
            if self.is_retransmission { " RETX" } else { "" }
        )
    }
}

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArpOp {
    /// Who-has request.
    Request,
    /// Is-at reply.
    Reply,
}

/// A frame on the wire: either an IP segment or an ARP frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Frame {
    /// TCP/UDP segment.
    Segment(Segment),
    /// ARP frame (request/reply for a target IP).
    Arp {
        /// Operation.
        op: ArpOp,
        /// Sender protocol address.
        sender: Ipv4Addr,
        /// Target protocol address being resolved.
        target: Ipv4Addr,
    },
}

impl Frame {
    /// Byte size estimate used for link accounting.
    pub fn wire_len(&self) -> usize {
        match self {
            Frame::Segment(s) => 54 + s.payload.len(), // eth + ip + tcp headers
            Frame::Arp { .. } => 42,
        }
    }
}

/// A packet observation recorded by a capture tap (cBPF / AF_PACKET / port
/// mirror). This is what NIC-side net spans are built from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapturedFrame {
    /// Virtual time of the observation.
    pub ts: TimeNs,
    /// Interface label where the tap sits (`"eth0"`, `"veth-x"`, `"tor-mirror"`).
    pub interface: String,
    /// The observed frame.
    pub frame: Frame,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(payload: &'static [u8], flags: TcpFlags) -> Segment {
        Segment {
            five_tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                1234,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            ),
            seq: 100,
            ack: 0,
            flags,
            window: 65535,
            payload: Bytes::from_static(payload),
            is_retransmission: false,
        }
    }

    #[test]
    fn end_seq_counts_payload_and_ctl_flags() {
        assert_eq!(seg(b"hello", TcpFlags::PSH_ACK).end_seq(), 105);
        assert_eq!(seg(b"", TcpFlags::SYN).end_seq(), 101);
        assert_eq!(seg(b"", TcpFlags::FIN_ACK).end_seq(), 101);
        assert_eq!(seg(b"", TcpFlags::ACK).end_seq(), 100);
    }

    #[test]
    fn end_seq_wraps() {
        let mut s = seg(b"abc", TcpFlags::PSH_ACK);
        s.seq = u32::MAX - 1;
        assert_eq!(s.end_seq(), 1);
    }

    #[test]
    fn wire_len_estimates() {
        assert_eq!(
            Frame::Segment(seg(b"hello", TcpFlags::PSH_ACK)).wire_len(),
            59
        );
        assert_eq!(
            Frame::Arp {
                op: ArpOp::Request,
                sender: Ipv4Addr::new(10, 0, 0, 1),
                target: Ipv4Addr::new(10, 0, 0, 2),
            }
            .wire_len(),
            42
        );
    }
}
