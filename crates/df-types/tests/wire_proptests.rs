//! Property tests for the DFW1 wire format (`df_types::wire`).
//!
//! Three families:
//!
//! 1. **Round-trip**: any batch of arbitrary spans — every optional field,
//!    tag, status, protocol, and flow-metrics shape — survives
//!    encode → decode byte-for-byte equal.
//! 2. **Robustness**: the decoder never panics. Arbitrary garbage,
//!    truncations of valid frames, and single-byte corruptions must all
//!    come back as `Ok` or a structured [`WireDecodeError`] — no panics,
//!    no unbounded allocation.
//! 3. **Versioning**: any frame with a version byte other than
//!    [`wire::WIRE_VERSION`] is rejected with `BadVersion`, regardless of
//!    what follows.
//!
//! The vendored proptest shim has no combinators, so spans are drawn by a
//! hand-rolled generator over the shim's deterministic [`TestRng`]; each
//! property takes a seed and a count and builds its own corpus.

use df_types::ids::*;
use df_types::metrics::FlowMetrics;
use df_types::span::{CapturePoint, SpanKind, TapSide};
use df_types::tags::{ResourceTags, TagSet};
use df_types::wire::{self, WireDecodeError};
use df_types::{DurationNs, FiveTuple, L7Protocol, Span, SpanId, SpanStatus, TimeNs};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn opt<T>(rng: &mut TestRng, f: impl FnOnce(&mut TestRng) -> T) -> Option<T> {
    if rng.next_u64() & 1 == 0 {
        None
    } else {
        Some(f(rng))
    }
}

/// A short printable string, including empty and non-ASCII-identifier
/// characters (spaces, punctuation, multi-byte UTF-8).
fn arb_string(rng: &mut TestRng) -> String {
    const ALPHABET: &[&str] = &[
        "a",
        "z",
        "0",
        "9",
        "-",
        "_",
        "/",
        " ",
        "?",
        "é",
        "字",
        "✓",
        "\u{1F600}",
    ];
    let len = (rng.next_u64() % 9) as usize;
    (0..len)
        .map(|_| ALPHABET[(rng.next_u64() % ALPHABET.len() as u64) as usize])
        .collect()
}

fn arb_five_tuple(rng: &mut TestRng) -> FiveTuple {
    let src = Ipv4Addr::from((rng.next_u64() as u32).to_be_bytes());
    let dst = Ipv4Addr::from((rng.next_u64() as u32).to_be_bytes());
    let (sp, dp) = (rng.next_u64() as u16, rng.next_u64() as u16);
    if rng.next_u64() & 1 == 0 {
        FiveTuple::tcp(src, sp, dst, dp)
    } else {
        FiveTuple::udp(src, sp, dst, dp)
    }
}

fn arb_l7(rng: &mut TestRng) -> L7Protocol {
    match rng.next_u64() % 12 {
        0 => L7Protocol::Http1,
        1 => L7Protocol::Http2,
        2 => L7Protocol::Dns,
        3 => L7Protocol::Redis,
        4 => L7Protocol::Mysql,
        5 => L7Protocol::Kafka,
        6 => L7Protocol::Mqtt,
        7 => L7Protocol::Dubbo,
        8 => L7Protocol::Amqp,
        9 => L7Protocol::Tls,
        10 => L7Protocol::Custom(rng.next_u64() as u8),
        _ => L7Protocol::Unknown,
    }
}

fn arb_resource_tags(rng: &mut TestRng) -> ResourceTags {
    ResourceTags {
        vpc_id: opt(rng, |r| r.next_u64() as u32),
        ip: opt(rng, |r| r.next_u64() as u32),
        region_id: opt(rng, |r| r.next_u64() as u32),
        az_id: opt(rng, |r| r.next_u64() as u32),
        subnet_id: opt(rng, |r| r.next_u64() as u32),
        host_id: opt(rng, |r| r.next_u64() as u32),
        cluster_id: opt(rng, |r| r.next_u64() as u32),
        k8s_node_id: opt(rng, |r| r.next_u64() as u32),
        namespace_id: opt(rng, |r| r.next_u64() as u32),
        workload_id: opt(rng, |r| r.next_u64() as u32),
        service_id: opt(rng, |r| r.next_u64() as u32),
        pod_id: opt(rng, |r| r.next_u64() as u32),
    }
}

fn arb_flow_metrics(rng: &mut TestRng) -> FlowMetrics {
    FlowMetrics {
        packets_tx: rng.next_u64(),
        packets_rx: rng.next_u64(),
        bytes_tx: rng.next_u64(),
        bytes_rx: rng.next_u64(),
        retransmissions: rng.next_u64(),
        resets: rng.next_u64(),
        zero_windows: rng.next_u64(),
        syn_retries: rng.next_u64(),
        rtt: DurationNs(rng.next_u64()),
        srt: DurationNs(rng.next_u64()),
        established: rng.next_u64() & 1 == 1,
    }
}

const TAP_SIDES: [TapSide; 11] = [
    TapSide::ClientApp,
    TapSide::ClientProcess,
    TapSide::ClientPodNic,
    TapSide::ClientNodeNic,
    TapSide::ClientHypervisor,
    TapSide::Gateway,
    TapSide::ServerHypervisor,
    TapSide::ServerNodeNic,
    TapSide::ServerPodNic,
    TapSide::ServerProcess,
    TapSide::ServerApp,
];

fn arb_span(rng: &mut TestRng) -> Span {
    let n_custom = (rng.next_u64() % 4) as usize;
    let custom = (0..n_custom)
        .map(|_| (arb_string(rng), arb_string(rng)))
        .collect();
    Span {
        span_id: SpanId(rng.next_u64()),
        kind: match rng.next_u64() % 3 {
            0 => SpanKind::Sys,
            1 => SpanKind::Net,
            _ => SpanKind::App,
        },
        capture: CapturePoint {
            node: NodeId(rng.next_u64() as u32),
            tap_side: TAP_SIDES[(rng.next_u64() % 11) as usize],
            interface: opt(rng, arb_string),
        },
        agent: AgentId(rng.next_u64() as u32),
        flow_id: FlowId(rng.next_u64()),
        five_tuple: arb_five_tuple(rng),
        l7_protocol: arb_l7(rng),
        endpoint: arb_string(rng),
        // Full-range times, including resp_time < req_time (ResponseOnly
        // fragments paired with an expired request) — the delta is
        // zigzag-encoded on the wire.
        req_time: TimeNs(rng.next_u64()),
        resp_time: TimeNs(rng.next_u64()),
        status: match rng.next_u64() % 5 {
            0 => SpanStatus::Ok,
            1 => SpanStatus::ClientError,
            2 => SpanStatus::ServerError,
            3 => SpanStatus::Incomplete,
            _ => SpanStatus::ResponseOnly,
        },
        status_code: opt(rng, |r| r.next_u64() as u16),
        req_bytes: rng.next_u64(),
        resp_bytes: rng.next_u64(),
        pid: opt(rng, |r| Pid(r.next_u64() as u32)),
        tid: opt(rng, |r| Tid(r.next_u64() as u32)),
        process_name: opt(rng, arb_string),
        systrace_id_req: opt(rng, |r| SysTraceId(r.next_u64())),
        systrace_id_resp: opt(rng, |r| SysTraceId(r.next_u64())),
        pseudo_thread_id: opt(rng, |r| PseudoThreadId(r.next_u64())),
        x_request_id_req: opt(rng, |r| XRequestId(r.next_u128())),
        x_request_id_resp: opt(rng, |r| XRequestId(r.next_u128())),
        tcp_seq_req: opt(rng, |r| r.next_u64() as u32),
        tcp_seq_resp: opt(rng, |r| r.next_u64() as u32),
        otel_trace_id: opt(rng, |r| OtelTraceId(r.next_u128())),
        otel_span_id: opt(rng, |r| OtelSpanId(r.next_u64())),
        otel_parent_span_id: opt(rng, |r| OtelSpanId(r.next_u64())),
        tags: TagSet {
            resource: arb_resource_tags(rng),
            custom,
        },
        flow_metrics: opt(rng, arb_flow_metrics),
    }
}

fn arb_batch(seed: u64, max: u64) -> Vec<Span> {
    let mut rng = TestRng::for_case("wire-span-gen", seed);
    let n = rng.next_u64() % (max + 1);
    (0..n).map(|_| arb_span(&mut rng)).collect()
}

proptest! {
    /// Encode → decode is the identity on arbitrary batches, including
    /// the empty one and spans where `resp_time < req_time`.
    #[test]
    fn round_trip_arbitrary_batches(seed in any::<u64>()) {
        let spans = arb_batch(seed, 20);
        let bytes = wire::encode_batch(&spans);
        let decoded = wire::decode_batch(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &spans);
        // The streaming parse agrees with the one-shot helper, and the
        // header peek agrees with the count.
        let batch = wire::WireBatch::parse(&bytes).expect("parse");
        prop_assert_eq!(batch.span_count() as usize, spans.len());
        prop_assert_eq!(batch.decode_all().expect("decode_all"), spans);
        prop_assert_eq!(wire::peek_span_count(&bytes).expect("peek") as usize, spans.len());
    }

    /// Arbitrary bytes never panic the decoder: every outcome is `Ok`
    /// (vanishingly unlikely) or a structured error.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = wire::decode_batch(&bytes);
        let _ = wire::peek_span_count(&bytes);
    }

    /// Garbage *behind a valid prefix* never panics either: the frame
    /// header is well-formed, everything after it is attacker-controlled.
    #[test]
    fn garbage_after_valid_prefix_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut framed = Vec::with_capacity(bytes.len() + wire::WIRE_PREFIX_LEN);
        framed.extend_from_slice(wire::WIRE_MAGIC);
        framed.push(wire::WIRE_VERSION);
        framed.extend_from_slice(&bytes);
        let _ = wire::decode_batch(&framed);
        let _ = wire::peek_span_count(&framed);
    }

    /// Every truncation of a valid frame fails cleanly (a strict prefix
    /// can never be a complete frame, so `Ok` is impossible too).
    #[test]
    fn truncations_fail_cleanly(seed in any::<u64>(), cut_seed in any::<u64>()) {
        let mut spans = arb_batch(seed, 5);
        if spans.is_empty() {
            spans.push(arb_span(&mut TestRng::for_case("wire-span-gen", seed ^ 2)));
        }
        let bytes = wire::encode_batch(&spans);
        let cut = (cut_seed % bytes.len() as u64) as usize; // strict prefix
        prop_assert!(wire::decode_batch(&bytes[..cut]).is_err());
    }

    /// Single-byte corruption anywhere in a valid frame never panics;
    /// it either still decodes (the flip hit a value byte) or errors.
    #[test]
    fn bit_flips_never_panic(seed in any::<u64>(), pos_seed in any::<u64>(), bit in 0u8..8) {
        let spans = arb_batch(seed, 5);
        let mut bytes = wire::encode_batch(&spans);
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        let _ = wire::decode_batch(&bytes);
        let _ = wire::peek_span_count(&bytes);
    }

    /// A frame stamped with any version but ours is rejected up front
    /// with `BadVersion` — future encodings can change everything behind
    /// the version byte.
    #[test]
    fn foreign_versions_rejected(seed in any::<u64>(), version in any::<u8>()) {
        if version == wire::WIRE_VERSION {
            return Ok(());
        }
        let mut bytes = wire::encode_batch(&arb_batch(seed, 4));
        bytes[4] = version;
        prop_assert_eq!(
            wire::decode_batch(&bytes).unwrap_err(),
            WireDecodeError::BadVersion { found: version }
        );
        prop_assert_eq!(
            wire::peek_span_count(&bytes).unwrap_err(),
            WireDecodeError::BadVersion { found: version }
        );
    }
}
