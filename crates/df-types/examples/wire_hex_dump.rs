//! Print the worked DFW1 example used by `docs/WIRE_FORMAT.md`: a real
//! two-span batch, hex-dumped with 16 bytes per line. Regenerate the
//! doc's hex block with:
//!
//! ```text
//! cargo run -p df-types --example wire_hex_dump
//! ```

use df_types::span::{Span, TapSide};
use df_types::wire;

fn main() {
    let mut a = Span::synthetic(TapSide::ClientProcess, 1_000, 5_000);
    a.endpoint = "GET /api/v1/products".into();
    let b = Span::synthetic(TapSide::ServerProcess, 2_000, 4_000);

    let bytes = wire::encode_batch(&[a, b]);
    println!("{} bytes", bytes.len());
    for (i, chunk) in bytes.chunks(16).enumerate() {
        let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        let ascii: String = chunk
            .iter()
            .map(|&b| {
                if (0x20..0x7f).contains(&b) {
                    b as char
                } else {
                    '.'
                }
            })
            .collect();
        println!("{:04x}  {:<47}  |{}|", i * 16, hex.join(" "), ascii);
    }
}
