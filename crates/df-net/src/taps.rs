//! Capture taps — the cBPF / AF_PACKET analogue (paper §3.2.1,
//! "instrumentation extensions": "DeepFlow integrates network data from the
//! classic Berkeley Packet Filter (cBPF) and AF_PACKET to derive NIC-side
//! information").
//!
//! A tap sits on one topology element and records every frame the fabric
//! pushes through it (optionally filtered). Each tap belongs to a node —
//! that node's agent drains it and builds net spans.

use df_types::packet::{CapturedFrame, Frame};
use df_types::{NodeId, TimeNs, TransportProtocol};
use std::collections::HashMap;

use crate::topology::ElementId;

/// Where the tap sits, semantically (the agent maps this + flow orientation
/// to a `TapSide`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapKind {
    /// Pod veth.
    PodVeth,
    /// Node NIC.
    NodeNic,
    /// Physical NIC / hypervisor uplink.
    PhysNic,
    /// ToR mirror port.
    TorMirror,
    /// Gateway interface.
    Gateway,
}

/// A cBPF-style capture filter. Empty filter captures everything.
#[derive(Debug, Clone, Default)]
pub struct TapFilter {
    /// Restrict to a transport protocol.
    pub protocol: Option<TransportProtocol>,
    /// Restrict to segments touching this port (src or dst).
    pub port: Option<u16>,
    /// Capture ARP frames too (on by default — the §4.1.2 case needs them).
    pub drop_arp: bool,
    /// Payload snap length (0 = headers only).
    pub snap_len: usize,
}

impl TapFilter {
    /// Capture-everything filter with a generous snap length.
    pub fn all() -> Self {
        TapFilter {
            protocol: None,
            port: None,
            drop_arp: false,
            snap_len: 256,
        }
    }

    /// Whether a frame passes the filter.
    pub fn matches(&self, frame: &Frame) -> bool {
        match frame {
            Frame::Arp { .. } => !self.drop_arp,
            Frame::Segment(seg) => {
                if let Some(p) = self.protocol {
                    if seg.five_tuple.protocol != p {
                        return false;
                    }
                }
                if let Some(port) = self.port {
                    if seg.five_tuple.src_port != port && seg.five_tuple.dst_port != port {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Apply the snap length to a frame (truncating segment payloads).
    pub fn snap(&self, frame: &Frame) -> Frame {
        match frame {
            Frame::Segment(seg) if seg.payload.len() > self.snap_len => {
                let mut s = seg.clone();
                s.payload = s.payload.slice(..self.snap_len);
                Frame::Segment(s)
            }
            other => other.clone(),
        }
    }
}

#[derive(Debug)]
struct Tap {
    node: NodeId,
    kind: TapKind,
    filter: TapFilter,
    captured: Vec<CapturedFrame>,
    observed: u64,
    matched: u64,
}

/// Registry of taps, keyed by topology element.
#[derive(Debug, Default)]
pub struct TapRegistry {
    taps: HashMap<ElementId, Tap>,
}

impl TapRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        TapRegistry::default()
    }

    /// Install (or replace) a tap on an element, owned by `node`'s agent.
    pub fn install(&mut self, element: ElementId, node: NodeId, kind: TapKind, filter: TapFilter) {
        self.taps.insert(
            element,
            Tap {
                node,
                kind,
                filter,
                captured: Vec::new(),
                observed: 0,
                matched: 0,
            },
        );
    }

    /// Remove a tap.
    pub fn remove(&mut self, element: &ElementId) -> bool {
        self.taps.remove(element).is_some()
    }

    /// Whether an element is tapped.
    pub fn is_tapped(&self, element: &ElementId) -> bool {
        self.taps.contains_key(element)
    }

    /// Offer a frame traversing `element` at `ts` on `interface`.
    pub fn observe(&mut self, element: &ElementId, interface: &str, frame: &Frame, ts: TimeNs) {
        if let Some(tap) = self.taps.get_mut(element) {
            tap.observed += 1;
            if tap.filter.matches(frame) {
                tap.matched += 1;
                tap.captured.push(CapturedFrame {
                    ts,
                    interface: interface.to_string(),
                    frame: tap.filter.snap(frame),
                });
            }
        }
    }

    /// Drain all captures destined for `node`'s agent, tagged with the tap
    /// kind they came from. Frames come out time-sorted.
    pub fn drain_for_node(&mut self, node: NodeId) -> Vec<(TapKind, CapturedFrame)> {
        let mut out = Vec::new();
        for tap in self.taps.values_mut() {
            if tap.node == node {
                out.extend(tap.captured.drain(..).map(|c| (tap.kind, c)));
            }
        }
        out.sort_by_key(|(_, c)| c.ts);
        out
    }

    /// Capture statistics for an element: `(observed, matched)`.
    pub fn stats(&self, element: &ElementId) -> Option<(u64, u64)> {
        self.taps.get(element).map(|t| (t.observed, t.matched))
    }

    /// Total frames currently buffered across all taps.
    pub fn buffered(&self) -> usize {
        self.taps.values().map(|t| t.captured.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use df_types::net::{FiveTuple, TcpFlags};
    use df_types::packet::{ArpOp, Segment};
    use std::net::Ipv4Addr;

    fn seg_frame(port: u16, payload: &'static [u8]) -> Frame {
        Frame::Segment(Segment {
            five_tuple: FiveTuple::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                40000,
                Ipv4Addr::new(10, 0, 0, 2),
                port,
            ),
            seq: 1,
            ack: 0,
            flags: TcpFlags::PSH_ACK,
            window: 65535,
            payload: Bytes::from_static(payload),
            is_retransmission: false,
        })
    }

    fn arp_frame() -> Frame {
        Frame::Arp {
            op: ArpOp::Request,
            sender: Ipv4Addr::new(10, 0, 0, 1),
            target: Ipv4Addr::new(10, 0, 0, 2),
        }
    }

    #[test]
    fn tap_records_matching_frames_for_its_node() {
        let mut reg = TapRegistry::new();
        let el = ElementId::NodeNic(NodeId(1));
        reg.install(el.clone(), NodeId(1), TapKind::NodeNic, TapFilter::all());
        reg.observe(&el, "eth0", &seg_frame(80, b"hello"), TimeNs(5));
        reg.observe(&el, "eth0", &arp_frame(), TimeNs(6));
        // untapped element: ignored
        reg.observe(
            &ElementId::NodeNic(NodeId(9)),
            "eth0",
            &seg_frame(80, b"x"),
            TimeNs(7),
        );
        let got = reg.drain_for_node(NodeId(1));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].1.ts, TimeNs(5));
        assert!(matches!(got[1].1.frame, Frame::Arp { .. }));
        // drained
        assert!(reg.drain_for_node(NodeId(1)).is_empty());
        assert_eq!(reg.stats(&el), Some((2, 2)));
    }

    #[test]
    fn port_filter_excludes_other_flows() {
        let mut reg = TapRegistry::new();
        let el = ElementId::Tor("rack-1".into());
        let filter = TapFilter {
            port: Some(80),
            ..TapFilter::all()
        };
        reg.install(el.clone(), NodeId(2), TapKind::TorMirror, filter);
        reg.observe(&el, "tor", &seg_frame(80, b"in"), TimeNs(1));
        reg.observe(&el, "tor", &seg_frame(443, b"out"), TimeNs(2));
        let got = reg.drain_for_node(NodeId(2));
        assert_eq!(got.len(), 1);
        assert_eq!(reg.stats(&el), Some((2, 1)));
    }

    #[test]
    fn snap_len_truncates_payload() {
        let mut reg = TapRegistry::new();
        let el = ElementId::PodVeth(Ipv4Addr::new(10, 0, 0, 1));
        let filter = TapFilter {
            snap_len: 4,
            ..TapFilter::all()
        };
        reg.install(el.clone(), NodeId(1), TapKind::PodVeth, filter);
        reg.observe(&el, "veth", &seg_frame(80, b"abcdefgh"), TimeNs(1));
        let got = reg.drain_for_node(NodeId(1));
        match &got[0].1.frame {
            Frame::Segment(s) => assert_eq!(&s.payload[..], b"abcd"),
            _ => panic!("expected segment"),
        }
    }

    #[test]
    fn drop_arp_filter() {
        let mut reg = TapRegistry::new();
        let el = ElementId::PhysNic(NodeId(3));
        let filter = TapFilter {
            drop_arp: true,
            ..TapFilter::all()
        };
        reg.install(el.clone(), NodeId(3), TapKind::PhysNic, filter);
        reg.observe(&el, "phys0", &arp_frame(), TimeNs(1));
        assert!(reg.drain_for_node(NodeId(3)).is_empty());
    }

    #[test]
    fn drain_is_time_sorted_across_taps() {
        let mut reg = TapRegistry::new();
        let e1 = ElementId::NodeNic(NodeId(1));
        let e2 = ElementId::PhysNic(NodeId(1));
        reg.install(e1.clone(), NodeId(1), TapKind::NodeNic, TapFilter::all());
        reg.install(e2.clone(), NodeId(1), TapKind::PhysNic, TapFilter::all());
        reg.observe(&e2, "phys0", &seg_frame(80, b"b"), TimeNs(20));
        reg.observe(&e1, "eth0", &seg_frame(80, b"a"), TimeNs(10));
        let got = reg.drain_for_node(NodeId(1));
        assert_eq!(got[0].1.ts, TimeNs(10));
        assert_eq!(got[1].1.ts, TimeNs(20));
    }
}
