//! # df-net — the virtual datacenter network
//!
//! DeepFlow's pitch is *network-side coverage*: 47.3% of the performance
//! anomalies its customers hit live in the network infrastructure
//! (paper Fig. 2), and application-level tracers are blind there. This crate
//! is the substitution for that infrastructure (DESIGN.md §1): a virtual
//! L2–L4 datacenter through which the simulated kernels' segments travel,
//! with
//!
//! * a **topology** ([`topology`]) of pods (veth), nodes (NICs), hypervisors
//!   / physical NICs, top-of-rack switches and gateways — every element a
//!   potential capture point, reproducing Appendix A's end-host→gateway
//!   path;
//! * **capture taps** ([`taps`]) — the cBPF / AF_PACKET analogue: any hop
//!   can record [`CapturedFrame`]s for an agent to turn into net spans;
//! * **L4 gateways** ([`gateway`]) that DNAT a VIP to backends while
//!   *preserving TCP sequence numbers* — the invariant DeepFlow exploits to
//!   trace across them (Appendix A, Fig. 18);
//! * **fault injection** ([`faults`]) covering the paper's anomaly taxonomy
//!   (Fig. 2): latency, loss (→ observable retransmissions), ARP storms
//!   from a faulty physical NIC (§4.1.2), resets, and receiver backlog;
//! * the **fabric** ([`fabric`]) tying it together: a synchronous
//!   `transmit(segment, now) → deliveries` function that walks the route,
//!   applies faults, resolves ARP, runs gateway NAT, feeds every tap, and
//!   returns time-stamped deliveries for the caller's event loop.
//!
//! [`CapturedFrame`]: df_types::CapturedFrame

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod faults;
pub mod gateway;
pub mod taps;
pub mod topology;

pub use fabric::{Delivery, Fabric, FabricConfig};
pub use faults::{AnomalySource, Fault, FaultTable};
pub use gateway::L4Gateway;
pub use taps::{TapFilter, TapKind, TapRegistry};
pub use topology::{ElementId, Hop, HopKind, Topology};
