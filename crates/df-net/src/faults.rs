//! Fault injection over the anomaly taxonomy of paper Figure 2.
//!
//! Each infrastructure element may carry one [`Fault`]. The fabric consults
//! the table at every hop; faults manifest as the *observable symptoms* the
//! paper's case studies describe — extra latency, dropped segments (hence
//! retransmissions at taps), ARP storms from a flaky physical NIC (§4.1.2),
//! injected resets, or black-holing.

use df_types::DurationNs;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::topology::ElementId;

/// Where an anomaly originates — the taxonomy of Fig. 2(a)/(b). Used by the
/// fault-injection campaign that regenerates the survey's shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnomalySource {
    /// The application itself (32.7% in Fig. 2(a)).
    Application,
    /// Virtual network — vSwitch/veth/overlay (30.8% of all: the largest
    /// network slice, Fig. 2(b)).
    VirtualNetwork,
    /// Physical network — NICs, cables, switches.
    PhysicalNetwork,
    /// Network middleware — message queues, brokers.
    NetworkMiddleware,
    /// Cluster services — DNS, gateways.
    ClusterService,
    /// Node configuration — firewall rules, sysctls.
    NodeConfig,
    /// Computing infrastructure — containers, runtimes (12.7%).
    Compute,
    /// External traffic surges (7.3%).
    ExternalTraffic,
}

impl AnomalySource {
    /// The survey shares from Fig. 2 (summing to 1.0): network subclasses
    /// together are 47.3%.
    pub fn survey_share(self) -> f64 {
        match self {
            AnomalySource::Application => 0.327,
            AnomalySource::VirtualNetwork => 0.308,
            AnomalySource::PhysicalNetwork => 0.055,
            AnomalySource::NetworkMiddleware => 0.045,
            AnomalySource::ClusterService => 0.035,
            AnomalySource::NodeConfig => 0.030,
            AnomalySource::Compute => 0.127,
            AnomalySource::ExternalTraffic => 0.073,
        }
    }

    /// Whether the source counts toward the paper's 47.3% "network
    /// infrastructure" bucket.
    pub fn is_network(self) -> bool {
        matches!(
            self,
            AnomalySource::VirtualNetwork
                | AnomalySource::PhysicalNetwork
                | AnomalySource::NetworkMiddleware
                | AnomalySource::ClusterService
                | AnomalySource::NodeConfig
        )
    }

    /// All sources.
    pub const ALL: [AnomalySource; 8] = [
        AnomalySource::Application,
        AnomalySource::VirtualNetwork,
        AnomalySource::PhysicalNetwork,
        AnomalySource::NetworkMiddleware,
        AnomalySource::ClusterService,
        AnomalySource::NodeConfig,
        AnomalySource::Compute,
        AnomalySource::ExternalTraffic,
    ];
}

/// A fault attached to a topology element.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Add fixed latency to every frame through the element.
    ExtraLatency(DurationNs),
    /// Drop each data segment with probability `p` (triggering sender
    /// retransmission after the fabric's RTO).
    Loss {
        /// Drop probability in [0, 1].
        p: f64,
    },
    /// The §4.1.2 pathology: every ARP resolution through this element emits
    /// `extra_requests` redundant ARP requests and delays resolution.
    ArpStorm {
        /// Redundant requests per resolution.
        extra_requests: u32,
        /// Added resolution delay.
        resolution_delay: DurationNs,
    },
    /// Inject a TCP RST instead of forwarding, with probability `p`.
    ResetInjection {
        /// Injection probability in [0, 1].
        p: f64,
    },
    /// Drop everything (dead element / firewall misconfiguration).
    BlackHole,
    /// Network partition: the element black-holes every frame between its
    /// own side of the fabric and the listed peer addresses, in **both**
    /// directions (a frame whose source *or* destination IP is in `peers`
    /// dies at this element). Installing the fault on a node's NIC with the
    /// far side's addresses cuts that node off from the set — the classic
    /// split-brain shape the cluster's degraded-assembly tests exercise.
    /// Partition drops are counted separately from plain drops
    /// ([`FabricStats::partitioned`](crate::fabric::FabricStats)).
    Partition {
        /// Addresses on the far side of the cut.
        peers: Vec<Ipv4Addr>,
    },
}

impl Fault {
    /// Whether this fault severs the given (src, dst) pair at the element
    /// carrying it (partition semantics: bidirectional).
    pub fn partitions(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        match self {
            Fault::Partition { peers } => peers.contains(&src) || peers.contains(&dst),
            _ => false,
        }
    }
}

/// Fault assignments per element.
#[derive(Debug, Default)]
pub struct FaultTable {
    faults: HashMap<ElementId, Fault>,
}

impl FaultTable {
    /// Empty table.
    pub fn new() -> Self {
        FaultTable::default()
    }

    /// Install a fault (replacing any existing one on the element).
    pub fn inject(&mut self, element: ElementId, fault: Fault) {
        self.faults.insert(element, fault);
    }

    /// Clear the fault on an element.
    pub fn clear(&mut self, element: &ElementId) -> bool {
        self.faults.remove(element).is_some()
    }

    /// Clear everything.
    pub fn clear_all(&mut self) {
        self.faults.clear();
    }

    /// Fault on an element, if any.
    pub fn get(&self, element: &ElementId) -> Option<&Fault> {
        self.faults.get(element)
    }

    /// Number of active faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether no faults are active.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::NodeId;

    #[test]
    fn survey_shares_sum_to_one() {
        let total: f64 = AnomalySource::ALL.iter().map(|s| s.survey_share()).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn network_bucket_matches_papers_47_3_percent() {
        let net: f64 = AnomalySource::ALL
            .iter()
            .filter(|s| s.is_network())
            .map(|s| s.survey_share())
            .sum();
        assert!((net - 0.473).abs() < 1e-9, "network share is {net}");
    }

    #[test]
    fn fault_table_crud() {
        let mut t = FaultTable::new();
        assert!(t.is_empty());
        let el = ElementId::PhysNic(NodeId(1));
        t.inject(el.clone(), Fault::Loss { p: 0.1 });
        assert_eq!(t.len(), 1);
        assert!(matches!(t.get(&el), Some(Fault::Loss { .. })));
        // replacement
        t.inject(
            el.clone(),
            Fault::ArpStorm {
                extra_requests: 3,
                resolution_delay: DurationNs::from_millis(10),
            },
        );
        assert!(matches!(t.get(&el), Some(Fault::ArpStorm { .. })));
        assert!(t.clear(&el));
        assert!(!t.clear(&el));
        assert!(t.is_empty());
    }
}
