//! L4 gateways (server load balancers).
//!
//! Paper Appendix A: "since the majority of the L4 gateways do not modify
//! the TCP sequence, we can utilize it to trace the requests that traverse
//! the gateway". The gateway here DNATs a VIP to a backend (and SNATs the
//! reply), *never touching sequence numbers* — so the same `tcp_seq` is
//! observable on the client-side leg and the backend-side leg, and
//! DeepFlow's inter-component association stitches across it.

use df_types::net::FiveTuple;
use df_types::packet::Segment;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A virtual-IP L4 load balancer with per-connection affinity (conntrack).
#[derive(Debug)]
pub struct L4Gateway {
    /// Gateway name (element id / tap label).
    pub name: String,
    /// The virtual IP clients connect to.
    pub vip: Ipv4Addr,
    /// The VIP port (0 = any port).
    pub port: u16,
    /// Backend real-server IPs.
    pub backends: Vec<Ipv4Addr>,
    /// Established connection → chosen backend.
    conntrack: HashMap<FiveTuple, Ipv4Addr>,
    rr_next: usize,
}

/// The result of passing a segment through the gateway.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayAction {
    /// Not for this gateway; forward untouched.
    Pass,
    /// Rewritten (DNAT or reverse SNAT); forward the new segment.
    Rewritten(Segment),
    /// VIP hit but no backends — drop (connection will time out / RST).
    NoBackend,
}

impl L4Gateway {
    /// Create a gateway.
    pub fn new(name: &str, vip: Ipv4Addr, port: u16, backends: Vec<Ipv4Addr>) -> Self {
        L4Gateway {
            name: name.to_string(),
            vip,
            port,
            backends,
            conntrack: HashMap::new(),
            rr_next: 0,
        }
    }

    fn port_matches(&self, port: u16) -> bool {
        self.port == 0 || self.port == port
    }

    /// Process one segment. Sequence numbers and payload are never modified —
    /// only the address fields (the Appendix A invariant).
    pub fn process(&mut self, seg: &Segment) -> GatewayAction {
        // Forward direction: client → VIP.
        if seg.five_tuple.dst_ip == self.vip && self.port_matches(seg.five_tuple.dst_port) {
            let key = seg.five_tuple;
            let backend = match self.conntrack.get(&key) {
                Some(b) => *b,
                None => {
                    if self.backends.is_empty() {
                        return GatewayAction::NoBackend;
                    }
                    let b = self.backends[self.rr_next % self.backends.len()];
                    self.rr_next += 1;
                    self.conntrack.insert(key, b);
                    b
                }
            };
            let mut out = seg.clone();
            out.five_tuple.dst_ip = backend;
            return GatewayAction::Rewritten(out);
        }
        // Reverse direction: backend → client; restore the VIP as source so
        // the client recognises the flow.
        if self.port_matches(seg.five_tuple.src_port)
            && self.backends.contains(&seg.five_tuple.src_ip)
        {
            // Find the conntrack entry whose reply this is.
            let reply_of = FiveTuple {
                src_ip: seg.five_tuple.dst_ip,
                src_port: seg.five_tuple.dst_port,
                dst_ip: self.vip,
                dst_port: seg.five_tuple.src_port,
                protocol: seg.five_tuple.protocol,
            };
            if let Some(backend) = self.conntrack.get(&reply_of) {
                if *backend == seg.five_tuple.src_ip {
                    let mut out = seg.clone();
                    out.five_tuple.src_ip = self.vip;
                    return GatewayAction::Rewritten(out);
                }
            }
        }
        GatewayAction::Pass
    }

    /// Active conntrack entries.
    pub fn conntrack_len(&self) -> usize {
        self.conntrack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use df_types::net::TcpFlags;

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const VIP: Ipv4Addr = Ipv4Addr::new(10, 9, 9, 9);
    const B1: Ipv4Addr = Ipv4Addr::new(10, 2, 0, 1);
    const B2: Ipv4Addr = Ipv4Addr::new(10, 2, 0, 2);

    fn seg(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16, seq: u32) -> Segment {
        Segment {
            five_tuple: FiveTuple::tcp(src, sport, dst, dport),
            seq,
            ack: 0,
            flags: TcpFlags::PSH_ACK,
            window: 65535,
            payload: Bytes::from_static(b"req"),
            is_retransmission: false,
        }
    }

    #[test]
    fn dnat_preserves_tcp_seq_and_sticks_to_backend() {
        let mut gw = L4Gateway::new("slb", VIP, 80, vec![B1, B2]);
        let s = seg(CLIENT, 40000, VIP, 80, 777);
        let GatewayAction::Rewritten(fwd) = gw.process(&s) else {
            panic!("expected DNAT");
        };
        assert_eq!(fwd.five_tuple.dst_ip, B1);
        assert_eq!(fwd.seq, 777, "seq preserved through L4 gateway");
        // Same connection keeps its backend.
        let s2 = seg(CLIENT, 40000, VIP, 80, 900);
        let GatewayAction::Rewritten(fwd2) = gw.process(&s2) else {
            panic!()
        };
        assert_eq!(fwd2.five_tuple.dst_ip, B1);
        assert_eq!(gw.conntrack_len(), 1);
    }

    #[test]
    fn round_robin_across_connections() {
        let mut gw = L4Gateway::new("slb", VIP, 80, vec![B1, B2]);
        let GatewayAction::Rewritten(f1) = gw.process(&seg(CLIENT, 40000, VIP, 80, 1)) else {
            panic!()
        };
        let GatewayAction::Rewritten(f2) = gw.process(&seg(CLIENT, 40001, VIP, 80, 1)) else {
            panic!()
        };
        assert_ne!(f1.five_tuple.dst_ip, f2.five_tuple.dst_ip);
    }

    #[test]
    fn reply_is_snatted_back_to_vip() {
        let mut gw = L4Gateway::new("slb", VIP, 80, vec![B1]);
        gw.process(&seg(CLIENT, 40000, VIP, 80, 1));
        let reply = seg(B1, 80, CLIENT, 40000, 5000);
        let GatewayAction::Rewritten(r) = gw.process(&reply) else {
            panic!("expected SNAT")
        };
        assert_eq!(r.five_tuple.src_ip, VIP);
        assert_eq!(r.seq, 5000);
    }

    #[test]
    fn unrelated_traffic_passes() {
        let mut gw = L4Gateway::new("slb", VIP, 80, vec![B1]);
        let other = seg(CLIENT, 40000, Ipv4Addr::new(10, 5, 5, 5), 443, 1);
        assert_eq!(gw.process(&other), GatewayAction::Pass);
    }

    #[test]
    fn empty_backend_pool_drops() {
        let mut gw = L4Gateway::new("slb", VIP, 80, vec![]);
        assert_eq!(
            gw.process(&seg(CLIENT, 40000, VIP, 80, 1)),
            GatewayAction::NoBackend
        );
    }
}
