//! Datacenter topology: which elements a frame traverses between two IPs.
//!
//! The model mirrors the capture-point ladder of Appendix A (Fig. 17/18):
//!
//! ```text
//! client process ⇄ [sidecar] ⇄ pod veth ⇄ node NIC ⇄ physical NIC/hypervisor
//!    ⇄ ToR switch (mirrorable) ⇄ [L4 gateway] ⇄ ... ⇄ server process
//! ```
//!
//! [`Topology::route`] computes the ordered hop list for a (src, dst) pair;
//! the fabric walks it, applying per-element latency and faults and feeding
//! every tap along the way.

use df_types::tags::{NodeResource, PodResource, ResourceInventory};
use df_types::{DurationNs, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Identifies a fault-injectable / tappable infrastructure element.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementId {
    /// A pod's veth interface.
    PodVeth(Ipv4Addr),
    /// A node's primary NIC.
    NodeNic(NodeId),
    /// The physical NIC / hypervisor uplink of a node.
    PhysNic(NodeId),
    /// A top-of-rack switch, by rack name.
    Tor(String),
    /// An L4 gateway, by name.
    L4Gw(String),
}

/// What kind of hop a route step is (maps onto `TapSide` at the agent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HopKind {
    /// Source pod veth.
    SrcPodVeth,
    /// Source node NIC.
    SrcNodeNic,
    /// Source physical NIC / hypervisor.
    SrcPhysNic,
    /// A ToR switch.
    Tor,
    /// An L4 gateway.
    L4Gateway,
    /// Destination physical NIC / hypervisor.
    DstPhysNic,
    /// Destination node NIC.
    DstNodeNic,
    /// Destination pod veth.
    DstPodVeth,
}

/// One step of a route.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hop {
    /// The element traversed.
    pub element: ElementId,
    /// Step kind relative to this frame's direction.
    pub kind: HopKind,
    /// Node whose agent can tap this hop (ToR mirrors are assigned to a
    /// dedicated capture node, Fig. 18).
    pub node: Option<NodeId>,
    /// Interface label for captures.
    pub interface: String,
}

#[derive(Debug, Clone)]
struct Pod {
    name: String,
    node: NodeId,
    namespace: String,
    workload: String,
    service: String,
    labels: Vec<(String, String)>,
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    ip: Ipv4Addr,
    rack: String,
    region: String,
    az: String,
    vpc: String,
    subnet: String,
    cluster: String,
    /// Whether frames to/from this node traverse a modelled physical NIC /
    /// hypervisor hop (VMs on shared hosts do; bare-metal depends on config).
    has_phys_nic: bool,
}

#[derive(Debug, Clone)]
struct Rack {
    /// Node hosting the ToR mirror tap, if mirroring is enabled (Fig. 18).
    mirror_node: Option<NodeId>,
}

/// The datacenter topology.
#[derive(Debug, Default)]
pub struct Topology {
    nodes: HashMap<NodeId, Node>,
    pods: HashMap<Ipv4Addr, Pod>,
    node_by_ip: HashMap<Ipv4Addr, NodeId>,
    racks: HashMap<String, Rack>,
    next_node: u32,
}

impl Topology {
    /// Empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a node (VM / host). Returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn add_node(
        &mut self,
        name: &str,
        ip: Ipv4Addr,
        rack: &str,
        region: &str,
        az: &str,
        vpc: &str,
        subnet: &str,
        cluster: &str,
    ) -> NodeId {
        self.next_node += 1;
        let id = NodeId(self.next_node);
        self.nodes.insert(
            id,
            Node {
                name: name.to_string(),
                ip,
                rack: rack.to_string(),
                region: region.to_string(),
                az: az.to_string(),
                vpc: vpc.to_string(),
                subnet: subnet.to_string(),
                cluster: cluster.to_string(),
                has_phys_nic: true,
            },
        );
        self.node_by_ip.insert(ip, id);
        self.racks
            .entry(rack.to_string())
            .or_insert(Rack { mirror_node: None });
        id
    }

    /// Convenience: a node with default locality names.
    pub fn add_simple_node(&mut self, name: &str, ip: Ipv4Addr) -> NodeId {
        self.add_node(
            name,
            ip,
            "rack-1",
            "region-1",
            "az-1",
            "vpc-1",
            "subnet-1",
            "cluster-1",
        )
    }

    /// Add a pod on a node.
    pub fn add_pod(
        &mut self,
        node: NodeId,
        name: &str,
        ip: Ipv4Addr,
        namespace: &str,
        workload: &str,
        service: &str,
    ) {
        self.pods.insert(
            ip,
            Pod {
                name: name.to_string(),
                node,
                namespace: namespace.to_string(),
                workload: workload.to_string(),
                service: service.to_string(),
                labels: Vec::new(),
            },
        );
    }

    /// Attach a self-defined label to a pod (version, commit-id...).
    pub fn add_pod_label(&mut self, ip: Ipv4Addr, key: &str, value: &str) {
        if let Some(pod) = self.pods.get_mut(&ip) {
            pod.labels.push((key.to_string(), value.to_string()));
        }
    }

    /// Enable ToR traffic mirroring for a rack, delivering mirrored frames
    /// to `capture_node`'s agent (Fig. 18: "mirror the traffic on the
    /// top-of-rack switch to a physical machine dedicated to DeepFlow").
    pub fn set_tor_mirror(&mut self, rack: &str, capture_node: NodeId) {
        if let Some(r) = self.racks.get_mut(rack) {
            r.mirror_node = Some(capture_node);
        }
    }

    /// The node hosting an IP (pod IP or node IP).
    pub fn node_of_ip(&self, ip: Ipv4Addr) -> Option<NodeId> {
        self.pods
            .get(&ip)
            .map(|p| p.node)
            .or_else(|| self.node_by_ip.get(&ip).copied())
    }

    /// Whether this IP is a pod (vs a node/host address).
    pub fn is_pod_ip(&self, ip: Ipv4Addr) -> bool {
        self.pods.contains_key(&ip)
    }

    /// Pod name for an IP.
    pub fn pod_name(&self, ip: Ipv4Addr) -> Option<&str> {
        self.pods.get(&ip).map(|p| p.name.as_str())
    }

    /// Node name.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.nodes.get(&id).map(|n| n.name.as_str())
    }

    /// Rack of a node.
    pub fn rack_of(&self, id: NodeId) -> Option<&str> {
        self.nodes.get(&id).map(|n| n.rack.as_str())
    }

    /// All node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.nodes.keys().copied().collect();
        v.sort();
        v
    }

    /// Compute the hop list between two IPs. Both must be known.
    ///
    /// Same-node pod↔pod traffic stays on the node bridge (two veth hops);
    /// cross-node traffic climbs the full ladder. Gateways are inserted by
    /// the fabric (they are route *policies*, not topology edges).
    pub fn route(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Option<Vec<Hop>> {
        let src_node = self.node_of_ip(src)?;
        let dst_node = self.node_of_ip(dst)?;
        let mut hops = Vec::new();

        if self.is_pod_ip(src) {
            hops.push(Hop {
                element: ElementId::PodVeth(src),
                kind: HopKind::SrcPodVeth,
                node: Some(src_node),
                interface: format!("veth-{}", self.pods[&src].name),
            });
        }
        if src_node == dst_node {
            // Same node: bridge-local.
            if self.is_pod_ip(dst) {
                hops.push(Hop {
                    element: ElementId::PodVeth(dst),
                    kind: HopKind::DstPodVeth,
                    node: Some(dst_node),
                    interface: format!("veth-{}", self.pods[&dst].name),
                });
            }
            return Some(hops);
        }

        hops.push(Hop {
            element: ElementId::NodeNic(src_node),
            kind: HopKind::SrcNodeNic,
            node: Some(src_node),
            interface: "eth0".to_string(),
        });
        if self.nodes[&src_node].has_phys_nic {
            hops.push(Hop {
                element: ElementId::PhysNic(src_node),
                kind: HopKind::SrcPhysNic,
                node: Some(src_node),
                interface: "phys0".to_string(),
            });
        }
        // ToR hop(s): src rack, then dst rack if different.
        let src_rack = self.nodes[&src_node].rack.clone();
        let dst_rack = self.nodes[&dst_node].rack.clone();
        hops.push(self.tor_hop(&src_rack));
        if dst_rack != src_rack {
            hops.push(self.tor_hop(&dst_rack));
        }
        if self.nodes[&dst_node].has_phys_nic {
            hops.push(Hop {
                element: ElementId::PhysNic(dst_node),
                kind: HopKind::DstPhysNic,
                node: Some(dst_node),
                interface: "phys0".to_string(),
            });
        }
        hops.push(Hop {
            element: ElementId::NodeNic(dst_node),
            kind: HopKind::DstNodeNic,
            node: Some(dst_node),
            interface: "eth0".to_string(),
        });
        if self.is_pod_ip(dst) {
            hops.push(Hop {
                element: ElementId::PodVeth(dst),
                kind: HopKind::DstPodVeth,
                node: Some(dst_node),
                interface: format!("veth-{}", self.pods[&dst].name),
            });
        }
        Some(hops)
    }

    fn tor_hop(&self, rack: &str) -> Hop {
        Hop {
            element: ElementId::Tor(rack.to_string()),
            kind: HopKind::Tor,
            node: self.racks.get(rack).and_then(|r| r.mirror_node),
            interface: format!("tor-{rack}"),
        }
    }

    /// Export the resource inventory for the server's tag dictionary
    /// (paper Fig. 8 ①–③).
    pub fn resource_inventory(&self) -> ResourceInventory {
        let mut pods: Vec<PodResource> = self
            .pods
            .iter()
            .map(|(ip, p)| PodResource {
                name: p.name.clone(),
                ip: u32::from(*ip),
                node: self
                    .nodes
                    .get(&p.node)
                    .map(|n| n.name.clone())
                    .unwrap_or_default(),
                namespace: p.namespace.clone(),
                workload: p.workload.clone(),
                service: p.service.clone(),
                labels: p.labels.clone(),
            })
            .collect();
        pods.sort_by_key(|a| a.ip);
        let mut nodes: Vec<NodeResource> = self
            .nodes
            .values()
            .map(|n| NodeResource {
                name: n.name.clone(),
                ip: u32::from(n.ip),
                region: n.region.clone(),
                az: n.az.clone(),
                vpc: n.vpc.clone(),
                subnet: n.subnet.clone(),
                cluster: n.cluster.clone(),
            })
            .collect();
        nodes.sort_by_key(|a| a.ip);
        ResourceInventory { pods, nodes }
    }

    /// Default per-hop-kind propagation latency.
    pub fn default_hop_latency(kind: HopKind) -> DurationNs {
        match kind {
            HopKind::SrcPodVeth | HopKind::DstPodVeth => DurationNs::from_micros(5),
            HopKind::SrcNodeNic | HopKind::DstNodeNic => DurationNs::from_micros(10),
            HopKind::SrcPhysNic | HopKind::DstPhysNic => DurationNs::from_micros(15),
            HopKind::Tor => DurationNs::from_micros(25),
            HopKind::L4Gateway => DurationNs::from_micros(40),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_node_cluster() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let n1 = t.add_simple_node("node-1", Ipv4Addr::new(192, 168, 0, 1));
        let n2 = t.add_simple_node("node-2", Ipv4Addr::new(192, 168, 0, 2));
        let n3 = t.add_node(
            "node-3",
            Ipv4Addr::new(192, 168, 1, 3),
            "rack-2",
            "region-1",
            "az-1",
            "vpc-1",
            "subnet-2",
            "cluster-1",
        );
        t.add_pod(
            n1,
            "web-0",
            Ipv4Addr::new(10, 1, 0, 1),
            "default",
            "web",
            "web-svc",
        );
        t.add_pod(
            n1,
            "web-1",
            Ipv4Addr::new(10, 1, 0, 2),
            "default",
            "web",
            "web-svc",
        );
        t.add_pod(
            n2,
            "db-0",
            Ipv4Addr::new(10, 1, 1, 1),
            "default",
            "db",
            "db-svc",
        );
        t.add_pod(
            n3,
            "cache-0",
            Ipv4Addr::new(10, 1, 2, 1),
            "default",
            "cache",
            "cache-svc",
        );
        (t, n1, n2, n3)
    }

    #[test]
    fn same_node_route_stays_on_bridge() {
        let (t, _, _, _) = three_node_cluster();
        let hops = t
            .route(Ipv4Addr::new(10, 1, 0, 1), Ipv4Addr::new(10, 1, 0, 2))
            .unwrap();
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].kind, HopKind::SrcPodVeth);
        assert_eq!(hops[1].kind, HopKind::DstPodVeth);
    }

    #[test]
    fn cross_node_route_climbs_the_full_ladder() {
        let (t, _, _, _) = three_node_cluster();
        let hops = t
            .route(Ipv4Addr::new(10, 1, 0, 1), Ipv4Addr::new(10, 1, 1, 1))
            .unwrap();
        let kinds: Vec<HopKind> = hops.iter().map(|h| h.kind).collect();
        assert_eq!(
            kinds,
            vec![
                HopKind::SrcPodVeth,
                HopKind::SrcNodeNic,
                HopKind::SrcPhysNic,
                HopKind::Tor,
                HopKind::DstPhysNic,
                HopKind::DstNodeNic,
                HopKind::DstPodVeth,
            ]
        );
    }

    #[test]
    fn cross_rack_route_traverses_both_tors() {
        let (t, _, _, _) = three_node_cluster();
        let hops = t
            .route(Ipv4Addr::new(10, 1, 0, 1), Ipv4Addr::new(10, 1, 2, 1))
            .unwrap();
        let tors: Vec<&Hop> = hops.iter().filter(|h| h.kind == HopKind::Tor).collect();
        assert_eq!(tors.len(), 2);
        assert_eq!(tors[0].element, ElementId::Tor("rack-1".into()));
        assert_eq!(tors[1].element, ElementId::Tor("rack-2".into()));
    }

    #[test]
    fn node_to_node_route_has_no_veth_hops() {
        let (t, _, _, _) = three_node_cluster();
        let hops = t
            .route(Ipv4Addr::new(192, 168, 0, 1), Ipv4Addr::new(192, 168, 0, 2))
            .unwrap();
        assert!(hops
            .iter()
            .all(|h| !matches!(h.kind, HopKind::SrcPodVeth | HopKind::DstPodVeth)));
    }

    #[test]
    fn unknown_ip_routes_to_none() {
        let (t, _, _, _) = three_node_cluster();
        assert!(t
            .route(Ipv4Addr::new(10, 1, 0, 1), Ipv4Addr::new(1, 2, 3, 4))
            .is_none());
    }

    #[test]
    fn tor_mirror_assigns_capture_node() {
        let (mut t, n1, _, _) = three_node_cluster();
        t.set_tor_mirror("rack-1", n1);
        let hops = t
            .route(Ipv4Addr::new(10, 1, 0, 1), Ipv4Addr::new(10, 1, 1, 1))
            .unwrap();
        let tor = hops.iter().find(|h| h.kind == HopKind::Tor).unwrap();
        assert_eq!(tor.node, Some(n1));
    }

    #[test]
    fn resource_inventory_exports_pods_and_nodes() {
        let (mut t, _, _, _) = three_node_cluster();
        t.add_pod_label(Ipv4Addr::new(10, 1, 0, 1), "version", "v2");
        let inv = t.resource_inventory();
        assert_eq!(inv.pods.len(), 4);
        assert_eq!(inv.nodes.len(), 3);
        let web0 = inv
            .pods
            .iter()
            .find(|p| p.name == "web-0")
            .expect("web-0 present");
        assert_eq!(web0.node, "node-1");
        assert_eq!(web0.labels, vec![("version".to_string(), "v2".to_string())]);
    }
}
