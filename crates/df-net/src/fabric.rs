//! The network fabric: synchronous frame forwarding over the topology.
//!
//! [`Fabric::transmit`] walks the route between the segment's endpoints,
//! feeding every capture tap, applying per-element faults, resolving ARP on
//! first contact, and passing through L4 gateways. It returns time-stamped
//! [`Delivery`] records; the caller (the mesh event loop) schedules
//! `Kernel::deliver` at those times. Because the fault model is
//! probabilistic-but-stateless, retransmission cascades are resolved
//! *eagerly* at transmit time — taps record the retransmitted copies with
//! their future timestamps, which is exactly what an offline observer of the
//! packet stream would have seen.

use df_types::net::TcpFlags;
use df_types::packet::{ArpOp, Frame, Segment};
use df_types::{DurationNs, NodeId, TimeNs};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::net::Ipv4Addr;

use crate::faults::Fault;
use crate::faults::FaultTable;
use crate::gateway::{GatewayAction, L4Gateway};
use crate::taps::TapRegistry;
use crate::topology::{ElementId, Hop, HopKind, Topology};

/// Fabric tunables.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Retransmission timeout after a lost segment.
    pub rto: DurationNs,
    /// Retransmission attempts before giving up.
    pub max_retransmits: u32,
    /// Base ARP resolution round-trip.
    pub arp_rtt: DurationNs,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            rto: DurationNs::from_millis(200),
            max_retransmits: 5,
            arp_rtt: DurationNs::from_micros(100),
            seed: 0xfab,
        }
    }
}

/// A segment arriving at a node's kernel at a future instant.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Arrival time.
    pub at: TimeNs,
    /// Destination node (whose kernel should `deliver` the segment).
    pub node: NodeId,
    /// The segment.
    pub segment: Segment,
}

/// Forwarding statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Segments successfully delivered.
    pub delivered: u64,
    /// Segments dropped by faults (after exhausting retransmits, or
    /// black-holed).
    pub dropped: u64,
    /// Segments black-holed specifically by a [`Fault::Partition`] cut
    /// (subset of `dropped`).
    pub partitioned: u64,
    /// Retransmitted copies put on the wire.
    pub retransmissions: u64,
    /// RSTs injected by faults.
    pub resets_injected: u64,
    /// ARP resolutions performed.
    pub arp_resolutions: u64,
    /// ARP requests emitted (> resolutions under an ARP storm).
    pub arp_requests: u64,
}

/// The fabric.
pub struct Fabric {
    /// Topology (public: the mesh builds it, agents read it).
    pub topology: Topology,
    /// Capture taps.
    pub taps: TapRegistry,
    /// Fault table.
    pub faults: FaultTable,
    gateways: Vec<L4Gateway>,
    arp_resolved: HashSet<(Ipv4Addr, Ipv4Addr)>,
    rng: SmallRng,
    cfg: FabricConfig,
    stats: FabricStats,
}

impl Fabric {
    /// Build a fabric over a topology.
    pub fn new(topology: Topology, cfg: FabricConfig) -> Self {
        let rng = SmallRng::seed_from_u64(cfg.seed);
        Fabric {
            topology,
            taps: TapRegistry::new(),
            faults: FaultTable::new(),
            gateways: Vec::new(),
            arp_resolved: HashSet::new(),
            rng,
            cfg,
            stats: FabricStats::default(),
        }
    }

    /// Register an L4 gateway.
    pub fn add_l4_gateway(&mut self, gw: L4Gateway) {
        self.gateways.push(gw);
    }

    /// Forwarding statistics so far.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Transmit a segment, returning its delivery (and any fault-generated
    /// extra deliveries, e.g. injected RSTs).
    pub fn transmit(&mut self, seg: Segment, now: TimeNs) -> Vec<Delivery> {
        // The physical origin: where the frame actually entered the fabric
        // (before any gateway SNAT masks the source as a VIP).
        let origin = seg.five_tuple.src_ip;
        let original = seg.clone();
        // L4 gateway NAT (VIP → backend, backend → VIP).
        let (seg, gw_name) = self.apply_gateways(seg);
        let Some(seg) = seg else {
            self.stats.dropped += 1;
            return Vec::new();
        };
        // The gateway's own capture point always observes the VIP-side form
        // of the flow (forward: pre-DNAT; reverse: post-SNAT) so both
        // directions of a session share one five-tuple there.
        let gw_view = if gw_name.is_some() {
            if original.five_tuple.dst_ip != seg.five_tuple.dst_ip {
                Some(Frame::Segment(original.clone())) // forward: pre-DNAT
            } else {
                Some(Frame::Segment(seg.clone())) // reverse: post-SNAT
            }
        } else {
            None
        };

        // Route anchored on the physical origin and the post-DNAT
        // destination. (Simplification vs. real NAT: taps along the whole
        // path observe the post-rewrite header; the TCP sequence — the
        // association invariant — is identical either way.)
        let src = origin;
        let dst = seg.five_tuple.dst_ip;
        let Some(mut hops) = self.topology.route(src, dst) else {
            self.stats.dropped += 1;
            return Vec::new();
        };
        if let Some(name) = gw_name {
            insert_gateway_hop(&mut hops, name);
        }
        let Some(dst_node) = self.topology.node_of_ip(dst) else {
            self.stats.dropped += 1;
            return Vec::new();
        };

        // ARP on first contact between this IP pair.
        let mut start = now;
        if !self.arp_resolved.contains(&arp_key(src, dst)) {
            start += self.resolve_arp(src, dst, &hops, now);
            self.arp_resolved.insert(arp_key(src, dst));
        }

        let mut deliveries = Vec::new();
        let mut attempt: u32 = 0;
        // Each attempt (re)starts at the *source*: attempt n leaves the
        // sender at `start + n * rto`, regardless of how deep in the path
        // the previous copy died. Accumulated hop latency belongs to the
        // copy that was lost, not to the retransmission.
        let mut send_time = start;
        'attempts: loop {
            let mut frame_seg = seg.clone();
            if attempt > 0 {
                frame_seg.is_retransmission = true;
                self.stats.retransmissions += 1;
            }
            let frame = Frame::Segment(frame_seg.clone());
            let mut t = send_time;
            for (hop_idx, hop) in hops.iter().enumerate() {
                // The frame reaches the element: taps see it even if the
                // element then misbehaves. Gateways observe the VIP-side
                // form of the flow.
                if hop.kind == HopKind::L4Gateway {
                    if let Some(view) = &gw_view {
                        self.taps.observe(&hop.element, &hop.interface, view, t);
                    }
                } else {
                    self.taps.observe(&hop.element, &hop.interface, &frame, t);
                }
                match self.faults.get(&hop.element).cloned() {
                    Some(Fault::ExtraLatency(d)) => {
                        t += d;
                    }
                    Some(Fault::BlackHole) => {
                        self.stats.dropped += 1;
                        return deliveries;
                    }
                    Some(fault @ Fault::Partition { .. }) => {
                        if fault.partitions(seg.five_tuple.src_ip, seg.five_tuple.dst_ip) {
                            // The cut is a silent black hole: no RST, no
                            // retransmission cascade — the sender's own
                            // timeout machinery (e.g. RPC retry) must
                            // notice.
                            self.stats.partitioned += 1;
                            self.stats.dropped += 1;
                            return deliveries;
                        }
                    }
                    Some(Fault::ResetInjection { p }) => {
                        if self.rng.gen::<f64>() < p {
                            self.stats.resets_injected += 1;
                            if let Some(reply) = reset_for(&frame_seg) {
                                if let Some(src_node) = self.topology.node_of_ip(src) {
                                    let rst_frame = Frame::Segment(reply.clone());
                                    // The RST travels back over the hops
                                    // already traversed, in reverse order:
                                    // the tap nearest the injection point
                                    // sees it first, the source-side tap
                                    // last.
                                    let mut rt = t;
                                    for back in hops[..hop_idx].iter().rev() {
                                        rt += Topology::default_hop_latency(back.kind);
                                        self.taps.observe(
                                            &back.element,
                                            &back.interface,
                                            &rst_frame,
                                            rt,
                                        );
                                    }
                                    deliveries.push(Delivery {
                                        at: rt,
                                        node: src_node,
                                        segment: reply,
                                    });
                                }
                            }
                            self.stats.dropped += 1;
                            return deliveries;
                        }
                    }
                    Some(Fault::Loss { p }) => {
                        if self.rng.gen::<f64>() < p {
                            // Lost here; the source retransmits one RTO
                            // after it sent this copy.
                            if attempt >= self.cfg.max_retransmits {
                                self.stats.dropped += 1;
                                return deliveries;
                            }
                            attempt += 1;
                            send_time += self.cfg.rto;
                            continue 'attempts;
                        }
                    }
                    Some(Fault::ArpStorm { .. }) | None => {}
                }
                t += Topology::default_hop_latency(hop.kind);
            }
            // Traversed every hop: delivered.
            self.stats.delivered += 1;
            deliveries.push(Delivery {
                at: t,
                node: dst_node,
                segment: frame_seg,
            });
            return deliveries;
        }
    }

    /// Run ARP resolution, emitting request/reply frames at the src-side
    /// taps and honouring any [`Fault::ArpStorm`] on the path (§4.1.2).
    /// Returns the added latency.
    fn resolve_arp(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        hops: &[Hop],
        now: TimeNs,
    ) -> DurationNs {
        self.stats.arp_resolutions += 1;
        let mut extra_requests = 0u32;
        let mut extra_delay = DurationNs::ZERO;
        for hop in hops {
            if let Some(Fault::ArpStorm {
                extra_requests: n,
                resolution_delay,
            }) = self.faults.get(&hop.element)
            {
                extra_requests += n;
                extra_delay += *resolution_delay;
            }
        }
        let request = Frame::Arp {
            op: ArpOp::Request,
            sender: src,
            target: dst,
        };
        let reply = Frame::Arp {
            op: ArpOp::Reply,
            sender: dst,
            target: src,
        };
        // The original request is visible at every hop on the source's L2
        // side (up to and including the ToR); storm duplicates are
        // *generated by* the faulty element, so only hops at or beyond it
        // observe them — which is exactly how §4.1.2's operators localised
        // the broken NIC.
        let l2_hops: Vec<&Hop> = hops
            .iter()
            .take_while(|h| {
                matches!(
                    h.kind,
                    HopKind::SrcPodVeth | HopKind::SrcNodeNic | HopKind::SrcPhysNic | HopKind::Tor
                )
            })
            .collect();
        let storm_origin = l2_hops
            .iter()
            .position(|h| matches!(self.faults.get(&h.element), Some(Fault::ArpStorm { .. })));
        let total_requests = 1 + extra_requests;
        self.stats.arp_requests += u64::from(total_requests);
        let mut t = now;
        for i in 0..total_requests {
            for (hi, hop) in l2_hops.iter().enumerate() {
                let sees_duplicate = match storm_origin {
                    Some(origin) => hi >= origin,
                    None => false,
                };
                if i == 0 || sees_duplicate {
                    self.taps.observe(&hop.element, &hop.interface, &request, t);
                }
            }
            // Storm duplicates are spaced a little apart.
            if i + 1 < total_requests {
                t += DurationNs::from_micros(50);
            }
        }
        let resolution = self.cfg.arp_rtt + extra_delay;
        let reply_t = now + resolution;
        for hop in l2_hops.iter().rev() {
            self.taps
                .observe(&hop.element, &hop.interface, &reply, reply_t);
        }
        resolution
    }

    fn apply_gateways(&mut self, seg: Segment) -> (Option<Segment>, Option<String>) {
        for gw in &mut self.gateways {
            match gw.process(&seg) {
                GatewayAction::Pass => continue,
                GatewayAction::Rewritten(out) => {
                    let name = gw.name.clone();
                    return (Some(out), Some(name));
                }
                GatewayAction::NoBackend => return (None, None),
            }
        }
        (Some(seg), None)
    }
}

fn arp_key(a: Ipv4Addr, b: Ipv4Addr) -> (Ipv4Addr, Ipv4Addr) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Insert the gateway hop between the source-side and destination-side
/// halves of a route (after the last Src*/Tor hop).
fn insert_gateway_hop(hops: &mut Vec<Hop>, name: String) {
    let pos = hops
        .iter()
        .position(|h| {
            matches!(
                h.kind,
                HopKind::DstPhysNic | HopKind::DstNodeNic | HopKind::DstPodVeth
            )
        })
        .unwrap_or(hops.len());
    hops.insert(
        pos,
        Hop {
            element: ElementId::L4Gw(name.clone()),
            kind: HopKind::L4Gateway,
            node: None,
            interface: format!("gw-{name}"),
        },
    );
}

fn reset_for(seg: &Segment) -> Option<Segment> {
    if seg.flags.rst {
        return None; // don't RST a RST
    }
    let mut rst = seg.clone();
    rst.five_tuple = seg.five_tuple.reversed();
    rst.seq = seg.ack;
    rst.ack = seg.end_seq();
    rst.flags = TcpFlags::RST;
    rst.payload = bytes::Bytes::new();
    rst.window = 0;
    rst.is_retransmission = false;
    Some(rst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taps::{TapFilter, TapKind};
    use bytes::Bytes;
    use df_types::net::FiveTuple;

    const POD_A: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1);
    const POD_B: Ipv4Addr = Ipv4Addr::new(10, 1, 1, 1);

    fn fabric() -> (Fabric, NodeId, NodeId) {
        let mut topo = Topology::new();
        let n1 = topo.add_simple_node("node-1", Ipv4Addr::new(192, 168, 0, 1));
        let n2 = topo.add_simple_node("node-2", Ipv4Addr::new(192, 168, 0, 2));
        topo.add_pod(n1, "a", POD_A, "default", "a", "a-svc");
        topo.add_pod(n2, "b", POD_B, "default", "b", "b-svc");
        (Fabric::new(topo, FabricConfig::default()), n1, n2)
    }

    fn data_seg(seq: u32) -> Segment {
        Segment {
            five_tuple: FiveTuple::tcp(POD_A, 40000, POD_B, 80),
            seq,
            ack: 0,
            flags: TcpFlags::PSH_ACK,
            window: 65535,
            payload: Bytes::from_static(b"hello"),
            is_retransmission: false,
        }
    }

    #[test]
    fn delivery_arrives_at_destination_node_after_path_latency() {
        let (mut f, _n1, n2) = fabric();
        let d = f.transmit(data_seg(1), TimeNs(1000));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].node, n2);
        assert!(d[0].at > TimeNs(1000), "path latency accrued");
        assert_eq!(f.stats().delivered, 1);
        // first contact did ARP
        assert_eq!(f.stats().arp_resolutions, 1);
        // second segment: no new ARP
        f.transmit(data_seg(2), TimeNs(2000));
        assert_eq!(f.stats().arp_resolutions, 1);
    }

    #[test]
    fn taps_see_the_frame_at_each_hop_with_same_seq() {
        let (mut f, n1, n2) = fabric();
        f.taps.install(
            ElementId::NodeNic(n1),
            n1,
            TapKind::NodeNic,
            TapFilter::all(),
        );
        f.taps.install(
            ElementId::NodeNic(n2),
            n2,
            TapKind::NodeNic,
            TapFilter::all(),
        );
        f.transmit(data_seg(42), TimeNs(0));
        let at1 = f.taps.drain_for_node(n1);
        let at2 = f.taps.drain_for_node(n2);
        let seqs = |v: &[(TapKind, df_types::CapturedFrame)]| -> Vec<u32> {
            v.iter()
                .filter_map(|(_, c)| match &c.frame {
                    Frame::Segment(s) => Some(s.seq),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(seqs(&at1), vec![42], "client node NIC sees seq 42");
        assert_eq!(seqs(&at2), vec![42], "server node NIC sees the SAME seq");
    }

    #[test]
    fn loss_fault_produces_observable_retransmissions() {
        let (mut f, n1, _n2) = fabric();
        f.taps.install(
            ElementId::NodeNic(n1),
            n1,
            TapKind::NodeNic,
            TapFilter::all(),
        );
        f.faults
            .inject(ElementId::Tor("rack-1".into()), Fault::Loss { p: 1.0 });
        let d = f.transmit(data_seg(1), TimeNs(0));
        // p=1.0: every attempt lost; gives up after max_retransmits.
        assert!(d.is_empty());
        assert_eq!(f.stats().retransmissions, 5);
        assert_eq!(f.stats().dropped, 1);
        // The node NIC saw the original + 5 retransmitted copies.
        let caps = f.taps.drain_for_node(n1);
        let data_frames: Vec<_> = caps
            .iter()
            .filter(|(_, c)| matches!(c.frame, Frame::Segment(_)))
            .collect();
        assert_eq!(data_frames.len(), 6);
        let retx = data_frames
            .iter()
            .filter(|(_, c)| matches!(&c.frame, Frame::Segment(s) if s.is_retransmission))
            .count();
        assert_eq!(retx, 5);
    }

    #[test]
    fn partial_loss_eventually_delivers() {
        let (mut f, _n1, n2) = fabric();
        f.faults
            .inject(ElementId::Tor("rack-1".into()), Fault::Loss { p: 0.5 });
        let mut delivered = 0;
        for i in 0..50 {
            let d = f.transmit(data_seg(i), TimeNs(u64::from(i) * 1_000_000));
            delivered += d.iter().filter(|d| d.node == n2).count();
        }
        assert!(delivered >= 45, "only {delivered}/50 delivered");
        assert!(f.stats().retransmissions > 0);
    }

    #[test]
    fn extra_latency_fault_delays_delivery() {
        let (mut f, _n1, _n2) = fabric();
        let base = f.transmit(data_seg(1), TimeNs(0))[0].at;
        f.faults.inject(
            ElementId::Tor("rack-1".into()),
            Fault::ExtraLatency(DurationNs::from_millis(30)),
        );
        let slow = f.transmit(data_seg(2), TimeNs(0))[0].at;
        let added = slow.saturating_since(base);
        // `base` paid one-time ARP (~100us) that `slow` did not, so the
        // observable delta is just under the injected 30ms.
        assert!(added >= DurationNs::from_millis(29), "added {added} < 29ms");
    }

    #[test]
    fn blackhole_drops_silently() {
        let (mut f, _n1, n2) = fabric();
        f.faults.inject(ElementId::NodeNic(n2), Fault::BlackHole);
        let d = f.transmit(data_seg(1), TimeNs(0));
        assert!(d.is_empty());
        assert_eq!(f.stats().dropped, 1);
        assert_eq!(f.stats().retransmissions, 0, "blackhole is not loss");
    }

    #[test]
    fn reset_injection_returns_rst_to_sender() {
        let (mut f, n1, _n2) = fabric();
        f.faults.inject(
            ElementId::Tor("rack-1".into()),
            Fault::ResetInjection { p: 1.0 },
        );
        let d = f.transmit(data_seg(7), TimeNs(0));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].node, n1, "RST goes back to the sender");
        assert!(d[0].segment.flags.rst);
        assert_eq!(d[0].segment.five_tuple.src_ip, POD_B);
        assert_eq!(f.stats().resets_injected, 1);
    }

    #[test]
    fn injected_rst_travels_backpath_in_reverse_with_monotone_timestamps() {
        let (mut f, n1, _n2) = fabric();
        // Taps along the source side of the path, nearest-the-source first.
        f.taps.install(
            ElementId::PodVeth(POD_A),
            n1,
            TapKind::PodVeth,
            TapFilter::all(),
        );
        f.taps.install(
            ElementId::NodeNic(n1),
            n1,
            TapKind::NodeNic,
            TapFilter::all(),
        );
        f.taps.install(
            ElementId::PhysNic(n1),
            n1,
            TapKind::PhysNic,
            TapFilter::all(),
        );
        // RST injected at the ToR — four hops from the pod.
        f.faults.inject(
            ElementId::Tor("rack-1".into()),
            Fault::ResetInjection { p: 1.0 },
        );
        let d = f.transmit(data_seg(9), TimeNs(0));
        assert_eq!(d.len(), 1);
        assert!(d[0].segment.flags.rst);
        let caps = f.taps.drain_for_node(n1);
        // Timestamp of the RST at each tap kind.
        let rst_ts = |kind: TapKind| -> TimeNs {
            caps.iter()
                .find(|(k, c)| *k == kind && matches!(&c.frame, Frame::Segment(s) if s.flags.rst))
                .map(|(_, c)| c.ts)
                .expect("tap saw the RST")
        };
        let at_phys = rst_ts(TapKind::PhysNic);
        let at_node = rst_ts(TapKind::NodeNic);
        let at_veth = rst_ts(TapKind::PodVeth);
        // Travelling back from the injection point toward the source: the
        // phys NIC (nearest the ToR) sees it first, the pod veth last.
        assert!(
            at_phys < at_node && at_node < at_veth,
            "RST timestamps not monotone along the backpath: \
             phys={at_phys:?} node={at_node:?} veth={at_veth:?}"
        );
        // And the sender-side delivery happens after the last tap.
        assert!(d[0].at >= at_veth);
    }

    #[test]
    fn loss_retransmits_anchor_rto_at_source_send_time() {
        let (mut f, n1, _n2) = fabric();
        f.taps.install(
            ElementId::NodeNic(n1),
            n1,
            TapKind::NodeNic,
            TapFilter::all(),
        );
        // Lossy *final* hop: the frame traverses the whole path (accruing
        // every hop's latency) before dying each time.
        f.faults
            .inject(ElementId::PodVeth(POD_B), Fault::Loss { p: 1.0 });
        let d = f.transmit(data_seg(3), TimeNs(0));
        assert!(d.is_empty());
        let rto = FabricConfig::default().rto;
        let caps = f.taps.drain_for_node(n1);
        let ts: Vec<TimeNs> = caps
            .iter()
            .filter(|(_, c)| matches!(c.frame, Frame::Segment(_)))
            .map(|(_, c)| c.ts)
            .collect();
        assert_eq!(ts.len(), 6, "original + 5 retransmitted copies");
        // Attempt n leaves the source at start + n*rto, so the source-side
        // tap must see copies exactly one RTO apart — NOT one RTO plus the
        // latency the previous copy accrued before dying at the far end.
        for (n, t) in ts.iter().enumerate() {
            let expect = ts[0] + DurationNs(rto.0 * n as u64);
            assert_eq!(
                *t, expect,
                "attempt {n} tapped at {t:?}, expected {expect:?}"
            );
        }
    }

    #[test]
    fn partition_fault_blackholes_both_directions_and_counts() {
        let (mut f, n1, _n2) = fabric();
        f.faults.inject(
            ElementId::NodeNic(n1),
            Fault::Partition { peers: vec![POD_B] },
        );
        // Forward: POD_A -> POD_B dies at node-1's NIC.
        let d = f.transmit(data_seg(1), TimeNs(0));
        assert!(d.is_empty());
        // Reverse: POD_B -> POD_A also dies there (bidirectional cut).
        let mut rev = data_seg(2);
        rev.five_tuple = rev.five_tuple.reversed();
        let d = f.transmit(rev, TimeNs(1000));
        assert!(d.is_empty());
        assert_eq!(f.stats().partitioned, 2);
        assert_eq!(f.stats().dropped, 2, "partition drops count as drops too");
        assert_eq!(
            f.stats().retransmissions,
            0,
            "a partition is silent: no retransmission cascade"
        );
        // A flow not involving the partitioned peers passes through.
        f.faults.clear_all();
        f.faults.inject(
            ElementId::NodeNic(n1),
            Fault::Partition {
                peers: vec![Ipv4Addr::new(10, 9, 9, 9)],
            },
        );
        let d = f.transmit(data_seg(3), TimeNs(2000));
        assert_eq!(d.len(), 1, "unrelated flow unaffected by the cut");
        assert_eq!(f.stats().partitioned, 2, "no new partition drops");
    }

    #[test]
    fn arp_storm_fault_emits_extra_requests_and_delays() {
        let (mut f, n1, _n2) = fabric();
        f.taps.install(
            ElementId::PhysNic(n1),
            n1,
            TapKind::PhysNic,
            TapFilter::all(),
        );
        f.faults.inject(
            ElementId::PhysNic(n1),
            Fault::ArpStorm {
                extra_requests: 3,
                resolution_delay: DurationNs::from_secs(2),
            },
        );
        let healthy_at = {
            // A healthy reference fabric for latency comparison.
            let (mut f2, _, _) = fabric();
            f2.transmit(data_seg(1), TimeNs(0))[0].at
        };
        let d = f.transmit(data_seg(1), TimeNs(0));
        assert_eq!(f.stats().arp_requests, 4, "1 normal + 3 storm requests");
        assert!(
            d[0].at.saturating_since(healthy_at) >= DurationNs::from_secs(2),
            "storm delayed connection setup"
        );
        // The faulty NIC's tap shows the redundant ARP requests — exactly
        // how §4.1.2's operators localised the problem.
        let caps = f.taps.drain_for_node(n1);
        let arp_reqs = caps
            .iter()
            .filter(|(_, c)| {
                matches!(
                    c.frame,
                    Frame::Arp {
                        op: ArpOp::Request,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(arp_reqs, 4);
    }

    #[test]
    fn l4_gateway_path_preserves_seq_and_inserts_gateway_hop() {
        let mut topo = Topology::new();
        let n1 = topo.add_simple_node("node-1", Ipv4Addr::new(192, 168, 0, 1));
        let n2 = topo.add_simple_node("node-2", Ipv4Addr::new(192, 168, 0, 2));
        topo.add_pod(n1, "client", POD_A, "default", "c", "c-svc");
        topo.add_pod(n2, "backend", POD_B, "default", "b", "b-svc");
        let mut f = Fabric::new(topo, FabricConfig::default());
        let vip = Ipv4Addr::new(10, 99, 0, 1);
        f.add_l4_gateway(L4Gateway::new("slb", vip, 80, vec![POD_B]));
        f.taps.install(
            ElementId::L4Gw("slb".into()),
            n1,
            TapKind::Gateway,
            TapFilter::all(),
        );
        let mut seg = data_seg(1234);
        seg.five_tuple.dst_ip = vip;
        let d = f.transmit(seg, TimeNs(0));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].node, n2);
        assert_eq!(d[0].segment.five_tuple.dst_ip, POD_B, "DNATed");
        assert_eq!(d[0].segment.seq, 1234, "seq preserved across gateway");
        let caps = f.taps.drain_for_node(n1);
        assert!(
            caps.iter().any(|(k, _)| *k == TapKind::Gateway),
            "gateway tap observed the flow"
        );
    }
}
