//! Pure coordination state machines for the distributed protocol.
//!
//! Both types here are deliberately free of I/O and clocks so df-check can
//! model them under adversarial schedules (see
//! `tests/df_check_models.rs`):
//!
//! * [`RoundTracker`] — enforces that Phase 1 candidate-set responses are
//!   only merged into the round that asked for them. Retries reuse the
//!   original rpc id, so a late duplicate from an earlier attempt (or an
//!   earlier *round*) is rejected instead of corrupting frontier order.
//! * [`BatchReorder`] — applies span batches to a shard strictly in row
//!   order even when retried/reordered RPCs deliver them out of order or
//!   twice. Row-contiguity is what keeps remote shard contents identical
//!   to the single-process oracle.

use std::collections::{BTreeMap, HashSet};

/// Guards Phase 1's round structure: a response is accepted only if it
/// answers an rpc id issued for the *current* round and has not been
/// accepted before.
#[derive(Debug, Default)]
pub struct RoundTracker {
    current: Option<u32>,
    expected: HashSet<u64>,
    accepted: Vec<(u32, u64)>,
    stale: u64,
}

impl RoundTracker {
    /// Fresh tracker (no round open).
    pub fn new() -> Self {
        Self::default()
    }

    /// Open round `round` expecting responses for `rpc_ids`. Rounds must
    /// be strictly increasing; a regression is refused (returns `false`)
    /// and leaves the tracker untouched.
    pub fn begin_round(&mut self, round: u32, rpc_ids: &[u64]) -> bool {
        if self.current.is_some_and(|c| round <= c) {
            return false;
        }
        self.current = Some(round);
        self.expected = rpc_ids.iter().copied().collect();
        true
    }

    /// Offer a response labelled with the round it claims to answer.
    /// Returns `true` iff it is for the current round, was expected, and
    /// is the first copy; everything else counts as stale.
    pub fn accept(&mut self, round: u32, rpc_id: u64) -> bool {
        if self.current == Some(round) && self.expected.remove(&rpc_id) {
            self.accepted.push((round, rpc_id));
            true
        } else {
            self.stale += 1;
            false
        }
    }

    /// Responses still outstanding for the current round.
    pub fn outstanding(&self) -> usize {
        self.expected.len()
    }

    /// Rejected responses (duplicates, wrong round, never asked for).
    pub fn stale(&self) -> u64 {
        self.stale
    }

    /// Acceptance log in arrival order, as `(round, rpc_id)` pairs.
    pub fn log(&self) -> &[(u32, u64)] {
        &self.accepted
    }

    /// The no-reordering invariant: accepted responses never interleave
    /// across rounds (the log is non-decreasing in round).
    pub fn is_ordered(&self) -> bool {
        self.accepted.windows(2).all(|w| w[0].0 <= w[1].0)
    }
}

/// Reassembles a shard's row space from possibly-reordered,
/// possibly-duplicated span batches.
///
/// `offer(applied, start_row, batch)` returns the run of batches that are
/// now contiguous with the `applied` rows and can be appended; anything
/// from the future is stashed, anything already covered is dropped as a
/// duplicate.
#[derive(Debug)]
pub struct BatchReorder<T> {
    stash: BTreeMap<u32, Vec<T>>,
    duplicates: u64,
}

impl<T> Default for BatchReorder<T> {
    fn default() -> Self {
        BatchReorder {
            stash: BTreeMap::new(),
            duplicates: 0,
        }
    }
}

impl<T> BatchReorder<T> {
    /// Fresh reorder buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer a batch covering rows `start_row..start_row + batch.len()`
    /// given that rows `0..applied` are already in the store. Returns the
    /// batches (in row order) that became contiguous and must be appended
    /// now.
    pub fn offer(&mut self, applied: u32, start_row: u32, batch: Vec<T>) -> Vec<Vec<T>> {
        if start_row < applied || self.stash.contains_key(&start_row) {
            // Retransmitted RPC for rows we already hold: ack silently.
            self.duplicates += 1;
            return Vec::new();
        }
        self.stash.insert(start_row, batch);
        let mut runs = Vec::new();
        let mut cursor = applied;
        while let Some(run) = self.stash.remove(&cursor) {
            cursor += run.len() as u32;
            runs.push(run);
        }
        runs
    }

    /// Batches stashed waiting for a predecessor.
    pub fn pending(&self) -> usize {
        self.stash.len()
    }

    /// The lowest stashed `start_row`, if any batch is waiting. Anti-
    /// entropy uses this to bound a backfill pull: pulling past the first
    /// stashed batch would collide with it on `start_row` and strand it
    /// as a false duplicate.
    pub fn first_pending_start(&self) -> Option<u32> {
        self.stash.keys().next().copied()
    }

    /// Duplicate batches dropped.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_accepts_current_round_once_and_rejects_the_rest() {
        let mut t = RoundTracker::new();
        assert!(t.begin_round(0, &[10, 11]));
        assert!(t.accept(0, 10));
        assert!(!t.accept(0, 10), "duplicate must be stale");
        assert!(!t.accept(0, 99), "never-issued id must be stale");
        assert!(t.accept(0, 11));
        assert_eq!(t.outstanding(), 0);

        assert!(!t.begin_round(0, &[12]), "round regression refused");
        assert!(t.begin_round(1, &[12]));
        assert!(!t.accept(0, 12), "old-round label must be stale");
        assert!(t.accept(1, 12));
        assert_eq!(t.stale(), 3);
        assert!(t.is_ordered());
    }

    #[test]
    fn reorder_applies_out_of_order_and_drops_duplicates() {
        let mut r: BatchReorder<u32> = BatchReorder::new();
        assert_eq!(r.first_pending_start(), None);
        // Rows 0..2 arrive late; rows 2..5 first.
        assert!(r.offer(0, 2, vec![2, 3, 4]).is_empty());
        assert_eq!(r.pending(), 1);
        assert_eq!(r.first_pending_start(), Some(2));
        let runs = r.offer(0, 0, vec![0, 1]);
        assert_eq!(runs, vec![vec![0, 1], vec![2, 3, 4]]);
        assert_eq!(r.pending(), 0);
        // A retransmission of the first batch is a no-op.
        assert!(r.offer(5, 0, vec![0, 1]).is_empty());
        assert_eq!(r.duplicates(), 1);
        // Next contiguous batch applies immediately.
        assert_eq!(r.offer(5, 5, vec![5]), vec![vec![5]]);
    }
}
