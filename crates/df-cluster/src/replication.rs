//! Replication primitives shared by the cluster protocol and its
//! df-check models.
//!
//! * [`WriteQuorum`] — the pure state machine a primary runs per
//!   replicated span-batch write. The primary's local apply counts as
//!   the first acknowledgement; replica acks and permanent failures
//!   drain `outstanding`; the batch may be acknowledged to the
//!   requester *exactly once* — as soon as `applied` reaches the
//!   quorum, or (so ingest never hangs on unreachable replicas) once no
//!   replication RPC is left outstanding. An ack taken below quorum is
//!   a *shortfall* the cluster counts and the caller can alarm on.
//! * [`shard_digest`] — an order-sensitive FNV-1a digest of a shard's
//!   wire-encoded rows. Anti-entropy summaries exchange
//!   `(row_count, digest)` pairs so replicas can verify byte-identical
//!   convergence without shipping shard contents.
//!
//! Both are free of I/O and clocks so `tests/df_check_models.rs` can
//! model the quorum invariant under adversarial schedules.

use df_storage::SpanStore;
use df_types::wire;

/// FNV-1a offset basis — the digest of an empty shard.
pub const EMPTY_DIGEST: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over every row's single-span DFW1 encoding, in row order.
///
/// Two stores with equal digests and equal row counts hold
/// byte-identical span data: the digest folds the same bytes the wire
/// format ships, so it is exactly the "extensionally identical"
/// relation the differential tests assert. Cold rows are paged in
/// through the store's registered reader.
pub fn shard_digest(store: &SpanStore) -> u64 {
    let mut h = EMPTY_DIGEST;
    for row in 0..store.len() as u32 {
        if let Some(span) = store.span_at(row) {
            for &b in wire::encode_batch(std::slice::from_ref(&*span)).iter() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
    }
    h
}

/// Write-quorum accounting for one replicated span-batch write.
///
/// Created when the primary has already applied the batch locally
/// (`applied` starts at 1) and has `outstanding` replication RPCs in
/// flight to its co-owners. Every replica response feeds
/// [`WriteQuorum::record_ack`] or [`WriteQuorum::record_failure`]; the
/// driver calls [`WriteQuorum::try_ack`] after each to acknowledge the
/// requester at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteQuorum {
    quorum: u32,
    applied: u32,
    outstanding: u32,
    acked: bool,
}

impl WriteQuorum {
    /// A write already applied locally, awaiting `outstanding` replica
    /// acknowledgements. `quorum` is clamped to at least 1 — the local
    /// apply alone can satisfy a degenerate quorum.
    pub fn new(quorum: u32, outstanding: u32) -> Self {
        WriteQuorum {
            quorum: quorum.max(1),
            applied: 1,
            outstanding,
            acked: false,
        }
    }

    /// A replica acknowledged its apply.
    pub fn record_ack(&mut self) {
        self.applied += 1;
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    /// A replication RPC failed past its retry budget.
    pub fn record_failure(&mut self) {
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    /// Whether the requester may be acknowledged *now*: not acked yet,
    /// and either the quorum is met or nothing is left to wait for.
    pub fn ready(&self) -> bool {
        !self.acked && (self.applied >= self.quorum || self.outstanding == 0)
    }

    /// Whether the quorum is actually met. Acking while this is false
    /// (possible only when every remaining replication RPC failed) is a
    /// shortfall.
    pub fn met(&self) -> bool {
        self.applied >= self.quorum
    }

    /// Acknowledge the requester if [`WriteQuorum::ready`]. Returns
    /// whether *this call* acknowledged — at most one call ever returns
    /// true, which is the invariant the df-check model pins down.
    pub fn try_ack(&mut self) -> bool {
        if self.ready() {
            self.acked = true;
            true
        } else {
            false
        }
    }

    /// Whether the requester has been acknowledged.
    pub fn acked(&self) -> bool {
        self.acked
    }

    /// Copies applied so far (the local apply plus replica acks).
    pub fn applied(&self) -> u32 {
        self.applied
    }

    /// Replication RPCs still in flight.
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// The configured quorum.
    pub fn quorum(&self) -> u32 {
        self.quorum
    }

    /// Whether every replication RPC has resolved (ack or failure).
    pub fn settled(&self) -> bool {
        self.outstanding == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::span::TapSide;
    use df_types::Span;

    #[test]
    fn quorum_acks_exactly_once_when_met() {
        let mut q = WriteQuorum::new(2, 2);
        assert!(!q.ready(), "local apply alone is below quorum 2");
        assert!(!q.try_ack());
        q.record_ack();
        assert!(q.met());
        assert!(q.try_ack(), "quorum met: first try_ack acknowledges");
        assert!(!q.try_ack(), "second try_ack must be a no-op");
        assert!(!q.settled());
        q.record_ack();
        assert!(q.settled());
        assert_eq!(q.applied(), 3);
    }

    #[test]
    fn exhausted_replicas_force_an_under_quorum_ack() {
        let mut q = WriteQuorum::new(3, 2);
        q.record_failure();
        assert!(!q.ready(), "one replica still outstanding");
        q.record_failure();
        assert!(q.ready(), "nothing left to wait for");
        assert!(!q.met(), "acking now is a shortfall");
        assert!(q.try_ack());
        assert!(q.settled());
    }

    #[test]
    fn degenerate_quorum_of_one_acks_immediately() {
        let mut q = WriteQuorum::new(0, 1);
        assert_eq!(q.quorum(), 1, "quorum clamps to at least 1");
        assert!(q.try_ack(), "the local apply satisfies quorum 1");
    }

    #[test]
    fn digest_separates_content_and_tracks_convergence() {
        let mut a = SpanStore::new();
        let mut b = SpanStore::new();
        assert_eq!(shard_digest(&a), EMPTY_DIGEST);
        assert_eq!(shard_digest(&a), shard_digest(&b));

        let mut s1 = Span::synthetic(TapSide::ClientProcess, 1_000, 9_000);
        s1.span_id = df_types::SpanId(7);
        let mut s2 = Span::synthetic(TapSide::ServerProcess, 2_000, 8_000);
        s2.span_id = df_types::SpanId(8);

        a.insert_routed_batch(vec![s1.clone(), s2.clone()]);
        assert_ne!(shard_digest(&a), shard_digest(&b), "content must show");
        b.insert_routed_batch(vec![s1, s2.clone()]);
        assert_eq!(shard_digest(&a), shard_digest(&b), "same rows, same digest");

        b.insert_routed_batch(vec![s2]);
        assert_ne!(shard_digest(&a), shard_digest(&b), "extra row must show");
    }
}
