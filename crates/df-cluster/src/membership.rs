//! Shard ownership: which node answers for which global shard.
//!
//! The map is the coordinator's routing authority — ingest ships a span
//! batch to `owner(shard)`, Phase 1 sends candidate probes to every node
//! that owns at least one shard, and handoff (`join`/`leave` on the
//! cluster) is a sequence of [`ShardMap::reassign`] calls with the shard's
//! [`SpanStore`](df_storage::SpanStore) moved alongside.

/// Global shard index → owning node index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    owners: Vec<usize>,
}

impl ShardMap {
    /// Round-robin assignment of `shards` global shards over `nodes`
    /// nodes: shard `s` starts on node `s % nodes`.
    pub fn round_robin(shards: usize, nodes: usize) -> Self {
        let nodes = nodes.max(1);
        ShardMap {
            owners: (0..shards).map(|s| s % nodes).collect(),
        }
    }

    /// Number of global shards.
    pub fn shard_count(&self) -> usize {
        self.owners.len()
    }

    /// The node owning `shard`.
    pub fn owner(&self, shard: u16) -> usize {
        self.owners[shard as usize]
    }

    /// The shards a node owns, ascending.
    pub fn shards_of(&self, node: usize) -> Vec<u16> {
        self.owners
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o == node)
            .map(|(s, _)| s as u16)
            .collect()
    }

    /// Move a shard to a new owner (the caller moves the store alongside).
    pub fn reassign(&mut self, shard: u16, to: usize) {
        self.owners[shard as usize] = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_spreads_and_reassign_moves() {
        let mut m = ShardMap::round_robin(5, 2);
        assert_eq!(m.shards_of(0), vec![0, 2, 4]);
        assert_eq!(m.shards_of(1), vec![1, 3]);
        assert_eq!(m.owner(3), 1);
        m.reassign(3, 0);
        assert_eq!(m.owner(3), 0);
        assert_eq!(m.shards_of(0), vec![0, 2, 3, 4]);
    }
}
