//! Shard ownership: which nodes answer for which global shard.
//!
//! The map is the coordinator's routing authority — ingest ships a span
//! batch to the shard's *primary* (`owner(shard)`), the primary forwards
//! to the shard's replicas, Phase 1 sends candidate probes to every node
//! that holds at least one store, and handoff (`join`/`leave` on the
//! cluster) rewrites individual owner slots with the shard's
//! [`SpanStore`](df_storage::SpanStore) moved alongside.
//!
//! With `replication_factor = 1` every shard has exactly one owner and
//! the map behaves exactly like the pre-replication single-owner table.
//! With RF ≥ 2 each shard's owner list holds the primary first followed
//! by R−1 replicas; the list never contains duplicates and never goes
//! empty.

/// Global shard index → owning node indexes (primary first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    owners: Vec<Vec<usize>>,
}

impl ShardMap {
    /// Round-robin single-owner assignment of `shards` global shards over
    /// `nodes` nodes: shard `s` starts on node `s % nodes`. Equivalent to
    /// [`ShardMap::replicated`] with a replication factor of 1.
    pub fn round_robin(shards: usize, nodes: usize) -> Self {
        Self::replicated(shards, nodes, 1)
    }

    /// Replicated assignment: shard `s` gets primary `s % nodes` and the
    /// `rf - 1` following nodes as replicas. `rf` is clamped to
    /// `[1, nodes]` so owner lists never hold duplicates.
    pub fn replicated(shards: usize, nodes: usize, rf: usize) -> Self {
        let nodes = nodes.max(1);
        let rf = rf.clamp(1, nodes);
        ShardMap {
            owners: (0..shards)
                .map(|s| (0..rf).map(|k| (s + k) % nodes).collect())
                .collect(),
        }
    }

    /// Number of global shards.
    pub fn shard_count(&self) -> usize {
        self.owners.len()
    }

    /// The primary node for `shard`.
    pub fn owner(&self, shard: u16) -> usize {
        self.owners[shard as usize][0]
    }

    /// Every node holding a copy of `shard`, primary first.
    pub fn owners_of(&self, shard: u16) -> &[usize] {
        &self.owners[shard as usize]
    }

    /// Whether `node` holds any copy (primary or replica) of `shard`.
    pub fn is_owner(&self, shard: u16, node: usize) -> bool {
        self.owners[shard as usize].contains(&node)
    }

    /// The shards a node holds a copy of (primary or replica), ascending.
    pub fn shards_of(&self, node: usize) -> Vec<u16> {
        self.owners
            .iter()
            .enumerate()
            .filter(|(_, o)| o.contains(&node))
            .map(|(s, _)| s as u16)
            .collect()
    }

    /// The shards a node is *primary* for, ascending.
    pub fn primary_shards_of(&self, node: usize) -> Vec<u16> {
        self.owners
            .iter()
            .enumerate()
            .filter(|(_, o)| o[0] == node)
            .map(|(s, _)| s as u16)
            .collect()
    }

    /// Move a shard's *primary* slot to a new owner (the caller moves the
    /// store alongside). If `to` already held a replica slot the old
    /// primary takes over that slot, so the list stays duplicate-free.
    pub fn reassign(&mut self, shard: u16, to: usize) {
        let owners = &mut self.owners[shard as usize];
        let from = owners[0];
        if let Some(slot) = owners.iter().position(|&o| o == to) {
            owners[slot] = from;
        }
        owners[0] = to;
    }

    /// Replace one owner slot (`from` → `to`), preserving slot order.
    /// Returns false if `from` is not an owner or `to` already is.
    pub fn replace_owner(&mut self, shard: u16, from: usize, to: usize) -> bool {
        let owners = &mut self.owners[shard as usize];
        if owners.contains(&to) {
            return false;
        }
        match owners.iter().position(|&o| o == from) {
            Some(slot) => {
                owners[slot] = to;
                true
            }
            None => false,
        }
    }

    /// Append `node` as a new replica of `shard`. Returns false (no-op)
    /// if it already holds a copy.
    pub fn add_owner(&mut self, shard: u16, node: usize) -> bool {
        let owners = &mut self.owners[shard as usize];
        if owners.contains(&node) {
            return false;
        }
        owners.push(node);
        true
    }

    /// Drop `node`'s slot for `shard`. Refuses (returns false) when it is
    /// the last remaining owner — a shard must never go ownerless.
    pub fn remove_owner(&mut self, shard: u16, node: usize) -> bool {
        let owners = &mut self.owners[shard as usize];
        if owners.len() <= 1 {
            return false;
        }
        match owners.iter().position(|&o| o == node) {
            Some(slot) => {
                owners.remove(slot);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_spreads_and_reassign_moves() {
        let mut m = ShardMap::round_robin(5, 2);
        assert_eq!(m.shards_of(0), vec![0, 2, 4]);
        assert_eq!(m.shards_of(1), vec![1, 3]);
        assert_eq!(m.owner(3), 1);
        m.reassign(3, 0);
        assert_eq!(m.owner(3), 0);
        assert_eq!(m.shards_of(0), vec![0, 2, 3, 4]);
    }

    #[test]
    fn replicated_assigns_distinct_owners_primary_first() {
        let m = ShardMap::replicated(4, 3, 2);
        assert_eq!(m.owners_of(0), &[0, 1]);
        assert_eq!(m.owners_of(1), &[1, 2]);
        assert_eq!(m.owners_of(2), &[2, 0]);
        assert_eq!(m.owners_of(3), &[0, 1]);
        assert_eq!(m.owner(1), 1);
        assert!(m.is_owner(1, 2));
        assert!(!m.is_owner(1, 0));
        // shards_of counts replica slots too; primary_shards_of does not.
        assert_eq!(m.shards_of(0), vec![0, 2, 3]);
        assert_eq!(m.primary_shards_of(0), vec![0, 3]);
    }

    #[test]
    fn rf_clamps_to_node_count() {
        let m = ShardMap::replicated(2, 2, 5);
        assert_eq!(m.owners_of(0), &[0, 1]);
        assert_eq!(m.owners_of(1), &[1, 0]);
    }

    #[test]
    fn reassign_to_existing_replica_swaps_slots() {
        let mut m = ShardMap::replicated(1, 3, 2);
        assert_eq!(m.owners_of(0), &[0, 1]);
        m.reassign(0, 1);
        assert_eq!(m.owners_of(0), &[1, 0]);
        m.reassign(0, 2);
        assert_eq!(m.owners_of(0), &[2, 0]);
    }

    #[test]
    fn replace_add_remove_owner_guard_invariants() {
        let mut m = ShardMap::replicated(1, 4, 2);
        assert_eq!(m.owners_of(0), &[0, 1]);
        assert!(m.replace_owner(0, 1, 2));
        assert_eq!(m.owners_of(0), &[0, 2]);
        assert!(!m.replace_owner(0, 1, 3), "1 no longer owns the shard");
        assert!(!m.replace_owner(0, 0, 2), "2 already owns the shard");
        assert!(m.add_owner(0, 3));
        assert!(!m.add_owner(0, 3), "already an owner");
        assert_eq!(m.owners_of(0), &[0, 2, 3]);
        assert!(m.remove_owner(0, 2));
        assert!(m.remove_owner(0, 3));
        assert!(!m.remove_owner(0, 0), "last owner must stay");
        assert_eq!(m.owners_of(0), &[0]);
    }
}
