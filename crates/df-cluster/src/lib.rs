//! # df-cluster — distributed trace assembly across simulated nodes
//!
//! The paper's trace assembly (Algorithm 1) runs inside *one* DeepFlow
//! server process in `df-server`. Real deployments run a cluster: agents
//! ship span batches to whichever server owns their shard, and a query
//! coordinator must probe shards it does not hold over the network. This
//! crate takes the sharded assembly across N simulated trace-server nodes
//! connected by the `df-net` fabric — same algorithm, same shard layout,
//! but every cross-shard probe is now an RPC that can be lost, delayed,
//! partitioned away, or answered by a node that has since crashed.
//!
//! Pieces:
//!
//! * [`Cluster`] — the node set, the fabric between them, a
//!   deterministic virtual-clock event loop, and the two protocol paths:
//!   ingest (span-batch shipping) and query (Phase 1 candidate-set RPCs
//!   batched per round, exactly the
//!   [`CandidateKeys`](df_types::rpc::CandidateKeys) discipline the
//!   in-process assembly uses);
//! * [`RoundTracker`] / [`BatchReorder`] / [`WriteQuorum`] — the pure
//!   coordination state machines (round-ordering of responses,
//!   row-ordering of batches, quorum-ack accounting) that df-check
//!   models under adversarial schedules;
//! * [`ShardMap`] — shard → owner-list assignment (a primary plus
//!   `replication_factor − 1` replicas), updated by handoff;
//! * [`replication`] — the write-quorum state machine and the FNV-1a
//!   shard content digest anti-entropy summaries exchange.
//!
//! With `replication_factor ≥ 2` the cluster survives any single node
//! failure with zero data loss and zero degraded answers: ingest fails
//! over through each shard's owner list, queries consult whichever copy
//! answers, [`Cluster::anti_entropy_round`] converges lagging replicas
//! byte-identically, and [`Cluster::restart_node`] rebuilds a crashed
//! node's cold tier from its DFSPANS1 segment files.
//!
//! The single-process `ConcurrentShardedStore` is the differential
//! oracle: a fault-free cluster of any size must produce byte-identical
//! shard contents and traces (see `tests/distributed.rs`). Under faults
//! the cluster answers *degraded* — the partial trace plus an explicit
//! [`DistributedTrace::missing_shards`] — never hanging and never
//! silently dropping shards it could not reach.
//!
//! ```
//! use df_cluster::{Cluster, ClusterConfig};
//! use df_types::span::TapSide;
//! use df_types::Span;
//!
//! let mut cluster = Cluster::new(ClusterConfig::default()); // 2 nodes
//! let mut client = Span::synthetic(TapSide::ClientProcess, 1_000, 9_000);
//! client.tcp_seq_req = Some(42);
//! let mut server = Span::synthetic(TapSide::ServerProcess, 2_000, 8_000);
//! server.tcp_seq_req = Some(42);
//! let ids = cluster.ingest(vec![client, server]);
//!
//! let result = cluster.assemble(ids[1]);
//! assert!(result.is_complete());
//! assert_eq!(result.trace.len(), 2);
//! assert_eq!(result.trace.spans[1].parent, Some(ids[0]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod membership;
pub mod replication;
pub mod tracker;

pub use cluster::{AntiEntropyReport, Cluster, ClusterConfig, ClusterStats, DistributedTrace};
pub use membership::ShardMap;
pub use replication::{shard_digest, WriteQuorum, EMPTY_DIGEST};
pub use tracker::{BatchReorder, RoundTracker};
