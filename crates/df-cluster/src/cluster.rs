//! The simulated trace-server cluster: N nodes on a df-net fabric, with
//! node 0 acting as ingest front-end and query coordinator.
//!
//! Every cross-node interaction is a real RPC over the fabric: the request
//! is framed by [`RpcEnvelope`], carried in a TCP segment through
//! [`Fabric::transmit`], and subject to the fabric's fault table. On top
//! of the fabric's own eager retransmission cascade the cluster runs its
//! *own* retry loop — per-attempt timeout with exponential backoff — so a
//! black-holed path ([`Fault::Partition`]) or a sustained loss burst
//! surfaces as an RPC failure the protocol must absorb:
//!
//! * **Ingest** mirrors the single-process oracle's routing exactly
//!   (sequential global ids, per-shard row counters, soft-cap clamping),
//!   then ships each per-shard sub-batch to the owning node as a
//!   [`RpcBody::SpanBatch`]. The receiver applies batches through a
//!   [`BatchReorder`], so retried or reordered batches land in row order
//!   and the remote shard stays byte-identical to the oracle's.
//! * **Assembly** runs Algorithm 1's Phase 1 with the frontier on the
//!   coordinator: each round's newly-discovered keys (one
//!   [`CandidateKeys`] batch, the same batching discipline as
//!   [`phase1_members`](df_server::phase1_members)) probe local shards
//!   in-process and remote shard owners via
//!   [`RpcBody::CandidateRequest`]. A [`RoundTracker`] rejects late or
//!   duplicate responses so retries can never merge a stale round.
//! * **Degraded mode**: when a node stays unreachable past the retry
//!   budget, its shards are recorded in
//!   [`DistributedTrace::missing_shards`] and the query completes with
//!   the partial trace instead of hanging.
//! * **Handoff**: [`Cluster::leave`] moves a departing node's shards to
//!   the remaining members (no degradation afterwards);
//!   [`Cluster::join`] adds a node and rebalances;
//!   [`Cluster::kill`] crashes a node, stranding its shards until the
//!   next query reports them missing.
//!
//! Time is virtual: a binary-heap event loop orders fabric deliveries,
//! RPC timeouts, and scheduled fault heals on one deterministic clock.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet};
use std::net::Ipv4Addr;

use bytes::Bytes;
use df_net::fabric::{Delivery, Fabric, FabricConfig};
use df_net::faults::Fault;
use df_net::topology::{ElementId, Topology};
use df_server::{assemble_members, probe_shard, AssembleConfig, ExpandedKeys};
use df_storage::{ShardPolicy, SpanStore};
use df_types::rpc::{CandidateKeys, RpcBody, RpcEnvelope};
use df_types::wire::{self, WireDecodeError};
use df_types::{DurationNs, FiveTuple, NodeId, Segment, Span, SpanId, TcpFlags, TimeNs, Trace};

use crate::membership::ShardMap;
use crate::tracker::{BatchReorder, RoundTracker};

/// Cluster tunables.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Trace-server nodes to simulate (node 0 is the coordinator).
    pub nodes: usize,
    /// Global shard layout and routing policy (mirrors the oracle's).
    pub policy: ShardPolicy,
    /// Algorithm 1 knobs for the coordinator-side assembly.
    pub assemble: AssembleConfig,
    /// Fabric tunables (fault-level retransmission underneath RPC retry).
    pub fabric: FabricConfig,
    /// Base RPC timeout; attempt `n` waits `rpc_timeout << min(n, 6)`.
    /// The default of 2× the fabric RTO lets one fabric-level
    /// retransmission finish before the cluster-level retry fires.
    pub rpc_timeout: DurationNs,
    /// Cluster-level retries per RPC before it is declared failed.
    pub max_rpc_retries: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            policy: ShardPolicy::with_shards(4),
            assemble: AssembleConfig::default(),
            fabric: FabricConfig::default(),
            rpc_timeout: DurationNs::from_millis(400),
            max_rpc_retries: 5,
        }
    }
}

/// Counters for the distributed protocol (cluster layer only — fabric
/// counters live in [`Fabric::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// RPCs issued (first attempts).
    pub rpcs_sent: u64,
    /// Cluster-level retransmissions after a timeout.
    pub rpc_retries: u64,
    /// RPCs that exhausted their retry budget.
    pub rpcs_failed: u64,
    /// Responses that arrived for an RPC no longer pending (late
    /// duplicates from earlier attempts).
    pub stale_responses: u64,
    /// Spans shipped to shard owners (local or remote).
    pub spans_shipped: u64,
    /// Spans whose batch RPC failed permanently (never became visible).
    pub spans_lost: u64,
    /// Shards moved by join/leave handoff.
    pub handoffs: u64,
    /// Queries answered with a non-empty `missing_shards`.
    pub degraded_queries: u64,
}

/// The answer to a distributed trace query: possibly partial.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedTrace {
    /// The assembled (partial) trace.
    pub trace: Trace,
    /// Shards that could not be consulted (owner unreachable or the
    /// start span's rows were lost in ingest). Sorted, deduplicated.
    pub missing_shards: Vec<u16>,
    /// Phase 1 rounds actually run.
    pub rounds: u32,
}

impl DistributedTrace {
    /// Whether every shard answered (the trace is not degraded).
    pub fn is_complete(&self) -> bool {
        self.missing_shards.is_empty()
    }
}

/// One simulated trace-server node.
struct NodeState {
    topo_id: NodeId,
    ip: Ipv4Addr,
    alive: bool,
    shards: BTreeMap<u16, SpanStore>,
    reorder: HashMap<u16, BatchReorder<Span>>,
}

#[derive(Debug)]
enum EventKind {
    Deliver(Delivery),
    RpcTimeout { rpc_id: u64, attempt: u32 },
    Heal(ElementId),
}

struct Event {
    at: TimeNs,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct PendingRpc {
    to: usize,
    /// The framed request, encoded exactly once at send time. Retries
    /// retransmit these bytes verbatim — a SpanBatch is never re-encoded.
    encoded: Bytes,
    attempt: u32,
    /// Span count for loss accounting (SpanBatch only), read from the
    /// DFW1 batch header without decoding the batch.
    span_count: u64,
}

enum RpcResult {
    Ok(RpcBody),
    Failed,
}

/// The cluster. See the module docs for the protocol.
pub struct Cluster {
    /// The network between the nodes (public like
    /// [`Fabric::topology`]: tests inject faults and read taps/stats).
    pub fabric: Fabric,
    cfg: ClusterConfig,
    nodes: Vec<NodeState>,
    map: ShardMap,
    // Coordinator routing state — mirrors the oracle's `RouteState`.
    route: Vec<(u16, u32)>,
    shard_rows: Vec<u32>,
    clamped: u64,
    // Virtual time.
    clock: TimeNs,
    heap: BinaryHeap<Event>,
    next_event_seq: u64,
    // RPC layer.
    next_rpc_id: u64,
    next_tcp_seq: u32,
    pending: HashMap<u64, PendingRpc>,
    completed: HashMap<u64, RpcResult>,
    stats: ClusterStats,
}

impl Cluster {
    /// Build a cluster of `cfg.nodes` simple nodes (one pod each, one
    /// rack), shards spread round-robin.
    pub fn new(cfg: ClusterConfig) -> Self {
        let n = cfg.nodes.clamp(1, 200);
        let mut topo = Topology::new();
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let (topo_id, ip) = Self::add_node_to(&mut topo, i);
            nodes.push(NodeState {
                topo_id,
                ip,
                alive: true,
                shards: BTreeMap::new(),
                reorder: HashMap::new(),
            });
        }
        let shards = cfg.policy.shards;
        let map = ShardMap::round_robin(shards, n);
        for s in 0..shards {
            nodes[map.owner(s as u16)]
                .shards
                .insert(s as u16, SpanStore::new());
        }
        Cluster {
            fabric: Fabric::new(topo, cfg.fabric.clone()),
            nodes,
            map,
            route: Vec::new(),
            shard_rows: vec![0; shards],
            clamped: 0,
            clock: TimeNs(0),
            heap: BinaryHeap::new(),
            next_event_seq: 0,
            next_rpc_id: 1,
            next_tcp_seq: 1,
            pending: HashMap::new(),
            completed: HashMap::new(),
            stats: ClusterStats::default(),
            cfg,
        }
    }

    fn add_node_to(topo: &mut Topology, i: usize) -> (NodeId, Ipv4Addr) {
        let node_ip = Ipv4Addr::new(192, 168, 10, (i + 1) as u8);
        let pod_ip = Ipv4Addr::new(10, 50, i as u8, 1);
        let id = topo.add_simple_node(&format!("trace-server-{i}"), node_ip);
        topo.add_pod(
            id,
            &format!("df-server-{i}"),
            pod_ip,
            "deepflow",
            "df-server",
            "df-server-svc",
        );
        (id, pod_ip)
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    fn push_event(&mut self, at: TimeNs, kind: EventKind) {
        let seq = self.next_event_seq;
        self.next_event_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    fn step(&mut self) -> bool {
        let Some(ev) = self.heap.pop() else {
            return false;
        };
        self.clock = self.clock.max(ev.at);
        match ev.kind {
            EventKind::Deliver(d) => self.on_deliver(d),
            EventKind::RpcTimeout { rpc_id, attempt } => self.on_timeout(rpc_id, attempt),
            EventKind::Heal(el) => {
                self.fabric.faults.clear(&el);
            }
        }
        true
    }

    /// Drain every scheduled event (deliveries, timeouts, heals).
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    fn run_until_settled(&mut self, ids: &[u64]) {
        while ids.iter().any(|id| !self.completed.contains_key(id)) {
            if !self.step() {
                // Defensive: nothing left to happen — fail the leftovers
                // rather than spin (a settled cluster must never hang).
                for id in ids {
                    if !self.completed.contains_key(id) {
                        self.pending.remove(id);
                        self.completed.insert(*id, RpcResult::Failed);
                        self.stats.rpcs_failed += 1;
                    }
                }
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // RPC layer
    // ------------------------------------------------------------------

    fn timeout_for(&self, attempt: u32) -> DurationNs {
        DurationNs(self.cfg.rpc_timeout.0 << attempt.min(6))
    }

    fn send_rpc(&mut self, to: usize, body: RpcBody) -> u64 {
        let rpc_id = self.next_rpc_id;
        self.next_rpc_id += 1;
        self.stats.rpcs_sent += 1;
        let span_count = match &body {
            RpcBody::SpanBatch { wire, .. } => wire::peek_span_count(wire).unwrap_or(0),
            _ => 0,
        };
        let encoded = RpcEnvelope { rpc_id, body }.encode();
        self.pending.insert(
            rpc_id,
            PendingRpc {
                to,
                encoded,
                attempt: 0,
                span_count,
            },
        );
        self.transmit_rpc(rpc_id, to, 0);
        rpc_id
    }

    fn transmit_rpc(&mut self, rpc_id: u64, to: usize, attempt: u32) {
        let payload = self.pending[&rpc_id].encoded.clone();
        let (src, dst) = (self.nodes[0].ip, self.nodes[to].ip);
        self.transmit_segment(src, dst, payload, attempt > 0);
        let deadline = self.clock + self.timeout_for(attempt);
        self.push_event(deadline, EventKind::RpcTimeout { rpc_id, attempt });
    }

    fn transmit_segment(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        payload: Bytes,
        retransmission: bool,
    ) {
        let seq = self.next_tcp_seq;
        self.next_tcp_seq = self.next_tcp_seq.wrapping_add(payload.len().max(1) as u32);
        let seg = Segment {
            five_tuple: FiveTuple::tcp(src, 46000, dst, 7700),
            seq,
            ack: 0,
            flags: TcpFlags::PSH_ACK,
            window: 65535,
            payload,
            is_retransmission: retransmission,
        };
        let deliveries = self.fabric.transmit(seg, self.clock);
        for d in deliveries {
            self.push_event(d.at, EventKind::Deliver(d));
        }
    }

    fn on_timeout(&mut self, rpc_id: u64, attempt: u32) {
        let Some(p) = self.pending.get(&rpc_id) else {
            return; // already answered
        };
        if p.attempt != attempt {
            return; // superseded by a newer attempt's timer
        }
        if p.attempt >= self.cfg.max_rpc_retries {
            let p = self.pending.remove(&rpc_id).expect("checked above");
            self.completed.insert(rpc_id, RpcResult::Failed);
            self.stats.rpcs_failed += 1;
            self.stats.spans_lost += p.span_count;
            return;
        }
        let (to, next_attempt) = {
            let p = self.pending.get_mut(&rpc_id).expect("checked above");
            p.attempt += 1;
            (p.to, p.attempt)
        };
        self.stats.rpc_retries += 1;
        self.transmit_rpc(rpc_id, to, next_attempt);
    }

    fn on_deliver(&mut self, d: Delivery) {
        let Some(idx) = self.nodes.iter().position(|n| n.topo_id == d.node) else {
            return;
        };
        if !self.nodes[idx].alive || d.segment.flags.rst {
            return; // crashed node, or a fault-injected RST (not an RPC)
        }
        let Ok(env) = RpcEnvelope::decode(&d.segment.payload) else {
            return;
        };
        match env.body {
            RpcBody::SpanBatch { .. }
            | RpcBody::CandidateRequest { .. }
            | RpcBody::SpanFetch { .. } => {
                let resp = self.handle_request(idx, env.body);
                let (src, dst) = (self.nodes[idx].ip, self.nodes[0].ip);
                let payload = RpcEnvelope {
                    rpc_id: env.rpc_id,
                    body: resp,
                }
                .encode();
                self.transmit_segment(src, dst, payload, false);
            }
            _ => {
                if self.pending.remove(&env.rpc_id).is_some() {
                    self.completed.insert(env.rpc_id, RpcResult::Ok(env.body));
                } else {
                    self.stats.stale_responses += 1;
                }
            }
        }
    }

    /// A node answers a request against its local shards. Requests are
    /// idempotent: SpanBatch is deduplicated by the reorder buffer, the
    /// two reads are stateless — so a retried RPC handled twice is safe.
    fn handle_request(&mut self, idx: usize, body: RpcBody) -> RpcBody {
        match body {
            RpcBody::SpanBatch {
                shard,
                start_row,
                wire: batch,
            } => {
                // The envelope decoder validated the DFW1 header; a batch
                // that still fails to decode here is dropped (and acked
                // with count 0) rather than crashing the node.
                let spans = wire::decode_batch(&batch).unwrap_or_default();
                let count = spans.len() as u32;
                Self::apply_batch(&mut self.nodes[idx], shard, start_row, spans);
                RpcBody::SpanBatchAck {
                    shard,
                    start_row,
                    count,
                }
            }
            RpcBody::CandidateRequest { round, keys } => {
                let node = &self.nodes[idx];
                let empty = HashSet::new();
                let mut candidates = Vec::new();
                for (&si, store) in &node.shards {
                    for row in probe_shard(si, store, &keys, &empty) {
                        candidates.push(df_types::rpc::CandidateSpan {
                            shard: si,
                            row,
                            span: store[row].clone(),
                        });
                    }
                }
                RpcBody::CandidateResponse { round, candidates }
            }
            RpcBody::SpanFetch { shard, row } => {
                let span = self.nodes[idx]
                    .shards
                    .get(&shard)
                    .and_then(|s| s.get_row(row))
                    .cloned()
                    .map(Box::new);
                RpcBody::SpanFetchResponse { shard, row, span }
            }
            other => other, // responses never reach handle_request
        }
    }

    fn apply_batch(node: &mut NodeState, shard: u16, start_row: u32, spans: Vec<Span>) {
        let Some(store) = node.shards.get_mut(&shard) else {
            return; // shard handed off; the stale batch is dropped
        };
        let runs =
            node.reorder
                .entry(shard)
                .or_default()
                .offer(store.len() as u32, start_row, spans);
        for run in runs {
            store.insert_routed_batch(run);
        }
    }

    // ------------------------------------------------------------------
    // Ingest
    // ------------------------------------------------------------------

    /// Route and store a batch of spans, shipping remote sub-batches over
    /// the fabric. Id assignment and shard routing replicate the
    /// single-process oracle exactly, so a fault-free cluster holds the
    /// same rows in the same shards.
    pub fn ingest(&mut self, spans: Vec<Span>) -> Vec<SpanId> {
        if spans.is_empty() {
            return Vec::new();
        }
        let mut ids = Vec::with_capacity(spans.len());
        let mut per_shard: Vec<Option<(u32, Vec<Span>)>> = vec![None; self.cfg.policy.shards];
        for mut span in spans {
            let id = SpanId(self.route.len() as u64 + 1);
            span.span_id = id;
            let shard = self.pick_shard(self.cfg.policy.route(&span));
            let row = self.shard_rows[shard as usize];
            self.shard_rows[shard as usize] += 1;
            self.route.push((shard, row));
            per_shard[shard as usize]
                .get_or_insert_with(|| (row, Vec::new()))
                .1
                .push(span);
            ids.push(id);
        }
        let mut rpc_ids = Vec::new();
        for (si, sub) in per_shard.into_iter().enumerate() {
            let Some((start_row, spans)) = sub else {
                continue;
            };
            self.stats.spans_shipped += spans.len() as u64;
            let owner = self.map.owner(si as u16);
            if owner == 0 {
                Self::apply_batch(&mut self.nodes[0], si as u16, start_row, spans);
            } else {
                // Encoded once here; retries retransmit the same bytes.
                let body = RpcBody::span_batch(si as u16, start_row, &spans);
                rpc_ids.push(self.send_rpc(owner, body));
            }
        }
        self.run_until_settled(&rpc_ids);
        for id in rpc_ids {
            self.completed.remove(&id);
        }
        ids
    }

    /// Ingest a DFW1-encoded batch as an agent would deliver it: decode,
    /// then route exactly like [`Cluster::ingest`]. Per-shard sub-batches
    /// bound for remote owners are re-framed (routing splits the batch),
    /// encoded once, and retried verbatim.
    pub fn ingest_wire(&mut self, batch: &[u8]) -> Result<Vec<SpanId>, WireDecodeError> {
        Ok(self.ingest(wire::decode_batch(batch)?))
    }

    /// The oracle's `RouteState::pick_shard`, verbatim.
    fn pick_shard(&mut self, preferred: usize) -> u16 {
        if (self.shard_rows[preferred] as usize) < self.cfg.policy.max_shard_rows {
            return preferred as u16;
        }
        self.clamped += 1;
        self.shard_rows
            .iter()
            .enumerate()
            .min_by_key(|(_, &rows)| rows)
            .map(|(i, _)| i as u16)
            .unwrap_or(preferred as u16)
    }

    // ------------------------------------------------------------------
    // Distributed assembly (Algorithm 1, Phase 1 over RPC)
    // ------------------------------------------------------------------

    /// Assemble the trace containing `start`, probing remote shards over
    /// the fabric. Never hangs: an unreachable owner fails after the
    /// retry budget and its shards are reported in `missing_shards`.
    pub fn assemble(&mut self, start: SpanId) -> DistributedTrace {
        let mut missing: BTreeSet<u16> = BTreeSet::new();
        let mut failed_nodes: HashSet<usize> = HashSet::new();

        let Some(&(s_shard, s_row)) = start
            .raw()
            .checked_sub(1)
            .and_then(|i| self.route.get(i as usize))
        else {
            return DistributedTrace {
                trace: Trace::default(),
                missing_shards: Vec::new(),
                rounds: 0,
            };
        };
        let Some(start_span) = self.fetch_span(s_shard, s_row, &mut failed_nodes, &mut missing)
        else {
            self.stats.degraded_queries += 1;
            return DistributedTrace {
                trace: Trace::default(),
                missing_shards: missing.into_iter().collect(),
                rounds: 0,
            };
        };

        let mut seen: HashSet<(u16, u32)> = HashSet::new();
        seen.insert((s_shard, s_row));
        let mut span_of: HashMap<(u16, u32), Span> = HashMap::new();
        span_of.insert((s_shard, s_row), start_span);
        let mut members: Vec<(u16, u32)> = vec![(s_shard, s_row)];
        let mut frontier = members.clone();
        let mut keys = ExpandedKeys::default();
        let mut tracker = RoundTracker::new();
        let mut rounds = 0u32;

        for iter in 0..self.cfg.assemble.iterations {
            if members.len() >= self.cfg.assemble.max_spans {
                break;
            }
            let mut batch = CandidateKeys::default();
            for loc in &frontier {
                keys.collect(&mut batch, &span_of[loc]);
            }
            if batch.is_empty() {
                break;
            }
            rounds += 1;

            // Local probes: the coordinator's own shards, against the
            // real visited set.
            let mut per_shard: BTreeMap<u16, Vec<(u32, Option<Span>)>> = BTreeMap::new();
            for (&si, store) in &self.nodes[0].shards {
                for row in probe_shard(si, store, &batch, &seen) {
                    per_shard.entry(si).or_default().push((row, None));
                }
            }

            // Remote probes: one CandidateRequest per live shard owner.
            let mut round_rpcs: Vec<(u64, usize)> = Vec::new();
            for idx in 1..self.nodes.len() {
                if failed_nodes.contains(&idx) || self.map.shards_of(idx).is_empty() {
                    continue;
                }
                let id = self.send_rpc(
                    idx,
                    RpcBody::CandidateRequest {
                        round: iter as u32,
                        keys: batch.clone(),
                    },
                );
                round_rpcs.push((id, idx));
            }
            let ids: Vec<u64> = round_rpcs.iter().map(|&(id, _)| id).collect();
            tracker.begin_round(iter as u32, &ids);
            self.run_until_settled(&ids);
            for (id, idx) in round_rpcs {
                match self.completed.remove(&id) {
                    Some(RpcResult::Ok(RpcBody::CandidateResponse { round, candidates }))
                        if tracker.accept(round, id) =>
                    {
                        for c in candidates {
                            per_shard
                                .entry(c.shard)
                                .or_default()
                                .push((c.row, Some(c.span)));
                        }
                    }
                    _ => {
                        // Timed out, wrong body, or a round-label the
                        // tracker refused: degrade this node's shards.
                        failed_nodes.insert(idx);
                        missing.extend(self.map.shards_of(idx));
                    }
                }
            }

            // Merge in global shard order — the same order the oracle's
            // `phase1_members` produces, so member sets match under caps.
            let mut next: Vec<(u16, u32)> = Vec::new();
            for (si, rows) in per_shard {
                for (row, span) in rows {
                    if seen.insert((si, row)) {
                        let span = span.unwrap_or_else(|| self.nodes[0].shards[&si][row].clone());
                        span_of.insert((si, row), span);
                        next.push((si, row));
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            members.extend_from_slice(&next);
            frontier = next;
        }

        let spans: Vec<Span> = members
            .iter()
            .map(|loc| span_of.remove(loc).expect("member without span"))
            .collect();
        let trace = assemble_members(spans, start, &self.cfg.assemble);
        if !missing.is_empty() {
            self.stats.degraded_queries += 1;
        }
        DistributedTrace {
            trace,
            missing_shards: missing.into_iter().collect(),
            rounds,
        }
    }

    fn fetch_span(
        &mut self,
        shard: u16,
        row: u32,
        failed_nodes: &mut HashSet<usize>,
        missing: &mut BTreeSet<u16>,
    ) -> Option<Span> {
        let owner = self.map.owner(shard);
        if owner == 0 {
            return self.nodes[0]
                .shards
                .get(&shard)
                .and_then(|s| s.get_row(row))
                .cloned();
        }
        let id = self.send_rpc(owner, RpcBody::SpanFetch { shard, row });
        self.run_until_settled(&[id]);
        match self.completed.remove(&id) {
            Some(RpcResult::Ok(RpcBody::SpanFetchResponse { span: Some(s), .. })) => Some(*s),
            Some(RpcResult::Ok(RpcBody::SpanFetchResponse { span: None, .. })) => {
                // The owner answered but the row never arrived — the
                // batch was lost in ingest. Degrade honestly.
                missing.insert(shard);
                None
            }
            _ => {
                failed_nodes.insert(owner);
                missing.extend(self.map.shards_of(owner));
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // Membership: join / leave / kill
    // ------------------------------------------------------------------

    /// Gracefully remove a node: its shards (stores and reorder buffers)
    /// hand off to the least-loaded remaining members, then the node goes
    /// offline. Queries after a `leave` are *not* degraded. Returns the
    /// number of shards moved. The coordinator (node 0) cannot leave.
    pub fn leave(&mut self, idx: usize) -> usize {
        assert!(idx != 0, "coordinator cannot leave");
        assert!(self.nodes[idx].alive, "node already offline");
        let shards = self.map.shards_of(idx);
        let moved = shards.len();
        for s in shards {
            let store = self.nodes[idx].shards.remove(&s).expect("map/store agree");
            let reorder = self.nodes[idx].reorder.remove(&s);
            let target = self
                .nodes
                .iter()
                .enumerate()
                .filter(|&(i, n)| i != idx && n.alive)
                .min_by_key(|&(i, n)| (n.shards.len(), i))
                .map(|(i, _)| i)
                .expect("at least the coordinator remains");
            self.map.reassign(s, target);
            self.nodes[target].shards.insert(s, store);
            if let Some(r) = reorder {
                if r.pending() > 0 {
                    self.nodes[target].reorder.insert(s, r);
                }
            }
            self.stats.handoffs += 1;
        }
        self.nodes[idx].alive = false;
        moved
    }

    /// Add a node and rebalance: shards move from the most-loaded members
    /// until the newcomer holds its fair share. Returns the new node's
    /// index.
    pub fn join(&mut self) -> usize {
        let idx = self.nodes.len();
        let (topo_id, ip) = Self::add_node_to(&mut self.fabric.topology, idx);
        self.nodes.push(NodeState {
            topo_id,
            ip,
            alive: true,
            shards: BTreeMap::new(),
            reorder: HashMap::new(),
        });
        let alive = self.nodes.iter().filter(|n| n.alive).count();
        let target = self.map.shard_count() / alive;
        while self.nodes[idx].shards.len() < target {
            let Some((donor, _)) = self
                .nodes
                .iter()
                .enumerate()
                .filter(|&(i, n)| i != idx && n.alive && n.shards.len() > target)
                .max_by_key(|&(i, n)| (n.shards.len(), usize::MAX - i))
            else {
                break;
            };
            let &s = self.nodes[donor]
                .shards
                .keys()
                .next_back()
                .expect("donor non-empty");
            let store = self.nodes[donor].shards.remove(&s).expect("key just read");
            let reorder = self.nodes[donor].reorder.remove(&s);
            self.map.reassign(s, idx);
            self.nodes[idx].shards.insert(s, store);
            if let Some(r) = reorder {
                self.nodes[idx].reorder.insert(s, r);
            }
            self.stats.handoffs += 1;
        }
        idx
    }

    /// Crash a node: it stops answering but its shards stay assigned to
    /// it, so subsequent queries degrade with those shards missing. The
    /// coordinator (node 0) cannot be killed.
    pub fn kill(&mut self, idx: usize) {
        assert!(idx != 0, "coordinator cannot be killed");
        self.nodes[idx].alive = false;
    }

    // ------------------------------------------------------------------
    // Fault helpers
    // ------------------------------------------------------------------

    /// Cut node `idx` off from the coordinator: a [`Fault::Partition`]
    /// at the node's NIC black-holes both directions. Returns the faulted
    /// element so the caller can [`Cluster::schedule_heal`] it.
    pub fn partition_node(&mut self, idx: usize) -> ElementId {
        let el = ElementId::NodeNic(self.nodes[idx].topo_id);
        self.fabric.faults.inject(
            el.clone(),
            Fault::Partition {
                peers: vec![self.nodes[0].ip],
            },
        );
        el
    }

    /// Clear the fault on `element` after `after` of virtual time (the
    /// heal fires inside whatever retry loop is then running).
    pub fn schedule_heal(&mut self, element: ElementId, after: DurationNs) {
        let at = self.clock + after;
        self.push_event(at, EventKind::Heal(element));
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Protocol counters.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// Current virtual time.
    pub fn clock(&self) -> TimeNs {
        self.clock
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Nodes ever added (including departed/crashed ones).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether a node is still answering.
    pub fn is_alive(&self, idx: usize) -> bool {
        self.nodes[idx].alive
    }

    /// The node currently owning `shard`.
    pub fn shard_owner(&self, shard: u16) -> usize {
        self.map.owner(shard)
    }

    /// Spans routed through ingest (whether or not their batch survived).
    pub fn len(&self) -> usize {
        self.route.len()
    }

    /// Whether nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.route.is_empty()
    }

    /// Spans routed away from their preferred shard by the row cap.
    pub fn routing_clamped(&self) -> u64 {
        self.clamped
    }

    /// Rows actually present per shard, ascending by shard — for
    /// differential tests against the oracle's `shard_sizes`.
    pub fn shard_sizes(&self) -> Vec<usize> {
        (0..self.map.shard_count() as u16)
            .map(|s| {
                self.nodes[self.map.owner(s)]
                    .shards
                    .get(&s)
                    .map(|st| st.len())
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::span::TapSide;

    fn linked_pair() -> Vec<Span> {
        let mut client = Span::synthetic(TapSide::ClientProcess, 1_000, 9_000);
        client.tcp_seq_req = Some(42);
        let mut server = Span::synthetic(TapSide::ServerProcess, 2_000, 8_000);
        server.tcp_seq_req = Some(42);
        vec![client, server]
    }

    #[test]
    fn two_node_cluster_assembles_linked_spans() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let ids = cluster.ingest(linked_pair());
        let result = cluster.assemble(ids[1]);
        assert!(result.is_complete());
        assert_eq!(result.trace.len(), 2);
        assert_eq!(result.trace.spans[1].parent, Some(ids[0]));
        assert_eq!(cluster.stats().spans_lost, 0);
        assert!(cluster.stats().rpcs_sent > 0, "ingest or probe must RPC");
    }

    #[test]
    fn single_node_cluster_never_rpcs() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 1,
            ..ClusterConfig::default()
        });
        let ids = cluster.ingest(linked_pair());
        let result = cluster.assemble(ids[0]);
        assert!(result.is_complete());
        assert_eq!(result.trace.len(), 2);
        assert_eq!(cluster.stats().rpcs_sent, 0);
    }

    #[test]
    fn unknown_span_id_yields_empty_complete_trace() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let result = cluster.assemble(SpanId(99));
        assert!(result.is_complete());
        assert_eq!(result.trace.len(), 0);
    }

    #[test]
    fn leave_hands_shards_off_without_degrading() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 3,
            ..ClusterConfig::default()
        });
        let ids = cluster.ingest(linked_pair());
        let moved = cluster.leave(1);
        assert!(moved > 0);
        assert_eq!(cluster.stats().handoffs, moved as u64);
        let result = cluster.assemble(ids[1]);
        assert!(result.is_complete(), "handoff must not lose shards");
        assert_eq!(result.trace.len(), 2);
    }

    #[test]
    fn join_rebalances_shards_to_the_newcomer() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 2,
            policy: ShardPolicy::with_shards(6),
            ..ClusterConfig::default()
        });
        let ids = cluster.ingest(linked_pair());
        let idx = cluster.join();
        assert_eq!(idx, 2);
        assert!(
            !cluster.map.shards_of(idx).is_empty(),
            "newcomer owns shards"
        );
        let result = cluster.assemble(ids[0]);
        assert!(result.is_complete());
        assert_eq!(result.trace.len(), 2);
    }

    #[test]
    fn killed_node_degrades_queries_with_missing_shards() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 2,
            ..ClusterConfig::default()
        });
        let ids = cluster.ingest(linked_pair());
        cluster.kill(1);
        let result = cluster.assemble(ids[0]);
        assert_eq!(result.missing_shards, cluster.map.shards_of(1));
        assert!(cluster.stats().rpcs_failed > 0);
        assert!(cluster.stats().degraded_queries > 0);
    }
}
