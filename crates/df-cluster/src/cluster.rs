//! The simulated trace-server cluster: N nodes on a df-net fabric, with
//! node 0 acting as ingest front-end and query coordinator.
//!
//! Every cross-node interaction is a real RPC over the fabric: the request
//! is framed by [`RpcEnvelope`], carried in a TCP segment through
//! [`Fabric::transmit`], and subject to the fabric's fault table. On top
//! of the fabric's own eager retransmission cascade the cluster runs its
//! *own* retry loop — per-attempt timeout with exponential backoff — so a
//! black-holed path ([`Fault::Partition`]) or a sustained loss burst
//! surfaces as an RPC failure the protocol must absorb:
//!
//! * **Ingest** mirrors the single-process oracle's routing exactly
//!   (sequential global ids, per-shard row counters, soft-cap clamping),
//!   then ships each per-shard sub-batch to the shard's *primary* as a
//!   [`RpcBody::SpanBatch`]. The receiver applies batches through a
//!   [`BatchReorder`], so retried or reordered batches land in row order
//!   and every copy of the shard stays byte-identical to the oracle's.
//! * **Replication**: with `replication_factor ≥ 2` each shard has a
//!   primary plus R−1 replicas. The primary forwards the verbatim DFW1
//!   bytes to its co-owners as [`RpcBody::ReplicateBatch`] and
//!   acknowledges the ingest RPC only once a configurable write quorum
//!   of copies ([`WriteQuorum`]) has applied — or, to never hang, once
//!   every replication RPC has resolved (an under-quorum ack counted in
//!   [`ClusterStats::quorum_shortfalls`]). If a primary stays
//!   unreachable past the retry budget, ingest *fails over* to the next
//!   live owner instead of dropping the batch; spans are counted lost
//!   only when every owner is exhausted.
//! * **Anti-entropy**: [`Cluster::anti_entropy_round`] has each replica
//!   compare per-shard `(row_watermark, content_digest)` summaries with
//!   its co-owners ([`RpcBody::ShardSummaryRequest`]) and pull missing
//!   row ranges ([`RpcBody::RowRangeRequest`]) through the same reorder
//!   buffer as ingest, so a lagging copy converges byte-identically.
//! * **Assembly** runs Algorithm 1's Phase 1 with the frontier on the
//!   coordinator against a *pinned ownership snapshot* (a concurrent
//!   join/leave cannot redirect a query mid-flight): each round's
//!   newly-discovered keys probe local shards in-process and every
//!   remote copy via [`RpcBody::CandidateRequest`]; a [`RoundTracker`]
//!   rejects late or duplicate responses. Point reads fail over from a
//!   dead primary to its live replicas.
//! * **Degraded mode**: a shard is reported in
//!   [`DistributedTrace::missing_shards`] only when *every* owner is
//!   unreachable or lost the rows — with RF ≥ 2 a single node failure
//!   degrades nothing. Owners that exhaust a retry budget enter a
//!   bounded probation ([`ClusterConfig::suspect_probation`]) during
//!   which new RPCs to them fast-fail after a single base-timeout probe
//!   instead of the full backoff ladder.
//! * **Crash recovery**: nodes spill cold time buckets to DFSPANS1
//!   segment files ([`Cluster::spill_node`]); a crashed node restarts
//!   via [`Cluster::restart_node`], which re-registers every valid
//!   segment file from its catalog scan (corrupt files counted, never
//!   panicked over) and serves cold spans without re-fetching them —
//!   anti-entropy then backfills only the hot tail.
//!
//! Time is virtual: a binary-heap event loop orders fabric deliveries,
//! RPC timeouts, scheduled fault heals, and scheduled membership events
//! (kill/join) on one deterministic clock.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet};
use std::io;
use std::net::Ipv4Addr;
use std::path::PathBuf;

use bytes::Bytes;
use df_check::sync::Arc;
use df_net::fabric::{Delivery, Fabric, FabricConfig};
use df_net::faults::Fault;
use df_net::topology::{ElementId, Topology};
use df_server::{assemble_members, probe_shard, AssembleConfig, ExpandedKeys};
use df_storage::{
    persist, BufferPool, BufferPoolConfig, RecoverStats, ShardPolicy, SpanStore, SpillStats,
};
use df_types::rpc::{CandidateKeys, RpcBody, RpcEnvelope};
use df_types::wire::{self, WireDecodeError};
use df_types::{DurationNs, FiveTuple, NodeId, Segment, Span, SpanId, TcpFlags, TimeNs, Trace};

use crate::membership::ShardMap;
use crate::replication::{self, WriteQuorum};
use crate::tracker::{BatchReorder, RoundTracker};

/// Frame budget for each node's tier buffer pool.
const TIER_POOL_FRAMES: usize = 64;

/// Cluster tunables.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Trace-server nodes to simulate (node 0 is the coordinator).
    pub nodes: usize,
    /// Global shard layout and routing policy (mirrors the oracle's).
    pub policy: ShardPolicy,
    /// Algorithm 1 knobs for the coordinator-side assembly.
    pub assemble: AssembleConfig,
    /// Fabric tunables (fault-level retransmission underneath RPC retry).
    pub fabric: FabricConfig,
    /// Base RPC timeout; attempt `n` waits `rpc_timeout << min(n, 6)`.
    /// The default of 2× the fabric RTO lets one fabric-level
    /// retransmission finish before the cluster-level retry fires.
    pub rpc_timeout: DurationNs,
    /// Cluster-level retries per RPC before it is declared failed.
    pub max_rpc_retries: u32,
    /// Copies of every shard (primary + replicas), clamped to the node
    /// count. 1 reproduces the pre-replication single-owner protocol.
    pub replication_factor: usize,
    /// Copies (including the primary's local apply) that must have
    /// applied a batch before ingest is acknowledged. 0 means *all*
    /// owners; otherwise clamped to `[1, replication_factor]`.
    pub write_quorum: usize,
    /// How long an owner that exhausted a retry budget stays suspected.
    /// While suspected, new RPCs to it fast-fail after a single
    /// base-timeout probe; the probe succeeding (e.g. after a partition
    /// heals) clears the suspicion immediately.
    pub suspect_probation: DurationNs,
    /// Upper bound on rows per anti-entropy [`RpcBody::RowRangeRequest`].
    pub anti_entropy_pull_max: u32,
    /// Base directory for tiered (spill/recovery) segment files; each
    /// node uses the `node{idx}` subdirectory. Required by
    /// [`Cluster::spill_node`] and [`Cluster::restart_node`].
    pub tier_dir: Option<PathBuf>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            policy: ShardPolicy::with_shards(4),
            assemble: AssembleConfig::default(),
            fabric: FabricConfig::default(),
            rpc_timeout: DurationNs::from_millis(400),
            max_rpc_retries: 5,
            replication_factor: 1,
            write_quorum: 0,
            suspect_probation: DurationNs::from_millis(60_000),
            anti_entropy_pull_max: 512,
            tier_dir: None,
        }
    }
}

/// Counters for the distributed protocol (cluster layer only — fabric
/// counters live in [`Fabric::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// RPCs issued (first attempts).
    pub rpcs_sent: u64,
    /// Cluster-level retransmissions after a timeout.
    pub rpc_retries: u64,
    /// RPCs that exhausted their retry budget.
    pub rpcs_failed: u64,
    /// Responses that arrived for an RPC no longer pending (late
    /// duplicates from earlier attempts).
    pub stale_responses: u64,
    /// Spans shipped to shard owners (local or remote).
    pub spans_shipped: u64,
    /// Spans whose batch failed permanently on *every* owner (never
    /// became visible anywhere).
    pub spans_lost: u64,
    /// Shards moved by join/leave handoff (owner slots rewritten).
    pub handoffs: u64,
    /// Queries answered with a non-empty `missing_shards`.
    pub degraded_queries: u64,
    /// RPCs issued on the compressed single-probe ladder because the
    /// destination was under suspicion.
    pub fast_fails: u64,
    /// Ingest batches re-targeted to the next owner after the previous
    /// owner exhausted its retry budget.
    pub failovers: u64,
    /// ReplicateBatch RPCs issued by primaries.
    pub replicated_batches: u64,
    /// Writes acknowledged below their configured quorum (every
    /// remaining replication RPC had failed).
    pub quorum_shortfalls: u64,
    /// Anti-entropy row-range pulls issued.
    pub anti_entropy_pulls: u64,
    /// Spans backfilled into lagging replicas by anti-entropy.
    pub backfilled_spans: u64,
    /// Segment files re-registered by [`Cluster::restart_node`].
    pub recovered_segments: u64,
    /// Segment files rejected (corrupt/torn) during restart recovery.
    pub recovered_rejects: u64,
}

/// The answer to a distributed trace query: possibly partial.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedTrace {
    /// The assembled (partial) trace.
    pub trace: Trace,
    /// Shards that could not be consulted (every owner unreachable, or
    /// the rows were lost in ingest). Sorted, deduplicated.
    pub missing_shards: Vec<u16>,
    /// Phase 1 rounds actually run.
    pub rounds: u32,
}

impl DistributedTrace {
    /// Whether every shard answered (the trace is not degraded).
    pub fn is_complete(&self) -> bool {
        self.missing_shards.is_empty()
    }
}

/// What one [`Cluster::anti_entropy_round`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AntiEntropyReport {
    /// Row-range pulls issued by lagging replicas.
    pub pulls: u64,
    /// Spans backfilled.
    pub spans: u64,
    /// Replica pairs that matched on row count but differed on content
    /// digest (should never happen; a detector, not a repair path).
    pub divergent: u64,
    /// Summary or pull RPCs that failed (peer unreachable).
    pub unreachable: u64,
}

/// A node's tiered-storage handle: the buffer pool caching its decoded
/// segments and the directory its segment files live in.
struct NodeTier {
    pool: Arc<BufferPool>,
    dir: PathBuf,
}

/// One simulated trace-server node.
struct NodeState {
    topo_id: NodeId,
    ip: Ipv4Addr,
    alive: bool,
    shards: BTreeMap<u16, SpanStore>,
    reorder: HashMap<u16, BatchReorder<Span>>,
    tier: Option<NodeTier>,
}

#[derive(Debug)]
enum EventKind {
    Deliver(Delivery),
    RpcTimeout { rpc_id: u64, attempt: u32 },
    Heal(ElementId),
    Kill(usize),
    Join,
}

struct Event {
    at: TimeNs,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Why an RPC was issued — decides what happens when it resolves.
#[derive(Debug, Clone, Copy)]
enum RpcPurpose {
    /// A synchronous caller is waiting on the `completed` map
    /// (assembly probes, point fetches, anti-entropy).
    Driver,
    /// An ingest shipment; failure fails over to the next owner.
    Ship(u64),
    /// A primary→replica forward; resolution feeds the write's quorum.
    Replication(u64),
}

struct PendingRpc {
    from: usize,
    to: usize,
    /// The framed request, encoded exactly once at send time. Retries
    /// retransmit these bytes verbatim — a SpanBatch is never re-encoded.
    encoded: Bytes,
    attempt: u32,
    /// Total attempts allowed: the full ladder normally, a single
    /// base-timeout probe while the destination is under suspicion.
    max_attempts: u32,
    purpose: RpcPurpose,
}

enum RpcResult {
    Ok(RpcBody),
    Failed,
}

/// Who gets told when a replicated write reaches its quorum.
#[derive(Debug, Clone, Copy)]
enum WriteReply {
    /// A remote requester's SpanBatch RPC: send the deferred ack.
    Rpc { requester: usize, rpc_id: u64 },
    /// A coordinator-primary ingest shipment: mark the ship done.
    Ship(u64),
}

/// A replicated write in flight at its primary.
struct PendingWrite {
    /// The node that applied locally and is forwarding (must still be
    /// alive to ack — a crashed primary's writes die with it).
    node: usize,
    shard: u16,
    start_row: u32,
    count: u32,
    quorum: WriteQuorum,
    reply: WriteReply,
}

/// One per-shard ingest sub-batch working through the owner list.
struct Ship {
    shard: u16,
    start_row: u32,
    count: u32,
    /// The DFW1 batch bytes, encoded once; every owner attempt and
    /// every replication forward carries them verbatim.
    wire: Bytes,
    /// Owner snapshot at ingest time, primary first.
    owners: Vec<usize>,
    /// Owners attempted so far (`owners[..tried]`).
    tried: usize,
    done: bool,
}

/// The cluster. See the module docs for the protocol.
pub struct Cluster {
    /// The network between the nodes (public like
    /// [`Fabric::topology`]: tests inject faults and read taps/stats).
    pub fabric: Fabric,
    cfg: ClusterConfig,
    nodes: Vec<NodeState>,
    map: ShardMap,
    // Coordinator routing state — mirrors the oracle's `RouteState`.
    route: Vec<(u16, u32)>,
    shard_rows: Vec<u32>,
    clamped: u64,
    // Virtual time.
    clock: TimeNs,
    heap: BinaryHeap<Event>,
    next_event_seq: u64,
    // RPC layer.
    next_rpc_id: u64,
    next_tcp_seq: u32,
    pending: HashMap<u64, PendingRpc>,
    completed: HashMap<u64, RpcResult>,
    // Replication layer.
    ships: HashMap<u64, Ship>,
    next_ship_id: u64,
    pending_writes: HashMap<u64, PendingWrite>,
    next_write_id: u64,
    /// Nodes that exhausted a retry budget, with their probation
    /// deadline: until then new RPCs to them run the compressed ladder.
    suspected: HashMap<usize, TimeNs>,
    stats: ClusterStats,
}

impl Cluster {
    /// Build a cluster of `cfg.nodes` simple nodes (one pod each, one
    /// rack), shards spread round-robin with
    /// `cfg.replication_factor` copies each.
    pub fn new(cfg: ClusterConfig) -> Self {
        let n = cfg.nodes.clamp(1, 200);
        let mut topo = Topology::new();
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let (topo_id, ip) = Self::add_node_to(&mut topo, i);
            nodes.push(NodeState {
                topo_id,
                ip,
                alive: true,
                shards: BTreeMap::new(),
                reorder: HashMap::new(),
                tier: None,
            });
        }
        let shards = cfg.policy.shards;
        let map = ShardMap::replicated(shards, n, cfg.replication_factor);
        for s in 0..shards as u16 {
            for &o in map.owners_of(s) {
                nodes[o].shards.insert(s, SpanStore::new());
            }
        }
        Cluster {
            fabric: Fabric::new(topo, cfg.fabric.clone()),
            nodes,
            map,
            route: Vec::new(),
            shard_rows: vec![0; shards],
            clamped: 0,
            clock: TimeNs(0),
            heap: BinaryHeap::new(),
            next_event_seq: 0,
            next_rpc_id: 1,
            next_tcp_seq: 1,
            pending: HashMap::new(),
            completed: HashMap::new(),
            ships: HashMap::new(),
            next_ship_id: 1,
            pending_writes: HashMap::new(),
            next_write_id: 1,
            suspected: HashMap::new(),
            stats: ClusterStats::default(),
            cfg,
        }
    }

    fn add_node_to(topo: &mut Topology, i: usize) -> (NodeId, Ipv4Addr) {
        let node_ip = Ipv4Addr::new(192, 168, 10, (i + 1) as u8);
        let pod_ip = Ipv4Addr::new(10, 50, i as u8, 1);
        let id = topo.add_simple_node(&format!("trace-server-{i}"), node_ip);
        topo.add_pod(
            id,
            &format!("df-server-{i}"),
            pod_ip,
            "deepflow",
            "df-server",
            "df-server-svc",
        );
        (id, pod_ip)
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    fn push_event(&mut self, at: TimeNs, kind: EventKind) {
        let seq = self.next_event_seq;
        self.next_event_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    fn step(&mut self) -> bool {
        let Some(ev) = self.heap.pop() else {
            return false;
        };
        self.clock = self.clock.max(ev.at);
        match ev.kind {
            EventKind::Deliver(d) => self.on_deliver(d),
            EventKind::RpcTimeout { rpc_id, attempt } => self.on_timeout(rpc_id, attempt),
            EventKind::Heal(el) => {
                self.fabric.faults.clear(&el);
            }
            EventKind::Kill(idx) => {
                if idx != 0 && idx < self.nodes.len() && self.nodes[idx].alive {
                    self.nodes[idx].alive = false;
                }
            }
            EventKind::Join => {
                self.join();
            }
        }
        true
    }

    /// Drain every scheduled event (deliveries, timeouts, heals,
    /// membership events).
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    fn run_until_settled(&mut self, ids: &[u64]) {
        while ids.iter().any(|id| !self.completed.contains_key(id)) {
            if !self.step() {
                // Defensive: nothing left to happen — fail the leftovers
                // rather than spin (a settled cluster must never hang).
                for id in ids {
                    if !self.completed.contains_key(id) {
                        self.pending.remove(id);
                        self.completed.insert(*id, RpcResult::Failed);
                        self.stats.rpcs_failed += 1;
                    }
                }
                break;
            }
        }
    }

    fn run_until_ships_settled(&mut self, ids: &[u64]) {
        while ids
            .iter()
            .any(|id| self.ships.get(id).is_some_and(|s| !s.done))
        {
            if !self.step() {
                // Defensive, as above: a drained heap with undone ships
                // means nothing can resolve them — count the loss.
                for id in ids {
                    if let Some(s) = self.ships.get_mut(id) {
                        if !s.done {
                            s.done = true;
                            self.stats.spans_lost += s.count as u64;
                        }
                    }
                }
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // RPC layer
    // ------------------------------------------------------------------

    fn timeout_for(&self, attempt: u32) -> DurationNs {
        DurationNs(self.cfg.rpc_timeout.0 << attempt.min(6))
    }

    /// Whether `node` is currently under probation. Expired suspicions
    /// are cleared lazily here.
    fn suspect_active(&mut self, node: usize) -> bool {
        match self.suspected.get(&node) {
            Some(&until) if self.clock < until => true,
            Some(_) => {
                self.suspected.remove(&node);
                false
            }
            None => false,
        }
    }

    fn send_rpc(&mut self, from: usize, to: usize, body: RpcBody, purpose: RpcPurpose) -> u64 {
        let rpc_id = self.next_rpc_id;
        self.next_rpc_id += 1;
        self.stats.rpcs_sent += 1;
        let max_attempts = if self.suspect_active(to) {
            // Fast-fail: one base-timeout probe instead of the full
            // backoff ladder. Never zero attempts — a healed node must
            // get a real probe so it can clear its own suspicion.
            self.stats.fast_fails += 1;
            1
        } else {
            self.cfg.max_rpc_retries + 1
        };
        let encoded = RpcEnvelope { rpc_id, body }.encode();
        self.pending.insert(
            rpc_id,
            PendingRpc {
                from,
                to,
                encoded,
                attempt: 0,
                max_attempts,
                purpose,
            },
        );
        self.transmit_rpc(rpc_id, 0);
        rpc_id
    }

    fn transmit_rpc(&mut self, rpc_id: u64, attempt: u32) {
        let (payload, src, dst) = {
            let p = &self.pending[&rpc_id];
            (
                p.encoded.clone(),
                self.nodes[p.from].ip,
                self.nodes[p.to].ip,
            )
        };
        self.transmit_segment(src, dst, payload, attempt > 0);
        let deadline = self.clock + self.timeout_for(attempt);
        self.push_event(deadline, EventKind::RpcTimeout { rpc_id, attempt });
    }

    fn transmit_segment(
        &mut self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        payload: Bytes,
        retransmission: bool,
    ) {
        let seq = self.next_tcp_seq;
        self.next_tcp_seq = self.next_tcp_seq.wrapping_add(payload.len().max(1) as u32);
        let seg = Segment {
            five_tuple: FiveTuple::tcp(src, 46000, dst, 7700),
            seq,
            ack: 0,
            flags: TcpFlags::PSH_ACK,
            window: 65535,
            payload,
            is_retransmission: retransmission,
        };
        let deliveries = self.fabric.transmit(seg, self.clock);
        for d in deliveries {
            self.push_event(d.at, EventKind::Deliver(d));
        }
    }

    fn on_timeout(&mut self, rpc_id: u64, attempt: u32) {
        let Some(p) = self.pending.get(&rpc_id) else {
            return; // already answered
        };
        if p.attempt != attempt {
            return; // superseded by a newer attempt's timer
        }
        if !self.nodes[p.from].alive {
            // The sender crashed with the RPC in flight: nothing will
            // retransmit it. Fail it without suspecting the target.
            self.fail_rpc(rpc_id, false);
            return;
        }
        if p.attempt + 1 >= p.max_attempts {
            self.fail_rpc(rpc_id, true);
            return;
        }
        let next_attempt = {
            let p = self.pending.get_mut(&rpc_id).expect("checked above");
            p.attempt += 1;
            p.attempt
        };
        self.stats.rpc_retries += 1;
        self.transmit_rpc(rpc_id, next_attempt);
    }

    /// Terminal failure of an RPC: updates suspicion, then dispatches on
    /// purpose — synchronous callers see `RpcResult::Failed`, ingest
    /// shipments fail over to the next owner, replication failures feed
    /// their write's quorum.
    fn fail_rpc(&mut self, rpc_id: u64, suspect: bool) {
        let Some(p) = self.pending.remove(&rpc_id) else {
            return;
        };
        self.stats.rpcs_failed += 1;
        if suspect {
            self.suspected
                .insert(p.to, self.clock + self.cfg.suspect_probation);
        }
        match p.purpose {
            RpcPurpose::Driver => {
                self.completed.insert(rpc_id, RpcResult::Failed);
            }
            RpcPurpose::Ship(ship_id) => self.start_ship_attempt(ship_id),
            RpcPurpose::Replication(write_id) => {
                if let Some(w) = self.pending_writes.get_mut(&write_id) {
                    w.quorum.record_failure();
                }
                self.maybe_ack_write(write_id);
            }
        }
    }

    fn on_deliver(&mut self, d: Delivery) {
        let Some(idx) = self.nodes.iter().position(|n| n.topo_id == d.node) else {
            return;
        };
        if !self.nodes[idx].alive || d.segment.flags.rst {
            return; // crashed node, or a fault-injected RST (not an RPC)
        }
        let Ok(env) = RpcEnvelope::decode(&d.segment.payload) else {
            return;
        };
        match env.body {
            RpcBody::SpanBatch { .. }
            | RpcBody::CandidateRequest { .. }
            | RpcBody::SpanFetch { .. }
            | RpcBody::ReplicateBatch { .. }
            | RpcBody::ShardSummaryRequest { .. }
            | RpcBody::RowRangeRequest { .. } => {
                let requester = self
                    .nodes
                    .iter()
                    .position(|n| n.ip == d.segment.five_tuple.src_ip)
                    .unwrap_or(0);
                if let Some(body) = self.handle_request(idx, requester, env.rpc_id, env.body) {
                    let payload = RpcEnvelope {
                        rpc_id: env.rpc_id,
                        body,
                    }
                    .encode();
                    let (src, dst) = (self.nodes[idx].ip, self.nodes[requester].ip);
                    self.transmit_segment(src, dst, payload, false);
                }
            }
            _ => {
                let Some(p) = self.pending.remove(&env.rpc_id) else {
                    self.stats.stale_responses += 1;
                    return;
                };
                // Any answer is proof of life: lift the probation.
                self.suspected.remove(&p.to);
                match p.purpose {
                    RpcPurpose::Driver => {
                        self.completed.insert(env.rpc_id, RpcResult::Ok(env.body));
                    }
                    RpcPurpose::Ship(ship_id) => {
                        if let Some(s) = self.ships.get_mut(&ship_id) {
                            s.done = true;
                        }
                    }
                    RpcPurpose::Replication(write_id) => {
                        if let Some(w) = self.pending_writes.get_mut(&write_id) {
                            w.quorum.record_ack();
                        }
                        self.maybe_ack_write(write_id);
                    }
                }
            }
        }
    }

    /// A node answers a request against its local shards. Requests are
    /// idempotent: batch applies are deduplicated by the reorder buffer,
    /// the reads are stateless — so a retried RPC handled twice is safe.
    /// Returns `None` when the ack is deferred (a replicated SpanBatch
    /// waits for its write quorum).
    fn handle_request(
        &mut self,
        idx: usize,
        requester: usize,
        rpc_id: u64,
        body: RpcBody,
    ) -> Option<RpcBody> {
        match body {
            RpcBody::SpanBatch {
                shard,
                start_row,
                wire: batch,
            } => {
                // The envelope decoder validated the DFW1 header; a batch
                // that still fails to decode here is dropped (and acked
                // with count 0) rather than crashing the node.
                let spans = wire::decode_batch(&batch).unwrap_or_default();
                let count = spans.len() as u32;
                Self::apply_batch(&mut self.nodes[idx], shard, start_row, spans);
                if self.begin_write(
                    idx,
                    shard,
                    start_row,
                    count,
                    batch,
                    WriteReply::Rpc { requester, rpc_id },
                ) {
                    return None; // ack deferred until the quorum is met
                }
                Some(RpcBody::SpanBatchAck {
                    shard,
                    start_row,
                    count,
                })
            }
            RpcBody::ReplicateBatch {
                shard,
                start_row,
                wire: batch,
            } => {
                let spans = wire::decode_batch(&batch).unwrap_or_default();
                let count = spans.len() as u32;
                Self::apply_batch(&mut self.nodes[idx], shard, start_row, spans);
                Some(RpcBody::ReplicateAck {
                    shard,
                    start_row,
                    count,
                })
            }
            RpcBody::CandidateRequest { round, keys } => {
                let node = &self.nodes[idx];
                let empty = HashSet::new();
                let mut candidates = Vec::new();
                for (&si, store) in &node.shards {
                    for row in probe_shard(si, store, &keys, &empty) {
                        candidates.push(df_types::rpc::CandidateSpan {
                            shard: si,
                            row,
                            span: store
                                .span_at(row)
                                .expect("probed row resident")
                                .into_owned(),
                        });
                    }
                }
                Some(RpcBody::CandidateResponse { round, candidates })
            }
            RpcBody::SpanFetch { shard, row } => {
                let span = self.nodes[idx]
                    .shards
                    .get(&shard)
                    .and_then(|s| s.span_at(row))
                    .map(|s| Box::new(s.into_owned()));
                Some(RpcBody::SpanFetchResponse { shard, row, span })
            }
            RpcBody::ShardSummaryRequest { shard } => {
                let (rows, digest) = match self.nodes[idx].shards.get(&shard) {
                    Some(store) => (store.len() as u32, replication::shard_digest(store)),
                    None => (0, replication::EMPTY_DIGEST),
                };
                Some(RpcBody::ShardSummaryResponse {
                    shard,
                    rows,
                    digest,
                })
            }
            RpcBody::RowRangeRequest {
                shard,
                start_row,
                max_rows,
            } => {
                let mut spans = Vec::new();
                if let Some(store) = self.nodes[idx].shards.get(&shard) {
                    let end =
                        (u64::from(start_row) + u64::from(max_rows)).min(store.len() as u64) as u32;
                    for row in start_row..end {
                        match store.span_at(row) {
                            Some(s) => spans.push(s.into_owned()),
                            None => break, // the range must stay contiguous
                        }
                    }
                }
                Some(RpcBody::row_range_response(shard, start_row, &spans))
            }
            other => Some(other), // responses never reach handle_request
        }
    }

    fn apply_batch(node: &mut NodeState, shard: u16, start_row: u32, spans: Vec<Span>) {
        let Some(store) = node.shards.get_mut(&shard) else {
            return; // shard handed off; the stale batch is dropped
        };
        let runs =
            node.reorder
                .entry(shard)
                .or_default()
                .offer(store.len() as u32, start_row, spans);
        for run in runs {
            store.insert_routed_batch(run);
        }
    }

    // ------------------------------------------------------------------
    // Replication
    // ------------------------------------------------------------------

    /// The write quorum for a shard with `owners` copies.
    fn effective_quorum(&self, owners: usize) -> u32 {
        let q = if self.cfg.write_quorum == 0 {
            owners
        } else {
            self.cfg.write_quorum.min(owners)
        };
        q.max(1) as u32
    }

    /// Forward a just-applied batch from `node` to the shard's other
    /// owners and track the write quorum. Returns false (nothing to
    /// wait for) when the node is the shard's only owner.
    fn begin_write(
        &mut self,
        node: usize,
        shard: u16,
        start_row: u32,
        count: u32,
        batch: Bytes,
        reply: WriteReply,
    ) -> bool {
        let peers: Vec<usize> = self
            .map
            .owners_of(shard)
            .iter()
            .copied()
            .filter(|&o| o != node)
            .collect();
        if peers.is_empty() {
            return false;
        }
        let write_id = self.next_write_id;
        self.next_write_id += 1;
        let quorum = self.effective_quorum(peers.len() + 1);
        self.pending_writes.insert(
            write_id,
            PendingWrite {
                node,
                shard,
                start_row,
                count,
                quorum: WriteQuorum::new(quorum, peers.len() as u32),
                reply,
            },
        );
        for peer in peers {
            self.stats.replicated_batches += 1;
            self.send_rpc(
                node,
                peer,
                RpcBody::ReplicateBatch {
                    shard,
                    start_row,
                    wire: batch.clone(),
                },
                RpcPurpose::Replication(write_id),
            );
        }
        true
    }

    /// Acknowledge a write's requester if its quorum allows it, and
    /// retire the write once every replication RPC has resolved. A
    /// write whose primary crashed is dropped unacked — the requester's
    /// own RPC times out and fails over.
    fn maybe_ack_write(&mut self, write_id: u64) {
        let Some(w) = self.pending_writes.get(&write_id) else {
            return;
        };
        if !self.nodes[w.node].alive {
            self.pending_writes.remove(&write_id);
            return;
        }
        let acked_now = {
            let w = self.pending_writes.get_mut(&write_id).expect("checked");
            if w.quorum.ready() && !w.quorum.met() {
                self.stats.quorum_shortfalls += 1;
            }
            w.quorum.try_ack()
        };
        if acked_now {
            let (node, shard, start_row, count, reply) = {
                let w = &self.pending_writes[&write_id];
                (w.node, w.shard, w.start_row, w.count, w.reply)
            };
            match reply {
                WriteReply::Rpc { requester, rpc_id } => {
                    let payload = RpcEnvelope {
                        rpc_id,
                        body: RpcBody::SpanBatchAck {
                            shard,
                            start_row,
                            count,
                        },
                    }
                    .encode();
                    let (src, dst) = (self.nodes[node].ip, self.nodes[requester].ip);
                    self.transmit_segment(src, dst, payload, false);
                }
                WriteReply::Ship(ship_id) => {
                    if let Some(s) = self.ships.get_mut(&ship_id) {
                        s.done = true;
                    }
                }
            }
        }
        if let Some(w) = self.pending_writes.get(&write_id) {
            if w.quorum.acked() && w.quorum.settled() {
                self.pending_writes.remove(&write_id);
            }
        }
    }

    /// Try the ship's next untried owner; when none is left, the spans
    /// are lost (every copy's retry budget is exhausted).
    fn start_ship_attempt(&mut self, ship_id: u64) {
        let (owner, shard, start_row, batch, first) = {
            let Some(ship) = self.ships.get_mut(&ship_id) else {
                return;
            };
            if ship.done {
                return;
            }
            if ship.tried >= ship.owners.len() {
                ship.done = true;
                self.stats.spans_lost += ship.count as u64;
                return;
            }
            let owner = ship.owners[ship.tried];
            ship.tried += 1;
            (
                owner,
                ship.shard,
                ship.start_row,
                ship.wire.clone(),
                ship.tried == 1,
            )
        };
        if !first {
            self.stats.failovers += 1;
        }
        if owner == 0 {
            // The coordinator itself owns a copy: apply in-process, then
            // replicate to the co-owners before declaring the ship done.
            let spans = wire::decode_batch(&batch).unwrap_or_default();
            let count = spans.len() as u32;
            Self::apply_batch(&mut self.nodes[0], shard, start_row, spans);
            if !self.begin_write(0, shard, start_row, count, batch, WriteReply::Ship(ship_id)) {
                // Sole owner: the local apply is the whole write.
                self.ships.get_mut(&ship_id).expect("ship tracked").done = true;
            }
            return;
        }
        self.send_rpc(
            0,
            owner,
            RpcBody::SpanBatch {
                shard,
                start_row,
                wire: batch,
            },
            RpcPurpose::Ship(ship_id),
        );
    }

    // ------------------------------------------------------------------
    // Ingest
    // ------------------------------------------------------------------

    /// Route and store a batch of spans, shipping remote sub-batches over
    /// the fabric. Id assignment and shard routing replicate the
    /// single-process oracle exactly, so a fault-free cluster holds the
    /// same rows in the same shards. With replication, each sub-batch is
    /// acknowledged at its write quorum and fails over through the
    /// shard's owner list before any span is counted lost.
    pub fn ingest(&mut self, spans: Vec<Span>) -> Vec<SpanId> {
        if spans.is_empty() {
            return Vec::new();
        }
        let mut ids = Vec::with_capacity(spans.len());
        let mut per_shard: Vec<Option<(u32, Vec<Span>)>> = vec![None; self.cfg.policy.shards];
        for mut span in spans {
            let id = SpanId(self.route.len() as u64 + 1);
            span.span_id = id;
            let shard = self.pick_shard(self.cfg.policy.route(&span));
            let row = self.shard_rows[shard as usize];
            self.shard_rows[shard as usize] += 1;
            self.route.push((shard, row));
            per_shard[shard as usize]
                .get_or_insert_with(|| (row, Vec::new()))
                .1
                .push(span);
            ids.push(id);
        }
        let mut ship_ids = Vec::new();
        for (si, sub) in per_shard.into_iter().enumerate() {
            let Some((start_row, spans)) = sub else {
                continue;
            };
            self.stats.spans_shipped += spans.len() as u64;
            // Encoded once here; owner failover and replication forwards
            // all retransmit the same bytes.
            let batch = Bytes::from(wire::encode_batch(&spans));
            let ship_id = self.next_ship_id;
            self.next_ship_id += 1;
            self.ships.insert(
                ship_id,
                Ship {
                    shard: si as u16,
                    start_row,
                    count: spans.len() as u32,
                    wire: batch,
                    owners: self.map.owners_of(si as u16).to_vec(),
                    tried: 0,
                    done: false,
                },
            );
            self.start_ship_attempt(ship_id);
            ship_ids.push(ship_id);
        }
        self.run_until_ships_settled(&ship_ids);
        for id in &ship_ids {
            self.ships.remove(id);
        }
        ids
    }

    /// Ingest a DFW1-encoded batch as an agent would deliver it: decode,
    /// then route exactly like [`Cluster::ingest`]. Per-shard sub-batches
    /// bound for remote owners are re-framed (routing splits the batch),
    /// encoded once, and retried verbatim.
    pub fn ingest_wire(&mut self, batch: &[u8]) -> Result<Vec<SpanId>, WireDecodeError> {
        Ok(self.ingest(wire::decode_batch(batch)?))
    }

    /// The oracle's `RouteState::pick_shard`, verbatim.
    fn pick_shard(&mut self, preferred: usize) -> u16 {
        if (self.shard_rows[preferred] as usize) < self.cfg.policy.max_shard_rows {
            return preferred as u16;
        }
        self.clamped += 1;
        self.shard_rows
            .iter()
            .enumerate()
            .min_by_key(|(_, &rows)| rows)
            .map(|(i, _)| i as u16)
            .unwrap_or(preferred as u16)
    }

    // ------------------------------------------------------------------
    // Distributed assembly (Algorithm 1, Phase 1 over RPC)
    // ------------------------------------------------------------------

    /// Record as missing every shard whose *entire* owner list has
    /// failed — with replicas, one dead owner degrades nothing.
    fn extend_missing_for_failures(
        map: &ShardMap,
        failed: &HashSet<usize>,
        missing: &mut BTreeSet<u16>,
    ) {
        if failed.is_empty() {
            return;
        }
        for shard in 0..map.shard_count() as u16 {
            if map.owners_of(shard).iter().all(|o| failed.contains(o)) {
                missing.insert(shard);
            }
        }
    }

    /// Assemble the trace containing `start`, probing remote shards over
    /// the fabric. Never hangs: an unreachable owner fails after the
    /// retry budget, point reads fail over to replicas, and a shard is
    /// reported in `missing_shards` only when every copy is gone.
    ///
    /// Ownership is snapshotted once at entry: a join or leave that
    /// lands mid-assembly (scheduled membership events fire inside the
    /// per-round settle loops) cannot redirect later rounds, though a
    /// freshly-joined node holding stores is still probed.
    pub fn assemble(&mut self, start: SpanId) -> DistributedTrace {
        let mut missing: BTreeSet<u16> = BTreeSet::new();
        let mut failed_nodes: HashSet<usize> = HashSet::new();
        let map = self.map.clone();

        let Some(&(s_shard, s_row)) = start
            .raw()
            .checked_sub(1)
            .and_then(|i| self.route.get(i as usize))
        else {
            return DistributedTrace {
                trace: Trace::default(),
                missing_shards: Vec::new(),
                rounds: 0,
            };
        };
        let Some(start_span) =
            self.fetch_span(&map, s_shard, s_row, &mut failed_nodes, &mut missing)
        else {
            self.stats.degraded_queries += 1;
            return DistributedTrace {
                trace: Trace::default(),
                missing_shards: missing.into_iter().collect(),
                rounds: 0,
            };
        };

        let mut seen: HashSet<(u16, u32)> = HashSet::new();
        seen.insert((s_shard, s_row));
        let mut span_of: HashMap<(u16, u32), Span> = HashMap::new();
        span_of.insert((s_shard, s_row), start_span);
        let mut members: Vec<(u16, u32)> = vec![(s_shard, s_row)];
        let mut frontier = members.clone();
        let mut keys = ExpandedKeys::default();
        let mut tracker = RoundTracker::new();
        let mut rounds = 0u32;

        for iter in 0..self.cfg.assemble.iterations {
            if members.len() >= self.cfg.assemble.max_spans {
                break;
            }
            let mut batch = CandidateKeys::default();
            for loc in &frontier {
                keys.collect(&mut batch, &span_of[loc]);
            }
            if batch.is_empty() {
                break;
            }
            rounds += 1;

            // Local probes: the coordinator's own shards, against the
            // real visited set. Spans are captured eagerly — a scheduled
            // join firing inside this round's settle loop may move the
            // store before the merge below runs.
            let mut per_shard: BTreeMap<u16, Vec<(u32, Span)>> = BTreeMap::new();
            for (&si, store) in &self.nodes[0].shards {
                for row in probe_shard(si, store, &batch, &seen) {
                    let span = store
                        .span_at(row)
                        .expect("probed row resident")
                        .into_owned();
                    per_shard.entry(si).or_default().push((row, span));
                }
            }

            // Remote probes: every node that could hold a candidate —
            // each shard copy answers, so one dead owner costs nothing.
            // A node outside the snapshot that holds stores (it joined
            // mid-assembly) is probed too.
            let mut round_rpcs: Vec<(u64, usize)> = Vec::new();
            for idx in 1..self.nodes.len() {
                if failed_nodes.contains(&idx) {
                    continue;
                }
                if map.shards_of(idx).is_empty() && self.nodes[idx].shards.is_empty() {
                    continue;
                }
                let id = self.send_rpc(
                    0,
                    idx,
                    RpcBody::CandidateRequest {
                        round: iter as u32,
                        keys: batch.clone(),
                    },
                    RpcPurpose::Driver,
                );
                round_rpcs.push((id, idx));
            }
            let ids: Vec<u64> = round_rpcs.iter().map(|&(id, _)| id).collect();
            tracker.begin_round(iter as u32, &ids);
            self.run_until_settled(&ids);
            for (id, idx) in round_rpcs {
                match self.completed.remove(&id) {
                    Some(RpcResult::Ok(RpcBody::CandidateResponse { round, candidates }))
                        if tracker.accept(round, id) =>
                    {
                        for c in candidates {
                            per_shard.entry(c.shard).or_default().push((c.row, c.span));
                        }
                    }
                    _ => {
                        // Timed out, wrong body, or a round-label the
                        // tracker refused: the node is out of this
                        // query. Its shards go missing only if no other
                        // copy can answer for them.
                        failed_nodes.insert(idx);
                    }
                }
            }
            Self::extend_missing_for_failures(&map, &failed_nodes, &mut missing);

            // Merge in global shard order — the same order the oracle's
            // `phase1_members` produces, so member sets match under caps.
            // Replicated shards answer once per copy; `seen` dedups.
            let mut next: Vec<(u16, u32)> = Vec::new();
            for (si, rows) in per_shard {
                for (row, span) in rows {
                    if seen.insert((si, row)) {
                        span_of.insert((si, row), span);
                        next.push((si, row));
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            members.extend_from_slice(&next);
            frontier = next;
        }

        let spans: Vec<Span> = members
            .iter()
            .map(|loc| span_of.remove(loc).expect("member without span"))
            .collect();
        let trace = assemble_members(spans, start, &self.cfg.assemble);
        if !missing.is_empty() {
            self.stats.degraded_queries += 1;
        }
        DistributedTrace {
            trace,
            missing_shards: missing.into_iter().collect(),
            rounds,
        }
    }

    /// Point-read a row, trying each owner in slot order (the
    /// coordinator's own copy is read in-process). `Ok(None)` from one
    /// copy falls through to the next — a lagging replica must not hide
    /// a row its co-owner holds.
    fn fetch_span(
        &mut self,
        map: &ShardMap,
        shard: u16,
        row: u32,
        failed_nodes: &mut HashSet<usize>,
        missing: &mut BTreeSet<u16>,
    ) -> Option<Span> {
        let owners = map.owners_of(shard).to_vec();
        let mut answered = false;
        for owner in owners {
            if failed_nodes.contains(&owner) {
                continue;
            }
            if owner == 0 {
                match self.nodes[0]
                    .shards
                    .get(&shard)
                    .and_then(|s| s.span_at(row))
                {
                    Some(s) => return Some(s.into_owned()),
                    None => {
                        answered = true;
                        continue;
                    }
                }
            }
            let id = self.send_rpc(
                0,
                owner,
                RpcBody::SpanFetch { shard, row },
                RpcPurpose::Driver,
            );
            self.run_until_settled(&[id]);
            match self.completed.remove(&id) {
                Some(RpcResult::Ok(RpcBody::SpanFetchResponse { span: Some(s), .. })) => {
                    return Some(*s)
                }
                Some(RpcResult::Ok(RpcBody::SpanFetchResponse { span: None, .. })) => {
                    answered = true;
                }
                _ => {
                    failed_nodes.insert(owner);
                }
            }
        }
        // No copy produced the span. Attribute the degradation honestly:
        // shards all of whose owners failed, plus — if some owner did
        // answer — this shard, whose rows were lost in ingest.
        Self::extend_missing_for_failures(map, failed_nodes, missing);
        if answered {
            missing.insert(shard);
        }
        None
    }

    // ------------------------------------------------------------------
    // Anti-entropy
    // ------------------------------------------------------------------

    /// Issue a Driver RPC and wait for its resolution.
    fn call(&mut self, from: usize, to: usize, body: RpcBody) -> Option<RpcBody> {
        let id = self.send_rpc(from, to, body, RpcPurpose::Driver);
        self.run_until_settled(&[id]);
        match self.completed.remove(&id) {
            Some(RpcResult::Ok(b)) => Some(b),
            _ => None,
        }
    }

    /// One full anti-entropy sweep: every live owner of every replicated
    /// shard exchanges `(rows, digest)` summaries with its live
    /// co-owners and pulls the row ranges it is missing, applied through
    /// the same [`BatchReorder`] as ingest so the copies converge
    /// byte-identically. Pulls are bounded per RPC by
    /// [`ClusterConfig::anti_entropy_pull_max`] and never reach past a
    /// stashed out-of-order batch (which would strand it as a false
    /// duplicate).
    pub fn anti_entropy_round(&mut self) -> AntiEntropyReport {
        let mut report = AntiEntropyReport::default();
        let map = self.map.clone();
        for shard in 0..map.shard_count() as u16 {
            let owners = map.owners_of(shard).to_vec();
            if owners.len() < 2 {
                continue;
            }
            for &me in &owners {
                if !self.nodes[me].alive {
                    continue;
                }
                // An owner always has a store; make that true even for a
                // slot acquired without data (defensive — join inserts
                // empty stores already).
                self.nodes[me].shards.entry(shard).or_default();
                for &peer in &owners {
                    if peer == me || !self.nodes[peer].alive {
                        continue;
                    }
                    let Some(RpcBody::ShardSummaryResponse {
                        rows: peer_rows,
                        digest: peer_digest,
                        ..
                    }) = self.call(me, peer, RpcBody::ShardSummaryRequest { shard })
                    else {
                        report.unreachable += 1;
                        continue;
                    };
                    loop {
                        let my_rows = self.nodes[me].shards[&shard].len() as u32;
                        if my_rows >= peer_rows {
                            break;
                        }
                        let cap = self.nodes[me]
                            .reorder
                            .get(&shard)
                            .and_then(|r| r.first_pending_start())
                            .unwrap_or(u32::MAX);
                        let end = peer_rows
                            .min(cap)
                            .min(my_rows.saturating_add(self.cfg.anti_entropy_pull_max.max(1)));
                        if end <= my_rows {
                            break;
                        }
                        let resp = self.call(
                            me,
                            peer,
                            RpcBody::RowRangeRequest {
                                shard,
                                start_row: my_rows,
                                max_rows: end - my_rows,
                            },
                        );
                        let Some(RpcBody::RowRangeResponse {
                            start_row, wire, ..
                        }) = resp
                        else {
                            report.unreachable += 1;
                            break;
                        };
                        let spans = wire::decode_batch(&wire).unwrap_or_default();
                        if spans.is_empty() {
                            break; // the peer had nothing servable there
                        }
                        report.pulls += 1;
                        self.stats.anti_entropy_pulls += 1;
                        let n = spans.len() as u64;
                        report.spans += n;
                        self.stats.backfilled_spans += n;
                        Self::apply_batch(&mut self.nodes[me], shard, start_row, spans);
                    }
                    let my_rows = self.nodes[me].shards[&shard].len() as u32;
                    if my_rows == peer_rows && peer_rows > 0 {
                        let my_digest = replication::shard_digest(&self.nodes[me].shards[&shard]);
                        if my_digest != peer_digest {
                            report.divergent += 1;
                        }
                    }
                }
            }
        }
        report
    }

    // ------------------------------------------------------------------
    // Tiered storage: spill and crash recovery
    // ------------------------------------------------------------------

    fn fresh_pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(BufferPoolConfig {
            frames: TIER_POOL_FRAMES,
            ..BufferPoolConfig::default()
        }))
    }

    /// Create the node's tier handle (pool + per-node directory) if it
    /// does not exist yet. Requires [`ClusterConfig::tier_dir`].
    fn ensure_tier(&mut self, idx: usize) -> io::Result<()> {
        if self.nodes[idx].tier.is_some() {
            return Ok(());
        }
        let base = self
            .cfg
            .tier_dir
            .clone()
            .expect("tiered paths need ClusterConfig::tier_dir");
        let dir = base.join(format!("node{idx}"));
        persist::ensure_dir(&dir)?;
        self.nodes[idx].tier = Some(NodeTier {
            pool: Self::fresh_pool(),
            dir,
        });
        Ok(())
    }

    /// Spill every shard copy on node `idx` whose rows are older than
    /// `watermark` to DFSPANS1 segment files under the node's tier
    /// directory. Content-neutral: queries and probes see the same
    /// corpus, paged back on demand.
    pub fn spill_node(&mut self, idx: usize, watermark: TimeNs) -> io::Result<SpillStats> {
        self.ensure_tier(idx)?;
        let (pool, dir) = {
            let tier = self.nodes[idx].tier.as_ref().expect("just ensured");
            (Arc::clone(&tier.pool), tier.dir.clone())
        };
        let policy = self.cfg.policy;
        let mut total = SpillStats::default();
        let shards: Vec<u16> = self.nodes[idx].shards.keys().copied().collect();
        for s in shards {
            let store = self.nodes[idx].shards.get_mut(&s).expect("key just listed");
            total.merge(store.spill_before(&policy, watermark, &pool, &dir, s)?);
        }
        Ok(total)
    }

    /// Restart a crashed node: its in-memory shards, reorder buffers,
    /// page cache, and in-flight writes are gone (that *is* the crash);
    /// the DFSPANS1 segment files on disk are not. Every owned shard is
    /// rebuilt by re-registering its valid segment files (corrupt files
    /// are counted in [`RecoverStats::rejected_segments`], never
    /// panicked over), after which cold reads are served from disk
    /// without re-fetching from peers and an
    /// [`Cluster::anti_entropy_round`] backfills only the hot tail.
    pub fn restart_node(&mut self, idx: usize) -> io::Result<RecoverStats> {
        assert!(idx != 0, "coordinator cannot restart");
        assert!(
            !self.nodes[idx].alive,
            "restart requires a crashed node (kill it first)"
        );
        // Abandon the crashed process's protocol state: its outbound
        // RPCs can never be retransmitted and its unacked writes die
        // unacked (the requesters' own RPCs time out and fail over).
        let stale: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.from == idx)
            .map(|(&id, _)| id)
            .collect();
        for id in stale {
            self.pending.remove(&id);
            self.stats.rpcs_failed += 1;
        }
        self.pending_writes.retain(|_, w| w.node != idx);
        self.nodes[idx].shards.clear();
        self.nodes[idx].reorder.clear();
        self.nodes[idx].tier = None; // fresh pool; segment files survive
        self.ensure_tier(idx)?;
        let (pool, dir) = {
            let tier = self.nodes[idx].tier.as_ref().expect("just ensured");
            (Arc::clone(&tier.pool), tier.dir.clone())
        };
        let mut total = RecoverStats::default();
        for s in self.map.shards_of(idx) {
            let mut store = SpanStore::new();
            total.merge(store.recover_cold_segments(&pool, &dir, s)?);
            self.nodes[idx].shards.insert(s, store);
        }
        self.stats.recovered_segments += total.segments as u64;
        self.stats.recovered_rejects += total.rejected_segments as u64;
        self.nodes[idx].alive = true;
        self.suspected.remove(&idx);
        Ok(total)
    }

    // ------------------------------------------------------------------
    // Membership: join / leave / kill
    // ------------------------------------------------------------------

    /// Gracefully remove a node: each of its owner slots (store and
    /// reorder state alongside) hands off to a live node that does not
    /// already hold a copy, preferring the least loaded; if every live
    /// node already holds one, the slot is dropped (the shard stays on
    /// its co-owners). Queries after a `leave` are *not* degraded.
    /// Returns the number of slots handed off. The coordinator (node 0)
    /// cannot leave.
    pub fn leave(&mut self, idx: usize) -> usize {
        assert!(idx != 0, "coordinator cannot leave");
        assert!(self.nodes[idx].alive, "node already offline");
        let shards = self.map.shards_of(idx);
        let mut moved = 0;
        for s in shards {
            let store = self.nodes[idx].shards.remove(&s).expect("map/store agree");
            let reorder = self.nodes[idx].reorder.remove(&s);
            let target = (0..self.nodes.len())
                .filter(|&i| i != idx && self.nodes[i].alive && !self.map.is_owner(s, i))
                .min_by_key(|&i| (self.nodes[i].shards.len(), i));
            match target {
                Some(t) => {
                    let replaced = self.map.replace_owner(s, idx, t);
                    debug_assert!(replaced, "target verified not an owner");
                    self.nodes[t].shards.insert(s, store);
                    if let Some(r) = reorder {
                        if r.pending() > 0 {
                            self.nodes[t].reorder.insert(s, r);
                        }
                    }
                    self.stats.handoffs += 1;
                    moved += 1;
                }
                None => {
                    // Every live node already holds a copy: drop the
                    // slot, accepting temporary under-replication.
                    self.map.remove_owner(s, idx);
                }
            }
        }
        self.nodes[idx].alive = false;
        moved
    }

    /// Add a node and rebalance in three passes: (1) take over dead
    /// owners' slots (the newcomer starts empty there — anti-entropy
    /// backfills from the surviving co-owners); (2) repair
    /// under-replicated shards; (3) move primaries (stores and reorder
    /// state alongside) from the most-loaded nodes until the newcomer
    /// holds its fair share. Returns the new node's index.
    pub fn join(&mut self) -> usize {
        let idx = self.nodes.len();
        let (topo_id, ip) = Self::add_node_to(&mut self.fabric.topology, idx);
        self.nodes.push(NodeState {
            topo_id,
            ip,
            alive: true,
            shards: BTreeMap::new(),
            reorder: HashMap::new(),
            tier: None,
        });
        // Pass 1: inherit dead owners' slots.
        for s in 0..self.map.shard_count() as u16 {
            let dead: Vec<usize> = self
                .map
                .owners_of(s)
                .iter()
                .copied()
                .filter(|&o| !self.nodes[o].alive)
                .collect();
            for d in dead {
                if self.map.replace_owner(s, d, idx) {
                    self.nodes[idx].shards.entry(s).or_default();
                    self.stats.handoffs += 1;
                    break; // at most one slot per shard for the newcomer
                }
            }
        }
        // Pass 2: repair under-replication left by departures.
        let alive = self.nodes.iter().filter(|n| n.alive).count();
        let rf = self.cfg.replication_factor.clamp(1, alive);
        for s in 0..self.map.shard_count() as u16 {
            if self.map.owners_of(s).len() < rf && self.map.add_owner(s, idx) {
                self.nodes[idx].shards.entry(s).or_default();
                self.stats.handoffs += 1;
            }
        }
        // Pass 3: primary rebalance.
        let target = self.map.shard_count() / alive;
        while self.map.primary_shards_of(idx).len() < target {
            let donor = (0..self.nodes.len())
                .filter(|&i| i != idx && self.nodes[i].alive)
                .max_by_key(|&i| (self.map.primary_shards_of(i).len(), usize::MAX - i))
                .filter(|&i| self.map.primary_shards_of(i).len() > target);
            let Some(donor) = donor else {
                break;
            };
            let Some(s) = self
                .map
                .primary_shards_of(donor)
                .into_iter()
                .rev()
                .find(|&s| !self.map.is_owner(s, idx))
            else {
                break;
            };
            let store = self.nodes[donor]
                .shards
                .remove(&s)
                .expect("primary holds store");
            let reorder = self.nodes[donor].reorder.remove(&s);
            self.map.reassign(s, idx);
            self.nodes[idx].shards.insert(s, store);
            if let Some(r) = reorder {
                self.nodes[idx].reorder.insert(s, r);
            }
            self.stats.handoffs += 1;
        }
        idx
    }

    /// Crash a node: it stops answering but its owner slots stay
    /// assigned, so queries fail over to its shards' replicas — or
    /// degrade, when it held the only copy. The coordinator (node 0)
    /// cannot be killed.
    pub fn kill(&mut self, idx: usize) {
        assert!(idx != 0, "coordinator cannot be killed");
        self.nodes[idx].alive = false;
    }

    /// Schedule a [`Cluster::kill`] of node `idx` after `after` of
    /// virtual time — the crash fires *inside* whatever ingest or
    /// assembly loop is then running, which is how the chaos tests kill
    /// nodes mid-protocol. A kill targeting a node already dead (or not
    /// yet joined) is a no-op.
    pub fn schedule_kill(&mut self, idx: usize, after: DurationNs) {
        assert!(idx != 0, "coordinator cannot be killed");
        let at = self.clock + after;
        self.push_event(at, EventKind::Kill(idx));
    }

    /// Schedule a [`Cluster::join`] after `after` of virtual time (fires
    /// mid-protocol like [`Cluster::schedule_kill`]).
    pub fn schedule_join(&mut self, after: DurationNs) {
        let at = self.clock + after;
        self.push_event(at, EventKind::Join);
    }

    // ------------------------------------------------------------------
    // Fault helpers
    // ------------------------------------------------------------------

    /// Cut node `idx` off from the coordinator: a [`Fault::Partition`]
    /// at the node's NIC black-holes both directions. Returns the faulted
    /// element so the caller can [`Cluster::schedule_heal`] it.
    pub fn partition_node(&mut self, idx: usize) -> ElementId {
        let el = ElementId::NodeNic(self.nodes[idx].topo_id);
        self.fabric.faults.inject(
            el.clone(),
            Fault::Partition {
                peers: vec![self.nodes[0].ip],
            },
        );
        el
    }

    /// Clear the fault on `element` after `after` of virtual time (the
    /// heal fires inside whatever retry loop is then running).
    pub fn schedule_heal(&mut self, element: ElementId, after: DurationNs) {
        let at = self.clock + after;
        self.push_event(at, EventKind::Heal(element));
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Protocol counters.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// Current virtual time.
    pub fn clock(&self) -> TimeNs {
        self.clock
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Nodes ever added (including departed/crashed ones).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether a node is still answering.
    pub fn is_alive(&self, idx: usize) -> bool {
        self.nodes[idx].alive
    }

    /// The node currently *primary* for `shard`.
    pub fn shard_owner(&self, shard: u16) -> usize {
        self.map.owner(shard)
    }

    /// Every node currently holding a copy of `shard`, primary first.
    pub fn shard_owners(&self, shard: u16) -> Vec<usize> {
        self.map.owners_of(shard).to_vec()
    }

    /// The shards node `idx` holds a copy of (primary or replica).
    pub fn shards_of_node(&self, idx: usize) -> Vec<u16> {
        self.map.shards_of(idx)
    }

    /// Content digest of node `idx`'s copy of `shard` (None if it holds
    /// no copy) — what the convergence tests compare across replicas.
    pub fn shard_digest_at(&self, idx: usize, shard: u16) -> Option<u64> {
        self.nodes
            .get(idx)?
            .shards
            .get(&shard)
            .map(replication::shard_digest)
    }

    /// Rows in node `idx`'s copy of `shard` (None if it holds no copy).
    pub fn shard_rows_at(&self, idx: usize, shard: u16) -> Option<usize> {
        self.nodes.get(idx)?.shards.get(&shard).map(|s| s.len())
    }

    /// Spans routed through ingest (whether or not their batch survived).
    pub fn len(&self) -> usize {
        self.route.len()
    }

    /// Whether nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.route.is_empty()
    }

    /// Spans routed away from their preferred shard by the row cap.
    pub fn routing_clamped(&self) -> u64 {
        self.clamped
    }

    /// Rows actually present per shard, ascending by shard — for
    /// differential tests against the oracle's `shard_sizes`. With
    /// replicas, a shard reports its best (most-caught-up) copy.
    pub fn shard_sizes(&self) -> Vec<usize> {
        (0..self.map.shard_count() as u16)
            .map(|s| {
                self.map
                    .owners_of(s)
                    .iter()
                    .map(|&o| self.nodes[o].shards.get(&s).map(|st| st.len()).unwrap_or(0))
                    .max()
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::span::TapSide;

    fn linked_pair() -> Vec<Span> {
        let mut client = Span::synthetic(TapSide::ClientProcess, 1_000, 9_000);
        client.tcp_seq_req = Some(42);
        let mut server = Span::synthetic(TapSide::ServerProcess, 2_000, 8_000);
        server.tcp_seq_req = Some(42);
        vec![client, server]
    }

    #[test]
    fn two_node_cluster_assembles_linked_spans() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let ids = cluster.ingest(linked_pair());
        let result = cluster.assemble(ids[1]);
        assert!(result.is_complete());
        assert_eq!(result.trace.len(), 2);
        assert_eq!(result.trace.spans[1].parent, Some(ids[0]));
        assert_eq!(cluster.stats().spans_lost, 0);
        assert!(cluster.stats().rpcs_sent > 0, "ingest or probe must RPC");
    }

    #[test]
    fn single_node_cluster_never_rpcs() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 1,
            ..ClusterConfig::default()
        });
        let ids = cluster.ingest(linked_pair());
        let result = cluster.assemble(ids[0]);
        assert!(result.is_complete());
        assert_eq!(result.trace.len(), 2);
        assert_eq!(cluster.stats().rpcs_sent, 0);
    }

    #[test]
    fn unknown_span_id_yields_empty_complete_trace() {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let result = cluster.assemble(SpanId(99));
        assert!(result.is_complete());
        assert_eq!(result.trace.len(), 0);
    }

    #[test]
    fn leave_hands_shards_off_without_degrading() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 3,
            ..ClusterConfig::default()
        });
        let ids = cluster.ingest(linked_pair());
        let moved = cluster.leave(1);
        assert!(moved > 0);
        assert_eq!(cluster.stats().handoffs, moved as u64);
        let result = cluster.assemble(ids[1]);
        assert!(result.is_complete(), "handoff must not lose shards");
        assert_eq!(result.trace.len(), 2);
    }

    #[test]
    fn join_rebalances_shards_to_the_newcomer() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 2,
            policy: ShardPolicy::with_shards(6),
            ..ClusterConfig::default()
        });
        let ids = cluster.ingest(linked_pair());
        let idx = cluster.join();
        assert_eq!(idx, 2);
        assert!(
            !cluster.map.shards_of(idx).is_empty(),
            "newcomer owns shards"
        );
        let result = cluster.assemble(ids[0]);
        assert!(result.is_complete());
        assert_eq!(result.trace.len(), 2);
    }

    #[test]
    fn killed_node_degrades_queries_with_missing_shards() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 2,
            ..ClusterConfig::default()
        });
        let ids = cluster.ingest(linked_pair());
        cluster.kill(1);
        let result = cluster.assemble(ids[0]);
        assert_eq!(result.missing_shards, cluster.map.shards_of(1));
        assert!(cluster.stats().rpcs_failed > 0);
        assert!(cluster.stats().degraded_queries > 0);
    }

    #[test]
    fn replicated_ingest_reaches_every_owner() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 3,
            replication_factor: 2,
            ..ClusterConfig::default()
        });
        let ids = cluster.ingest(linked_pair());
        assert_eq!(cluster.stats().spans_lost, 0);
        assert!(cluster.stats().replicated_batches > 0);
        // Every copy of every touched shard holds the same rows.
        for s in 0..cluster.map.shard_count() as u16 {
            let rows: Vec<usize> = cluster
                .map
                .owners_of(s)
                .iter()
                .map(|&o| cluster.shard_rows_at(o, s).unwrap_or(0))
                .collect();
            assert!(
                rows.windows(2).all(|w| w[0] == w[1]),
                "shard {s} copies diverge: {rows:?}"
            );
        }
        let result = cluster.assemble(ids[1]);
        assert!(result.is_complete());
        assert_eq!(result.trace.len(), 2);
    }

    #[test]
    fn killed_replica_owner_degrades_nothing_at_rf2() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 2,
            replication_factor: 2,
            ..ClusterConfig::default()
        });
        let ids = cluster.ingest(linked_pair());
        cluster.kill(1);
        let result = cluster.assemble(ids[0]);
        assert!(
            result.is_complete(),
            "node 0 holds a copy of every shard at RF=2"
        );
        assert_eq!(result.trace.len(), 2);
    }
}
