//! Deterministic chaos harness on the virtual-clock event loop.
//!
//! Each seed derives one fault schedule from a splitmix-style LCG:
//! cluster shape, corpus, victim node, fault kind (kill / partition +
//! heal / kill + replacement join / graceful leave), and where in the
//! ingest sequence the fault lands. Kills and joins are *scheduled*
//! events — they fire inside whatever settle loop the protocol is then
//! running, so the failure genuinely interleaves with in-flight batches
//! and assembly rounds rather than landing between operations.
//!
//! The invariant under test is the replication tentpole: with
//! `replication_factor = 2` and any single-node failure, the cluster
//! loses **zero spans** and answers **zero degraded queries** — every
//! assembled trace is extensionally identical to the single-process
//! `ConcurrentShardedStore` oracle with empty `missing_shards`. At
//! `replication_factor = 1` the same schedules degrade loudly (explicit
//! missing shards, counted losses) — regression-pinned so the RF=2
//! guarantees are visibly doing work.

use df_cluster::{Cluster, ClusterConfig};
use df_server::ConcurrentShardedStore;
use df_storage::ShardPolicy;
use df_types::span::TapSide;
use df_types::{DurationNs, Span, SpanId};

/// Deterministic 64-bit LCG (Knuth's MMIX constants); high bits out.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A span whose association keys come from tiny pools, so chaos corpora
/// form dense trace graphs (the same shape `tests/distributed.rs` uses).
fn chaos_span(rng: &mut u64) -> Span {
    let sides = [
        TapSide::ClientProcess,
        TapSide::ServerProcess,
        TapSide::ClientPodNic,
        TapSide::ServerPodNic,
        TapSide::Gateway,
    ];
    let side = sides[(lcg(rng) % sides.len() as u64) as usize];
    let req = 1_000 + lcg(rng) % 20;
    let resp = req + 1 + lcg(rng) % 30;
    let mut s = Span::synthetic(side, req, resp);
    s.tcp_seq_req = Some((lcg(rng) % 8) as u32);
    if lcg(rng).is_multiple_of(3) {
        s.tcp_seq_resp = Some((lcg(rng) % 8) as u32);
    }
    if lcg(rng).is_multiple_of(4) {
        s.systrace_id_req = Some(df_types::ids::SysTraceId(lcg(rng) % 6));
    }
    s
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum FaultKind {
    /// Crash the victim mid-ingest; it stays dead.
    Kill,
    /// Black-hole victim↔coordinator, heal later in virtual time.
    PartitionHeal,
    /// Crash mid-ingest, then a replacement joins and anti-entropy
    /// backfills its empty slots.
    KillJoin,
    /// Graceful departure between batches (handoff, not failure).
    Leave,
}

struct Schedule {
    nodes: usize,
    shards: usize,
    victim: usize,
    kind: FaultKind,
    /// Ingest batch index the fault lands on (scheduled faults fire
    /// inside this batch's settle loop).
    fault_batch: usize,
    batches: Vec<Vec<Span>>,
}

fn derive_schedule(seed: u64) -> Schedule {
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed) | 1;
    let nodes = 3 + (lcg(&mut rng) % 2) as usize; // 3 or 4
    let shards = 4 + (lcg(&mut rng) % 3) as usize; // 4..=6
    let victim = 1 + (lcg(&mut rng) % (nodes as u64 - 1)) as usize;
    let kind = match lcg(&mut rng) % 4 {
        0 => FaultKind::Kill,
        1 => FaultKind::PartitionHeal,
        2 => FaultKind::KillJoin,
        _ => FaultKind::Leave,
    };
    let n_batches = 3 + (lcg(&mut rng) % 3) as usize; // 3..=5
    let fault_batch = 1 + (lcg(&mut rng) % (n_batches as u64 - 1)) as usize;
    let batches = (0..n_batches)
        .map(|_| {
            let n = 4 + (lcg(&mut rng) % 8) as usize;
            (0..n).map(|_| chaos_span(&mut rng)).collect()
        })
        .collect();
    Schedule {
        nodes,
        shards,
        victim,
        kind,
        fault_batch,
        batches,
    }
}

/// Run one schedule at the given replication factor; return the cluster,
/// the oracle, and the assigned span ids.
fn run_schedule(sched: &Schedule, rf: usize) -> (Cluster, ConcurrentShardedStore, Vec<SpanId>) {
    let policy = ShardPolicy::with_shards(sched.shards);
    let oracle = ConcurrentShardedStore::new(policy);
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: sched.nodes,
        policy,
        replication_factor: rf,
        ..ClusterConfig::default()
    });
    let mut ids = Vec::new();
    for (i, batch) in sched.batches.iter().enumerate() {
        if i == sched.fault_batch {
            match sched.kind {
                FaultKind::Kill | FaultKind::KillJoin => {
                    // Fires inside this batch's ship-settle loop: some
                    // SpanBatch / ReplicateBatch RPCs are already in
                    // flight to the victim when it dies.
                    cluster.schedule_kill(sched.victim, DurationNs::from_micros(50));
                }
                FaultKind::PartitionHeal => {
                    let el = cluster.partition_node(sched.victim);
                    // Heal after the retry ladders for roughly two
                    // batches have run their course.
                    cluster.schedule_heal(el, DurationNs::from_millis(120_000));
                }
                FaultKind::Leave => {
                    cluster.leave(sched.victim);
                }
            }
        }
        let oracle_ids = oracle.insert_batch(batch.clone());
        let cluster_ids = cluster.ingest(batch.clone());
        assert_eq!(oracle_ids, cluster_ids, "id assignment diverged");
        ids.extend(cluster_ids);
    }
    if sched.kind == FaultKind::KillJoin {
        cluster.join();
        cluster.anti_entropy_round();
    }
    cluster.run_until_idle(); // heals / stragglers from dead attempts
    oracle.flush();
    (cluster, oracle, ids)
}

/// The tentpole invariant, checked across ≥ 20 seeded fault schedules:
/// RF=2 + any single-node failure ⇒ zero loss, zero degraded answers,
/// oracle-identical traces.
#[test]
fn rf2_survives_twenty_plus_seeded_fault_schedules() {
    let mut kinds_seen = [false; 4];
    for seed in 0..24u64 {
        let sched = derive_schedule(seed);
        kinds_seen[sched.kind as usize] = true;
        let (mut cluster, oracle, ids) = run_schedule(&sched, 2);
        assert_eq!(
            cluster.stats().spans_lost,
            0,
            "seed {seed} ({:?}): RF=2 must not lose spans",
            sched.kind
        );
        // Query from several starts spread across the corpus.
        for k in 0..3 {
            let start = ids[(seed as usize + k * 7) % ids.len()];
            let expected = oracle.query_trace(start);
            let result = cluster.assemble(start);
            assert!(
                result.is_complete(),
                "seed {seed} ({:?}): degraded answer {:?} at RF=2",
                sched.kind,
                result.missing_shards
            );
            assert_eq!(
                &result.trace, &*expected,
                "seed {seed} ({:?}): trace diverged from oracle",
                sched.kind
            );
        }
        assert_eq!(
            cluster.stats().degraded_queries,
            0,
            "seed {seed} ({:?}): no query may degrade at RF=2",
            sched.kind
        );
    }
    assert!(
        kinds_seen.iter().all(|&k| k),
        "the seed range must exercise every fault kind: {kinds_seen:?}"
    );
}

/// After the dust settles, every pair of live replicas of every shard is
/// byte-identical (equal FNV-1a content digests) — the convergence half
/// of the tentpole, across the same schedules.
#[test]
fn rf2_replicas_converge_byte_identically_after_chaos() {
    for seed in 0..24u64 {
        let sched = derive_schedule(seed);
        let (mut cluster, _oracle, _ids) = run_schedule(&sched, 2);
        // One sweep patches any replica that was behind (e.g. a write
        // acknowledged under quorum while its co-owner was dying).
        cluster.anti_entropy_round();
        let report = cluster.anti_entropy_round();
        assert_eq!(
            report.divergent, 0,
            "seed {seed} ({:?}): replicas diverged in content",
            sched.kind
        );
        for s in 0..sched.shards as u16 {
            let digests: Vec<u64> = cluster
                .shard_owners(s)
                .into_iter()
                .filter(|&o| cluster.is_alive(o))
                .filter_map(|o| cluster.shard_digest_at(o, s))
                .collect();
            assert!(
                digests.windows(2).all(|w| w[0] == w[1]),
                "seed {seed} ({:?}): shard {s} live copies disagree",
                sched.kind
            );
        }
    }
}

/// Regression pin for RF=1: the identical kill schedules lose the
/// victim's in-flight batches and degrade queries loudly — missing
/// shards are reported, never silently absorbed. (This is the behavior
/// replication exists to eliminate; keep it honest, not accidental.)
#[test]
fn rf1_kill_schedules_degrade_loudly() {
    let mut any_lost = false;
    let mut any_degraded = false;
    for seed in 0..24u64 {
        let sched = derive_schedule(seed);
        if !matches!(sched.kind, FaultKind::Kill | FaultKind::KillJoin) {
            continue;
        }
        // Run the kill only — no replacement join, so the damage stays
        // visible at query time.
        let kill_only = Schedule {
            kind: FaultKind::Kill,
            batches: sched.batches.clone(),
            ..sched
        };
        let (mut cluster, oracle, ids) = run_schedule(&kill_only, 1);
        any_lost |= cluster.stats().spans_lost > 0;
        let start = ids[seed as usize % ids.len()];
        let result = cluster.assemble(start);
        if !result.is_complete() {
            any_degraded = true;
            // Degradation is attributed: only the dead node's shards.
            let victim_shards = cluster.shards_of_node(kill_only.victim);
            assert!(
                result
                    .missing_shards
                    .iter()
                    .all(|s| victim_shards.contains(s)),
                "seed {seed}: miss-attribution {:?} vs victim {:?}",
                result.missing_shards,
                victim_shards
            );
        }
        // Degraded or not, the answer is a subset of the oracle's trace.
        let expected = oracle.query_trace(start);
        for got in &result.trace.spans {
            assert!(
                expected
                    .spans
                    .iter()
                    .any(|e| e.span.span_id == got.span.span_id),
                "seed {seed}: RF=1 degraded trace invented a span"
            );
        }
    }
    assert!(any_lost, "some kill schedule must lose spans at RF=1");
    assert!(any_degraded, "some kill schedule must degrade at RF=1");
}
