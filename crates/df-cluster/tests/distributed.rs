//! Differential tests: the distributed cluster against the
//! single-process concurrent oracle.
//!
//! `ConcurrentShardedStore` is the ground truth for both halves of the
//! protocol: fault-free, a cluster of 1, 2 or 4 nodes must assign the
//! same span ids, fill the same shard rows, and assemble byte-identical
//! traces; under faults, the cluster must answer *degraded* — a partial
//! trace that is a subset of the oracle's, plus an explicit
//! `missing_shards` — and recover to full oracle equality once the fault
//! heals or the RPC retry loop outlasts it.

use df_cluster::{Cluster, ClusterConfig};
use df_net::faults::Fault;
use df_server::ConcurrentShardedStore;
use df_storage::ShardPolicy;
use df_types::ids::*;
use df_types::span::{CapturePoint, SpanKind, TapSide};
use df_types::tags::TagSet;
use df_types::{DurationNs, FiveTuple, L7Protocol, Span, SpanId, SpanStatus, TimeNs, Trace};
use proptest::prelude::*;
use std::net::Ipv4Addr;

type SpanSpec = (
    u8,
    u64,
    u64,
    Option<u32>,
    Option<u32>,
    Option<u64>,
    Option<u64>,
    Option<u128>,
    Option<u128>,
    Option<u64>,
);

/// Key pools are deliberately tiny so arbitrary corpora form dense
/// association graphs (the same shape the root `properties.rs` uses).
fn spec_strategy() -> impl Strategy<Value = Vec<SpanSpec>> {
    proptest::collection::vec(
        (
            0u8..11,
            0u64..20,
            1u64..30,
            proptest::option::of(0u32..8),
            proptest::option::of(0u32..8),
            proptest::option::of(0u64..6),
            proptest::option::of(0u64..6),
            proptest::option::of(0u128..4),
            proptest::option::of(0u128..3),
            proptest::option::of(0u64..4),
        ),
        1..40,
    )
}

fn prop_span(spec: &SpanSpec) -> Span {
    let (tap, t, d, seq_r, seq_p, sys_r, sys_p, xr, ot, pth) = *spec;
    let tap_sides = [
        TapSide::ClientApp,
        TapSide::ClientProcess,
        TapSide::ClientPodNic,
        TapSide::ClientNodeNic,
        TapSide::ClientHypervisor,
        TapSide::Gateway,
        TapSide::ServerHypervisor,
        TapSide::ServerNodeNic,
        TapSide::ServerPodNic,
        TapSide::ServerProcess,
        TapSide::ServerApp,
    ];
    let req = t * 1_000_000;
    Span {
        span_id: SpanId(0),
        kind: if tap == 0 || tap == 10 {
            SpanKind::App
        } else {
            SpanKind::Sys
        },
        capture: CapturePoint {
            node: NodeId(1),
            tap_side: tap_sides[tap as usize % 11],
            interface: None,
        },
        agent: AgentId(1),
        flow_id: FlowId(u64::from(seq_r.unwrap_or(99))),
        five_tuple: FiveTuple::tcp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 0, 2), 2),
        l7_protocol: L7Protocol::Http1,
        endpoint: "op".to_string(),
        req_time: TimeNs(req),
        resp_time: TimeNs(req + d * 1_000_000),
        status: SpanStatus::Ok,
        status_code: Some(200),
        req_bytes: 0,
        resp_bytes: 0,
        pid: None,
        tid: None,
        process_name: None,
        systrace_id_req: sys_r.map(SysTraceId),
        systrace_id_resp: sys_p.map(SysTraceId),
        pseudo_thread_id: pth.map(PseudoThreadId),
        x_request_id_req: xr.map(XRequestId),
        x_request_id_resp: None,
        tcp_seq_req: seq_r,
        tcp_seq_resp: seq_p,
        otel_trace_id: ot.map(OtelTraceId),
        otel_span_id: ot.map(|v| OtelSpanId(v as u64)),
        otel_parent_span_id: None,
        tags: TagSet::default(),
        flow_metrics: None,
    }
}

fn linked_pair() -> Vec<Span> {
    let mut client = Span::synthetic(TapSide::ClientProcess, 1_000, 9_000);
    client.tcp_seq_req = Some(42);
    let mut server = Span::synthetic(TapSide::ServerProcess, 2_000, 8_000);
    server.tcp_seq_req = Some(42);
    vec![client, server]
}

/// Feed the same batches to a fresh oracle and a fresh cluster.
fn build_pair(
    nodes: usize,
    shards: usize,
    specs: &[SpanSpec],
    batch: usize,
) -> (ConcurrentShardedStore, Cluster, Vec<SpanId>) {
    let policy = ShardPolicy::with_shards(shards);
    let oracle = ConcurrentShardedStore::new(policy);
    let mut cluster = Cluster::new(ClusterConfig {
        nodes,
        policy,
        ..ClusterConfig::default()
    });
    let mut ids = Vec::new();
    for chunk in specs.chunks(batch.max(1)) {
        let spans: Vec<Span> = chunk.iter().map(prop_span).collect();
        let oracle_ids = oracle.insert_batch(spans.clone());
        let cluster_ids = cluster.ingest(spans);
        assert_eq!(oracle_ids, cluster_ids, "id assignment diverged");
        ids.extend(cluster_ids);
    }
    oracle.flush();
    (oracle, cluster, ids)
}

fn edges(t: &Trace) -> Vec<(SpanId, Option<SpanId>)> {
    let mut e: Vec<_> = t.spans.iter().map(|s| (s.span.span_id, s.parent)).collect();
    e.sort_unstable();
    e
}

proptest! {
    /// Fault-free, a 1/2/4-node cluster is extensionally identical to
    /// the single-process oracle: same shard fill, same routing clamps,
    /// same assembled trace (spans, parents, order) from every start.
    #[test]
    fn cluster_matches_oracle_fault_free(
        specs in spec_strategy(),
        nodes_sel in 0usize..3,
        shards in 1usize..6,
        batch in 1usize..8,
        start_idx in 0usize..40,
    ) {
        let nodes = [1, 2, 4][nodes_sel];
        let (oracle, mut cluster, ids) = build_pair(nodes, shards, &specs, batch);
        prop_assert_eq!(cluster.shard_sizes(), oracle.shard_sizes());
        prop_assert_eq!(cluster.routing_clamped(), oracle.routing_clamped());
        prop_assert_eq!(cluster.stats().spans_lost, 0);

        let start = ids[start_idx % ids.len()];
        let expected = oracle.query_trace(start);
        let result = cluster.assemble(start);
        prop_assert!(result.is_complete(), "fault-free must not degrade");
        prop_assert_eq!(&result.trace, &*expected, "trace diverged from oracle");
    }

    /// With one non-coordinator node partitioned away, assembly still
    /// terminates, reports exactly that node's shards missing (when the
    /// query needed them), and returns a subset of the oracle's trace
    /// that still contains the start span.
    #[test]
    fn partition_degrades_to_partial_trace_with_missing_shards(
        specs in spec_strategy(),
        nodes_sel in 0usize..2,
        batch in 1usize..8,
        start_idx in 0usize..40,
        victim_sel in 0usize..4,
    ) {
        let nodes = [2, 4][nodes_sel];
        let shards = 4;
        let (oracle, mut cluster, ids) = build_pair(nodes, shards, &specs, batch);
        let victim = 1 + victim_sel % (nodes - 1);
        cluster.partition_node(victim);

        let start = ids[start_idx % ids.len()];
        let expected = oracle.query_trace(start);
        let result = cluster.assemble(start);

        let victim_shards: Vec<u16> = (0..shards as u16)
            .filter(|&s| cluster.shard_owner(s) == victim)
            .collect();
        // Only the victim's shards may go missing.
        prop_assert!(result.missing_shards.iter().all(|s| victim_shards.contains(s)));
        // If Phase 1 ran at all it probed the victim and must have
        // reported every one of its shards.
        if result.rounds > 0 {
            prop_assert_eq!(&result.missing_shards, &victim_shards);
        }
        // The degraded answer is a subset of the oracle's trace.
        let full = edges(&expected);
        if !result.trace.is_empty() {
            prop_assert!(
                result.trace.spans.iter().any(|s| s.span.span_id == start),
                "start span missing from a non-empty partial trace"
            );
        }
        for (id, _) in edges(&result.trace) {
            prop_assert!(
                full.iter().any(|&(fid, _)| fid == id),
                "degraded trace invented span {:?}", id
            );
        }
    }
}

#[test]
fn loss_burst_retries_then_matches_oracle() {
    let policy = ShardPolicy::with_shards(4);
    let oracle = ConcurrentShardedStore::new(policy);
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        policy,
        ..ClusterConfig::default()
    });
    let spans = linked_pair();
    let oracle_ids = oracle.insert_batch(spans.clone());
    let cluster_ids = cluster.ingest(spans);
    assert_eq!(oracle_ids, cluster_ids);
    oracle.flush();

    // Total loss at node 1's NIC, healing after the first cluster-level
    // retry has already fired (base timeout 400ms, heal at 600ms): the
    // fabric's own retransmission cascade is exhausted each attempt, so
    // recovery must come from the RPC retry loop.
    let el = df_net::topology::ElementId::NodeNic(
        cluster
            .fabric
            .topology
            .node_of_ip(Ipv4Addr::new(192, 168, 10, 2))
            .expect("node 1"),
    );
    cluster
        .fabric
        .faults
        .inject(el.clone(), Fault::Loss { p: 1.0 });
    cluster.schedule_heal(el, DurationNs::from_millis(600));

    let result = cluster.assemble(cluster_ids[1]);
    assert!(
        result.is_complete(),
        "heal mid-retry must yield a full trace"
    );
    assert_eq!(&result.trace, &*oracle.query_trace(oracle_ids[1]));
    assert!(
        cluster.stats().rpc_retries >= 1,
        "recovery went through retry"
    );
    assert!(
        cluster.fabric.stats().dropped > 0,
        "the loss burst was real"
    );
}

#[test]
fn partition_heals_and_the_next_query_recovers_fully() {
    let policy = ShardPolicy::with_shards(4);
    let oracle = ConcurrentShardedStore::new(policy);
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        policy,
        ..ClusterConfig::default()
    });
    let spans = linked_pair();
    let oracle_ids = oracle.insert_batch(spans.clone());
    let cluster_ids = cluster.ingest(spans);
    assert_eq!(oracle_ids, cluster_ids);
    oracle.flush();

    let el = cluster.partition_node(1);
    let degraded = cluster.assemble(cluster_ids[0]);
    assert!(!degraded.is_complete(), "partition must degrade the query");
    assert!(cluster.fabric.stats().partitioned > 0);
    assert!(cluster.stats().rpcs_failed > 0);
    assert!(cluster.stats().degraded_queries >= 1);

    cluster.fabric.faults.clear(&el);
    cluster.run_until_idle(); // drain stragglers from the dead attempts
    let healed = cluster.assemble(cluster_ids[0]);
    assert!(healed.is_complete(), "healed cluster must answer fully");
    assert_eq!(&healed.trace, &*oracle.query_trace(oracle_ids[0]));
}

#[test]
fn row_cap_clamping_matches_oracle() {
    let mut policy = ShardPolicy::with_shards(3);
    policy.max_shard_rows = 4;
    let oracle = ConcurrentShardedStore::new(policy);
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        policy,
        ..ClusterConfig::default()
    });
    // 24 spans over 3 shards of 4 rows each: routing must clamp and both
    // sides must clamp identically.
    for chunk_start in (0..24u32).step_by(6) {
        let spans: Vec<Span> = (chunk_start..chunk_start + 6)
            .map(|i| {
                let mut s = Span::synthetic(TapSide::ServerProcess, 1_000 + i as u64, 500);
                s.tcp_seq_req = Some(i);
                s
            })
            .collect();
        assert_eq!(oracle.insert_batch(spans.clone()), cluster.ingest(spans));
    }
    oracle.flush();
    assert_eq!(cluster.shard_sizes(), oracle.shard_sizes());
    assert_eq!(cluster.routing_clamped(), oracle.routing_clamped());
    assert!(cluster.routing_clamped() > 0, "the cap must actually bind");
}
