//! Replication, anti-entropy, fast-fail, and crash-recovery tests for
//! the df-cluster protocol — the targeted complements to the seeded
//! sweeps in `tests/chaos.rs`.

use df_cluster::{Cluster, ClusterConfig};
use df_server::ConcurrentShardedStore;
use df_storage::ShardPolicy;
use df_types::span::TapSide;
use df_types::{DurationNs, Span, TimeNs};
use std::path::{Path, PathBuf};

/// Unique per-test temp dir, removed on drop.
struct TestDir {
    path: PathBuf,
}

fn test_dir(tag: &str) -> TestDir {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after epoch")
        .subsec_nanos();
    let path =
        std::env::temp_dir().join(format!("df-cluster-{tag}-{}-{nanos}", std::process::id()));
    std::fs::create_dir_all(&path).expect("create test dir");
    TestDir { path }
}

impl TestDir {
    fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A small linked corpus: pairs of client/server spans joined by tcp
/// sequence, spread across shards by their five-tuples.
fn corpus(n: u64) -> Vec<Span> {
    (0..n)
        .flat_map(|i| {
            let t = 1_000 + i * 100;
            let mut client = Span::synthetic(TapSide::ClientProcess, t, t + 90);
            client.tcp_seq_req = Some(i as u32);
            client.five_tuple.src_port = 40_000 + (i % 16) as u16;
            let mut server = Span::synthetic(TapSide::ServerProcess, t + 10, t + 80);
            server.tcp_seq_req = Some(i as u32);
            server.five_tuple.src_port = 40_000 + (i % 16) as u16;
            [client, server]
        })
        .collect()
}

fn paired(nodes: usize, shards: usize, rf: usize) -> (ConcurrentShardedStore, Cluster) {
    let policy = ShardPolicy::with_shards(shards);
    let oracle = ConcurrentShardedStore::new(policy);
    let cluster = Cluster::new(ClusterConfig {
        nodes,
        policy,
        replication_factor: rf,
        ..ClusterConfig::default()
    });
    (oracle, cluster)
}

// ---------------------------------------------------------------------
// Replica forwarding and failover
// ---------------------------------------------------------------------

#[test]
fn dead_primary_fails_over_to_replica_without_loss() {
    let (oracle, mut cluster) = paired(3, 6, 2);
    // Kill node 1 before ingest: every batch whose primary is node 1
    // must exhaust its ladder and fail over to the co-owner.
    cluster.kill(1);
    let spans = corpus(12);
    let oracle_ids = oracle.insert_batch(spans.clone());
    let ids = cluster.ingest(spans);
    assert_eq!(oracle_ids, ids);
    oracle.flush();

    let stats = cluster.stats();
    assert_eq!(stats.spans_lost, 0, "failover must preserve every span");
    assert!(stats.failovers >= 1, "some shard's primary was node 1");
    assert!(stats.rpcs_failed >= 1, "the dead primary cost real RPCs");

    for &start in &[ids[0], ids[ids.len() / 2], ids[ids.len() - 1]] {
        let result = cluster.assemble(start);
        assert!(result.is_complete(), "RF=2 must absorb one dead node");
        assert_eq!(&result.trace, &*oracle.query_trace(start));
    }
    assert_eq!(cluster.stats().degraded_queries, 0);
}

#[test]
fn write_quorum_of_one_acks_without_waiting_for_replicas() {
    let policy = ShardPolicy::with_shards(4);
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 3,
        policy,
        replication_factor: 2,
        write_quorum: 1,
        ..ClusterConfig::default()
    });
    let ids = cluster.ingest(corpus(8));
    assert!(!ids.is_empty());
    assert_eq!(cluster.stats().spans_lost, 0);
    assert!(cluster.stats().replicated_batches > 0);
    // Quorum 1 is satisfied by the primary's local apply; replication
    // still happens (and settles during the ingest event loop), it just
    // does not gate the ack — so no shortfall is ever recorded.
    assert_eq!(cluster.stats().quorum_shortfalls, 0);
    cluster.run_until_idle();
    let report = cluster.anti_entropy_round();
    assert_eq!(report.spans, 0, "replicas were already caught up");
    assert_eq!(report.divergent, 0);
}

// ---------------------------------------------------------------------
// Anti-entropy convergence
// ---------------------------------------------------------------------

/// Batches replicated while the replica was partitioned away are gone
/// past the retry budget — the write was acknowledged under quorum. The
/// anti-entropy sweep after the heal must backfill the replica to a
/// byte-identical copy.
#[test]
fn anti_entropy_backfills_partition_losses_byte_identically() {
    let (oracle, mut cluster) = paired(2, 4, 2);
    // Warm batch reaches both copies.
    let warm = corpus(4);
    oracle.insert_batch(warm.clone());
    let warm_ids = cluster.ingest(warm);

    // Node 1 partitioned from the coordinator: SpanBatch ships fail over
    // to node 0's copies, and node 0's ReplicateBatch forwards to node 1
    // die too (same cut link) — every write acks under quorum.
    let el = cluster.partition_node(1);
    let cold = corpus(6);
    oracle.insert_batch(cold.clone());
    cluster.ingest(cold);
    oracle.flush();

    let stats = cluster.stats();
    assert_eq!(stats.spans_lost, 0);
    assert!(
        stats.quorum_shortfalls > 0,
        "partitioned replicas force under-quorum acks"
    );
    // The replica is genuinely behind before the sweep.
    let lagging: Vec<u16> = (0..4u16)
        .filter(|&s| cluster.shard_rows_at(1, s) < cluster.shard_rows_at(0, s))
        .collect();
    assert!(!lagging.is_empty(), "node 1 must have missed rows");

    cluster.fabric.faults.clear(&el);
    cluster.run_until_idle();
    let report = cluster.anti_entropy_round();
    assert!(report.pulls > 0, "the sweep must pull missing ranges");
    assert!(report.spans > 0);
    assert_eq!(report.unreachable, 0, "healed fabric, reachable peers");

    for s in 0..4u16 {
        assert_eq!(
            cluster.shard_rows_at(0, s),
            cluster.shard_rows_at(1, s),
            "shard {s} row counts must converge"
        );
        assert_eq!(
            cluster.shard_digest_at(0, s),
            cluster.shard_digest_at(1, s),
            "shard {s} content must be byte-identical"
        );
    }
    // And a second sweep is a no-op.
    let again = cluster.anti_entropy_round();
    assert_eq!((again.pulls, again.spans, again.divergent), (0, 0, 0));

    // The converged cluster still answers oracle-identical traces.
    let result = cluster.assemble(warm_ids[0]);
    assert!(result.is_complete());
    assert_eq!(&result.trace, &*oracle.query_trace(warm_ids[0]));
}

/// A replacement node joining after a crash inherits the dead node's
/// owner slots empty; anti-entropy rebuilds them from the surviving
/// co-owners.
#[test]
fn fresh_replica_after_join_is_backfilled_by_anti_entropy() {
    let (oracle, mut cluster) = paired(3, 6, 2);
    let spans = corpus(10);
    oracle.insert_batch(spans.clone());
    let ids = cluster.ingest(spans);
    oracle.flush();
    cluster.kill(1);

    let idx = cluster.join();
    assert_eq!(idx, 3);
    let inherited = cluster.shards_of_node(idx);
    assert!(!inherited.is_empty(), "newcomer inherits the dead slots");
    assert!(cluster.shards_of_node(1).is_empty(), "dead node unseated");

    let report = cluster.anti_entropy_round();
    assert!(report.spans > 0, "inherited slots start empty");
    for &s in &inherited {
        let owners = cluster.shard_owners(s);
        let digests: Vec<_> = owners
            .iter()
            .filter_map(|&o| cluster.shard_digest_at(o, s))
            .collect();
        assert_eq!(digests.len(), owners.len());
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "shard {s} copies must match after backfill"
        );
    }
    let result = cluster.assemble(ids[1]);
    assert!(result.is_complete());
    assert_eq!(&result.trace, &*oracle.query_trace(ids[1]));
}

// ---------------------------------------------------------------------
// Crash recovery from tiered segment files
// ---------------------------------------------------------------------

#[test]
fn restart_reregisters_segments_and_serves_cold_spans_without_refetch() {
    let dir = test_dir("restart");
    let policy = ShardPolicy::with_shards(4);
    let oracle = ConcurrentShardedStore::new(policy);
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        policy,
        replication_factor: 2,
        tier_dir: Some(dir.path().to_path_buf()),
        ..ClusterConfig::default()
    });
    let spans = corpus(12);
    oracle.insert_batch(spans.clone());
    let ids = cluster.ingest(spans);
    oracle.flush();

    // Everything on node 1 goes cold on disk.
    let spilled = cluster
        .spill_node(1, TimeNs(u64::MAX))
        .expect("spill node 1");
    assert!(spilled.segments > 0, "the spill must write segment files");
    assert!(spilled.spans > 0);

    // Crash node 1; drop a garbage file into its tier directory so the
    // catalog scan has something to reject.
    cluster.kill(1);
    std::fs::write(
        dir.path()
            .join("node1/shard0000-b999999999999-seg99999999.dfspan"),
        b"not a DFSPANS1 segment",
    )
    .expect("plant corrupt file");

    let recovered = cluster.restart_node(1).expect("restart node 1");
    assert_eq!(
        recovered.segments, spilled.segments,
        "every valid DFSPANS1 file must be re-registered"
    );
    assert_eq!(
        recovered.rows, spilled.spans,
        "every spilled span must come back cold"
    );
    assert_eq!(
        recovered.rejected_segments, 1,
        "the corrupt file is counted, not panicked over"
    );
    assert_eq!(recovered.orphan_rows, 0);
    assert_eq!(cluster.stats().recovered_rejects, 1);
    assert!(cluster.is_alive(1));

    // The hot tail is empty here (everything was spilled), so the
    // anti-entropy sweep must find nothing to pull: the cold rows were
    // recovered from disk, not re-fetched from peers.
    let report = cluster.anti_entropy_round();
    assert_eq!(
        report.spans, 0,
        "recovery must not re-fetch cold spans from peers"
    );
    assert_eq!(report.divergent, 0, "recovered copy matches its peer");
    for s in 0..4u16 {
        assert_eq!(cluster.shard_rows_at(1, s), cluster.shard_rows_at(0, s));
    }

    // Queries page the recovered cold rows straight from node 1's disk.
    let result = cluster.assemble(ids[0]);
    assert!(result.is_complete());
    assert_eq!(&result.trace, &*oracle.query_trace(ids[0]));
}

/// Spill, crash, recover, then keep ingesting: the hot tail lands on top
/// of the recovered cold prefix and anti-entropy still converges.
#[test]
fn recovered_node_keeps_accepting_the_hot_tail() {
    let dir = test_dir("hot-tail");
    let policy = ShardPolicy::with_shards(4);
    let oracle = ConcurrentShardedStore::new(policy);
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        policy,
        replication_factor: 2,
        tier_dir: Some(dir.path().to_path_buf()),
        ..ClusterConfig::default()
    });
    let cold = corpus(6);
    oracle.insert_batch(cold.clone());
    cluster.ingest(cold);
    cluster
        .spill_node(1, TimeNs(u64::MAX))
        .expect("spill node 1");
    cluster.kill(1);
    cluster.restart_node(1).expect("restart node 1");

    // New spans arrive after the restart (later timestamps).
    let hot: Vec<Span> = corpus(4)
        .into_iter()
        .map(|mut s| {
            s.req_time = TimeNs(s.req_time.0 + 10_000_000);
            s.resp_time = TimeNs(s.resp_time.0 + 10_000_000);
            s
        })
        .collect();
    oracle.insert_batch(hot.clone());
    let ids = cluster.ingest(hot);
    oracle.flush();
    assert_eq!(cluster.stats().spans_lost, 0);

    let report = cluster.anti_entropy_round();
    assert_eq!(report.divergent, 0);
    for s in 0..4u16 {
        assert_eq!(cluster.shard_rows_at(1, s), cluster.shard_rows_at(0, s));
        assert_eq!(cluster.shard_digest_at(1, s), cluster.shard_digest_at(0, s));
    }
    let result = cluster.assemble(*ids.last().expect("hot ids"));
    assert!(result.is_complete());
    assert_eq!(
        &result.trace,
        &*oracle.query_trace(*ids.last().expect("hot ids"))
    );
}

// ---------------------------------------------------------------------
// Fast-fail probation
// ---------------------------------------------------------------------

/// After one exhausted ladder the dead node is under probation and new
/// RPCs to it fast-fail on a single base-timeout probe; the probation is
/// bounded, and — critically — a healed partition recovers on the very
/// next query because the probe is real.
#[test]
fn fast_fail_probation_is_bounded_and_heals() {
    let (oracle, mut cluster) = paired(2, 4, 1);
    let spans = corpus(4);
    oracle.insert_batch(spans.clone());
    let ids = cluster.ingest(spans);
    oracle.flush();

    let el = cluster.partition_node(1);
    let first = cluster.assemble(ids[0]);
    assert!(!first.is_complete(), "RF=1 partition must degrade");
    assert_eq!(
        cluster.stats().fast_fails,
        0,
        "first failure pays the full ladder"
    );
    let retries_after_first = cluster.stats().rpc_retries;

    let second = cluster.assemble(ids[0]);
    assert!(!second.is_complete());
    assert!(
        cluster.stats().fast_fails > 0,
        "probation must compress the second query's ladder"
    );
    assert_eq!(
        cluster.stats().rpc_retries,
        retries_after_first,
        "fast-fail probes are single-attempt: no retries added"
    );

    // Heal the partition; the next query's probe goes through, clears
    // the suspicion, and the answer is complete again — the probation
    // can never permanently blacklist a healed node.
    cluster.fabric.faults.clear(&el);
    cluster.run_until_idle();
    let healed = cluster.assemble(ids[0]);
    assert!(healed.is_complete(), "a healed node must serve immediately");
    assert_eq!(&healed.trace, &*oracle.query_trace(ids[0]));
}

/// Loss (not partition): a fast-fail probe that gets through re-arms the
/// full ladder for subsequent RPCs mid-probation.
#[test]
fn successful_probe_lifts_probation_early() {
    let (_oracle, mut cluster) = paired(2, 4, 1);
    let ids = cluster.ingest(corpus(4));

    let el = cluster.partition_node(1);
    let _ = cluster.assemble(ids[0]); // exhaust one ladder → probation
    cluster.fabric.faults.clear(&el);
    cluster.run_until_idle();

    let healed = cluster.assemble(ids[0]);
    assert!(healed.is_complete());
    // The probe succeeded, so the suspicion is gone: another partition
    // now pays the full ladder again instead of fast-failing.
    let fast_fails_before = cluster.stats().fast_fails;
    cluster.partition_node(1);
    let _ = cluster.assemble(ids[0]);
    assert_eq!(
        cluster.stats().fast_fails,
        fast_fails_before,
        "a cleared suspicion must not fast-fail the next failure"
    );
}

// ---------------------------------------------------------------------
// Membership changes racing in-flight assembly
// ---------------------------------------------------------------------

/// Regression: a join that fires *inside* an assembly's settle loops
/// (moving stores and rewriting the live shard map mid-query) must not
/// panic, hang, degrade, or change the answer — the assembly runs
/// against its pinned ownership snapshot.
#[test]
fn join_mid_assembly_keeps_the_pinned_snapshot() {
    let (oracle, mut cluster) = paired(2, 6, 2);
    let spans = corpus(10);
    oracle.insert_batch(spans.clone());
    let ids = cluster.ingest(spans);
    oracle.flush();

    // Fires during the first settle loop the assembly runs.
    cluster.schedule_join(DurationNs(1));
    let result = cluster.assemble(ids[1]);
    assert_eq!(
        cluster.node_count(),
        3,
        "the join must actually have fired mid-assembly"
    );
    assert!(result.is_complete(), "mid-assembly join must not degrade");
    assert_eq!(&result.trace, &*oracle.query_trace(ids[1]));

    // The post-join topology answers identically (newcomer included).
    let after = cluster.assemble(ids[1]);
    assert!(after.is_complete());
    assert_eq!(&after.trace, &*oracle.query_trace(ids[1]));
}

/// Same race at RF=1 with a scheduled kill: the membership event lands
/// mid-assembly and the degradation is still attributed to the victim's
/// shards only.
#[test]
fn kill_mid_assembly_degrades_cleanly_at_rf1() {
    let (oracle, mut cluster) = paired(2, 4, 1);
    let spans = corpus(8);
    oracle.insert_batch(spans.clone());
    let ids = cluster.ingest(spans);
    oracle.flush();

    cluster.schedule_kill(1, DurationNs(1));
    let result = cluster.assemble(ids[0]);
    assert!(!cluster.is_alive(1), "the kill fired");
    let victim_shards = cluster.shards_of_node(1);
    assert!(
        result
            .missing_shards
            .iter()
            .all(|s| victim_shards.contains(s)),
        "only the victim's shards may go missing: {:?}",
        result.missing_shards
    );
    for got in &result.trace.spans {
        let expected = oracle.query_trace(ids[0]);
        assert!(
            expected
                .spans
                .iter()
                .any(|e| e.span.span_id == got.span.span_id),
            "degraded trace invented a span"
        );
    }
}
