//! df-check model tests for the distributed protocol's coordination
//! state machines.
//!
//! The cluster event loop is single-threaded, but its correctness rests
//! on two pure disciplines that *would* be concurrent in a real
//! deployment: Phase 1 candidate-set responses merging into the round
//! that asked for them ([`RoundTracker`]), and span batches applying to a
//! shard in row order no matter how RPC retries reorder or duplicate
//! them ([`BatchReorder`]). These tests model both under adversarial
//! schedules — and prove the *naive* variants (merge any known response,
//! append batches in arrival order) are caught with a replayable
//! counterexample.
//!
//! Replication adds a third discipline: a primary may acknowledge a
//! replicated write *exactly once*, and only when the quorum is met or
//! nothing is left outstanding ([`WriteQuorum`]). Modeled the same way,
//! with the naive eager-ack counter caught and replayed.
//!
//! Budgets respect `DF_CHECK_MAX_SCHEDULES` / `DF_CHECK_MAX_PREEMPTIONS`
//! (see `ci.sh`).

use df_check::model::{self, CheckConfig, FailureKind};
use df_check::sync::{Arc, Mutex};
use df_cluster::{BatchReorder, RoundTracker, WriteQuorum};
use std::collections::HashSet;

fn budget() -> CheckConfig {
    CheckConfig::default().env_budget()
}

fn checked_or_skip() -> bool {
    if df_check::is_checked() {
        true
    } else {
        eprintln!("skipped: df-check built without the `checked` feature");
        false
    }
}

// ---------------------------------------------------------------------
// RPC retry never reorders candidate-set rounds.
//
// Retries reuse the rpc id, so the coordinator can receive: a duplicate
// of an accepted response, and a late response for a round it has
// already abandoned. The tracker must accept each expected id once, in
// the current round only — under EVERY delivery interleaving.
// ---------------------------------------------------------------------

/// Round 0 expects rpcs {1, 2}; rpc 1's response is delivered twice (a
/// cluster-level retry produced two copies). Then round 1 opens and a
/// straggler copy of the round-0 response races the round-1 response.
fn tracker_round() {
    let t = Arc::new(Mutex::new(RoundTracker::new()));
    assert!(t.lock().expect("tracker lock").begin_round(0, &[1, 2]));
    let deliverers: Vec<_> = [(0u32, 1u64), (0, 1), (0, 2)]
        .into_iter()
        .map(|(round, id)| {
            let t = Arc::clone(&t);
            model::spawn(move || t.lock().expect("tracker lock").accept(round, id))
        })
        .collect();
    let outcomes: Vec<bool> = deliverers.into_iter().map(|h| h.join()).collect();
    assert_eq!(
        outcomes.iter().filter(|&&ok| ok).count(),
        2,
        "exactly one copy of each expected response accepted"
    );
    {
        let mut g = t.lock().expect("tracker lock");
        assert_eq!(g.outstanding(), 0, "round 0 settled");
        assert!(g.begin_round(1, &[3]));
    }
    let late = {
        let t = Arc::clone(&t);
        model::spawn(move || t.lock().expect("tracker lock").accept(0, 2))
    };
    let current = {
        let t = Arc::clone(&t);
        model::spawn(move || t.lock().expect("tracker lock").accept(1, 3))
    };
    assert!(!late.join(), "stale round-0 straggler must be rejected");
    assert!(current.join(), "round-1 response must be accepted");
    let g = t.lock().expect("tracker lock");
    assert!(
        g.is_ordered(),
        "accepted responses interleaved across rounds"
    );
    assert_eq!(g.log().len(), 3);
    assert_eq!(g.stale(), 2, "one duplicate + one straggler");
}

#[test]
fn rpc_retry_never_reorders_candidate_rounds() {
    if !checked_or_skip() {
        return;
    }
    let report = model::check(budget(), tracker_round);
    assert!(report.complete, "schedule space must be exhausted");
    assert!(report.schedules >= 2, "multiple delivery orders explored");
    assert!(report.lock_cycles.is_empty(), "no lock-order inversions");
}

/// The *mutation*: a tracker that merges any response whose rpc id it
/// ever issued, ignoring the round label — the bug the RoundTracker
/// exists to prevent.
#[derive(Default)]
struct NaiveTracker {
    issued: HashSet<u64>,
    log: Vec<(u32, u64)>,
}

impl NaiveTracker {
    fn accept(&mut self, round: u32, rpc_id: u64) -> bool {
        if self.issued.remove(&rpc_id) {
            self.log.push((round, rpc_id));
            true
        } else {
            false
        }
    }
}

fn naive_tracker_round() {
    let t = Arc::new(Mutex::new(NaiveTracker::default()));
    // Round 0 issued rpc 1 but timed it out; round 1 issued rpc 2. The
    // straggling round-0 response races the round-1 response.
    t.lock().expect("tracker lock").issued.extend([1, 2]);
    let handles: Vec<_> = [(0u32, 1u64), (1, 2)]
        .into_iter()
        .map(|(round, id)| {
            let t = Arc::clone(&t);
            model::spawn(move || t.lock().expect("tracker lock").accept(round, id))
        })
        .collect();
    for h in handles {
        h.join();
    }
    let g = t.lock().expect("tracker lock");
    assert!(
        g.log.windows(2).all(|w| w[0].0 <= w[1].0),
        "stale round response merged after a newer round"
    );
}

#[test]
fn round_agnostic_merging_is_caught_and_replayable() {
    if !checked_or_skip() {
        return;
    }
    let report = model::explore(budget(), naive_tracker_round);
    let failure = report
        .failure
        .expect("ignoring round labels must reorder rounds in some schedule");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("stale round response"),
        "failure names the invariant: {}",
        failure.message
    );
    let replayed = model::replay(failure.schedule.clone(), naive_tracker_round);
    let rf = replayed.failure.expect("replay reproduces the failure");
    assert_eq!(rf.kind, FailureKind::Panic);
    assert_eq!(replayed.schedules, 1, "replay runs exactly one schedule");
}

// ---------------------------------------------------------------------
// Reordered / duplicated span batches still apply in row order.
// ---------------------------------------------------------------------

/// Three batches covering rows 0..2, 2..3, 3..5 delivered by concurrent
/// "RPC handlers", plus a retransmitted duplicate of the first. The
/// shard must end up exactly [0, 1, 2, 3, 4] under every interleaving.
fn reorder_round() {
    let state = Arc::new(Mutex::new((Vec::<u32>::new(), BatchReorder::<u32>::new())));
    let batches: [(u32, Vec<u32>); 4] = [
        (0, vec![0, 1]),
        (2, vec![2]),
        (3, vec![3, 4]),
        (0, vec![0, 1]),
    ];
    let handles: Vec<_> = batches
        .into_iter()
        .map(|(start_row, batch)| {
            let state = Arc::clone(&state);
            model::spawn(move || {
                let mut g = state.lock().expect("shard lock");
                let (applied, reorder) = &mut *g;
                let runs = reorder.offer(applied.len() as u32, start_row, batch);
                for run in runs {
                    applied.extend(run);
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    let g = state.lock().expect("shard lock");
    assert_eq!(g.0, vec![0, 1, 2, 3, 4], "rows applied contiguously");
    assert_eq!(g.1.pending(), 0, "nothing stranded in the stash");
    assert_eq!(g.1.duplicates(), 1, "the retransmission was dropped");
}

#[test]
fn reordered_batches_apply_in_row_order_under_every_schedule() {
    if !checked_or_skip() {
        return;
    }
    let report = model::check(budget(), reorder_round);
    assert!(report.complete, "schedule space must be exhausted");
    assert!(report.schedules >= 2, "multiple delivery orders explored");
    assert!(report.lock_cycles.is_empty(), "no lock-order inversions");
}

// ---------------------------------------------------------------------
// A replicated write is acknowledged exactly once, at or past quorum
// (or, when every replica failed, as the explicit shortfall path).
// ---------------------------------------------------------------------

/// Quorum 2 of 3 copies: the primary applied locally, two replica acks
/// race in. Whichever handler's `try_ack` fires must see the quorum met
/// at that instant, and exactly one handler may acknowledge — under
/// every interleaving of the two responses.
fn quorum_round() {
    let w = Arc::new(Mutex::new(WriteQuorum::new(2, 2)));
    let handlers: Vec<_> = (0..2)
        .map(|_| {
            let w = Arc::clone(&w);
            model::spawn(move || {
                let mut g = w.lock().expect("write lock");
                g.record_ack();
                if g.try_ack() {
                    // Snapshot *inside* the critical section: the state
                    // that justified this ack.
                    Some((g.applied(), g.quorum()))
                } else {
                    None
                }
            })
        })
        .collect();
    let acks: Vec<_> = handlers.into_iter().filter_map(|h| h.join()).collect();
    assert_eq!(acks.len(), 1, "the requester must be acked exactly once");
    let (applied, quorum) = acks[0];
    assert!(applied >= quorum, "ack taken below quorum without failures");
    let g = w.lock().expect("write lock");
    assert!(g.settled() && g.acked() && g.met());
}

/// Quorum 3 of 3 with both replicas failing: the racing failure
/// handlers may ack only when *nothing* is left outstanding, exactly
/// once, and that ack is an under-quorum shortfall.
fn quorum_shortfall_round() {
    let w = Arc::new(Mutex::new(WriteQuorum::new(3, 2)));
    let handlers: Vec<_> = (0..2)
        .map(|_| {
            let w = Arc::clone(&w);
            model::spawn(move || {
                let mut g = w.lock().expect("write lock");
                g.record_failure();
                if g.try_ack() {
                    Some((g.outstanding(), g.met()))
                } else {
                    None
                }
            })
        })
        .collect();
    let acks: Vec<_> = handlers.into_iter().filter_map(|h| h.join()).collect();
    assert_eq!(acks.len(), 1, "exhaustion must ack exactly once");
    let (outstanding, met) = acks[0];
    assert_eq!(outstanding, 0, "acked while an RPC was still in flight");
    assert!(!met, "this path is a shortfall by construction");
}

#[test]
fn replicated_writes_ack_exactly_once_at_quorum() {
    if !checked_or_skip() {
        return;
    }
    let report = model::check(budget(), quorum_round);
    assert!(report.complete, "schedule space must be exhausted");
    assert!(report.schedules >= 2, "multiple ack orders explored");
    assert!(report.lock_cycles.is_empty(), "no lock-order inversions");
    let report = model::check(budget(), quorum_shortfall_round);
    assert!(report.complete, "schedule space must be exhausted");
    assert!(report.lock_cycles.is_empty(), "no lock-order inversions");
}

/// The *mutation*: an eager-ack counter that acknowledges whenever the
/// applied count has reached the quorum — with no at-most-once guard.
/// Both replica-ack handlers observe `applied >= quorum` in some
/// schedule and the requester is acknowledged twice (a duplicate
/// SpanBatchAck on the wire).
struct NaiveQuorum {
    quorum: u32,
    applied: u32,
    acks_sent: u32,
}

fn naive_quorum_round() {
    let w = Arc::new(Mutex::new(NaiveQuorum {
        quorum: 2,
        applied: 1, // the primary's local apply
        acks_sent: 0,
    }));
    let handlers: Vec<_> = (0..2)
        .map(|_| {
            let w = Arc::clone(&w);
            model::spawn(move || {
                {
                    let mut g = w.lock().expect("write lock");
                    g.applied += 1;
                }
                // The bug: a second lock scope re-derives "should I ack"
                // from the running total, so both handlers can say yes.
                let mut g = w.lock().expect("write lock");
                if g.applied >= g.quorum {
                    g.acks_sent += 1;
                }
            })
        })
        .collect();
    for h in handlers {
        h.join();
    }
    let g = w.lock().expect("write lock");
    assert!(g.acks_sent <= 1, "requester acknowledged more than once");
}

#[test]
fn eager_quorum_acks_are_caught_and_replayable() {
    if !checked_or_skip() {
        return;
    }
    let report = model::explore(budget(), naive_quorum_round);
    let failure = report
        .failure
        .expect("quorum-met re-checks must double-ack in some schedule");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("more than once"),
        "failure names the invariant: {}",
        failure.message
    );
    let replayed = model::replay(failure.schedule.clone(), naive_quorum_round);
    let rf = replayed.failure.expect("replay reproduces the failure");
    assert_eq!(rf.kind, FailureKind::Panic);
    assert_eq!(replayed.schedules, 1, "replay runs exactly one schedule");
}

/// The *mutation*: appending batches in arrival order without the
/// reorder buffer. Some schedule delivers rows 2..3 first and corrupts
/// the row space.
fn naive_apply_round() {
    let shard = Arc::new(Mutex::new(Vec::<u32>::new()));
    let handles: Vec<_> = [vec![0u32, 1], vec![2]]
        .into_iter()
        .map(|batch| {
            let shard = Arc::clone(&shard);
            model::spawn(move || shard.lock().expect("shard lock").extend(batch))
        })
        .collect();
    for h in handles {
        h.join();
    }
    let g = shard.lock().expect("shard lock");
    assert_eq!(*g, vec![0, 1, 2], "rows must land in row order");
}

#[test]
fn arrival_order_application_is_caught() {
    if !checked_or_skip() {
        return;
    }
    let report = model::explore(budget(), naive_apply_round);
    let failure = report
        .failure
        .expect("arrival-order application must corrupt some schedule");
    assert_eq!(failure.kind, FailureKind::Panic);
    let replayed = model::replay(failure.schedule.clone(), naive_apply_round);
    assert!(replayed.failure.is_some(), "replay reproduces the failure");
}
