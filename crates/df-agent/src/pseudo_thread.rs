//! Pseudo-thread tracking for coroutine runtimes (paper §3.3.1).
//!
//! "For languages such as Golang, DeepFlow monitors the creation of
//! coroutines to save the parent-child coroutine relationship in a
//! pseudo-thread structure." All coroutines descending from one root belong
//! to the same logical execution; messages they emit share one
//! [`PseudoThreadId`], which Algorithm 1 joins on just like a thread id.

use df_kernel::process::CoroutineEvent;
use df_types::{CoroutineId, Pid, PseudoThreadId};
use std::collections::HashMap;

/// Tracks coroutine ancestry per process and maps coroutines to
/// pseudo-thread ids.
#[derive(Debug, Default)]
pub struct PseudoThreadTracker {
    parent: HashMap<(Pid, CoroutineId), Option<CoroutineId>>,
    assigned: HashMap<(Pid, CoroutineId), PseudoThreadId>,
    next_id: u64,
}

impl PseudoThreadTracker {
    /// New tracker. Ids start at 1.
    pub fn new() -> Self {
        Self::with_namespace(0)
    }

    /// New tracker with node-namespaced ids (global uniqueness across
    /// agents, like systrace ids).
    pub fn with_namespace(namespace: u32) -> Self {
        PseudoThreadTracker {
            next_id: (u64::from(namespace) << 40) | 1,
            ..Default::default()
        }
    }

    /// Consume coroutine lifecycle events drained from the kernel.
    pub fn observe(&mut self, events: &[CoroutineEvent]) {
        for e in events {
            match e {
                CoroutineEvent::Created { pid, child, parent } => {
                    self.parent.insert((*pid, *child), *parent);
                }
                CoroutineEvent::Finished { pid, coroutine } => {
                    // Keep ancestry (late messages may still reference it);
                    // drop only the memoised assignment to bound memory.
                    self.assigned.remove(&(*pid, *coroutine));
                }
            }
        }
    }

    /// Pseudo-thread id for a coroutine: the id of its root ancestor's
    /// chain. Unknown coroutines get their own fresh chain (defensive).
    pub fn pseudo_thread(&mut self, pid: Pid, coroutine: CoroutineId) -> PseudoThreadId {
        if let Some(id) = self.assigned.get(&(pid, coroutine)) {
            return *id;
        }
        // Walk to the root.
        let mut cur = coroutine;
        let mut chain = vec![cur];
        let mut hops = 0usize;
        while let Some(Some(p)) = self.parent.get(&(pid, cur)) {
            cur = *p;
            chain.push(cur);
            hops += 1;
            if hops > 1_000_000 {
                break;
            }
            if let Some(id) = self.assigned.get(&(pid, cur)) {
                let id = *id;
                for c in chain {
                    self.assigned.insert((pid, c), id);
                }
                return id;
            }
        }
        let id = PseudoThreadId(self.next_id);
        self.next_id += 1;
        for c in chain {
            self.assigned.insert((pid, c), id);
        }
        id
    }

    /// Coroutines currently memoised.
    pub fn tracked(&self) -> usize {
        self.parent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Pid = Pid(1);

    fn created(child: u64, parent: Option<u64>) -> CoroutineEvent {
        CoroutineEvent::Created {
            pid: P,
            child: CoroutineId(child),
            parent: parent.map(CoroutineId),
        }
    }

    #[test]
    fn descendants_share_the_roots_pseudo_thread() {
        let mut t = PseudoThreadTracker::new();
        t.observe(&[created(1, None), created(2, Some(1)), created(3, Some(2))]);
        let root = t.pseudo_thread(P, CoroutineId(1));
        let mid = t.pseudo_thread(P, CoroutineId(2));
        let leaf = t.pseudo_thread(P, CoroutineId(3));
        assert_eq!(root, mid);
        assert_eq!(mid, leaf);
    }

    #[test]
    fn independent_roots_get_distinct_ids() {
        let mut t = PseudoThreadTracker::new();
        t.observe(&[created(1, None), created(2, None)]);
        assert_ne!(
            t.pseudo_thread(P, CoroutineId(1)),
            t.pseudo_thread(P, CoroutineId(2))
        );
    }

    #[test]
    fn memoisation_works_bottom_up() {
        let mut t = PseudoThreadTracker::new();
        t.observe(&[created(1, None), created(2, Some(1))]);
        // Resolve the leaf first, then the root: both map to the same chain.
        let leaf = t.pseudo_thread(P, CoroutineId(2));
        let root = t.pseudo_thread(P, CoroutineId(1));
        assert_eq!(leaf, root);
    }

    #[test]
    fn processes_are_isolated() {
        let mut t = PseudoThreadTracker::new();
        t.observe(&[created(1, None)]);
        t.observe(&[CoroutineEvent::Created {
            pid: Pid(2),
            child: CoroutineId(1),
            parent: None,
        }]);
        assert_ne!(
            t.pseudo_thread(P, CoroutineId(1)),
            t.pseudo_thread(Pid(2), CoroutineId(1))
        );
    }

    #[test]
    fn unknown_coroutine_is_defensively_assigned() {
        let mut t = PseudoThreadTracker::new();
        let id = t.pseudo_thread(P, CoroutineId(99));
        // Stable on re-query.
        assert_eq!(t.pseudo_thread(P, CoroutineId(99)), id);
    }
}
