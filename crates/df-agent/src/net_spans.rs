//! Net spans from cBPF / AF_PACKET captures (paper §3.2.1 instrumentation
//! extensions + Appendix A).
//!
//! Each tapped interface yields frames; this builder runs the same protocol
//! inference and session aggregation over them as the syscall path runs
//! over messages, producing one span per request/response pair *per capture
//! point* — the hop-by-hop spans that let Fig. 11's operators see exactly
//! which infrastructure element misbehaved.

use crate::session::{SessionAggregator, SessionOutcome};
use df_net::taps::TapKind;
use df_protocols::inference::InferenceEngine;
use df_protocols::ParsedMessage;
use df_types::packet::Frame;
use df_types::span::{CapturePoint, Span, SpanKind, SpanStatus, TapSide};
use df_types::tags::TagSet;
use df_types::{AgentId, DurationNs, FiveTuple, FlowId, L7Protocol, NodeId, SpanId, TimeNs};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::net::Ipv4Addr;

/// One captured L7 message (request or response) at a tap.
#[derive(Debug, Clone)]
pub struct NetMsg {
    ts: TimeNs,
    tuple: FiveTuple,
    tcp_seq: u32,
    byte_len: usize,
    parse: ParsedMessage,
}

/// Per-interface capture context: what kind of tap, and which IPs are local
/// to it (a veth knows its pod; a node NIC knows the node's pods).
#[derive(Debug, Clone)]
pub struct TapContext {
    /// The tap kind.
    pub kind: TapKind,
    /// IPs local to the tapped element.
    pub local_ips: HashSet<Ipv4Addr>,
}

/// Builds net spans for one agent.
pub struct NetSpanBuilder {
    node: NodeId,
    agent: AgentId,
    inference: InferenceEngine,
    sessions: SessionAggregator<NetMsg>,
    taps: HashMap<String, TapContext>,
    /// Flow → client endpoint (set by SYN or first request).
    flow_client: HashMap<FiveTuple, (Ipv4Addr, u16)>,
    /// Frames whose payload could not be classified (continuations etc.).
    pub unparsed_frames: u64,
    /// Spans produced.
    pub spans_built: u64,
}

impl NetSpanBuilder {
    /// Builder for `node`'s agent.
    pub fn new(node: NodeId, agent: AgentId, slot: DurationNs) -> Self {
        NetSpanBuilder {
            node,
            agent,
            inference: InferenceEngine::default(),
            sessions: SessionAggregator::new(slot),
            taps: HashMap::new(),
            flow_client: HashMap::new(),
            unparsed_frames: 0,
            spans_built: 0,
        }
    }

    /// Register the context for an interface this agent taps.
    pub fn register_tap(&mut self, interface: &str, ctx: TapContext) {
        self.taps.insert(interface.to_string(), ctx);
    }

    /// Register a user-supplied protocol specification for packet parsing.
    pub fn register_custom_protocol(
        &mut self,
        proto: df_protocols::inference::CustomProtocol,
    ) -> df_types::L7Protocol {
        self.inference.register_custom(proto)
    }

    /// Offer one captured frame; may complete a span.
    pub fn offer(&mut self, interface: &str, frame: &Frame, ts: TimeNs) -> Option<Span> {
        let Frame::Segment(seg) = frame else {
            return None; // ARP handled by the flow table
        };
        let canon = seg.five_tuple.canonical();
        // Establish the client endpoint from the SYN.
        if seg.flags.syn && !seg.flags.ack {
            self.flow_client
                .entry(canon)
                .or_insert((seg.five_tuple.src_ip, seg.five_tuple.src_port));
        }
        if seg.payload.is_empty() {
            return None;
        }
        let flow_key = hash2(interface, canon);
        let Some(parse) = self.inference.parse_for(flow_key, &seg.payload) else {
            self.unparsed_frames += 1;
            return None;
        };
        // First request also pins the client if no SYN was seen (taps can
        // start mid-connection).
        if parse.msg_type == df_types::MessageType::Request {
            self.flow_client
                .entry(canon)
                .or_insert((seg.five_tuple.src_ip, seg.five_tuple.src_port));
        }
        let msg = NetMsg {
            ts,
            tuple: seg.five_tuple,
            tcp_seq: seg.seq,
            byte_len: seg.payload.len(),
            parse: parse.clone(),
        };
        match self
            .sessions
            .offer(flow_key, parse.session_key, parse.msg_type, ts, msg)
        {
            SessionOutcome::Matched { request, response }
            | SessionOutcome::OutOfWindow { request, response } => {
                Some(self.build_span(interface, request, response))
            }
            _ => None,
        }
    }

    fn build_span(&mut self, interface: &str, req: NetMsg, resp: NetMsg) -> Span {
        self.spans_built += 1;
        let client_tuple = req.tuple; // the request's sender is the client
        let canon = client_tuple.canonical();
        let client = self
            .flow_client
            .get(&canon)
            .copied()
            .unwrap_or((client_tuple.src_ip, client_tuple.src_port));
        let tap_side = self.resolve_tap_side(interface, client.0, &client_tuple);
        let status = status_of(&resp.parse);
        Span {
            span_id: SpanId(0),
            kind: SpanKind::Net,
            capture: CapturePoint {
                node: self.node,
                tap_side,
                interface: Some(interface.to_string()),
            },
            agent: self.agent,
            flow_id: FlowId(hash2("flow", canon)),
            five_tuple: client_tuple,
            l7_protocol: req.parse.protocol,
            endpoint: req.parse.endpoint.clone(),
            req_time: req.ts,
            resp_time: resp.ts,
            status,
            status_code: resp.parse.status_code,
            req_bytes: req.byte_len as u64,
            resp_bytes: resp.byte_len as u64,
            pid: None,
            tid: None,
            process_name: None,
            systrace_id_req: None,
            systrace_id_resp: None,
            pseudo_thread_id: None,
            x_request_id_req: req.parse.headers.x_request_id,
            x_request_id_resp: resp.parse.headers.x_request_id,
            tcp_seq_req: tcp_seq_or_none(req.parse.protocol, req.tcp_seq),
            tcp_seq_resp: tcp_seq_or_none(resp.parse.protocol, resp.tcp_seq),
            otel_trace_id: req.parse.headers.trace_id,
            otel_span_id: req.parse.headers.span_id,
            otel_parent_span_id: req.parse.headers.parent_span_id,
            tags: TagSet::default(),
            flow_metrics: None,
        }
    }

    fn resolve_tap_side(
        &self,
        interface: &str,
        client_ip: Ipv4Addr,
        _tuple: &FiveTuple,
    ) -> TapSide {
        let Some(ctx) = self.taps.get(interface) else {
            return TapSide::Gateway; // unregistered tap: mid-path observer
        };
        let client_local = ctx.local_ips.contains(&client_ip);
        match ctx.kind {
            TapKind::PodVeth => {
                if client_local {
                    TapSide::ClientPodNic
                } else {
                    TapSide::ServerPodNic
                }
            }
            TapKind::NodeNic => {
                if client_local {
                    TapSide::ClientNodeNic
                } else {
                    TapSide::ServerNodeNic
                }
            }
            TapKind::PhysNic => {
                if client_local {
                    TapSide::ClientHypervisor
                } else {
                    TapSide::ServerHypervisor
                }
            }
            TapKind::TorMirror | TapKind::Gateway => TapSide::Gateway,
        }
    }

    /// Expire stale pending requests into incomplete net spans.
    pub fn expire(&mut self, now: TimeNs) -> Vec<Span> {
        let stale = self.sessions.expire(now);
        stale
            .into_iter()
            .map(|req| {
                self.spans_built += 1;
                let canon = req.tuple.canonical();
                let client = self
                    .flow_client
                    .get(&canon)
                    .copied()
                    .unwrap_or((req.tuple.src_ip, req.tuple.src_port));
                let mut span = Span {
                    span_id: SpanId(0),
                    kind: SpanKind::Net,
                    capture: CapturePoint {
                        node: self.node,
                        tap_side: TapSide::Gateway,
                        interface: None,
                    },
                    agent: self.agent,
                    flow_id: FlowId(hash2("flow", canon)),
                    five_tuple: req.tuple,
                    l7_protocol: req.parse.protocol,
                    endpoint: req.parse.endpoint.clone(),
                    req_time: req.ts,
                    resp_time: req.ts,
                    status: SpanStatus::Incomplete,
                    status_code: None,
                    req_bytes: req.byte_len as u64,
                    resp_bytes: 0,
                    pid: None,
                    tid: None,
                    process_name: None,
                    systrace_id_req: None,
                    systrace_id_resp: None,
                    pseudo_thread_id: None,
                    x_request_id_req: req.parse.headers.x_request_id,
                    x_request_id_resp: None,
                    tcp_seq_req: tcp_seq_or_none(req.parse.protocol, req.tcp_seq),
                    tcp_seq_resp: None,
                    otel_trace_id: req.parse.headers.trace_id,
                    otel_span_id: req.parse.headers.span_id,
                    otel_parent_span_id: req.parse.headers.parent_span_id,
                    tags: TagSet::default(),
                    flow_metrics: None,
                };
                span.capture.tap_side = self.resolve_tap_side("", client.0, &req.tuple);
                span
            })
            .collect()
    }
}

fn status_of(parse: &ParsedMessage) -> SpanStatus {
    if parse.server_error {
        SpanStatus::ServerError
    } else if parse.client_error {
        SpanStatus::ClientError
    } else {
        SpanStatus::Ok
    }
}

/// UDP has no sequence numbers; a 0 seq would spuriously associate every
/// UDP span (paper's inter-component association is a TCP property).
fn tcp_seq_or_none(proto: L7Protocol, seq: u32) -> Option<u32> {
    if proto == L7Protocol::Dns {
        None
    } else {
        Some(seq)
    }
}

/// Stable hash of (label, tuple) — flow keys and flow ids.
pub fn hash2<A: Hash, B: Hash>(a: A, b: B) -> u64 {
    let mut h = DefaultHasher::new();
    a.hash(&mut h);
    b.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use df_protocols::http1;
    use df_types::net::TcpFlags;
    use df_types::packet::Segment;
    use df_types::MessageType;

    const C: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1);
    const S: Ipv4Addr = Ipv4Addr::new(10, 1, 1, 1);

    fn seg(from_client: bool, seq: u32, payload: Bytes) -> Frame {
        let ft = if from_client {
            FiveTuple::tcp(C, 40000, S, 80)
        } else {
            FiveTuple::tcp(S, 80, C, 40000)
        };
        Frame::Segment(Segment {
            five_tuple: ft,
            seq,
            ack: 0,
            flags: TcpFlags::PSH_ACK,
            window: 100,
            payload,
            is_retransmission: false,
        })
    }

    fn builder() -> NetSpanBuilder {
        let mut b = NetSpanBuilder::new(NodeId(1), AgentId(1), DurationNs::from_secs(60));
        b.register_tap(
            "eth0",
            TapContext {
                kind: TapKind::NodeNic,
                local_ips: [C].into_iter().collect(),
            },
        );
        b
    }

    #[test]
    fn request_response_pair_builds_a_net_span() {
        let mut b = builder();
        let req = http1::request("GET", "/reviews/1", &[], b"");
        let resp = http1::response(200, &[], b"ok");
        assert!(b
            .offer("eth0", &seg(true, 1000, req), TimeNs(100))
            .is_none());
        let span = b
            .offer("eth0", &seg(false, 2000, resp), TimeNs(900))
            .expect("span completed");
        assert_eq!(span.kind, SpanKind::Net);
        assert_eq!(span.capture.tap_side, TapSide::ClientNodeNic);
        assert_eq!(span.endpoint, "GET /reviews/1");
        assert_eq!(span.tcp_seq_req, Some(1000));
        assert_eq!(span.tcp_seq_resp, Some(2000));
        assert_eq!(span.duration(), DurationNs(800));
        assert_eq!(span.five_tuple.src_ip, C, "client→server orientation");
        assert_eq!(span.status, SpanStatus::Ok);
    }

    #[test]
    fn server_side_tap_resolves_server_tap_side() {
        let mut b = NetSpanBuilder::new(NodeId(2), AgentId(2), DurationNs::from_secs(60));
        b.register_tap(
            "eth0",
            TapContext {
                kind: TapKind::NodeNic,
                local_ips: [S].into_iter().collect(), // server's node
            },
        );
        b.offer(
            "eth0",
            &seg(true, 1, http1::request("GET", "/", &[], b"")),
            TimeNs(0),
        );
        let span = b
            .offer(
                "eth0",
                &seg(false, 2, http1::response(200, &[], b"")),
                TimeNs(10),
            )
            .unwrap();
        assert_eq!(span.capture.tap_side, TapSide::ServerNodeNic);
    }

    #[test]
    fn error_response_sets_span_status() {
        let mut b = builder();
        b.offer(
            "eth0",
            &seg(true, 1, http1::request("GET", "/broken", &[], b"")),
            TimeNs(0),
        );
        let span = b
            .offer(
                "eth0",
                &seg(false, 2, http1::response(404, &[], b"")),
                TimeNs(10),
            )
            .unwrap();
        assert_eq!(span.status, SpanStatus::ClientError);
        assert_eq!(span.status_code, Some(404));
    }

    #[test]
    fn control_segments_and_unparseable_payloads_are_skipped() {
        let mut b = builder();
        // SYN (no payload)
        let syn = Frame::Segment(Segment {
            five_tuple: FiveTuple::tcp(C, 40000, S, 80),
            seq: 0,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 100,
            payload: Bytes::new(),
            is_retransmission: false,
        });
        assert!(b.offer("eth0", &syn, TimeNs(0)).is_none());
        // junk payload
        assert!(b
            .offer(
                "eth0",
                &seg(true, 1, Bytes::from_static(b"\x00\x01garbage")),
                TimeNs(1)
            )
            .is_none());
        assert_eq!(b.unparsed_frames, 1);
    }

    #[test]
    fn expire_produces_incomplete_net_spans() {
        let mut b = builder();
        b.offer(
            "eth0",
            &seg(true, 1, http1::request("GET", "/hang", &[], b"")),
            TimeNs::from_secs(0),
        );
        let spans = b.expire(TimeNs::from_secs(300));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].status, SpanStatus::Incomplete);
        assert_eq!(spans[0].endpoint, "GET /hang");
    }

    #[test]
    fn x_request_id_headers_carried_onto_span() {
        let mut b = builder();
        let xid = df_types::XRequestId(0x1234_5678_9abc_def0_1111_2222_3333_4444);
        let req = http1::request("GET", "/", &[("X-Request-ID".into(), xid.to_wire())], b"");
        b.offer("eth0", &seg(true, 1, req), TimeNs(0));
        let span = b
            .offer(
                "eth0",
                &seg(false, 2, http1::response(200, &[], b"")),
                TimeNs(1),
            )
            .unwrap();
        assert_eq!(span.x_request_id_req, Some(xid));
    }

    #[test]
    fn udp_dns_spans_have_no_tcp_seq() {
        let mut b = builder();
        let q = df_protocols::dns::query(9, "svc.local");
        let a = df_protocols::dns::answer(9, "svc.local", df_protocols::dns::RCODE_OK);
        let mk = |from_client: bool, payload: Bytes| {
            let ft = if from_client {
                FiveTuple::udp(C, 5353, S, 53)
            } else {
                FiveTuple::udp(S, 53, C, 5353)
            };
            Frame::Segment(Segment {
                five_tuple: ft,
                seq: 0,
                ack: 0,
                flags: TcpFlags::default(),
                window: 0,
                payload,
                is_retransmission: false,
            })
        };
        assert!(b.offer("eth0", &mk(true, q), TimeNs(0)).is_none());
        let span = b.offer("eth0", &mk(false, a), TimeNs(5)).unwrap();
        assert_eq!(span.l7_protocol, L7Protocol::Dns);
        assert_eq!(span.tcp_seq_req, None);
        assert_eq!(span.tcp_seq_resp, None);
        // sanity: parse typed them correctly
        assert_eq!(span.endpoint, "A svc.local");
        let _ = MessageType::Request;
    }
}
