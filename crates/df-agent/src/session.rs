//! Session aggregation (paper §3.3.1, Figure 6 phase 3).
//!
//! "DeepFlow will try to aggregate one request and one response from the
//! same flow into sessions." Pipelined protocols match in FIFO order;
//! multiplexed ("parallel") protocols match by the embedded distinguishing
//! attribute. A time-window array with 60-second slots bounds matching —
//! "when aggregating, only messages in the same time slot or next to it will
//! be queried"; anything farther apart is flagged for server-side
//! re-aggregation.

use df_types::{DurationNs, MessageType, SessionKey, TimeNs};
use std::collections::{HashMap, VecDeque};

/// Default slot width — "DeepFlow presently sets the duration of each time
/// slot to 60 seconds".
pub const DEFAULT_SLOT: DurationNs = DurationNs(60 * 1_000_000_000);

#[derive(Debug)]
struct Pending<M> {
    item: M,
    ts: TimeNs,
}

/// What happened when a message was offered.
#[derive(Debug, PartialEq)]
pub enum SessionOutcome<M> {
    /// A request was stored, awaiting its response.
    Stored,
    /// A response matched a request within the window: a session.
    Matched {
        /// The request message.
        request: M,
        /// The response message.
        response: M,
    },
    /// Matched, but request and response are more than one slot apart — the
    /// pair is still produced but flagged (the paper re-aggregates these at
    /// the server).
    OutOfWindow {
        /// The request message.
        request: M,
        /// The response message.
        response: M,
    },
    /// A response with no pending request.
    OrphanResponse(M),
    /// One-way / unclassifiable message: not aggregated.
    Ignored(M),
}

/// The aggregator. `M` is whatever the caller wants carried through
/// (the agent uses `(MessageData, ParsedMessage)`).
#[derive(Debug)]
pub struct SessionAggregator<M> {
    slot: DurationNs,
    /// Multiplexed protocols: (flow, embedded id) → pending request.
    mux: HashMap<(u64, u64), Pending<M>>,
    /// Pipelined protocols: flow → FIFO of pending requests.
    fifo: HashMap<u64, VecDeque<Pending<M>>>,
    /// Sessions matched in-window.
    pub matched: u64,
    /// Sessions matched out-of-window.
    pub out_of_window: u64,
    /// Orphan responses seen.
    pub orphans: u64,
}

impl<M> Default for SessionAggregator<M> {
    fn default() -> Self {
        SessionAggregator::new(DEFAULT_SLOT)
    }
}

impl<M> SessionAggregator<M> {
    /// Aggregator with a custom slot width (the ablation bench sweeps this).
    pub fn new(slot: DurationNs) -> Self {
        assert!(slot.as_nanos() > 0, "slot width must be positive");
        SessionAggregator {
            slot,
            mux: HashMap::new(),
            fifo: HashMap::new(),
            matched: 0,
            out_of_window: 0,
            orphans: 0,
        }
    }

    /// Offer one classified message.
    pub fn offer(
        &mut self,
        flow_key: u64,
        key: SessionKey,
        msg_type: MessageType,
        ts: TimeNs,
        item: M,
    ) -> SessionOutcome<M> {
        match msg_type {
            MessageType::Request => {
                let pending = Pending { item, ts };
                match key {
                    SessionKey::Multiplexed(id) => {
                        self.mux.insert((flow_key, id), pending);
                    }
                    SessionKey::Ordered => {
                        self.fifo.entry(flow_key).or_default().push_back(pending);
                    }
                }
                SessionOutcome::Stored
            }
            MessageType::Response => {
                let found = match key {
                    SessionKey::Multiplexed(id) => self.mux.remove(&(flow_key, id)),
                    SessionKey::Ordered => {
                        self.fifo.get_mut(&flow_key).and_then(VecDeque::pop_front)
                    }
                };
                match found {
                    Some(req) => {
                        let req_slot = req.ts.slot(self.slot);
                        let resp_slot = ts.slot(self.slot);
                        if resp_slot.saturating_sub(req_slot) <= 1 {
                            self.matched += 1;
                            SessionOutcome::Matched {
                                request: req.item,
                                response: item,
                            }
                        } else {
                            self.out_of_window += 1;
                            SessionOutcome::OutOfWindow {
                                request: req.item,
                                response: item,
                            }
                        }
                    }
                    None => {
                        self.orphans += 1;
                        SessionOutcome::OrphanResponse(item)
                    }
                }
            }
            MessageType::OneWay | MessageType::Unknown => SessionOutcome::Ignored(item),
        }
    }

    /// Expire requests older than two slots relative to `now` (they will
    /// never match in-window). Returned items become Incomplete spans —
    /// "DeepFlow considers any missing responses as outcomes resulting from
    /// unexpected execution terminations" (§3.3.1).
    pub fn expire(&mut self, now: TimeNs) -> Vec<M> {
        let cutoff_slot = now.slot(self.slot).saturating_sub(2);
        let mut expired = Vec::new();
        let stale_keys: Vec<(u64, u64)> = self
            .mux
            .iter()
            .filter(|(_, p)| p.ts.slot(self.slot) < cutoff_slot)
            .map(|(k, _)| *k)
            .collect();
        for k in stale_keys {
            if let Some(p) = self.mux.remove(&k) {
                expired.push(p.item);
            }
        }
        for q in self.fifo.values_mut() {
            while let Some(front) = q.front() {
                if front.ts.slot(self.slot) < cutoff_slot {
                    expired.push(q.pop_front().expect("front checked").item);
                } else {
                    break;
                }
            }
        }
        self.fifo.retain(|_, q| !q.is_empty());
        expired
    }

    /// Requests currently pending.
    pub fn pending(&self) -> usize {
        self.mux.len() + self.fifo.values().map(VecDeque::len).sum::<usize>()
    }

    /// Drain every pending request (end-of-run flush).
    pub fn drain_pending(&mut self) -> Vec<M> {
        let mut out: Vec<M> = self.mux.drain().map(|(_, p)| p.item).collect();
        for (_, mut q) in self.fifo.drain() {
            out.extend(q.drain(..).map(|p| p.item));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::MessageType::*;

    fn agg() -> SessionAggregator<&'static str> {
        SessionAggregator::default()
    }

    #[test]
    fn pipelined_matches_in_fifo_order() {
        let mut a = agg();
        assert_eq!(
            a.offer(1, SessionKey::Ordered, Request, TimeNs(10), "req1"),
            SessionOutcome::Stored
        );
        assert_eq!(
            a.offer(1, SessionKey::Ordered, Request, TimeNs(20), "req2"),
            SessionOutcome::Stored
        );
        let m1 = a.offer(1, SessionKey::Ordered, Response, TimeNs(30), "resp1");
        assert_eq!(
            m1,
            SessionOutcome::Matched {
                request: "req1",
                response: "resp1"
            }
        );
        let m2 = a.offer(1, SessionKey::Ordered, Response, TimeNs(40), "resp2");
        assert_eq!(
            m2,
            SessionOutcome::Matched {
                request: "req2",
                response: "resp2"
            }
        );
        assert_eq!(a.matched, 2);
    }

    #[test]
    fn multiplexed_matches_by_embedded_id_out_of_order() {
        let mut a = agg();
        a.offer(1, SessionKey::Multiplexed(100), Request, TimeNs(10), "reqA");
        a.offer(1, SessionKey::Multiplexed(200), Request, TimeNs(11), "reqB");
        // Responses arrive in reverse order — ids still pair correctly.
        let mb = a.offer(
            1,
            SessionKey::Multiplexed(200),
            Response,
            TimeNs(20),
            "respB",
        );
        assert_eq!(
            mb,
            SessionOutcome::Matched {
                request: "reqB",
                response: "respB"
            }
        );
        let ma = a.offer(
            1,
            SessionKey::Multiplexed(100),
            Response,
            TimeNs(21),
            "respA",
        );
        assert_eq!(
            ma,
            SessionOutcome::Matched {
                request: "reqA",
                response: "respA"
            }
        );
    }

    #[test]
    fn flows_are_isolated() {
        let mut a = agg();
        a.offer(1, SessionKey::Ordered, Request, TimeNs(10), "flow1-req");
        let r = a.offer(2, SessionKey::Ordered, Response, TimeNs(20), "flow2-resp");
        assert_eq!(r, SessionOutcome::OrphanResponse("flow2-resp"));
        assert_eq!(a.orphans, 1);
        assert_eq!(a.pending(), 1);
    }

    #[test]
    fn adjacent_slot_matches_but_distant_flags_out_of_window() {
        let mut a = agg();
        // Request at t=0; response 90s later (slot 0 → slot 1: adjacent, ok).
        a.offer(1, SessionKey::Ordered, Request, TimeNs::from_secs(0), "r");
        let ok = a.offer(
            1,
            SessionKey::Ordered,
            Response,
            TimeNs::from_secs(90),
            "late",
        );
        assert!(matches!(ok, SessionOutcome::Matched { .. }));

        // Request at t=0; response 150s later (slot 0 → slot 2: flagged).
        a.offer(2, SessionKey::Ordered, Request, TimeNs::from_secs(0), "r2");
        let late = a.offer(
            2,
            SessionKey::Ordered,
            Response,
            TimeNs::from_secs(150),
            "very-late",
        );
        assert!(matches!(late, SessionOutcome::OutOfWindow { .. }));
        assert_eq!(a.out_of_window, 1);
    }

    #[test]
    fn one_way_messages_are_ignored() {
        let mut a = agg();
        let r = a.offer(1, SessionKey::Ordered, OneWay, TimeNs(5), "fire-and-forget");
        assert_eq!(r, SessionOutcome::Ignored("fire-and-forget"));
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn expire_returns_stale_requests_as_incomplete() {
        let mut a = agg();
        a.offer(1, SessionKey::Ordered, Request, TimeNs::from_secs(0), "old");
        a.offer(
            1,
            SessionKey::Multiplexed(9),
            Request,
            TimeNs::from_secs(10),
            "old-mux",
        );
        a.offer(
            1,
            SessionKey::Ordered,
            Request,
            TimeNs::from_secs(179),
            "fresh",
        );
        // now = 240s → cutoff slot = 4-2 = 2 → slots 0,1 expire; 179s is
        // slot 2, kept.
        let expired = a.expire(TimeNs::from_secs(240));
        assert_eq!(expired.len(), 2);
        assert!(expired.contains(&"old"));
        assert!(expired.contains(&"old-mux"));
        assert_eq!(a.pending(), 1);
    }

    #[test]
    fn drain_pending_empties_everything() {
        let mut a = agg();
        a.offer(1, SessionKey::Ordered, Request, TimeNs(10), "x");
        a.offer(2, SessionKey::Multiplexed(1), Request, TimeNs(10), "y");
        let drained = a.drain_pending();
        assert_eq!(drained.len(), 2);
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn duplicate_multiplexed_id_replaces_request() {
        // A client reusing an id before the response (retry) replaces the
        // pending entry; the response pairs with the retry.
        let mut a = agg();
        a.offer(1, SessionKey::Multiplexed(5), Request, TimeNs(10), "try1");
        a.offer(1, SessionKey::Multiplexed(5), Request, TimeNs(20), "try2");
        let m = a.offer(1, SessionKey::Multiplexed(5), Response, TimeNs(30), "resp");
        assert_eq!(
            m,
            SessionOutcome::Matched {
                request: "try2",
                response: "resp"
            }
        );
    }
}
