//! The DeepFlow syscall-tracing eBPF program (paper Figure 5 / Figure 6
//! phase 1).
//!
//! One instance attaches to both the enter and exit points of every Table 3
//! ABI. At *enter* it records the arguments in a BPF-map analogue keyed by
//! `(Pid, Tid)` — sound because "the kernel can simultaneously handle only
//! one selected system call for a given (Process_ID, Thread_ID)" (§3.3.1).
//! At *exit* it joins the stashed enter record with the results and emits a
//! combined [`MessageData`] into the perf ring.

use bytes::Bytes;
use df_kernel::hooks::{BpfProgram, HookContext, HookPhase, KernelEvent};
use df_kernel::ringbuf::PerfRingBuffer;
use df_kernel::verifier::ProgramSpec;
use df_types::message::{
    CaptureSource, MessageContext, NetworkInfo, ProgramInfo, SyscallInfo, TracingInfo,
};
use df_types::{Direction, MessageData, Pid, Tid, TimeNs};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct EnterRecord {
    ts: TimeNs,
    requested: usize,
}

/// The syscall-tracing program.
pub struct DeepFlowSyscallProgram {
    spec: ProgramSpec,
    /// The BPF-map analogue: (pid, tid) → stashed enter arguments.
    enter_map: HashMap<(Pid, Tid), EnterRecord>,
    /// Messages emitted.
    pub emitted: u64,
    /// Exits with no matching enter (should stay zero; counted defensively).
    pub orphan_exits: u64,
    /// Payload snap length copied into events.
    pub snap_len: usize,
}

impl DeepFlowSyscallProgram {
    /// Create the program. `snap_len` bounds payload copies, like the real
    /// program's bounded `bpf_probe_read`.
    pub fn new(snap_len: usize) -> Self {
        DeepFlowSyscallProgram {
            spec: ProgramSpec {
                name: "df_syscall_trace".to_string(),
                instructions: 1800,
                max_loop_bound: Some(8),
                stack_bytes: 480,
                helpers: vec![
                    df_kernel::verifier::Helper::MapLookup,
                    df_kernel::verifier::Helper::MapUpdate,
                    df_kernel::verifier::Helper::MapDelete,
                    df_kernel::verifier::Helper::ProbeRead,
                    df_kernel::verifier::Helper::GetCurrentPidTgid,
                    df_kernel::verifier::Helper::GetCurrentComm,
                    df_kernel::verifier::Helper::KtimeGetNs,
                    df_kernel::verifier::Helper::PerfEventOutput,
                ],
                unchecked_memory_access: false,
            },
            enter_map: HashMap::new(),
            emitted: 0,
            orphan_exits: 0,
            snap_len,
        }
    }

    /// Entries currently stashed (threads inside a syscall).
    pub fn in_flight(&self) -> usize {
        self.enter_map.len()
    }
}

impl BpfProgram for DeepFlowSyscallProgram {
    fn spec(&self) -> &ProgramSpec {
        &self.spec
    }

    fn run(&mut self, ctx: &HookContext<'_>, ring: &mut PerfRingBuffer<KernelEvent>) {
        let key = (ctx.pid, ctx.tid);
        match ctx.phase {
            HookPhase::Enter => {
                self.enter_map.insert(
                    key,
                    EnterRecord {
                        ts: ctx.ts,
                        requested: ctx.byte_len,
                    },
                );
            }
            HookPhase::Exit => {
                // An exit without a stashed enter means the program was
                // attached while the thread was already blocked inside the
                // syscall (in-flight attachment, §3.2.2). The message is
                // still valuable: synthesize the enter at the exit time,
                // exactly as the real agent does when it races a blocking
                // recv.
                let enter = self.enter_map.remove(&key).unwrap_or_else(|| {
                    self.orphan_exits += 1;
                    EnterRecord {
                        ts: ctx.ts,
                        requested: ctx.byte_len,
                    }
                });
                let (Some(abi), Some(direction), Some(socket_id), Some(five_tuple)) =
                    (ctx.abi, ctx.direction, ctx.socket_id, ctx.five_tuple)
                else {
                    return; // not a socket operation — nothing to trace
                };
                // Skip zero-byte transfers (EOF reads) — no message.
                if ctx.byte_len == 0 {
                    return;
                }
                let payload = ctx
                    .payload
                    .map(|p| Bytes::copy_from_slice(&p[..p.len().min(self.snap_len)]))
                    .unwrap_or_default();
                let msg = MessageData {
                    program: ProgramInfo {
                        pid: ctx.pid,
                        tid: ctx.tid,
                        coroutine: ctx.coroutine,
                        process_name: ctx.process_name.to_string(),
                    },
                    network: NetworkInfo {
                        socket_id,
                        five_tuple,
                        tcp_seq: ctx.tcp_seq.unwrap_or(0),
                    },
                    tracing: TracingInfo {
                        enter_ns: enter.ts,
                        exit_ns: ctx.ts,
                        direction,
                        source: CaptureSource::Ebpf(abi),
                        node: ctx.node,
                    },
                    syscall: SyscallInfo {
                        byte_len: ctx.byte_len.max(enter.requested.min(ctx.byte_len)),
                        payload,
                        first_syscall: ctx.first_syscall,
                    },
                    context: MessageContext::default(),
                };
                if ring.push(KernelEvent::Message(msg)) {
                    self.emitted += 1;
                }
            }
        }
    }
}

/// A handle sharing one [`DeepFlowSyscallProgram`] between its enter and
/// exit attach points — the analogue of enter/exit eBPF programs sharing one
/// BPF map. The simulation is single-threaded per node; the mutex exists
/// only to satisfy the `Send` bound and is never contended.
#[derive(Clone)]
pub struct SharedSyscallProgram {
    inner: std::sync::Arc<std::sync::Mutex<DeepFlowSyscallProgram>>,
    spec: ProgramSpec,
}

impl SharedSyscallProgram {
    /// Wrap a program for shared attachment.
    pub fn new(snap_len: usize) -> Self {
        let prog = DeepFlowSyscallProgram::new(snap_len);
        let spec = prog.spec.clone();
        SharedSyscallProgram {
            inner: std::sync::Arc::new(std::sync::Mutex::new(prog)),
            spec,
        }
    }

    /// Messages emitted so far.
    pub fn emitted(&self) -> u64 {
        self.inner.lock().expect("uncontended").emitted
    }
}

impl BpfProgram for SharedSyscallProgram {
    fn spec(&self) -> &ProgramSpec {
        &self.spec
    }

    fn run(&mut self, ctx: &HookContext<'_>, ring: &mut PerfRingBuffer<KernelEvent>) {
        self.inner.lock().expect("uncontended").run(ctx, ring);
    }
}

/// Uprobe/uretprobe program for TLS plaintext capture (`ssl_read` /
/// `ssl_write`, §3.2.1: "easy access to important information, such as the
/// original payload prior to TLS encryption").
pub struct DeepFlowTlsProgram {
    spec: ProgramSpec,
    enter_map: HashMap<(Pid, Tid), TimeNs>,
    snap_len: usize,
    /// Messages emitted.
    pub emitted: u64,
}

impl DeepFlowTlsProgram {
    /// Create the TLS uprobe program.
    pub fn new(snap_len: usize) -> Self {
        DeepFlowTlsProgram {
            spec: ProgramSpec {
                name: "df_tls_uprobe".to_string(),
                instructions: 900,
                max_loop_bound: Some(4),
                stack_bytes: 384,
                helpers: vec![
                    df_kernel::verifier::Helper::MapLookup,
                    df_kernel::verifier::Helper::MapUpdate,
                    df_kernel::verifier::Helper::ProbeRead,
                    df_kernel::verifier::Helper::PerfEventOutput,
                ],
                unchecked_memory_access: false,
            },
            enter_map: HashMap::new(),
            snap_len,
            emitted: 0,
        }
    }
}

impl BpfProgram for DeepFlowTlsProgram {
    fn spec(&self) -> &ProgramSpec {
        &self.spec
    }

    fn run(&mut self, ctx: &HookContext<'_>, ring: &mut PerfRingBuffer<KernelEvent>) {
        let key = (ctx.pid, ctx.tid);
        match ctx.phase {
            HookPhase::Enter => {
                self.enter_map.insert(key, ctx.ts);
            }
            HookPhase::Exit => {
                let Some(enter_ts) = self.enter_map.remove(&key) else {
                    return;
                };
                let direction = match ctx.symbol {
                    Some("ssl_read") => Direction::Ingress,
                    Some("ssl_write") => Direction::Egress,
                    _ => return,
                };
                let (Some(socket_id), Some(five_tuple)) = (ctx.socket_id, ctx.five_tuple) else {
                    return;
                };
                if ctx.byte_len == 0 {
                    return;
                }
                let payload = ctx
                    .payload
                    .map(|p| Bytes::copy_from_slice(&p[..p.len().min(self.snap_len)]))
                    .unwrap_or_default();
                let msg = MessageData {
                    program: ProgramInfo {
                        pid: ctx.pid,
                        tid: ctx.tid,
                        coroutine: ctx.coroutine,
                        process_name: ctx.process_name.to_string(),
                    },
                    network: NetworkInfo {
                        socket_id,
                        five_tuple,
                        tcp_seq: ctx.tcp_seq.unwrap_or(0),
                    },
                    tracing: TracingInfo {
                        enter_ns: enter_ts,
                        exit_ns: ctx.ts,
                        direction,
                        source: CaptureSource::Uprobe,
                        node: ctx.node,
                    },
                    syscall: SyscallInfo {
                        byte_len: ctx.byte_len,
                        payload,
                        first_syscall: true,
                    },
                    context: MessageContext::default(),
                };
                if ring.push(KernelEvent::Message(msg)) {
                    self.emitted += 1;
                }
            }
        }
    }
}

/// A handle sharing one [`DeepFlowTlsProgram`] between uprobe and uretprobe.
#[derive(Clone)]
pub struct SharedTlsProgram {
    inner: std::sync::Arc<std::sync::Mutex<DeepFlowTlsProgram>>,
    spec: ProgramSpec,
}

impl SharedTlsProgram {
    /// Wrap a TLS program for shared attachment.
    pub fn new(snap_len: usize) -> Self {
        let prog = DeepFlowTlsProgram::new(snap_len);
        let spec = prog.spec.clone();
        SharedTlsProgram {
            inner: std::sync::Arc::new(std::sync::Mutex::new(prog)),
            spec,
        }
    }
}

impl BpfProgram for SharedTlsProgram {
    fn spec(&self) -> &ProgramSpec {
        &self.spec
    }

    fn run(&mut self, ctx: &HookContext<'_>, ring: &mut PerfRingBuffer<KernelEvent>) {
        self.inner.lock().expect("uncontended").run(ctx, ring);
    }
}

/// The empty program used as the Fig. 13 baseline ("we begin by deploying an
/// empty eBPF program to get the theoretical minimum system overhead").
pub struct EmptyProgram {
    spec: ProgramSpec,
}

impl EmptyProgram {
    /// Create the empty program.
    pub fn new() -> Self {
        EmptyProgram {
            spec: ProgramSpec {
                name: "empty_baseline".to_string(),
                instructions: 2,
                max_loop_bound: None,
                stack_bytes: 0,
                helpers: vec![],
                unchecked_memory_access: false,
            },
        }
    }
}

impl Default for EmptyProgram {
    fn default() -> Self {
        Self::new()
    }
}

impl BpfProgram for EmptyProgram {
    fn spec(&self) -> &ProgramSpec {
        &self.spec
    }
    fn run(&mut self, _ctx: &HookContext<'_>, _ring: &mut PerfRingBuffer<KernelEvent>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::{FiveTuple, NodeId, SocketId, SyscallAbi};
    use std::net::Ipv4Addr;

    fn ctx<'a>(
        phase: HookPhase,
        ts: u64,
        payload: Option<&'a [u8]>,
        byte_len: usize,
    ) -> HookContext<'a> {
        HookContext {
            phase,
            abi: Some(SyscallAbi::Read),
            symbol: None,
            ts: TimeNs(ts),
            pid: Pid(1),
            tid: Tid(2),
            coroutine: None,
            process_name: "svc",
            node: NodeId(1),
            socket_id: Some(SocketId(5)),
            five_tuple: Some(FiveTuple::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                80,
                Ipv4Addr::new(10, 0, 0, 2),
                40000,
            )),
            tcp_seq: Some(999),
            direction: Some(Direction::Ingress),
            byte_len,
            payload,
            first_syscall: true,
        }
    }

    #[test]
    fn enter_exit_join_produces_message_data() {
        let mut prog = DeepFlowSyscallProgram::new(1024);
        let mut ring = PerfRingBuffer::new(16);
        prog.run(&ctx(HookPhase::Enter, 100, None, 4096), &mut ring);
        assert_eq!(prog.in_flight(), 1);
        assert!(ring.is_empty(), "enter alone emits nothing");
        prog.run(&ctx(HookPhase::Exit, 250, Some(b"hello"), 5), &mut ring);
        assert_eq!(prog.in_flight(), 0);
        let events = ring.drain_all();
        assert_eq!(events.len(), 1);
        let KernelEvent::Message(m) = &events[0] else {
            panic!("expected message event");
        };
        assert_eq!(m.tracing.enter_ns, TimeNs(100));
        assert_eq!(m.tracing.exit_ns, TimeNs(250));
        assert_eq!(m.network.tcp_seq, 999);
        assert_eq!(&m.syscall.payload[..], b"hello");
        assert_eq!(prog.emitted, 1);
    }

    #[test]
    fn orphan_exit_synthesizes_the_enter_for_in_flight_attachment() {
        // The agent attached while a thread was blocked in recv: the exit
        // fires without a stashed enter. The message is still emitted, with
        // a zero-length kernel residence.
        let mut prog = DeepFlowSyscallProgram::new(1024);
        let mut ring = PerfRingBuffer::new(16);
        prog.run(&ctx(HookPhase::Exit, 250, Some(b"x"), 1), &mut ring);
        assert_eq!(prog.orphan_exits, 1);
        let events = ring.drain_all();
        assert_eq!(events.len(), 1);
        let KernelEvent::Message(m) = &events[0] else {
            panic!()
        };
        assert_eq!(m.tracing.enter_ns, m.tracing.exit_ns);
        assert_eq!(&m.syscall.payload[..], b"x");
    }

    #[test]
    fn zero_byte_exit_is_skipped() {
        let mut prog = DeepFlowSyscallProgram::new(1024);
        let mut ring = PerfRingBuffer::new(16);
        prog.run(&ctx(HookPhase::Enter, 1, None, 4096), &mut ring);
        prog.run(&ctx(HookPhase::Exit, 2, None, 0), &mut ring);
        assert!(ring.is_empty());
        assert_eq!(prog.emitted, 0);
    }

    #[test]
    fn snap_len_truncates_payload() {
        let mut prog = DeepFlowSyscallProgram::new(4);
        let mut ring = PerfRingBuffer::new(16);
        prog.run(&ctx(HookPhase::Enter, 1, None, 4096), &mut ring);
        prog.run(&ctx(HookPhase::Exit, 2, Some(b"abcdefgh"), 8), &mut ring);
        let KernelEvent::Message(m) = &ring.drain_all()[0] else {
            panic!()
        };
        assert_eq!(&m.syscall.payload[..], b"abcd");
        assert_eq!(m.syscall.byte_len, 8, "byte_len reports the full size");
    }

    #[test]
    fn concurrent_threads_do_not_collide() {
        let mut prog = DeepFlowSyscallProgram::new(64);
        let mut ring = PerfRingBuffer::new(16);
        let mut c1 = ctx(HookPhase::Enter, 10, None, 100);
        let mut c2 = ctx(HookPhase::Enter, 20, None, 100);
        c2.tid = Tid(3);
        prog.run(&c1, &mut ring);
        prog.run(&c2, &mut ring);
        assert_eq!(prog.in_flight(), 2);
        c1.phase = HookPhase::Exit;
        c1.ts = TimeNs(30);
        c1.payload = Some(b"t1");
        c1.byte_len = 2;
        c2.phase = HookPhase::Exit;
        c2.ts = TimeNs(40);
        c2.payload = Some(b"t2");
        c2.byte_len = 2;
        prog.run(&c1, &mut ring);
        prog.run(&c2, &mut ring);
        let msgs = ring.drain_all();
        assert_eq!(msgs.len(), 2);
        let KernelEvent::Message(m1) = &msgs[0] else {
            panic!()
        };
        assert_eq!(m1.tracing.enter_ns, TimeNs(10));
        let KernelEvent::Message(m2) = &msgs[1] else {
            panic!()
        };
        assert_eq!(m2.tracing.enter_ns, TimeNs(20));
    }

    #[test]
    fn program_passes_verifier() {
        assert!(df_kernel::verifier::verify(DeepFlowSyscallProgram::new(64).spec()).is_ok());
        assert!(df_kernel::verifier::verify(EmptyProgram::new().spec()).is_ok());
    }
}
