//! # df-agent — the DeepFlow Agent
//!
//! One agent runs per node. It implements the paper's §3.2 tracing plane and
//! §3.3 phase (i) — turning raw kernel/packet observations into [`Span`]s:
//!
//! * [`ebpf`] — the eBPF program attached to every Table 3 ABI: stashes
//!   *enter* contexts in a per-(pid,tid) map and emits a combined
//!   [`MessageData`] at *exit* (Figure 6 phase 1);
//! * [`systrace`] — implicit intra-component association (Figure 7): two
//!   consecutive messages of different direction on different sockets within
//!   one thread share a `systrace_id`; thread reuse partitions naturally;
//! * [`pseudo_thread`] — coroutine-chain tracking ("pseudo-thread
//!   structure", §3.3.1) from coroutine-creation events;
//! * [`session`] — session aggregation with the 60-second time-window array:
//!   pipelined protocols match by order, multiplexed ones by embedded id;
//! * [`net_spans`] — net spans from cBPF/AF_PACKET captures at every
//!   infrastructure hop, with tap-side resolution;
//! * [`flow_table`] — L4 flow metrics (retransmissions, RTT, resets,
//!   zero-windows) attached to spans for cross-layer correlation (§3.4);
//! * [`agent`] — the facade: install hooks, poll, ship spans.
//!
//! [`Span`]: df_types::Span
//! [`MessageData`]: df_types::MessageData

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod ebpf;
pub mod flow_table;
pub mod net_spans;
pub mod pseudo_thread;
pub mod session;
pub mod systrace;

pub use agent::{Agent, AgentConfig, AgentStats};
pub use ebpf::DeepFlowSyscallProgram;
pub use flow_table::FlowTable;
pub use session::{SessionAggregator, SessionOutcome};
pub use systrace::SystraceTracker;
