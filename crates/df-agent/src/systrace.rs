//! Systrace-id assignment — implicit intra-component association
//! (paper §3.3.2, Figure 7).
//!
//! The paper's insight: within one thread, *"computing does not (and should
//! not) yield to scheduling, whereas network communication does"* — so two
//! consecutive messages of **different types** (ingress vs egress) on
//! **different sockets** belong to the same causal chain and get the same
//! `systrace_id`. Everything else starts a fresh chain, which also handles
//! thread reuse (Figure 7(b)): a new request on the same socket flips the
//! direction on the *same* socket, breaking the chain.

use df_types::{Direction, Pid, SocketId, SysTraceId, Tid, TimeNs};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct LastMessage {
    direction: Direction,
    socket: SocketId,
    id: SysTraceId,
    ts: TimeNs,
}

/// Per-thread systrace chain state.
#[derive(Debug, Default)]
pub struct SystraceTracker {
    last: HashMap<(Pid, Tid), LastMessage>,
    next_id: u64,
    /// Chains continued (diagnostics).
    pub chained: u64,
    /// Fresh chains started.
    pub fresh: u64,
    /// Optional inactivity cutoff: a gap longer than this always starts a
    /// fresh chain (time-sequence partition, Figure 7(b)).
    pub max_gap: Option<df_types::DurationNs>,
}

impl SystraceTracker {
    /// New tracker. Ids start at 1.
    pub fn new() -> Self {
        Self::with_namespace(0)
    }

    /// New tracker whose ids carry `namespace` in their high 24 bits —
    /// systrace ids are *global* identifiers (paper §3.3.2), so each
    /// agent namespaces its allocator with its node id to prevent
    /// cross-agent collisions.
    pub fn with_namespace(namespace: u32) -> Self {
        SystraceTracker {
            next_id: (u64::from(namespace) << 40) | 1,
            ..Default::default()
        }
    }

    /// Assign a systrace id to a message observed on `(pid, tid)`.
    pub fn assign(
        &mut self,
        pid: Pid,
        tid: Tid,
        direction: Direction,
        socket: SocketId,
        ts: TimeNs,
    ) -> SysTraceId {
        let key = (pid, tid);
        let id = match self.last.get(&key) {
            Some(prev)
                if prev.direction != direction
                    && prev.socket != socket
                    && self
                        .max_gap
                        .map(|g| ts.saturating_since(prev.ts) <= g)
                        .unwrap_or(true) =>
            {
                self.chained += 1;
                prev.id
            }
            _ => {
                self.fresh += 1;
                let id = SysTraceId(self.next_id);
                self.next_id += 1;
                id
            }
        };
        self.last.insert(
            key,
            LastMessage {
                direction,
                socket,
                id,
                ts,
            },
        );
        id
    }

    /// Forget a dead thread.
    pub fn evict_thread(&mut self, pid: Pid, tid: Tid) {
        self.last.remove(&(pid, tid));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Pid = Pid(1);
    const T: Tid = Tid(1);
    const SOCK_A: SocketId = SocketId(10);
    const SOCK_B: SocketId = SocketId(20);

    #[test]
    fn server_relay_chain_matches_paper_figure7() {
        // Server thread: ingress req on A → egress call on B → ingress resp
        // on B → egress resp on A. Expect: (m1,m2) share T1; (m3,m4) share
        // T2; T1 != T2.
        let mut t = SystraceTracker::new();
        let m1 = t.assign(P, T, Direction::Ingress, SOCK_A, TimeNs(10));
        let m2 = t.assign(P, T, Direction::Egress, SOCK_B, TimeNs(20));
        let m3 = t.assign(P, T, Direction::Ingress, SOCK_B, TimeNs(30));
        let m4 = t.assign(P, T, Direction::Egress, SOCK_A, TimeNs(40));
        assert_eq!(m1, m2, "request chain shares a systrace id");
        assert_eq!(m3, m4, "response chain shares a systrace id");
        assert_ne!(m1, m3, "request and response chains are distinct");
        assert_eq!(t.chained, 2);
        assert_eq!(t.fresh, 2);
    }

    #[test]
    fn same_socket_flip_breaks_chain() {
        // Simple echo server: ingress then egress on the SAME socket —
        // session aggregation covers that pair; systrace must not chain it.
        let mut t = SystraceTracker::new();
        let m1 = t.assign(P, T, Direction::Ingress, SOCK_A, TimeNs(10));
        let m2 = t.assign(P, T, Direction::Egress, SOCK_A, TimeNs(20));
        assert_ne!(m1, m2);
    }

    #[test]
    fn same_direction_does_not_chain() {
        let mut t = SystraceTracker::new();
        let m1 = t.assign(P, T, Direction::Egress, SOCK_A, TimeNs(10));
        let m2 = t.assign(P, T, Direction::Egress, SOCK_B, TimeNs(20));
        assert_ne!(m1, m2, "two sends in a row are separate chains");
    }

    #[test]
    fn thread_reuse_partitions_by_sequence() {
        // Request 1 fully handled, then request 2 on the same sockets: the
        // fresh ingress on A must not inherit request 1's chain.
        let mut t = SystraceTracker::new();
        let r1_in = t.assign(P, T, Direction::Ingress, SOCK_A, TimeNs(10));
        let r1_out = t.assign(P, T, Direction::Egress, SOCK_A, TimeNs(20));
        let r2_in = t.assign(P, T, Direction::Ingress, SOCK_A, TimeNs(30));
        assert_ne!(r1_in, r2_in);
        assert_ne!(r1_out, r2_in);
    }

    #[test]
    fn threads_are_independent() {
        let mut t = SystraceTracker::new();
        let a = t.assign(P, Tid(1), Direction::Ingress, SOCK_A, TimeNs(10));
        let b = t.assign(P, Tid(2), Direction::Egress, SOCK_B, TimeNs(11));
        assert_ne!(a, b, "cross-thread messages never chain implicitly");
    }

    #[test]
    fn max_gap_partitions_long_idle_chains() {
        let mut t = SystraceTracker::new();
        t.max_gap = Some(df_types::DurationNs::from_secs(1));
        let m1 = t.assign(P, T, Direction::Ingress, SOCK_A, TimeNs(0));
        // Two seconds later — beyond the gap — even a chain-shaped message
        // starts fresh.
        let m2 = t.assign(P, T, Direction::Egress, SOCK_B, TimeNs::from_secs(2));
        assert_ne!(m1, m2);
    }

    #[test]
    fn evict_thread_forgets_state() {
        let mut t = SystraceTracker::new();
        let m1 = t.assign(P, T, Direction::Ingress, SOCK_A, TimeNs(10));
        t.evict_thread(P, T);
        let m2 = t.assign(P, T, Direction::Egress, SOCK_B, TimeNs(20));
        assert_ne!(m1, m2, "evicted thread cannot chain");
    }
}
