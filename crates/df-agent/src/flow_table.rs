//! L4 flow metrics from packet observations.
//!
//! DeepFlow's differentiator (§1, §4.1.3): network metrics are collected
//! alongside traces and correlated with them, so "queue backlog of RabbitMQ
//! was causing the TCP connection resets" falls out of one view. This table
//! accumulates [`FlowMetrics`] per (interface, flow) from the frames a
//! capture tap sees.

use df_types::net::TcpFlags;
use df_types::packet::{ArpOp, Frame, Segment};
use df_types::{DurationNs, FiveTuple, FlowMetrics, TimeNs};
use std::collections::HashMap;

#[derive(Debug, Default)]
struct FlowState {
    metrics: FlowMetrics,
    syn_seen: u32,
    syn_ts: Option<TimeNs>,
    client: Option<(std::net::Ipv4Addr, u16)>,
}

/// Per-interface, per-flow metric accumulation. One table per agent.
#[derive(Debug, Default)]
pub struct FlowTable {
    flows: HashMap<(String, FiveTuple), FlowState>,
    /// ARP requests observed per interface (the §4.1.2 signal).
    pub arp_requests: HashMap<String, u64>,
    /// ARP replies observed per interface.
    pub arp_replies: HashMap<String, u64>,
}

impl FlowTable {
    /// Empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Account one captured frame.
    pub fn observe(&mut self, interface: &str, frame: &Frame, ts: TimeNs) {
        match frame {
            Frame::Arp { op, .. } => {
                let counter = match op {
                    ArpOp::Request => &mut self.arp_requests,
                    ArpOp::Reply => &mut self.arp_replies,
                };
                *counter.entry(interface.to_string()).or_default() += 1;
            }
            Frame::Segment(seg) => self.observe_segment(interface, seg, ts),
        }
    }

    fn observe_segment(&mut self, interface: &str, seg: &Segment, ts: TimeNs) {
        let key = (interface.to_string(), seg.five_tuple.canonical());
        let st = self.flows.entry(key).or_default();
        // Client = whoever sent the SYN (or, failing that, the first frame).
        if st.client.is_none() && !(seg.flags.syn && seg.flags.ack) {
            st.client = Some((seg.five_tuple.src_ip, seg.five_tuple.src_port));
        }
        let from_client = st.client == Some((seg.five_tuple.src_ip, seg.five_tuple.src_port));
        if from_client {
            st.metrics.packets_tx += 1;
            st.metrics.bytes_tx += seg.payload.len() as u64;
        } else {
            st.metrics.packets_rx += 1;
            st.metrics.bytes_rx += seg.payload.len() as u64;
        }
        if seg.is_retransmission {
            st.metrics.retransmissions += 1;
        }
        if seg.flags.rst {
            st.metrics.resets += 1;
        }
        if seg.flags == TcpFlags::SYN {
            st.syn_seen += 1;
            if st.syn_seen > 1 {
                st.metrics.syn_retries += 1;
            }
            st.syn_ts = Some(ts);
        }
        if seg.flags == TcpFlags::SYN_ACK {
            st.metrics.established = true;
            if let Some(syn_ts) = st.syn_ts {
                let rtt = ts.saturating_since(syn_ts);
                if st.metrics.rtt == DurationNs::ZERO || rtt < st.metrics.rtt {
                    st.metrics.rtt = rtt;
                }
            }
        }
        // Zero-window advertisement: pure ACK with window 0.
        if seg.window == 0
            && seg.flags.ack
            && !seg.flags.rst
            && !seg.flags.syn
            && seg.payload.is_empty()
        {
            st.metrics.zero_windows += 1;
        }
    }

    /// Metrics snapshot for a flow on an interface.
    pub fn metrics(&self, interface: &str, tuple: &FiveTuple) -> Option<FlowMetrics> {
        self.flows
            .get(&(interface.to_string(), tuple.canonical()))
            .map(|s| s.metrics)
    }

    /// Merged metrics for a flow across every interface this agent taps.
    pub fn metrics_any_interface(&self, tuple: &FiveTuple) -> Option<FlowMetrics> {
        let canon = tuple.canonical();
        let mut out: Option<FlowMetrics> = None;
        for ((_, t), st) in &self.flows {
            if *t == canon {
                match &mut out {
                    Some(m) => m.merge(&st.metrics),
                    None => out = Some(st.metrics),
                }
            }
        }
        out
    }

    /// Flows tracked.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Total ARP requests on one interface.
    pub fn arp_requests_on(&self, interface: &str) -> u64 {
        self.arp_requests.get(interface).copied().unwrap_or(0)
    }

    /// Aggregate metrics across every tracked flow (troubleshooting
    /// dashboards sum per-flow counters exactly like this).
    pub fn totals(&self) -> FlowMetrics {
        let mut out = FlowMetrics::default();
        for st in self.flows.values() {
            out.merge(&st.metrics);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::net::Ipv4Addr;

    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const S: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn seg(src_c: bool, flags: TcpFlags, payload: &'static [u8], window: u16) -> Segment {
        let ft = if src_c {
            FiveTuple::tcp(C, 40000, S, 80)
        } else {
            FiveTuple::tcp(S, 80, C, 40000)
        };
        Segment {
            five_tuple: ft,
            seq: 1,
            ack: 0,
            flags,
            window,
            payload: Bytes::from_static(payload),
            is_retransmission: false,
        }
    }

    #[test]
    fn handshake_yields_rtt_and_direction_split() {
        let mut ft = FlowTable::new();
        ft.observe(
            "eth0",
            &Frame::Segment(seg(true, TcpFlags::SYN, b"", 100)),
            TimeNs(0),
        );
        ft.observe(
            "eth0",
            &Frame::Segment(seg(false, TcpFlags::SYN_ACK, b"", 100)),
            TimeNs(500_000),
        );
        ft.observe(
            "eth0",
            &Frame::Segment(seg(true, TcpFlags::PSH_ACK, b"req", 100)),
            TimeNs(600_000),
        );
        ft.observe(
            "eth0",
            &Frame::Segment(seg(false, TcpFlags::PSH_ACK, b"response", 100)),
            TimeNs(900_000),
        );
        let m = ft
            .metrics("eth0", &FiveTuple::tcp(C, 40000, S, 80))
            .unwrap();
        assert_eq!(m.rtt, DurationNs(500_000));
        assert!(m.established);
        assert_eq!(m.packets_tx, 2); // SYN + req
        assert_eq!(m.packets_rx, 2); // SYN_ACK + resp
        assert_eq!(m.bytes_tx, 3);
        assert_eq!(m.bytes_rx, 8);
        assert!(!m.is_anomalous());
    }

    #[test]
    fn retransmissions_and_resets_counted() {
        let mut ft = FlowTable::new();
        let mut retx = seg(true, TcpFlags::PSH_ACK, b"data", 100);
        retx.is_retransmission = true;
        ft.observe(
            "eth0",
            &Frame::Segment(seg(true, TcpFlags::PSH_ACK, b"data", 100)),
            TimeNs(0),
        );
        ft.observe("eth0", &Frame::Segment(retx), TimeNs(1));
        ft.observe(
            "eth0",
            &Frame::Segment(seg(false, TcpFlags::RST, b"", 0)),
            TimeNs(2),
        );
        let m = ft
            .metrics("eth0", &FiveTuple::tcp(C, 40000, S, 80))
            .unwrap();
        assert_eq!(m.retransmissions, 1);
        assert_eq!(m.resets, 1);
        assert!(m.is_anomalous());
    }

    #[test]
    fn syn_retries_counted() {
        let mut ft = FlowTable::new();
        for t in [0u64, 1_000_000, 3_000_000] {
            ft.observe(
                "eth0",
                &Frame::Segment(seg(true, TcpFlags::SYN, b"", 100)),
                TimeNs(t),
            );
        }
        let m = ft
            .metrics("eth0", &FiveTuple::tcp(C, 40000, S, 80))
            .unwrap();
        assert_eq!(m.syn_retries, 2);
    }

    #[test]
    fn zero_window_advertisements_counted() {
        let mut ft = FlowTable::new();
        ft.observe(
            "eth0",
            &Frame::Segment(seg(true, TcpFlags::PSH_ACK, b"x", 100)),
            TimeNs(0),
        );
        // Receiver advertises zero window (backlogged consumer).
        ft.observe(
            "eth0",
            &Frame::Segment(seg(false, TcpFlags::ACK, b"", 0)),
            TimeNs(1),
        );
        ft.observe(
            "eth0",
            &Frame::Segment(seg(false, TcpFlags::ACK, b"", 0)),
            TimeNs(2),
        );
        let m = ft
            .metrics("eth0", &FiveTuple::tcp(C, 40000, S, 80))
            .unwrap();
        assert_eq!(m.zero_windows, 2);
        assert!(m.is_anomalous());
    }

    #[test]
    fn arp_counters_per_interface() {
        let mut ft = FlowTable::new();
        let req = Frame::Arp {
            op: ArpOp::Request,
            sender: C,
            target: S,
        };
        ft.observe("phys0", &req, TimeNs(0));
        ft.observe("phys0", &req, TimeNs(1));
        ft.observe("eth0", &req, TimeNs(2));
        assert_eq!(ft.arp_requests_on("phys0"), 2);
        assert_eq!(ft.arp_requests_on("eth0"), 1);
        assert_eq!(ft.arp_requests_on("veth-x"), 0);
    }

    #[test]
    fn interfaces_keep_separate_flow_entries_but_merge_on_demand() {
        let mut ft = FlowTable::new();
        ft.observe(
            "eth0",
            &Frame::Segment(seg(true, TcpFlags::PSH_ACK, b"ab", 100)),
            TimeNs(0),
        );
        ft.observe(
            "phys0",
            &Frame::Segment(seg(true, TcpFlags::PSH_ACK, b"ab", 100)),
            TimeNs(1),
        );
        assert_eq!(ft.len(), 2);
        let merged = ft
            .metrics_any_interface(&FiveTuple::tcp(C, 40000, S, 80))
            .unwrap();
        assert_eq!(merged.packets_tx, 2);
    }

    #[test]
    fn both_orientations_hit_the_same_flow() {
        let mut ft = FlowTable::new();
        ft.observe(
            "eth0",
            &Frame::Segment(seg(true, TcpFlags::PSH_ACK, b"req", 100)),
            TimeNs(0),
        );
        ft.observe(
            "eth0",
            &Frame::Segment(seg(false, TcpFlags::PSH_ACK, b"resp", 100)),
            TimeNs(1),
        );
        assert_eq!(ft.len(), 1);
        // Query with the server-side orientation: same flow.
        let m = ft
            .metrics("eth0", &FiveTuple::tcp(S, 80, C, 40000))
            .unwrap();
        assert_eq!(m.packets_tx + m.packets_rx, 2);
    }
}
