//! The Agent facade: install hooks, poll observations, ship spans.
//!
//! One [`Agent`] per node (paper Fig. 4: "An Agent is deployed in each
//! container node, virtual machine, or physical machine"). `install`
//! attaches the verified eBPF programs to every Table 3 ABI — in zero code,
//! while the monitored processes run. `poll` drains the perf ring,
//! coroutine events and capture taps, and turns them into spans carrying
//! every implicit-context attribute plus the phase-1 smart-encoded tags.

use crate::ebpf::{SharedSyscallProgram, SharedTlsProgram};
use crate::flow_table::FlowTable;
use crate::net_spans::{hash2, NetSpanBuilder, TapContext};
use crate::pseudo_thread::PseudoThreadTracker;
use crate::session::{SessionAggregator, SessionOutcome};
use crate::systrace::SystraceTracker;
use df_kernel::hooks::{AttachPoint, KernelEvent, ProbeKind};
use df_kernel::{Kernel, VerifierError};
use df_net::fabric::Fabric;
use df_protocols::inference::InferenceEngine;
use df_protocols::ParsedMessage;
use df_types::span::{CapturePoint, Span, SpanKind, SpanStatus, TapSide};
use df_types::tags::TagSet;
use df_types::{
    AgentId, Direction, DurationNs, FlowId, L7Metrics, MessageData, NodeId, SpanId, SyscallAbi,
    TimeNs,
};
use std::collections::HashMap;

/// Agent configuration.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Node this agent runs on.
    pub node: NodeId,
    /// VPC dictionary id for phase-1 smart-encoding (Fig. 8 ④).
    pub vpc_id: Option<u32>,
    /// Payload snap length for eBPF captures.
    pub snap_len: usize,
    /// Attach TLS uprobes (`ssl_read`/`ssl_write`).
    pub enable_uprobes: bool,
    /// Use tracepoints instead of kprobes for syscall hooks (Fig. 13(a)
    /// contrasts the two).
    pub use_tracepoints: bool,
    /// Session time-window slot width (§3.3.1: 60 s in production).
    pub session_slot: DurationNs,
    /// Fraction of the node's CPU capacity the agent's user-space
    /// processing consumes (protocol inference, session aggregation,
    /// shipping). Calibrated against Appendix B: the full agent costs a few
    /// percent; the eBPF module alone costs less.
    pub cpu_share: f64,
}

impl AgentConfig {
    /// Defaults for a node.
    pub fn for_node(node: NodeId) -> Self {
        AgentConfig {
            node,
            vpc_id: Some(1),
            snap_len: 1024,
            enable_uprobes: true,
            use_tracepoints: false,
            session_slot: DurationNs::from_secs(60),
            cpu_share: 0.05,
        }
    }
}

impl AgentConfig {
    /// The "eBPF module only" configuration of Appendix B: hooks attached,
    /// but no user-space protocol processing cost.
    pub fn ebpf_only(node: NodeId) -> Self {
        AgentConfig {
            cpu_share: 0.02,
            ..AgentConfig::for_node(node)
        }
    }
}

/// Agent throughput/diagnostic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// MessageData records consumed from the perf ring.
    pub messages: u64,
    /// Sys spans produced.
    pub sys_spans: u64,
    /// Net spans produced.
    pub net_spans: u64,
    /// Incomplete spans produced by expiry.
    pub incomplete_spans: u64,
    /// Messages whose flow defied protocol inference.
    pub unclassified: u64,
    /// Sessions matched out-of-window (server re-aggregation candidates).
    pub out_of_window: u64,
}

/// The per-node DeepFlow agent.
pub struct Agent {
    cfg: AgentConfig,
    id: AgentId,
    syscall_prog: SharedSyscallProgram,
    inference: InferenceEngine,
    systrace: SystraceTracker,
    pseudo: PseudoThreadTracker,
    sessions: SessionAggregator<(MessageData, ParsedMessage)>,
    net: NetSpanBuilder,
    /// The agent's flow table (public: examples query it directly, like the
    /// §4.1.2 operators inspecting ARP counts per interface).
    pub flows: FlowTable,
    /// L7 metrics per (process, endpoint), aggregated from sys spans — the
    /// request-rate/error-rate/latency series DeepFlow exports alongside
    /// traces (§3.4 tag-based correlation feeds these to dashboards).
    l7_metrics: HashMap<(String, String), L7Metrics>,
    stats: AgentStats,
    out: Vec<Span>,
}

impl Agent {
    /// Create an agent for a node.
    pub fn new(cfg: AgentConfig) -> Self {
        let id = AgentId(cfg.node.raw());
        let net = NetSpanBuilder::new(cfg.node, id, cfg.session_slot);
        Agent {
            syscall_prog: SharedSyscallProgram::new(cfg.snap_len),
            inference: InferenceEngine::default(),
            systrace: SystraceTracker::with_namespace(cfg.node.raw()),
            pseudo: PseudoThreadTracker::with_namespace(cfg.node.raw()),
            sessions: SessionAggregator::new(cfg.session_slot),
            net,
            flows: FlowTable::new(),
            l7_metrics: HashMap::new(),
            stats: AgentStats::default(),
            out: Vec::new(),
            id,
            cfg,
        }
    }

    /// Agent id.
    pub fn id(&self) -> AgentId {
        self.id
    }

    /// Counters.
    pub fn stats(&self) -> AgentStats {
        self.stats
    }

    /// L7 metrics for one (process, endpoint) pair.
    pub fn l7_metrics(&self, process: &str, endpoint: &str) -> Option<&L7Metrics> {
        self.l7_metrics
            .get(&(process.to_string(), endpoint.to_string()))
    }

    /// Iterate all L7 metric series.
    pub fn l7_metrics_iter(&self) -> impl Iterator<Item = (&(String, String), &L7Metrics)> {
        self.l7_metrics.iter()
    }

    /// Attach the syscall program to all ten ABIs (enter + exit), and the
    /// TLS program to `ssl_read`/`ssl_write` when enabled. Every program
    /// passes the verifier or nothing attaches (§2.3.1).
    pub fn install(&self, kernel: &mut Kernel) -> Result<(), VerifierError> {
        let kind = if self.cfg.use_tracepoints {
            ProbeKind::Tracepoint
        } else {
            ProbeKind::Kprobe
        };
        for abi in SyscallAbi::ALL {
            kernel.hooks.attach(
                AttachPoint::SyscallEnter(abi),
                kind,
                Box::new(self.syscall_prog.clone()),
            )?;
            kernel.hooks.attach(
                AttachPoint::SyscallExit(abi),
                kind,
                Box::new(self.syscall_prog.clone()),
            )?;
        }
        if self.cfg.enable_uprobes {
            let tls = SharedTlsProgram::new(self.cfg.snap_len);
            for sym in ["ssl_read", "ssl_write"] {
                kernel.hooks.attach(
                    AttachPoint::UserFnEnter(sym),
                    ProbeKind::Uprobe,
                    Box::new(tls.clone()),
                )?;
                kernel.hooks.attach(
                    AttachPoint::UserFnExit(sym),
                    ProbeKind::Uretprobe,
                    Box::new(tls.clone()),
                )?;
            }
        }
        Ok(())
    }

    /// Register a tap context so net spans can resolve their tap side.
    pub fn register_tap(&mut self, interface: &str, ctx: TapContext) {
        self.net.register_tap(interface, ctx);
    }

    /// Register a user-supplied protocol specification (paper §3.3.1) for
    /// both the syscall path and the packet path. The factory is invoked
    /// twice because each inference engine owns its specification.
    pub fn register_custom_protocol(
        &mut self,
        mut factory: impl FnMut() -> df_protocols::inference::CustomProtocol,
    ) -> df_types::L7Protocol {
        let slot = self.inference.register_custom(factory());
        let net_slot = self.net.register_custom_protocol(factory());
        debug_assert_eq!(slot, net_slot, "sys and net engines stay in lockstep");
        slot
    }

    /// Drain kernel + tap observations, producing spans.
    pub fn poll(&mut self, kernel: &mut Kernel, fabric: &mut Fabric, now: TimeNs) -> Vec<Span> {
        // 1. Coroutine lifecycle events → pseudo-thread structure.
        let coroutine_events = kernel.procs.drain_coroutine_events();
        self.pseudo.observe(&coroutine_events);

        // 2. Perf ring → sys spans.
        for event in kernel.hooks.ring.drain_all() {
            if let KernelEvent::Message(msg) = event {
                self.process_message(msg);
            }
        }

        // 3. Capture taps → flow metrics + net spans.
        for (_kind, cap) in fabric.taps.drain_for_node(self.cfg.node) {
            self.flows.observe(&cap.interface, &cap.frame, cap.ts);
            if let Some(mut span) = self.net.offer(&cap.interface, &cap.frame, cap.ts) {
                span.flow_metrics = self.flows.metrics(
                    span.capture.interface.as_deref().unwrap_or(""),
                    &span.five_tuple,
                );
                self.phase1_tags(&mut span);
                self.stats.net_spans += 1;
                self.out.push(span);
            }
        }

        // 4. Expiry: overdue requests become Incomplete spans.
        for (msg, parse) in self.sessions.expire(now) {
            let span = self.build_incomplete_sys_span(msg, parse);
            self.stats.incomplete_spans += 1;
            self.out.push(span);
        }
        for span in self.net.expire(now) {
            self.stats.incomplete_spans += 1;
            self.out.push(span);
        }

        std::mem::take(&mut self.out)
    }

    /// [`Self::poll`], but the drained spans leave as one DFW1-encoded
    /// batch (see [`df_types::wire`]) — the bytes an agent actually ships
    /// to its trace server. String tags are interned into the batch's tag
    /// dictionary once here, at encode time. Returns `None` when the poll
    /// produced no spans (nothing to ship, no empty frame on the wire).
    pub fn poll_wire(
        &mut self,
        kernel: &mut Kernel,
        fabric: &mut Fabric,
        now: TimeNs,
    ) -> Option<Vec<u8>> {
        let spans = self.poll(kernel, fabric, now);
        if spans.is_empty() {
            None
        } else {
            Some(df_types::wire::encode_batch(&spans))
        }
    }

    fn process_message(&mut self, mut msg: MessageData) {
        self.stats.messages += 1;
        // Implicit intra-component association (Figure 7).
        let systrace = self.systrace.assign(
            msg.program.pid,
            msg.program.tid,
            msg.tracing.direction,
            msg.network.socket_id,
            msg.capture_ns(),
        );
        msg.context.systrace_id = Some(systrace);
        if let Some(coroutine) = msg.program.coroutine {
            msg.context.pseudo_thread_id =
                Some(self.pseudo.pseudo_thread(msg.program.pid, coroutine));
        }
        // Protocol inference + parse (Figure 6 phase 2).
        let flow_key = msg.network.socket_id.raw();
        let Some(parse) = self.inference.parse_for(flow_key, &msg.syscall.payload) else {
            self.stats.unclassified += 1;
            return;
        };
        msg.context.l7_protocol = Some(parse.protocol);
        msg.context.message_type = Some(parse.msg_type);
        msg.context.session_key = Some(parse.session_key);
        msg.context.x_request_id = parse.headers.x_request_id;
        msg.context.otel_trace_id = parse.headers.trace_id;
        msg.context.otel_span_id = parse.headers.span_id;
        // Session aggregation (Figure 6 phase 3).
        let ts = msg.capture_ns();
        let key = parse.session_key;
        let mtype = parse.msg_type;
        match self.sessions.offer(flow_key, key, mtype, ts, (msg, parse)) {
            SessionOutcome::Matched { request, response } => {
                let span = self.build_sys_span(request, response);
                self.stats.sys_spans += 1;
                self.out.push(span);
            }
            SessionOutcome::OutOfWindow { request, response } => {
                self.stats.out_of_window += 1;
                let span = self.build_sys_span(request, response);
                self.stats.sys_spans += 1;
                self.out.push(span);
            }
            SessionOutcome::OrphanResponse((resp, parse)) => {
                // The request already expired out of the time window.
                // Ship the response as a ResponseOnly fragment so the
                // server can re-aggregate it against the Incomplete span
                // (§3.3.1 server-side re-aggregation).
                let span = self.build_response_only_span(resp, parse);
                self.out.push(span);
            }
            SessionOutcome::Stored | SessionOutcome::Ignored(_) => {}
        }
    }

    fn build_response_only_span(&mut self, resp: MessageData, parse: ParsedMessage) -> Span {
        // A response travels server→client: the observer that *receives* it
        // is the client.
        let client_side = resp.tracing.direction == Direction::Ingress;
        let five_tuple = if client_side {
            resp.network.five_tuple
        } else {
            resp.network.five_tuple.reversed()
        };
        let udp = resp.network.five_tuple.protocol == df_types::TransportProtocol::Udp;
        let mut span = Span {
            span_id: SpanId(0),
            kind: SpanKind::Sys,
            capture: CapturePoint {
                node: self.cfg.node,
                tap_side: if client_side {
                    TapSide::ClientProcess
                } else {
                    TapSide::ServerProcess
                },
                interface: None,
            },
            agent: self.id,
            flow_id: FlowId(hash2("flow", five_tuple.canonical())),
            five_tuple,
            l7_protocol: parse.protocol,
            endpoint: parse.endpoint.clone(),
            req_time: resp.capture_ns(),
            resp_time: resp.capture_ns(),
            status: SpanStatus::ResponseOnly,
            status_code: parse.status_code,
            req_bytes: 0,
            resp_bytes: resp.syscall.byte_len as u64,
            pid: Some(resp.program.pid),
            tid: Some(resp.program.tid),
            process_name: Some(resp.program.process_name.clone()),
            systrace_id_req: None,
            systrace_id_resp: resp.context.systrace_id,
            pseudo_thread_id: resp.context.pseudo_thread_id,
            x_request_id_req: None,
            x_request_id_resp: resp.context.x_request_id,
            tcp_seq_req: None,
            tcp_seq_resp: if udp {
                None
            } else {
                Some(resp.network.tcp_seq)
            },
            otel_trace_id: resp.context.otel_trace_id,
            otel_span_id: resp.context.otel_span_id,
            otel_parent_span_id: None,
            tags: TagSet::default(),
            flow_metrics: None,
        };
        self.phase1_tags(&mut span);
        span
    }

    fn build_sys_span(
        &mut self,
        (req, req_parse): (MessageData, ParsedMessage),
        (resp, resp_parse): (MessageData, ParsedMessage),
    ) -> Span {
        // Observer side: a component that *sends* the request is the client.
        let client_side = req.tracing.direction == Direction::Egress;
        let tap_side = if client_side {
            TapSide::ClientProcess
        } else {
            TapSide::ServerProcess
        };
        let five_tuple = if client_side {
            req.network.five_tuple
        } else {
            req.network.five_tuple.reversed()
        };
        let status = if resp_parse.server_error {
            SpanStatus::ServerError
        } else if resp_parse.client_error {
            SpanStatus::ClientError
        } else {
            SpanStatus::Ok
        };
        let udp = req.network.five_tuple.protocol == df_types::TransportProtocol::Udp;
        let mut span = Span {
            span_id: SpanId(0),
            kind: SpanKind::Sys,
            capture: CapturePoint {
                node: self.cfg.node,
                tap_side,
                interface: None,
            },
            agent: self.id,
            flow_id: FlowId(hash2("flow", five_tuple.canonical())),
            five_tuple,
            l7_protocol: req_parse.protocol,
            endpoint: req_parse.endpoint.clone(),
            req_time: req.capture_ns(),
            resp_time: resp.capture_ns(),
            status,
            status_code: resp_parse.status_code,
            req_bytes: req.syscall.byte_len as u64,
            resp_bytes: resp.syscall.byte_len as u64,
            pid: Some(req.program.pid),
            tid: Some(req.program.tid),
            process_name: Some(req.program.process_name.clone()),
            systrace_id_req: req.context.systrace_id,
            systrace_id_resp: resp.context.systrace_id,
            pseudo_thread_id: req
                .context
                .pseudo_thread_id
                .or(resp.context.pseudo_thread_id),
            x_request_id_req: req.context.x_request_id,
            x_request_id_resp: resp.context.x_request_id,
            tcp_seq_req: if udp { None } else { Some(req.network.tcp_seq) },
            tcp_seq_resp: if udp {
                None
            } else {
                Some(resp.network.tcp_seq)
            },
            otel_trace_id: req.context.otel_trace_id,
            otel_span_id: req.context.otel_span_id,
            otel_parent_span_id: None,
            tags: TagSet::default(),
            flow_metrics: None,
        };
        span.flow_metrics = self.flows.metrics_any_interface(&span.five_tuple);
        self.phase1_tags(&mut span);
        self.l7_metrics
            .entry((
                span.process_name.clone().unwrap_or_default(),
                span.endpoint.clone(),
            ))
            .or_default()
            .record_session(
                span.duration(),
                span.status == SpanStatus::ClientError,
                span.status == SpanStatus::ServerError,
            );
        span
    }

    fn build_incomplete_sys_span(&mut self, req: MessageData, parse: ParsedMessage) -> Span {
        let client_side = req.tracing.direction == Direction::Egress;
        let five_tuple = if client_side {
            req.network.five_tuple
        } else {
            req.network.five_tuple.reversed()
        };
        let udp = req.network.five_tuple.protocol == df_types::TransportProtocol::Udp;
        let mut span = Span {
            span_id: SpanId(0),
            kind: SpanKind::Sys,
            capture: CapturePoint {
                node: self.cfg.node,
                tap_side: if client_side {
                    TapSide::ClientProcess
                } else {
                    TapSide::ServerProcess
                },
                interface: None,
            },
            agent: self.id,
            flow_id: FlowId(hash2("flow", five_tuple.canonical())),
            five_tuple,
            l7_protocol: parse.protocol,
            endpoint: parse.endpoint.clone(),
            req_time: req.capture_ns(),
            resp_time: req.capture_ns(),
            status: SpanStatus::Incomplete,
            status_code: None,
            req_bytes: req.syscall.byte_len as u64,
            resp_bytes: 0,
            pid: Some(req.program.pid),
            tid: Some(req.program.tid),
            process_name: Some(req.program.process_name.clone()),
            systrace_id_req: req.context.systrace_id,
            systrace_id_resp: None,
            pseudo_thread_id: req.context.pseudo_thread_id,
            x_request_id_req: req.context.x_request_id,
            x_request_id_resp: None,
            tcp_seq_req: if udp { None } else { Some(req.network.tcp_seq) },
            tcp_seq_resp: None,
            otel_trace_id: req.context.otel_trace_id,
            otel_span_id: req.context.otel_span_id,
            otel_parent_span_id: None,
            tags: TagSet::default(),
            flow_metrics: None,
        };
        span.flow_metrics = self.flows.metrics_any_interface(&span.five_tuple);
        self.phase1_tags(&mut span);
        self.l7_metrics
            .entry((
                span.process_name.clone().unwrap_or_default(),
                span.endpoint.clone(),
            ))
            .or_default()
            .record_timeout();
        span
    }

    /// Smart-encoding phase 1 (Fig. 8 ④–⑥): the agent writes only the VPC
    /// id and the observed component's IP, as integers.
    fn phase1_tags(&self, span: &mut Span) {
        span.tags.resource.vpc_id = self.cfg.vpc_id;
        let local_ip = if span.capture.tap_side.is_client_side() {
            span.five_tuple.src_ip
        } else {
            span.five_tuple.dst_ip
        };
        span.tags.resource.ip = Some(u32::from(local_ip));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use df_kernel::{KernelConfig, SyscallSurface, Wakeup};
    use df_net::topology::Topology;
    use df_net::FabricConfig;
    use df_protocols::http1;
    use df_types::net::TransportProtocol;
    use std::net::Ipv4Addr;

    const IP_A: Ipv4Addr = Ipv4Addr::new(10, 1, 0, 1);
    const IP_B: Ipv4Addr = Ipv4Addr::new(10, 1, 1, 1);

    struct World {
        ka: Kernel,
        kb: Kernel,
        fabric: Fabric,
    }

    fn pump(w: &mut World, now: TimeNs) -> Vec<Wakeup> {
        let mut wakeups = Vec::new();
        loop {
            let mut moved = false;
            for (kern, _other) in [(0, 1), (1, 0)] {
                let segs = if kern == 0 {
                    w.ka.drain_outbox()
                } else {
                    w.kb.drain_outbox()
                };
                for seg in segs {
                    moved = true;
                    for d in w.fabric.transmit(seg, now) {
                        let k = if d.node == w.ka.node() {
                            &mut w.ka
                        } else {
                            &mut w.kb
                        };
                        wakeups.extend(k.deliver(&d.segment, d.at));
                    }
                }
            }
            if !moved {
                break;
            }
        }
        wakeups
    }

    fn world() -> World {
        let mut topo = Topology::new();
        let n1 = topo.add_simple_node("node-1", Ipv4Addr::new(192, 168, 0, 1));
        let n2 = topo.add_simple_node("node-2", Ipv4Addr::new(192, 168, 0, 2));
        topo.add_pod(n1, "client", IP_A, "default", "client", "client-svc");
        topo.add_pod(n2, "server", IP_B, "default", "server", "server-svc");
        let fabric = Fabric::new(topo, FabricConfig::default());
        let ka = Kernel::new(KernelConfig {
            node: n1,
            ..Default::default()
        });
        let kb = Kernel::new(KernelConfig {
            node: n2,
            ..Default::default()
        });
        World { ka, kb, fabric }
    }

    /// Full end-to-end: two kernels, two agents, one HTTP exchange —
    /// verifying client and server sys spans with shared TCP sequences.
    #[test]
    fn http_exchange_produces_client_and_server_spans() {
        let mut w = world();
        let mut agent_a = Agent::new(AgentConfig::for_node(w.ka.node()));
        let mut agent_b = Agent::new(AgentConfig::for_node(w.kb.node()));
        agent_a.install(&mut w.ka).unwrap();
        agent_b.install(&mut w.kb).unwrap();

        // server setup
        let (spid, stid) = w.kb.procs.spawn_process("reviews");
        let lfd = w.kb.socket(spid, TransportProtocol::Tcp).unwrap();
        w.kb.bind(spid, lfd, IP_B, 9080).unwrap();
        w.kb.listen(spid, lfd, 16).unwrap();
        w.kb.accept(stid, spid, lfd);

        // client connect
        let (cpid, ctid) = w.ka.procs.spawn_process("productpage");
        let cfd = w.ka.socket(cpid, TransportProtocol::Tcp).unwrap();
        w.ka.connect(ctid, cpid, cfd, IP_A, (IP_B, 9080));
        pump(&mut w, TimeNs(0));
        let (sfd, _) = w.kb.accept(stid, spid, lfd).unwrap_complete();

        // request
        let t1 = TimeNs::from_millis(1);
        w.ka.sys_write(
            ctid,
            cpid,
            cfd,
            http1::request("GET", "/reviews/7", &[], b""),
            t1,
        )
        .unwrap_complete();
        w.kb.sys_read(stid, spid, sfd, 4096, t1); // parks
        pump(&mut w, t1);
        let t2 = TimeNs::from_millis(2);
        let (_req, _) = w.kb.sys_read(stid, spid, sfd, 4096, t2).unwrap_complete();
        // response
        let t3 = TimeNs::from_millis(3);
        w.kb.sys_write(
            stid,
            spid,
            sfd,
            http1::response(200, &[], b"five stars"),
            t3,
        )
        .unwrap_complete();
        w.ka.sys_read(ctid, cpid, cfd, 4096, t3);
        pump(&mut w, t3);
        let t4 = TimeNs::from_millis(4);
        w.ka.sys_read(ctid, cpid, cfd, 4096, t4).unwrap_complete();

        let spans_a = agent_a.poll(&mut w.ka, &mut w.fabric, TimeNs::from_millis(5));
        let spans_b = agent_b.poll(&mut w.kb, &mut w.fabric, TimeNs::from_millis(5));

        assert_eq!(spans_a.len(), 1, "client agent: one sys span");
        assert_eq!(spans_b.len(), 1, "server agent: one sys span");
        let ca = &spans_a[0];
        let sb = &spans_b[0];
        assert_eq!(ca.capture.tap_side, TapSide::ClientProcess);
        assert_eq!(sb.capture.tap_side, TapSide::ServerProcess);
        assert_eq!(ca.endpoint, "GET /reviews/7");
        assert_eq!(sb.endpoint, "GET /reviews/7");
        assert_eq!(ca.status_code, Some(200));
        // THE key invariant: both spans carry the same request TCP sequence,
        // captured on different machines (§3.3.2).
        assert_eq!(ca.tcp_seq_req, sb.tcp_seq_req);
        assert_eq!(ca.tcp_seq_resp, sb.tcp_seq_resp);
        // Both oriented client→server.
        assert_eq!(ca.five_tuple.src_ip, IP_A);
        assert_eq!(sb.five_tuple.src_ip, IP_A);
        // Phase-1 tags written.
        assert_eq!(ca.tags.resource.vpc_id, Some(1));
        assert_eq!(ca.tags.resource.ip, Some(u32::from(IP_A)));
        assert_eq!(sb.tags.resource.ip, Some(u32::from(IP_B)));
        // Process context captured in zero code.
        assert_eq!(ca.process_name.as_deref(), Some("productpage"));
        assert_eq!(sb.process_name.as_deref(), Some("reviews"));
    }

    #[test]
    fn net_spans_from_taps_share_seq_with_sys_spans() {
        use df_net::taps::{TapFilter, TapKind};
        use df_net::topology::ElementId;
        let mut w = world();
        let n1 = w.ka.node();
        let mut agent_a = Agent::new(AgentConfig::for_node(n1));
        agent_a.install(&mut w.ka).unwrap();
        // Tap the client node NIC.
        w.fabric.taps.install(
            ElementId::NodeNic(n1),
            n1,
            TapKind::NodeNic,
            TapFilter::all(),
        );
        agent_a.register_tap(
            "eth0",
            TapContext {
                kind: TapKind::NodeNic,
                local_ips: [IP_A].into_iter().collect(),
            },
        );

        // server without an agent
        let (spid, stid) = w.kb.procs.spawn_process("backend");
        let lfd = w.kb.socket(spid, TransportProtocol::Tcp).unwrap();
        w.kb.bind(spid, lfd, IP_B, 80).unwrap();
        w.kb.listen(spid, lfd, 16).unwrap();
        w.kb.accept(stid, spid, lfd);
        let (cpid, ctid) = w.ka.procs.spawn_process("curl");
        let cfd = w.ka.socket(cpid, TransportProtocol::Tcp).unwrap();
        w.ka.connect(ctid, cpid, cfd, IP_A, (IP_B, 80));
        pump(&mut w, TimeNs(0));
        let (sfd, _) = w.kb.accept(stid, spid, lfd).unwrap_complete();

        w.ka.sys_write(
            ctid,
            cpid,
            cfd,
            http1::request("GET", "/", &[], b""),
            TimeNs(1000),
        )
        .unwrap_complete();
        w.kb.sys_read(stid, spid, sfd, 4096, TimeNs(1000));
        pump(&mut w, TimeNs(1000));
        w.kb.sys_read(stid, spid, sfd, 4096, TimeNs(2000))
            .unwrap_complete();
        w.kb.sys_write(
            stid,
            spid,
            sfd,
            http1::response(200, &[], b"hi"),
            TimeNs(3000),
        )
        .unwrap_complete();
        w.ka.sys_read(ctid, cpid, cfd, 4096, TimeNs(3000));
        pump(&mut w, TimeNs(3000));
        w.ka.sys_read(ctid, cpid, cfd, 4096, TimeNs(4000))
            .unwrap_complete();

        let spans = agent_a.poll(&mut w.ka, &mut w.fabric, TimeNs::from_millis(10));
        let sys: Vec<&Span> = spans.iter().filter(|s| s.kind == SpanKind::Sys).collect();
        let net: Vec<&Span> = spans.iter().filter(|s| s.kind == SpanKind::Net).collect();
        assert_eq!(sys.len(), 1);
        assert_eq!(net.len(), 1, "node NIC tap yields a net span");
        assert_eq!(net[0].capture.tap_side, TapSide::ClientNodeNic);
        assert_eq!(
            sys[0].tcp_seq_req, net[0].tcp_seq_req,
            "sys and net spans of one exchange share the request seq"
        );
        assert!(
            net[0].flow_metrics.is_some(),
            "net span carries flow metrics"
        );
        assert_eq!(agent_a.stats().net_spans, 1);
    }

    #[test]
    fn unresponsive_server_yields_incomplete_span() {
        let mut w = world();
        let mut agent_a = Agent::new(AgentConfig::for_node(w.ka.node()));
        agent_a.install(&mut w.ka).unwrap();

        let (spid, stid) = w.kb.procs.spawn_process("hangs");
        let lfd = w.kb.socket(spid, TransportProtocol::Tcp).unwrap();
        w.kb.bind(spid, lfd, IP_B, 80).unwrap();
        w.kb.listen(spid, lfd, 16).unwrap();
        w.kb.accept(stid, spid, lfd);
        let (cpid, ctid) = w.ka.procs.spawn_process("client");
        let cfd = w.ka.socket(cpid, TransportProtocol::Tcp).unwrap();
        w.ka.connect(ctid, cpid, cfd, IP_A, (IP_B, 80));
        pump(&mut w, TimeNs(0));

        w.ka.sys_write(
            ctid,
            cpid,
            cfd,
            http1::request("GET", "/hang", &[], b""),
            TimeNs(0),
        )
        .unwrap_complete();
        // server never responds; poll 5 minutes later
        let spans = agent_a.poll(&mut w.ka, &mut w.fabric, TimeNs::from_secs(300));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].status, SpanStatus::Incomplete);
        assert_eq!(spans[0].endpoint, "GET /hang");
        assert_eq!(agent_a.stats().incomplete_spans, 1);
    }

    #[test]
    fn install_is_idempotent_per_agent_and_verified() {
        let mut w = world();
        let agent = Agent::new(AgentConfig::for_node(w.ka.node()));
        agent.install(&mut w.ka).unwrap();
        // 10 ABIs × 2 + 2 uprobe symbols × 2
        assert_eq!(w.ka.hooks.attachment_count(), 24);
    }
}
