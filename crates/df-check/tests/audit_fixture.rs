//! Fixture tests for the `df-audit` binary: each rule's seed (see
//! `audit_fixtures/README.md`) planted in the base tree must fail with
//! the rule's name and the violating `file:line`, the untouched base
//! tree must pass, and the shipped repository tree must pass. The
//! model-thread-spawn seed exercises `df-lint` (rule 5) the same way.
//! These run in every build mode (no `checked` feature needed).

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("audit_fixtures")
}

fn repo_root() -> PathBuf {
    // crates/df-check -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("df-check lives at <repo>/crates/df-check")
        .to_path_buf()
}

struct Fixture {
    root: PathBuf,
}

impl Fixture {
    /// A temp tree seeded with a full copy of `audit_fixtures/base/`.
    fn from_base(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("df-audit-fixture-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        copy_tree(&fixtures_dir().join("base"), &root);
        Fixture { root }
    }

    /// Overwrite (or create) `rel` with the named seed file's contents.
    fn plant(&self, seed: &str, rel: &str) {
        let contents = std::fs::read_to_string(fixtures_dir().join("seeds").join(seed))
            .expect("read seed file");
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("create fixture dirs");
        std::fs::write(&path, contents).expect("write seeded file");
    }

    fn run(&self, bin: &str) -> (bool, String) {
        let exe = match bin {
            "df-audit" => env!("CARGO_BIN_EXE_df-audit"),
            "df-lint" => env!("CARGO_BIN_EXE_df-lint"),
            other => panic!("unknown fixture binary {other}"),
        };
        let output = Command::new(exe)
            .arg(&self.root)
            .output()
            .unwrap_or_else(|e| panic!("run {bin}: {e}"));
        let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
        (output.status.success(), stderr)
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("create fixture dir");
    for entry in std::fs::read_dir(from).expect("read fixture base") {
        let entry = entry.expect("fixture entry");
        let src = entry.path();
        let dst = to.join(entry.file_name());
        if src.is_dir() {
            copy_tree(&src, &dst);
        } else {
            std::fs::copy(&src, &dst).expect("copy fixture file");
        }
    }
}

/// Plant one seed over `rel`, run df-audit, and assert it fails naming
/// `rule` and each of `expect` (rule names and `file:line` anchors).
fn seeded_audit_fails(tag: &str, seed: &str, rel: &str, expect: &[&str]) {
    let fx = Fixture::from_base(tag);
    fx.plant(seed, rel);
    let (ok, stderr) = fx.run("df-audit");
    assert!(
        !ok,
        "df-audit must exit nonzero on {seed}; stderr:\n{stderr}"
    );
    for needle in expect {
        assert!(
            stderr.contains(needle),
            "stderr for {seed} must contain {needle:?}:\n{stderr}"
        );
    }
}

#[test]
fn base_tree_passes_both_binaries() {
    let fx = Fixture::from_base("clean");
    let (audit_ok, audit_err) = fx.run("df-audit");
    assert!(audit_ok, "df-audit must pass the base tree:\n{audit_err}");
    let (lint_ok, lint_err) = fx.run("df-lint");
    assert!(lint_ok, "df-lint must pass the base tree:\n{lint_err}");
}

#[test]
fn seeded_unwrap_fails_panic_totality() {
    seeded_audit_fails(
        "panic",
        "decode_panic.rs",
        "crates/df-types/src/wire.rs",
        &["decode-panic", "crates/df-types/src/wire.rs:16"],
    );
}

#[test]
fn seeded_indexing_fails_panic_totality() {
    seeded_audit_fails(
        "index",
        "decode_index.rs",
        "crates/df-types/src/wire.rs",
        &["decode-index", "crates/df-types/src/wire.rs:16"],
    );
}

#[test]
fn seeded_length_arithmetic_fails_panic_totality() {
    seeded_audit_fails(
        "arith",
        "decode_arith.rs",
        "crates/df-types/src/wire.rs",
        &["decode-arith", "crates/df-types/src/wire.rs:16"],
    );
}

#[test]
fn unjustified_allow_fails_the_audit_itself() {
    seeded_audit_fails(
        "allow",
        "empty_allow.rs",
        "crates/df-types/src/wire.rs",
        &[
            "audit-allow",
            "crates/df-types/src/wire.rs:17",
            "decode-index",
            "crates/df-types/src/wire.rs:18",
        ],
    );
}

#[test]
fn seeded_ab_ba_nesting_fails_lock_order() {
    seeded_audit_fails(
        "cycle",
        "lock_cycle.rs",
        "crates/df-server/src/lib.rs",
        &["lock-order", "crates/df-server/src/lib.rs"],
    );
}

#[test]
fn seeded_undeclared_decode_arm_fails_spec_exhaustiveness() {
    seeded_audit_fails(
        "spec",
        "spec_gap.rs",
        "crates/df-types/src/rpc.rs",
        &["spec-exhaustive", "crates/df-types/src/rpc.rs", "kind 3"],
    );
}

#[test]
fn seeded_os_thread_in_model_suite_fails_df_lint() {
    let fx = Fixture::from_base("spawn");
    fx.plant(
        "model_spawn.rs",
        "crates/df-server/tests/df_check_models.rs",
    );
    let (ok, stderr) = fx.run("df-lint");
    assert!(!ok, "df-lint must exit nonzero; stderr:\n{stderr}");
    for needle in [
        "model-thread-spawn",
        "df_check_models.rs:7",
        "df_check_models.rs:12",
    ] {
        assert!(
            stderr.contains(needle),
            "stderr must contain {needle:?}:\n{stderr}"
        );
    }
}

#[test]
fn shipped_tree_audits_clean() {
    let root = repo_root();
    assert!(
        root.join("crates").join("df-types").is_dir(),
        "repo layout changed? {root:?}"
    );
    let output = Command::new(env!("CARGO_BIN_EXE_df-audit"))
        .arg(&root)
        .output()
        .expect("run df-audit");
    assert!(
        output.status.success(),
        "shipped tree must audit clean:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}
