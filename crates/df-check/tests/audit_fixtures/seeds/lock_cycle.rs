#![forbid(unsafe_code)]
//! Seed: AB/BA lock nesting — `drain` takes store then gens, `backfill`
//! takes gens then store. The static graph gains a cycle.

use df_check::sync::Mutex;

pub struct Srv {
    store: Mutex<u32>,
    gens: Mutex<u32>,
}

impl Srv {
    pub fn new() -> Srv {
        Srv {
            store: Mutex::new(0),
            gens: Mutex::new(0),
        }
    }

    pub fn drain(&self) {
        let mut s = self.store.lock().expect("no panics hold this lock");
        let mut g = self.gens.lock().expect("no panics hold this lock");
        *g = g.wrapping_add(1);
        *s = s.wrapping_add(1);
    }

    pub fn backfill(&self) {
        let mut g = self.gens.lock().expect("no panics hold this lock");
        let mut s = self.store.lock().expect("no panics hold this lock");
        *s = s.wrapping_add(1);
        *g = g.wrapping_add(1);
    }
}
