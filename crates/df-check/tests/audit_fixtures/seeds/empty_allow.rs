//! Seed: an allow directive with an empty justification (line 17) —
//! with a reason it would suppress the index on line 18; empty, both fail.

pub const F_A: u32 = 1 << 0;
pub const F_B: u32 = 1 << 1;

pub fn encode(flags: &mut u32) {
    *flags |= F_A;
    *flags |= F_B;
}

pub fn decode(flags: u32) -> (bool, bool) {
    (flags & F_A != 0, flags & F_B != 0)
}

pub fn first(b: &[u8]) -> u8 {
    // df-audit: allow(decode-index)
    b[0]
}
