//! Seed for df-lint rule 5: an OS thread in a model-test suite. The test
//! copies this file to `crates/df-server/tests/df_check_models.rs` in the
//! fixture tree (the on-disk name avoids `df_check_models` so the shipped
//! tree's own scans never pick it up).

fn round() {
    let t = std::thread::spawn(|| {});
    t.join().unwrap();
}

fn scoped() {
    std::thread::scope(|s| {
        s.spawn(|| {});
    });
}
