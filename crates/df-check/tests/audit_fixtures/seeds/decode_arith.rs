//! Seed: unchecked `+` on a length in a total-decode module (line 16).

pub const F_A: u32 = 1 << 0;
pub const F_B: u32 = 1 << 1;

pub fn encode(flags: &mut u32) {
    *flags |= F_A;
    *flags |= F_B;
}

pub fn decode(flags: u32) -> (bool, bool) {
    (flags & F_A != 0, flags & F_B != 0)
}

pub fn frame_len(b: &[u8]) -> usize {
    b.len() + 5
}
