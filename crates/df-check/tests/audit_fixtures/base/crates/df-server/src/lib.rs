#![forbid(unsafe_code)]
//! Fixture server: one consistent lock order, `store` before `gens`.

use df_check::sync::Mutex;

pub struct Srv {
    store: Mutex<u32>,
    gens: Mutex<u32>,
}

impl Srv {
    pub fn new() -> Srv {
        Srv {
            store: Mutex::new(0),
            gens: Mutex::new(0),
        }
    }

    pub fn drain(&self) {
        let mut s = self.store.lock().expect("no panics hold this lock");
        let mut g = self.gens.lock().expect("no panics hold this lock");
        *g = g.wrapping_add(1);
        *s = s.wrapping_add(1);
    }
}
