//! Fixture RPC codec: two kinds, every one declared, encoded, decoded.

pub const RPC_KINDS: &[(&str, u8)] = &[("SpanBatch", 1), ("SpanBatchAck", 2)];

impl RpcBody {
    pub fn kind(&self) -> u8 {
        match self {
            RpcBody::SpanBatch { .. } => 1,
            RpcBody::SpanBatchAck { .. } => 2,
        }
    }
}

fn decode_body(kind: u8, body: &[u8]) -> Result<RpcBody, RpcDecodeError> {
    let decoded = match kind {
        1 => RpcBody::SpanBatch {},
        2 => RpcBody::SpanBatchAck {},
        other => return Err(RpcDecodeError::UnknownKind(other)),
    };
    Ok(decoded)
}
