//! Fixture segment codec: declares no presence bits (so the segment doc
//! needs no table), and decodes totally.

pub fn header_len() -> usize {
    16
}

pub fn magic_ok(b: &[u8]) -> bool {
    b.get(..4) == Some(b"DFS1".as_slice())
}
