//! Self-tests for the model checker: exploration, race detection,
//! deadlock detection, lock-order cycles, preemption bounding, dedup,
//! and deterministic replay.
//!
//! Real exploration needs the `checked` feature (CI and the workspace
//! test run enable it); without it each test that needs the scheduler
//! skips itself at runtime.

use df_check::model::{self, CheckConfig, FailureKind};
use df_check::sync;

fn checked_or_skip() -> bool {
    if !df_check::is_checked() {
        eprintln!("skipping: df-check built without the `checked` feature");
        return false;
    }
    true
}

fn budget() -> CheckConfig {
    CheckConfig::default().env_budget()
}

#[test]
fn mutex_counter_explores_exhaustively() {
    if !checked_or_skip() {
        return;
    }
    let report = model::explore(budget(), || {
        let counter = sync::Arc::new(sync::Mutex::new(0u32));
        let c2 = sync::Arc::clone(&counter);
        let t = model::spawn(move || {
            *c2.lock().expect("uncontended in model") += 1;
        });
        *counter.lock().expect("uncontended in model") += 1;
        t.join();
        assert_eq!(*counter.lock().expect("uncontended in model"), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete, "bounded space should be exhausted");
    assert!(report.schedules >= 2, "must explore both lock orders");
    assert!(report.lock_cycles.is_empty());
}

#[test]
fn racy_counter_is_reported_and_replayable() {
    if !checked_or_skip() {
        return;
    }
    let body = || {
        let counter = sync::Arc::new(sync::Racy::new(0u64));
        let c2 = sync::Arc::clone(&counter);
        let t = model::spawn(move || {
            c2.update(|v| v + 1);
        });
        counter.update(|v| v + 1);
        t.join();
    };
    let report = model::explore(budget(), body);
    let failure = report.failure.expect("unsynchronized counter must race");
    assert_eq!(failure.kind, FailureKind::DataRace);
    assert!(
        !failure.trace.is_empty(),
        "failure carries the interleaving"
    );
    assert!(!failure.schedule.is_empty(), "failure carries the schedule");

    // The recorded decision vector reproduces the identical failure.
    let replayed = model::replay(failure.schedule.clone(), body);
    let again = replayed.failure.expect("replay reproduces the race");
    assert_eq!(again.kind, FailureKind::DataRace);
    assert_eq!(again.message, failure.message);
    assert_eq!(again.schedule, failure.schedule);
}

#[test]
fn mutex_protected_racy_cell_has_no_race() {
    if !checked_or_skip() {
        return;
    }
    // The release→acquire vector-clock join must order the two accesses.
    let report = model::explore(budget(), || {
        let lock = sync::Arc::new(sync::Mutex::new(()));
        let cell = sync::Arc::new(sync::Racy::new(0u64));
        let (l2, c2) = (sync::Arc::clone(&lock), sync::Arc::clone(&cell));
        let t = model::spawn(move || {
            let _g = l2.lock().expect("uncontended in model");
            c2.update(|v| v + 1);
        });
        {
            let _g = lock.lock().expect("uncontended in model");
            cell.update(|v| v + 1);
        }
        t.join();
        assert_eq!(cell.get(), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}

#[test]
fn lost_update_needs_a_preemption() {
    if !checked_or_skip() {
        return;
    }
    // Non-atomic read-modify-write on a shared cell; the lost update only
    // shows up when one thread is preempted between its read and write.
    let body = || {
        let cell = sync::Arc::new(sync::Racy::new(0u64));
        let c2 = sync::Arc::clone(&cell);
        let t = model::spawn(move || {
            let v = c2.get();
            c2.set(v + 1);
        });
        let v = cell.get();
        cell.set(v + 1);
        t.join();
        assert_eq!(cell.get(), 2, "lost update");
    };
    let no_races = CheckConfig {
        fail_on_race: false,
        ..budget()
    };

    // Preemption bound 0: only voluntary switches, threads run to
    // completion one after the other — no lost update reachable.
    let bounded0 = model::explore(
        CheckConfig {
            max_preemptions: 0,
            ..no_races.clone()
        },
        body,
    );
    assert!(bounded0.failure.is_none(), "{:?}", bounded0.failure);
    assert!(bounded0.complete);

    // Bound 2 (default): the interleaving is found and reported as the
    // assertion panic.
    let report = model::explore(no_races, body);
    let failure = report.failure.expect("lost update must be found");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("lost update"),
        "{}",
        failure.message
    );
}

#[test]
fn ab_ba_deadlock_is_detected() {
    if !checked_or_skip() {
        return;
    }
    let report = model::explore(budget(), || {
        let a = sync::Arc::new(sync::Mutex::new(0u32));
        let b = sync::Arc::new(sync::Mutex::new(0u32));
        let (a2, b2) = (sync::Arc::clone(&a), sync::Arc::clone(&b));
        let t = model::spawn(move || {
            let _ga = a2.lock().expect("uncontended in model");
            let _gb = b2.lock().expect("uncontended in model");
        });
        let _gb = b.lock().expect("uncontended in model");
        let _ga = a.lock().expect("uncontended in model");
        drop(_ga);
        drop(_gb);
        t.join();
    });
    let failure = report.failure.expect("AB-BA must fail");
    assert!(
        matches!(
            failure.kind,
            FailureKind::Deadlock | FailureKind::LockOrderCycle
        ),
        "got {:?}",
        failure.kind
    );
}

#[test]
fn lock_order_cycle_flagged_on_passing_schedules() {
    if !checked_or_skip() {
        return;
    }
    // The channel edge serializes the two critical sections, so no
    // schedule can deadlock — but the A→B / B→A inversion is still a
    // latent hazard and must be flagged by the lock-order graph.
    let report = model::explore(budget(), || {
        let a = sync::Arc::new(sync::Mutex::new(0u32));
        let b = sync::Arc::new(sync::Mutex::new(0u32));
        let (tx, rx) = sync::mpsc::sync_channel::<()>(1);
        let (a2, b2) = (sync::Arc::clone(&a), sync::Arc::clone(&b));
        let t = model::spawn(move || {
            {
                let _ga = a2.lock().expect("uncontended in model");
                let _gb = b2.lock().expect("uncontended in model");
            }
            tx.send(()).expect("receiver alive");
        });
        rx.recv().expect("sender alive");
        let _gb = b.lock().expect("uncontended in model");
        let _ga = a.lock().expect("uncontended in model");
        drop(_ga);
        drop(_gb);
        t.join();
    });
    let failure = report.failure.expect("cycle must be flagged");
    assert_eq!(failure.kind, FailureKind::LockOrderCycle);
    assert!(!report.lock_cycles.is_empty());
    assert!(
        report.lock_cycles[0].contains("Mutex"),
        "cycle names the locks: {}",
        report.lock_cycles[0]
    );
}

#[test]
fn bounded_channel_backpressure_and_order() {
    if !checked_or_skip() {
        return;
    }
    let report = model::explore(budget(), || {
        let (tx, rx) = sync::mpsc::sync_channel::<u32>(1);
        let t = model::spawn(move || {
            for i in 0..3 {
                tx.send(i).expect("receiver alive");
            }
        });
        for i in 0..3 {
            assert_eq!(rx.recv().expect("sender alive"), i, "FIFO order");
        }
        assert!(rx.recv().is_err(), "disconnected after sender drop");
        t.join();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}

#[test]
fn condvar_gate_wakes_and_terminates() {
    if !checked_or_skip() {
        return;
    }
    let report = model::explore(budget(), || {
        let gate = sync::Arc::new((sync::Mutex::new(0usize), sync::Condvar::new()));
        let g2 = sync::Arc::clone(&gate);
        let worker = model::spawn(move || {
            let (m, cv) = &*g2;
            let mut done = m.lock().expect("uncontended in model");
            *done += 1;
            if *done == 2 {
                cv.notify_all();
            }
        });
        let (m, cv) = &*gate;
        {
            let mut done = m.lock().expect("uncontended in model");
            *done += 1;
            if *done == 2 {
                cv.notify_all();
            }
        }
        let mut done = m.lock().expect("uncontended in model");
        while *done < 2 {
            done = cv.wait(done).expect("uncontended in model");
        }
        assert_eq!(*done, 2);
        drop(done);
        worker.join();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}

#[test]
fn barrier_rendezvous_synchronizes_and_elects_one_leader() {
    if !checked_or_skip() {
        return;
    }
    let report = model::explore(budget(), || {
        let gate = sync::Arc::new(sync::Barrier::new(3));
        let flags = sync::Arc::new((sync::Racy::new(0u64), sync::Racy::new(0u64)));
        let mut handles = Vec::new();
        for i in 0..2u64 {
            let gate = sync::Arc::clone(&gate);
            let flags = sync::Arc::clone(&flags);
            handles.push(model::spawn(move || {
                if i == 0 {
                    flags.0.set(1);
                } else {
                    flags.1.set(1);
                }
                gate.wait().is_leader()
            }));
        }
        let mut leaders = u32::from(gate.wait().is_leader());
        // The rendezvous orders both pre-barrier writes before these
        // reads regardless of arrival order — the vector-clock race
        // detector proves the happens-before edges exist.
        assert_eq!(flags.0.get(), 1);
        assert_eq!(flags.1.get(), 1);
        for h in handles {
            leaders += u32::from(h.join());
        }
        assert_eq!(leaders, 1, "exactly one leader per generation");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

#[test]
fn once_under_contention_initializes_exactly_once() {
    if !checked_or_skip() {
        return;
    }
    let report = model::explore(budget(), || {
        let once = sync::Arc::new(sync::Once::new());
        let count = sync::Arc::new(sync::Racy::new(0u64));
        let o2 = sync::Arc::clone(&once);
        let c2 = sync::Arc::clone(&count);
        let t = model::spawn(move || {
            o2.call_once(|| {
                c2.update(|v| v + 1);
            });
        });
        once.call_once(|| {
            count.update(|v| v + 1);
        });
        t.join();
        assert!(once.is_completed());
        assert_eq!(count.get(), 1, "initializer ran exactly once");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// Plain-`std` semantics (valid in both builds, no model): a panicking
/// initializer poisons the `Once`, `call_once_force` observes the poison
/// and recovers, and a completed `Once` never reruns its closure.
#[test]
fn once_poison_surfaces_and_call_once_force_recovers() {
    let once = sync::Once::new();
    assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        once.call_once(|| panic!("init failed"));
    }))
    .is_err());
    assert!(!once.is_completed());
    let mut saw = false;
    once.call_once_force(|state| {
        saw = state.is_poisoned();
    });
    assert!(saw, "forced closure must observe the poison");
    assert!(once.is_completed());
    once.call_once(|| panic!("must not run again"));
}

/// Plain-`std` semantics: a `Barrier` is reusable across generations and
/// elects exactly one leader per generation.
#[test]
fn barrier_generations_are_reusable() {
    let gate = std::sync::Arc::new(sync::Barrier::new(2));
    for _ in 0..2 {
        let g2 = std::sync::Arc::clone(&gate);
        let t = std::thread::spawn(move || g2.wait().is_leader());
        let mine = gate.wait().is_leader();
        let theirs = t.join().expect("waiter thread");
        assert!(mine ^ theirs, "exactly one leader per generation");
    }
}

#[test]
fn state_dedup_prunes_commuting_schedules() {
    if !checked_or_skip() {
        return;
    }
    // Two threads touching two unrelated mutexes: most interleavings are
    // observationally identical and must be pruned by the state hash.
    let report = model::explore(budget(), || {
        let a = sync::Arc::new(sync::Mutex::new(0u32));
        let b = sync::Arc::new(sync::Mutex::new(0u32));
        let a2 = sync::Arc::clone(&a);
        let t = model::spawn(move || {
            *a2.lock().expect("uncontended in model") += 1;
        });
        *b.lock().expect("uncontended in model") += 1;
        t.join();
        assert_eq!(*a.lock().expect("uncontended in model"), 1);
        assert_eq!(*b.lock().expect("uncontended in model"), 1);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
    assert!(
        report.states_pruned > 0,
        "commuting schedules should hit the dedup ({} schedules, 0 pruned)",
        report.schedules
    );
}

#[test]
fn unchecked_build_degrades_to_single_run() {
    if df_check::is_checked() {
        return;
    }
    let report = model::explore(CheckConfig::default(), || {
        let c = sync::Arc::new(sync::Mutex::new(0u32));
        *c.lock().expect("single-threaded") += 1;
        assert_eq!(*c.lock().expect("single-threaded"), 1);
    });
    assert!(report.failure.is_none());
    assert_eq!(report.schedules, 1);
    assert!(!report.complete);
}

#[test]
fn check_panics_with_rendered_trace_on_failure() {
    if !checked_or_skip() {
        return;
    }
    let err = std::panic::catch_unwind(|| {
        model::check(budget(), || {
            let cell = sync::Arc::new(sync::Racy::new(0u64));
            let c2 = sync::Arc::clone(&cell);
            let t = model::spawn(move || c2.set(1));
            cell.set(2);
            t.join();
        });
    })
    .expect_err("check must panic on a failing model");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("DataRace"), "rendered failure: {msg}");
    assert!(
        msg.contains("schedule"),
        "includes the decision vector: {msg}"
    );
}
