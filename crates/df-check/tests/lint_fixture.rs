//! Fixture tests for the `df-lint` binary and `df_check::lint` library:
//! a seeded violation (a raw `std::sync::Mutex` import in a fake
//! df-server module) must be caught with a nonzero exit, and the shipped
//! repository tree must lint clean. These run in every build mode (the
//! lint does not need the `checked` feature).

use std::path::{Path, PathBuf};
use std::process::Command;

struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("df-lint-fixture-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create fixture root");
        Fixture { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("create fixture dirs");
        std::fs::write(&path, contents).expect("write fixture file");
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn repo_root() -> PathBuf {
    // crates/df-check -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("df-check lives at <repo>/crates/df-check")
        .to_path_buf()
}

const CLEAN_LIB: &str = "#![forbid(unsafe_code)]\npub fn nothing() {}\n";

#[test]
fn seeded_std_sync_violation_fails_the_lint() {
    let fx = Fixture::new("seeded");
    fx.write("crates/df-server/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/df-server/src/rogue.rs",
        "use std::sync::Mutex;\npub fn f(m: &Mutex<u32>) -> u32 { *m.lock().expect(\"ok\") }\n",
    );
    let violations = df_check::lint::lint_tree(&fx.root).expect("lint runs");
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].rule, "std-sync-import");
    assert!(violations[0].file.ends_with("rogue.rs"));
    assert_eq!(violations[0].line, 1);

    // The binary exits nonzero on the same tree.
    let status = Command::new(env!("CARGO_BIN_EXE_df-lint"))
        .arg(&fx.root)
        .status()
        .expect("run df-lint");
    assert!(
        !status.success(),
        "df-lint must exit nonzero on a violation"
    );
}

#[test]
fn lock_unwrap_and_missing_forbid_are_caught() {
    let fx = Fixture::new("unwrap");
    // Missing #![forbid(unsafe_code)] in one crate root…
    fx.write("crates/df-storage/src/lib.rs", "pub fn nothing() {}\n");
    // …and a lock unwrap outside tests in another.
    fx.write("crates/df-server/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/df-server/src/store.rs",
        "use df_check::sync::Mutex;\n\
         pub fn f(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() }\n\
         #[cfg(test)]\nmod tests {\n  pub fn g(m: &super::Mutex<u32>) -> u32 { *m.lock().unwrap() }\n}\n",
    );
    let violations = df_check::lint::lint_tree(&fx.root).expect("lint runs");
    let rules: Vec<&str> = violations.iter().map(|v| v.rule).collect();
    assert_eq!(violations.len(), 2, "{violations:?}");
    assert!(rules.contains(&"forbid-unsafe"), "{violations:?}");
    assert!(rules.contains(&"lock-unwrap"), "{violations:?}");
}

#[test]
fn seeded_fs_escape_fails_and_io_modules_are_exempt() {
    let fx = Fixture::new("fs");
    fx.write("crates/df-storage/src/lib.rs", CLEAN_LIB);
    // A shard doing its own file IO: flagged.
    fx.write(
        "crates/df-storage/src/store.rs",
        "pub fn sneak() { let _ = std::fs::read(\"seg.dfspan\"); }\n",
    );
    // The segment codec and the disk scheduler: allowed.
    fx.write(
        "crates/df-storage/src/persist.rs",
        "pub fn write(p: &str, b: &[u8]) { std::fs::write(p, b).expect(\"io\"); }\n",
    );
    fx.write(
        "crates/df-storage/src/disk_sched.rs",
        "pub fn service(p: &str) -> Vec<u8> { std::fs::read(p).expect(\"io\") }\n",
    );
    let violations = df_check::lint::lint_tree(&fx.root).expect("lint runs");
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].rule, "fs-confinement");
    assert!(violations[0].file.ends_with("store.rs"));

    let status = Command::new(env!("CARGO_BIN_EXE_df-lint"))
        .arg(&fx.root)
        .status()
        .expect("run df-lint");
    assert!(!status.success(), "df-lint must exit nonzero on fs escape");
}

#[test]
fn clean_fixture_passes_and_binary_exits_zero() {
    let fx = Fixture::new("clean");
    fx.write("crates/df-server/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/df-server/src/good.rs",
        "use df_check::sync::{Arc, Mutex};\n\
         pub fn f(m: &Arc<Mutex<u32>>) -> u32 { *m.lock().expect(\"no panics hold this lock\") }\n",
    );
    fx.write("crates/df-types/src/lib.rs", CLEAN_LIB);
    let violations = df_check::lint::lint_tree(&fx.root).expect("lint runs");
    assert!(violations.is_empty(), "{violations:?}");

    let status = Command::new(env!("CARGO_BIN_EXE_df-lint"))
        .arg(&fx.root)
        .status()
        .expect("run df-lint");
    assert!(status.success(), "df-lint must exit zero on a clean tree");
}

#[test]
fn shipped_tree_lints_clean() {
    let root = repo_root();
    assert!(
        root.join("crates").join("df-server").is_dir(),
        "repo layout changed? {root:?}"
    );
    let violations = df_check::lint::lint_tree(&root).expect("lint runs");
    assert!(
        violations.is_empty(),
        "shipped tree must be lint-clean:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
