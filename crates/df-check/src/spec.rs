//! Wire-spec synchronisation check: the normative DFW1 document in
//! `docs/WIRE_FORMAT.md` must agree with the constants the codec in
//! `df_types::wire` actually uses.
//!
//! Three facts are cross-checked, extracted from each side by plain text
//! parsing (no dependencies, same philosophy as [`crate::lint`]):
//!
//! * the 4-byte **magic** (`WIRE_MAGIC` ↔ the doc's `**Magic:**` line),
//! * the **version** byte (`WIRE_VERSION` ↔ the doc's `**Version:**` line),
//! * the per-span **field order** (`FIELD_ORDER` ↔ the doc's field table
//!   between the `<!-- FIELD_ORDER:BEGIN -->` / `<!-- FIELD_ORDER:END -->`
//!   markers, first backticked token per row).
//!
//! The `df-spec-sync` binary runs the comparison over a repo tree and
//! exits nonzero on any mismatch; `ci.sh` gates on it, so editing either
//! side without the other fails CI.
//!
//! The same machinery covers the **DFSPANS1 segment format** (the cold
//! tier's on-disk span segments): `docs/SEGMENT_FORMAT.md` must agree
//! with the constants `df_storage::persist` declares — the 8-byte
//! segment magic, the version byte, the section order
//! (`SPAN_SEGMENT_SECTIONS` ↔ the `<!-- SEGMENT_SECTIONS:BEGIN/END -->`
//! table) and the association-index order (`SPAN_SEGMENT_ASSOC_INDEXES`
//! ↔ the `<!-- SEGMENT_ASSOC_INDEXES:BEGIN/END -->` table).

/// The DFW1 facts one side (code or doc) declares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpec {
    /// The 4-character frame magic.
    pub magic: String,
    /// The format version byte.
    pub version: u8,
    /// Per-span record fields, in encoding order.
    pub fields: Vec<String>,
}

/// Doc-side markers delimiting the normative field table.
pub const FIELD_ORDER_BEGIN: &str = "<!-- FIELD_ORDER:BEGIN -->";
/// See [`FIELD_ORDER_BEGIN`].
pub const FIELD_ORDER_END: &str = "<!-- FIELD_ORDER:END -->";

/// First `` `backticked` `` token in a line, if any.
fn backticked(line: &str) -> Option<&str> {
    let start = line.find('`')? + 1;
    let len = line[start..].find('`')?;
    Some(&line[start..start + len])
}

/// Extract the spec facts from `crates/df-types/src/wire.rs` source text.
///
/// Recognises the three normative declarations by name:
/// `WIRE_MAGIC: &[u8; 4] = b"....";`, `WIRE_VERSION: u8 = N;`, and the
/// string literals of `FIELD_ORDER: [&str; N] = [ ... ];`.
pub fn parse_source(src: &str) -> Result<WireSpec, String> {
    let mut magic = None;
    let mut version = None;
    let mut fields = Vec::new();
    let mut in_field_order = false;
    for line in src.lines() {
        let t = line.trim();
        if t.starts_with("//") {
            continue;
        }
        if t.contains("const WIRE_MAGIC") && t.contains("b\"") {
            let start = t.find("b\"").expect("checked") + 2;
            let rest = &t[start..];
            let end = rest
                .find('"')
                .ok_or("unterminated WIRE_MAGIC byte string")?;
            magic = Some(rest[..end].to_string());
        } else if t.contains("const WIRE_VERSION") && t.contains('=') {
            let rhs = t.split('=').nth(1).ok_or("malformed WIRE_VERSION")?;
            let num: String = rhs.chars().filter(char::is_ascii_digit).collect();
            version = Some(
                num.parse::<u8>()
                    .map_err(|e| format!("WIRE_VERSION value: {e}"))?,
            );
        }
        if t.contains("const FIELD_ORDER") && t.contains('[') {
            in_field_order = true;
        }
        if in_field_order {
            let mut rest = t;
            while let Some(start) = rest.find('"') {
                let tail = &rest[start + 1..];
                let Some(end) = tail.find('"') else { break };
                // Skip the `&str` in the type position; field names are
                // lowercase identifiers.
                let lit = &tail[..end];
                if !lit.is_empty() {
                    fields.push(lit.to_string());
                }
                rest = &tail[end + 1..];
            }
            if t.contains("];") {
                in_field_order = false;
            }
        }
    }
    Ok(WireSpec {
        magic: magic.ok_or("WIRE_MAGIC not found in source")?,
        version: version.ok_or("WIRE_VERSION not found in source")?,
        fields,
    })
}

/// Extract the spec facts from `docs/WIRE_FORMAT.md` text.
///
/// The magic and version come from the first lines containing
/// `**Magic:**` / `**Version:**` (first backticked token); the field
/// order from the table rows between [`FIELD_ORDER_BEGIN`] and
/// [`FIELD_ORDER_END`] (first backticked token per `|`-row, header and
/// separator rows skipped).
pub fn parse_doc(doc: &str) -> Result<WireSpec, String> {
    let mut magic = None;
    let mut version = None;
    let mut fields = Vec::new();
    let mut in_table = false;
    for line in doc.lines() {
        let t = line.trim();
        if magic.is_none() && t.contains("**Magic:**") {
            magic = Some(
                backticked(t)
                    .ok_or("**Magic:** line has no backticked value")?
                    .to_string(),
            );
        }
        if version.is_none() && t.contains("**Version:**") {
            let v = backticked(t).ok_or("**Version:** line has no backticked value")?;
            version = Some(
                v.parse::<u8>()
                    .map_err(|e| format!("**Version:** value {v:?}: {e}"))?,
            );
        }
        if t == FIELD_ORDER_BEGIN {
            in_table = true;
            continue;
        }
        if t == FIELD_ORDER_END {
            in_table = false;
            continue;
        }
        if in_table && t.starts_with('|') {
            if let Some(name) = backticked(t) {
                fields.push(name.to_string());
            }
        }
    }
    Ok(WireSpec {
        magic: magic.ok_or("**Magic:** line not found in doc")?,
        version: version.ok_or("**Version:** line not found in doc")?,
        fields,
    })
}

/// Compare the code-side and doc-side facts; one human-readable line per
/// disagreement, empty when in sync.
pub fn diff(code: &WireSpec, doc: &WireSpec) -> Vec<String> {
    let mut out = Vec::new();
    if code.magic != doc.magic {
        out.push(format!(
            "magic mismatch: code declares {:?}, doc declares {:?}",
            code.magic, doc.magic
        ));
    }
    if code.version != doc.version {
        out.push(format!(
            "version mismatch: code declares {}, doc declares {}",
            code.version, doc.version
        ));
    }
    if code.fields != doc.fields {
        if code.fields.len() != doc.fields.len() {
            out.push(format!(
                "field count mismatch: code has {}, doc table has {}",
                code.fields.len(),
                doc.fields.len()
            ));
        }
        for (i, (c, d)) in code.fields.iter().zip(&doc.fields).enumerate() {
            if c != d {
                out.push(format!(
                    "field {i} mismatch: code says {c:?}, doc table says {d:?}"
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// DFSPANS1 segment format (the cold tier's on-disk span segments).
// ---------------------------------------------------------------------

/// The DFSPANS1 facts one side (code or doc) declares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentSpec {
    /// The 8-character segment magic.
    pub magic: String,
    /// The segment format version byte.
    pub version: u8,
    /// Segment body sections, in encoding order.
    pub sections: Vec<String>,
    /// Association-index images inside the `assoc_index` section, in
    /// encoding order.
    pub assoc_indexes: Vec<String>,
}

/// Doc-side markers delimiting the normative section table.
pub const SEGMENT_SECTIONS_BEGIN: &str = "<!-- SEGMENT_SECTIONS:BEGIN -->";
/// See [`SEGMENT_SECTIONS_BEGIN`].
pub const SEGMENT_SECTIONS_END: &str = "<!-- SEGMENT_SECTIONS:END -->";
/// Doc-side markers delimiting the normative association-index table.
pub const SEGMENT_ASSOC_BEGIN: &str = "<!-- SEGMENT_ASSOC_INDEXES:BEGIN -->";
/// See [`SEGMENT_ASSOC_BEGIN`].
pub const SEGMENT_ASSOC_END: &str = "<!-- SEGMENT_ASSOC_INDEXES:END -->";

/// Extract the segment facts from `crates/df-storage/src/persist.rs`
/// source text: `SPAN_SEGMENT_MAGIC: &[u8; 8] = b"...";`,
/// `SPAN_SEGMENT_VERSION: u8 = N;`, and the string literals of
/// `SPAN_SEGMENT_SECTIONS` / `SPAN_SEGMENT_ASSOC_INDEXES`.
pub fn parse_segment_source(src: &str) -> Result<SegmentSpec, String> {
    let mut magic = None;
    let mut version = None;
    let mut sections = Vec::new();
    let mut assoc = Vec::new();
    // 0 = outside, 1 = in SECTIONS array, 2 = in ASSOC_INDEXES array.
    let mut in_array = 0u8;
    for line in src.lines() {
        let t = line.trim();
        if t.starts_with("//") {
            continue;
        }
        if t.contains("const SPAN_SEGMENT_MAGIC") && t.contains("b\"") {
            let start = t.find("b\"").expect("checked") + 2;
            let rest = &t[start..];
            let end = rest
                .find('"')
                .ok_or("unterminated SPAN_SEGMENT_MAGIC byte string")?;
            magic = Some(rest[..end].to_string());
        } else if t.contains("const SPAN_SEGMENT_VERSION") && t.contains('=') {
            let rhs = t
                .split('=')
                .nth(1)
                .ok_or("malformed SPAN_SEGMENT_VERSION")?;
            let num: String = rhs.chars().filter(char::is_ascii_digit).collect();
            version = Some(
                num.parse::<u8>()
                    .map_err(|e| format!("SPAN_SEGMENT_VERSION value: {e}"))?,
            );
        }
        if t.contains("const SPAN_SEGMENT_SECTIONS") && t.contains('[') {
            in_array = 1;
        } else if t.contains("const SPAN_SEGMENT_ASSOC_INDEXES") && t.contains('[') {
            in_array = 2;
        }
        if in_array != 0 {
            let out = if in_array == 1 {
                &mut sections
            } else {
                &mut assoc
            };
            let mut rest = t;
            while let Some(start) = rest.find('"') {
                let tail = &rest[start + 1..];
                let Some(end) = tail.find('"') else { break };
                let lit = &tail[..end];
                if !lit.is_empty() {
                    out.push(lit.to_string());
                }
                rest = &tail[end + 1..];
            }
            if t.contains("];") {
                in_array = 0;
            }
        }
    }
    Ok(SegmentSpec {
        magic: magic.ok_or("SPAN_SEGMENT_MAGIC not found in source")?,
        version: version.ok_or("SPAN_SEGMENT_VERSION not found in source")?,
        sections,
        assoc_indexes: assoc,
    })
}

/// Extract the segment facts from `docs/SEGMENT_FORMAT.md` text: the
/// first `**Segment magic:**` / `**Segment version:**` lines (first
/// backticked token) and the two marked tables.
pub fn parse_segment_doc(doc: &str) -> Result<SegmentSpec, String> {
    let mut magic = None;
    let mut version = None;
    let mut sections = Vec::new();
    let mut assoc = Vec::new();
    let mut in_table = 0u8;
    for line in doc.lines() {
        let t = line.trim();
        if magic.is_none() && t.contains("**Segment magic:**") {
            magic = Some(
                backticked(t)
                    .ok_or("**Segment magic:** line has no backticked value")?
                    .to_string(),
            );
        }
        if version.is_none() && t.contains("**Segment version:**") {
            let v = backticked(t).ok_or("**Segment version:** line has no backticked value")?;
            version = Some(
                v.parse::<u8>()
                    .map_err(|e| format!("**Segment version:** value {v:?}: {e}"))?,
            );
        }
        match t {
            _ if t == SEGMENT_SECTIONS_BEGIN => in_table = 1,
            _ if t == SEGMENT_ASSOC_BEGIN => in_table = 2,
            _ if t == SEGMENT_SECTIONS_END || t == SEGMENT_ASSOC_END => in_table = 0,
            _ if in_table != 0 && t.starts_with('|') => {
                if let Some(name) = backticked(t) {
                    if in_table == 1 {
                        sections.push(name.to_string());
                    } else {
                        assoc.push(name.to_string());
                    }
                }
            }
            _ => {}
        }
    }
    Ok(SegmentSpec {
        magic: magic.ok_or("**Segment magic:** line not found in doc")?,
        version: version.ok_or("**Segment version:** line not found in doc")?,
        sections,
        assoc_indexes: assoc,
    })
}

/// Compare code-side and doc-side segment facts; one line per
/// disagreement, empty when in sync.
pub fn diff_segment(code: &SegmentSpec, doc: &SegmentSpec) -> Vec<String> {
    let mut out = Vec::new();
    if code.magic != doc.magic {
        out.push(format!(
            "segment magic mismatch: code declares {:?}, doc declares {:?}",
            code.magic, doc.magic
        ));
    }
    if code.version != doc.version {
        out.push(format!(
            "segment version mismatch: code declares {}, doc declares {}",
            code.version, doc.version
        ));
    }
    for (what, c, d) in [
        ("section", &code.sections, &doc.sections),
        ("assoc index", &code.assoc_indexes, &doc.assoc_indexes),
    ] {
        if c != d {
            if c.len() != d.len() {
                out.push(format!(
                    "{what} count mismatch: code has {}, doc table has {}",
                    c.len(),
                    d.len()
                ));
            }
            for (i, (cv, dv)) in c.iter().zip(d.iter()).enumerate() {
                if cv != dv {
                    out.push(format!(
                        "{what} {i} mismatch: code says {cv:?}, doc table says {dv:?}"
                    ));
                }
            }
        }
    }
    out
}

/// Run the whole check over a repo root: the DFW1 wire spec
/// (`crates/df-types/src/wire.rs` ↔ `docs/WIRE_FORMAT.md`) and the
/// DFSPANS1 segment spec (`crates/df-storage/src/persist.rs` ↔
/// `docs/SEGMENT_FORMAT.md`), returning all mismatch lines (empty = in
/// sync).
pub fn check_tree(root: &std::path::Path) -> Result<Vec<String>, String> {
    let read = |rel: &str| {
        let path = root.join(rel);
        std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))
    };
    let mut out = diff(
        &parse_source(&read("crates/df-types/src/wire.rs")?)?,
        &parse_doc(&read("docs/WIRE_FORMAT.md")?)?,
    );
    out.extend(diff_segment(
        &parse_segment_source(&read("crates/df-storage/src/persist.rs")?)?,
        &parse_segment_doc(&read("docs/SEGMENT_FORMAT.md")?)?,
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC_FIXTURE: &str = r#"
/// The frame magic.
pub const WIRE_MAGIC: &[u8; 4] = b"DFW1";
/// The format version.
pub const WIRE_VERSION: u8 = 1;
/// Normative field order.
pub const FIELD_ORDER: [&str; 3] = [
    "span_id", "flags",
    "kind_tap",
];
"#;

    const DOC_FIXTURE: &str = r#"
# DFW1

**Magic:** `DFW1` (4 ASCII bytes)

**Version:** `1`

<!-- FIELD_ORDER:BEGIN -->
| # | Field | Encoding |
|---|-------|----------|
| 0 | `span_id` | varint u64 |
| 1 | `flags` | varint u32 |
| 2 | `kind_tap` | byte |
<!-- FIELD_ORDER:END -->
"#;

    #[test]
    fn fixtures_parse_and_agree() {
        let code = parse_source(SRC_FIXTURE).expect("source parses");
        let doc = parse_doc(DOC_FIXTURE).expect("doc parses");
        assert_eq!(code.magic, "DFW1");
        assert_eq!(code.version, 1);
        assert_eq!(code.fields, vec!["span_id", "flags", "kind_tap"]);
        assert_eq!(code, doc);
        assert!(diff(&code, &doc).is_empty());
    }

    #[test]
    fn seeded_version_mismatch_fails() {
        let code = parse_source(SRC_FIXTURE).unwrap();
        let doc = parse_doc(&DOC_FIXTURE.replace("**Version:** `1`", "**Version:** `2`")).unwrap();
        let d = diff(&code, &doc);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("version mismatch"), "{d:?}");
    }

    #[test]
    fn seeded_magic_mismatch_fails() {
        let code = parse_source(&SRC_FIXTURE.replace("b\"DFW1\"", "b\"DFW2\"")).unwrap();
        let doc = parse_doc(DOC_FIXTURE).unwrap();
        assert!(diff(&code, &doc)[0].contains("magic mismatch"));
    }

    #[test]
    fn seeded_field_rename_and_reorder_fail() {
        let code = parse_source(SRC_FIXTURE).unwrap();
        // Rename.
        let doc = parse_doc(&DOC_FIXTURE.replace("`flags`", "`flag_bits`")).unwrap();
        assert!(diff(&code, &doc).iter().any(|m| m.contains("field 1")));
        // Reorder (swap rows 0 and 1).
        let doc = parse_doc(
            &DOC_FIXTURE
                .replace(
                    "| 0 | `span_id` | varint u64 |",
                    "| 0 | `flags` | varint u32 |",
                )
                .replace(
                    "| 1 | `flags` | varint u32 |",
                    "| 1 | `span_id` | varint u64 |",
                ),
        )
        .unwrap();
        let d = diff(&code, &doc);
        assert!(d.iter().any(|m| m.contains("field 0")), "{d:?}");
        // Dropped row.
        let doc = parse_doc(&DOC_FIXTURE.replace("| 2 | `kind_tap` | byte |\n", "")).unwrap();
        assert!(diff(&code, &doc)
            .iter()
            .any(|m| m.contains("field count mismatch")));
    }

    #[test]
    fn missing_markers_or_lines_are_errors() {
        assert!(parse_doc("# empty").is_err());
        assert!(parse_source("// nothing here").is_err());
        // A doc with magic/version but no marked table yields no fields —
        // caught as a count mismatch rather than a parse error.
        let doc = parse_doc("**Magic:** `DFW1`\n**Version:** `1`\n").unwrap();
        assert!(doc.fields.is_empty());
    }

    const SEG_SRC_FIXTURE: &str = r#"
/// The segment magic.
pub const SPAN_SEGMENT_MAGIC: &[u8; 8] = b"DFSPANS1";
/// The segment version.
pub const SPAN_SEGMENT_VERSION: u8 = 1;
/// Normative section order.
pub const SPAN_SEGMENT_SECTIONS: [&str; 4] = ["spans", "rows", "time_index", "assoc_index"];
/// Normative association-index order.
pub const SPAN_SEGMENT_ASSOC_INDEXES: [&str; 5] = [
    "systrace",
    "pseudo_thread",
    "x_request",
    "tcp_seq",
    "otel_trace",
];
"#;

    const SEG_DOC_FIXTURE: &str = r#"
# DFSPANS1

**Segment magic:** `DFSPANS1` (8 ASCII bytes)

**Segment version:** `1`

<!-- SEGMENT_SECTIONS:BEGIN -->
| # | Section | Contents |
|---|---------|----------|
| 0 | `spans` | DFW1 batch |
| 1 | `rows` | u32 row numbers |
| 2 | `time_index` | (u64, u32) pairs |
| 3 | `assoc_index` | five key tables |
<!-- SEGMENT_SECTIONS:END -->

<!-- SEGMENT_ASSOC_INDEXES:BEGIN -->
| # | Index |
|---|-------|
| 0 | `systrace` |
| 1 | `pseudo_thread` |
| 2 | `x_request` |
| 3 | `tcp_seq` |
| 4 | `otel_trace` |
<!-- SEGMENT_ASSOC_INDEXES:END -->
"#;

    #[test]
    fn segment_fixtures_parse_and_agree() {
        let code = parse_segment_source(SEG_SRC_FIXTURE).expect("source parses");
        let doc = parse_segment_doc(SEG_DOC_FIXTURE).expect("doc parses");
        assert_eq!(code.magic, "DFSPANS1");
        assert_eq!(code.version, 1);
        assert_eq!(
            code.sections,
            ["spans", "rows", "time_index", "assoc_index"]
        );
        assert_eq!(code.assoc_indexes.len(), 5);
        assert_eq!(code, doc);
        assert!(diff_segment(&code, &doc).is_empty());
    }

    #[test]
    fn seeded_segment_mismatches_fail() {
        let code = parse_segment_source(SEG_SRC_FIXTURE).unwrap();
        // Magic drift.
        let doc = parse_segment_doc(&SEG_DOC_FIXTURE.replace("`DFSPANS1`", "`DFSPANS2`")).unwrap();
        assert!(diff_segment(&code, &doc)[0].contains("segment magic mismatch"));
        // Version drift.
        let doc = parse_segment_doc(
            &SEG_DOC_FIXTURE.replace("**Segment version:** `1`", "**Segment version:** `2`"),
        )
        .unwrap();
        assert!(diff_segment(&code, &doc)[0].contains("segment version mismatch"));
        // Section reorder.
        let doc = parse_segment_doc(
            &SEG_DOC_FIXTURE
                .replace(
                    "| 1 | `rows` | u32 row numbers |",
                    "| 1 | `time_index` | x |",
                )
                .replace(
                    "| 2 | `time_index` | (u64, u32) pairs |",
                    "| 2 | `rows` | x |",
                ),
        )
        .unwrap();
        assert!(diff_segment(&code, &doc)
            .iter()
            .any(|m| m.contains("section 1 mismatch")));
        // Dropped assoc-index row.
        let doc =
            parse_segment_doc(&SEG_DOC_FIXTURE.replace("| 4 | `otel_trace` |\n", "")).unwrap();
        assert!(diff_segment(&code, &doc)
            .iter()
            .any(|m| m.contains("assoc index count mismatch")));
        // Missing normative lines are parse errors.
        assert!(parse_segment_doc("# empty").is_err());
        assert!(parse_segment_source("// nothing").is_err());
    }

    /// The real tree is in sync (the same check ci.sh gates on, run from
    /// the workspace so `cargo test` alone catches drift).
    #[test]
    fn shipped_spec_matches_shipped_codec() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root");
        let mismatches = check_tree(&root).expect("both sides parse");
        assert!(
            mismatches.is_empty(),
            "spec drift:\n{}",
            mismatches.join("\n")
        );
    }
}
