//! Wire-spec synchronisation check: the normative DFW1 document in
//! `docs/WIRE_FORMAT.md` must agree with the constants the codec in
//! `df_types::wire` actually uses.
//!
//! Three facts are cross-checked, extracted from each side by plain text
//! parsing (no dependencies, same philosophy as [`crate::lint`]):
//!
//! * the 4-byte **magic** (`WIRE_MAGIC` ↔ the doc's `**Magic:**` line),
//! * the **version** byte (`WIRE_VERSION` ↔ the doc's `**Version:**` line),
//! * the per-span **field order** (`FIELD_ORDER` ↔ the doc's field table
//!   between the `<!-- FIELD_ORDER:BEGIN -->` / `<!-- FIELD_ORDER:END -->`
//!   markers, first backticked token per row).
//!
//! The `df-spec-sync` binary runs the comparison over a repo tree and
//! exits nonzero on any mismatch; `ci.sh` gates on it, so editing either
//! side without the other fails CI.

/// The DFW1 facts one side (code or doc) declares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpec {
    /// The 4-character frame magic.
    pub magic: String,
    /// The format version byte.
    pub version: u8,
    /// Per-span record fields, in encoding order.
    pub fields: Vec<String>,
}

/// Doc-side markers delimiting the normative field table.
pub const FIELD_ORDER_BEGIN: &str = "<!-- FIELD_ORDER:BEGIN -->";
/// See [`FIELD_ORDER_BEGIN`].
pub const FIELD_ORDER_END: &str = "<!-- FIELD_ORDER:END -->";

/// First `` `backticked` `` token in a line, if any.
fn backticked(line: &str) -> Option<&str> {
    let start = line.find('`')? + 1;
    let len = line[start..].find('`')?;
    Some(&line[start..start + len])
}

/// Extract the spec facts from `crates/df-types/src/wire.rs` source text.
///
/// Recognises the three normative declarations by name:
/// `WIRE_MAGIC: &[u8; 4] = b"....";`, `WIRE_VERSION: u8 = N;`, and the
/// string literals of `FIELD_ORDER: [&str; N] = [ ... ];`.
pub fn parse_source(src: &str) -> Result<WireSpec, String> {
    let mut magic = None;
    let mut version = None;
    let mut fields = Vec::new();
    let mut in_field_order = false;
    for line in src.lines() {
        let t = line.trim();
        if t.starts_with("//") {
            continue;
        }
        if t.contains("const WIRE_MAGIC") && t.contains("b\"") {
            let start = t.find("b\"").expect("checked") + 2;
            let rest = &t[start..];
            let end = rest
                .find('"')
                .ok_or("unterminated WIRE_MAGIC byte string")?;
            magic = Some(rest[..end].to_string());
        } else if t.contains("const WIRE_VERSION") && t.contains('=') {
            let rhs = t.split('=').nth(1).ok_or("malformed WIRE_VERSION")?;
            let num: String = rhs.chars().filter(char::is_ascii_digit).collect();
            version = Some(
                num.parse::<u8>()
                    .map_err(|e| format!("WIRE_VERSION value: {e}"))?,
            );
        }
        if t.contains("const FIELD_ORDER") && t.contains('[') {
            in_field_order = true;
        }
        if in_field_order {
            let mut rest = t;
            while let Some(start) = rest.find('"') {
                let tail = &rest[start + 1..];
                let Some(end) = tail.find('"') else { break };
                // Skip the `&str` in the type position; field names are
                // lowercase identifiers.
                let lit = &tail[..end];
                if !lit.is_empty() {
                    fields.push(lit.to_string());
                }
                rest = &tail[end + 1..];
            }
            if t.contains("];") {
                in_field_order = false;
            }
        }
    }
    Ok(WireSpec {
        magic: magic.ok_or("WIRE_MAGIC not found in source")?,
        version: version.ok_or("WIRE_VERSION not found in source")?,
        fields,
    })
}

/// Extract the spec facts from `docs/WIRE_FORMAT.md` text.
///
/// The magic and version come from the first lines containing
/// `**Magic:**` / `**Version:**` (first backticked token); the field
/// order from the table rows between [`FIELD_ORDER_BEGIN`] and
/// [`FIELD_ORDER_END`] (first backticked token per `|`-row, header and
/// separator rows skipped).
pub fn parse_doc(doc: &str) -> Result<WireSpec, String> {
    let mut magic = None;
    let mut version = None;
    let mut fields = Vec::new();
    let mut in_table = false;
    for line in doc.lines() {
        let t = line.trim();
        if magic.is_none() && t.contains("**Magic:**") {
            magic = Some(
                backticked(t)
                    .ok_or("**Magic:** line has no backticked value")?
                    .to_string(),
            );
        }
        if version.is_none() && t.contains("**Version:**") {
            let v = backticked(t).ok_or("**Version:** line has no backticked value")?;
            version = Some(
                v.parse::<u8>()
                    .map_err(|e| format!("**Version:** value {v:?}: {e}"))?,
            );
        }
        if t == FIELD_ORDER_BEGIN {
            in_table = true;
            continue;
        }
        if t == FIELD_ORDER_END {
            in_table = false;
            continue;
        }
        if in_table && t.starts_with('|') {
            if let Some(name) = backticked(t) {
                fields.push(name.to_string());
            }
        }
    }
    Ok(WireSpec {
        magic: magic.ok_or("**Magic:** line not found in doc")?,
        version: version.ok_or("**Version:** line not found in doc")?,
        fields,
    })
}

/// Compare the code-side and doc-side facts; one human-readable line per
/// disagreement, empty when in sync.
pub fn diff(code: &WireSpec, doc: &WireSpec) -> Vec<String> {
    let mut out = Vec::new();
    if code.magic != doc.magic {
        out.push(format!(
            "magic mismatch: code declares {:?}, doc declares {:?}",
            code.magic, doc.magic
        ));
    }
    if code.version != doc.version {
        out.push(format!(
            "version mismatch: code declares {}, doc declares {}",
            code.version, doc.version
        ));
    }
    if code.fields != doc.fields {
        if code.fields.len() != doc.fields.len() {
            out.push(format!(
                "field count mismatch: code has {}, doc table has {}",
                code.fields.len(),
                doc.fields.len()
            ));
        }
        for (i, (c, d)) in code.fields.iter().zip(&doc.fields).enumerate() {
            if c != d {
                out.push(format!(
                    "field {i} mismatch: code says {c:?}, doc table says {d:?}"
                ));
            }
        }
    }
    out
}

/// Run the whole check over a repo root: parse
/// `crates/df-types/src/wire.rs` and `docs/WIRE_FORMAT.md`, return the
/// mismatch lines (empty = in sync).
pub fn check_tree(root: &std::path::Path) -> Result<Vec<String>, String> {
    let src_path = root.join("crates/df-types/src/wire.rs");
    let doc_path = root.join("docs/WIRE_FORMAT.md");
    let src =
        std::fs::read_to_string(&src_path).map_err(|e| format!("{}: {e}", src_path.display()))?;
    let doc =
        std::fs::read_to_string(&doc_path).map_err(|e| format!("{}: {e}", doc_path.display()))?;
    Ok(diff(&parse_source(&src)?, &parse_doc(&doc)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC_FIXTURE: &str = r#"
/// The frame magic.
pub const WIRE_MAGIC: &[u8; 4] = b"DFW1";
/// The format version.
pub const WIRE_VERSION: u8 = 1;
/// Normative field order.
pub const FIELD_ORDER: [&str; 3] = [
    "span_id", "flags",
    "kind_tap",
];
"#;

    const DOC_FIXTURE: &str = r#"
# DFW1

**Magic:** `DFW1` (4 ASCII bytes)

**Version:** `1`

<!-- FIELD_ORDER:BEGIN -->
| # | Field | Encoding |
|---|-------|----------|
| 0 | `span_id` | varint u64 |
| 1 | `flags` | varint u32 |
| 2 | `kind_tap` | byte |
<!-- FIELD_ORDER:END -->
"#;

    #[test]
    fn fixtures_parse_and_agree() {
        let code = parse_source(SRC_FIXTURE).expect("source parses");
        let doc = parse_doc(DOC_FIXTURE).expect("doc parses");
        assert_eq!(code.magic, "DFW1");
        assert_eq!(code.version, 1);
        assert_eq!(code.fields, vec!["span_id", "flags", "kind_tap"]);
        assert_eq!(code, doc);
        assert!(diff(&code, &doc).is_empty());
    }

    #[test]
    fn seeded_version_mismatch_fails() {
        let code = parse_source(SRC_FIXTURE).unwrap();
        let doc = parse_doc(&DOC_FIXTURE.replace("**Version:** `1`", "**Version:** `2`")).unwrap();
        let d = diff(&code, &doc);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("version mismatch"), "{d:?}");
    }

    #[test]
    fn seeded_magic_mismatch_fails() {
        let code = parse_source(&SRC_FIXTURE.replace("b\"DFW1\"", "b\"DFW2\"")).unwrap();
        let doc = parse_doc(DOC_FIXTURE).unwrap();
        assert!(diff(&code, &doc)[0].contains("magic mismatch"));
    }

    #[test]
    fn seeded_field_rename_and_reorder_fail() {
        let code = parse_source(SRC_FIXTURE).unwrap();
        // Rename.
        let doc = parse_doc(&DOC_FIXTURE.replace("`flags`", "`flag_bits`")).unwrap();
        assert!(diff(&code, &doc).iter().any(|m| m.contains("field 1")));
        // Reorder (swap rows 0 and 1).
        let doc = parse_doc(
            &DOC_FIXTURE
                .replace(
                    "| 0 | `span_id` | varint u64 |",
                    "| 0 | `flags` | varint u32 |",
                )
                .replace(
                    "| 1 | `flags` | varint u32 |",
                    "| 1 | `span_id` | varint u64 |",
                ),
        )
        .unwrap();
        let d = diff(&code, &doc);
        assert!(d.iter().any(|m| m.contains("field 0")), "{d:?}");
        // Dropped row.
        let doc = parse_doc(&DOC_FIXTURE.replace("| 2 | `kind_tap` | byte |\n", "")).unwrap();
        assert!(diff(&code, &doc)
            .iter()
            .any(|m| m.contains("field count mismatch")));
    }

    #[test]
    fn missing_markers_or_lines_are_errors() {
        assert!(parse_doc("# empty").is_err());
        assert!(parse_source("// nothing here").is_err());
        // A doc with magic/version but no marked table yields no fields —
        // caught as a count mismatch rather than a parse error.
        let doc = parse_doc("**Magic:** `DFW1`\n**Version:** `1`\n").unwrap();
        assert!(doc.fields.is_empty());
    }

    /// The real tree is in sync (the same check ci.sh gates on, run from
    /// the workspace so `cargo test` alone catches drift).
    #[test]
    fn shipped_spec_matches_shipped_codec() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root");
        let mismatches = check_tree(&root).expect("both sides parse");
        assert!(
            mismatches.is_empty(),
            "spec drift:\n{}",
            mismatches.join("\n")
        );
    }
}
