//! Wire-spec synchronisation check: the normative DFW1 document in
//! `docs/WIRE_FORMAT.md` must agree with the constants the codec in
//! `df_types::wire` actually uses.
//!
//! Three facts are cross-checked, extracted from each side by plain text
//! parsing (no dependencies, same philosophy as [`crate::lint`]):
//!
//! * the 4-byte **magic** (`WIRE_MAGIC` ↔ the doc's `**Magic:**` line),
//! * the **version** byte (`WIRE_VERSION` ↔ the doc's `**Version:**` line),
//! * the per-span **field order** (`FIELD_ORDER` ↔ the doc's field table
//!   between the `<!-- FIELD_ORDER:BEGIN -->` / `<!-- FIELD_ORDER:END -->`
//!   markers, first backticked token per row).
//!
//! The `df-spec-sync` binary runs the comparison over a repo tree and
//! exits nonzero on any mismatch; `ci.sh` gates on it, so editing either
//! side without the other fails CI.
//!
//! The same machinery covers the **DFSPANS1 segment format** (the cold
//! tier's on-disk span segments): `docs/SEGMENT_FORMAT.md` must agree
//! with the constants `df_storage::persist` declares — the 8-byte
//! segment magic, the version byte, the section order
//! (`SPAN_SEGMENT_SECTIONS` ↔ the `<!-- SEGMENT_SECTIONS:BEGIN/END -->`
//! table) and the association-index order (`SPAN_SEGMENT_ASSOC_INDEXES`
//! ↔ the `<!-- SEGMENT_ASSOC_INDEXES:BEGIN/END -->` table).
//!
//! On top of the byte-level agreement, [`check_exhaustiveness`] (run by
//! the `df-audit` binary) enforces *coverage*: every DFR1 RPC kind in
//! the normative `RPC_KINDS` table must have a `kind()` encode arm, a
//! `decode_body` arm, and a doc-table row; every DFW1 presence bit
//! (`F_*` const) must have an encode site (`flags |= F_X`), a decode
//! site (`flags & F_X`), and a doc-table row. Adding kind 13 or bit 16
//! without documenting it is a CI failure, not a silent drift. DFSPANS1
//! declares no presence bits today; the same scan covers
//! `df_storage::persist` so any future `F_*` const there comes under
//! the rule automatically.

/// The DFW1 facts one side (code or doc) declares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSpec {
    /// The 4-character frame magic.
    pub magic: String,
    /// The format version byte.
    pub version: u8,
    /// Per-span record fields, in encoding order.
    pub fields: Vec<String>,
}

/// Doc-side markers delimiting the normative field table.
pub const FIELD_ORDER_BEGIN: &str = "<!-- FIELD_ORDER:BEGIN -->";
/// See [`FIELD_ORDER_BEGIN`].
pub const FIELD_ORDER_END: &str = "<!-- FIELD_ORDER:END -->";

/// First `` `backticked` `` token in a line, if any.
fn backticked(line: &str) -> Option<&str> {
    let start = line.find('`')? + 1;
    let len = line[start..].find('`')?;
    Some(&line[start..start + len])
}

/// Extract the spec facts from `crates/df-types/src/wire.rs` source text.
///
/// Recognises the three normative declarations by name:
/// `WIRE_MAGIC: &[u8; 4] = b"....";`, `WIRE_VERSION: u8 = N;`, and the
/// string literals of `FIELD_ORDER: [&str; N] = [ ... ];`.
pub fn parse_source(src: &str) -> Result<WireSpec, String> {
    let mut magic = None;
    let mut version = None;
    let mut fields = Vec::new();
    let mut in_field_order = false;
    for line in src.lines() {
        let t = line.trim();
        if t.starts_with("//") {
            continue;
        }
        if t.contains("const WIRE_MAGIC") && t.contains("b\"") {
            let start = t.find("b\"").expect("checked") + 2;
            let rest = &t[start..];
            let end = rest
                .find('"')
                .ok_or("unterminated WIRE_MAGIC byte string")?;
            magic = Some(rest[..end].to_string());
        } else if t.contains("const WIRE_VERSION") && t.contains('=') {
            let rhs = t.split('=').nth(1).ok_or("malformed WIRE_VERSION")?;
            let num: String = rhs.chars().filter(char::is_ascii_digit).collect();
            version = Some(
                num.parse::<u8>()
                    .map_err(|e| format!("WIRE_VERSION value: {e}"))?,
            );
        }
        if t.contains("const FIELD_ORDER") && t.contains('[') {
            in_field_order = true;
        }
        if in_field_order {
            let mut rest = t;
            while let Some(start) = rest.find('"') {
                let tail = &rest[start + 1..];
                let Some(end) = tail.find('"') else { break };
                // Skip the `&str` in the type position; field names are
                // lowercase identifiers.
                let lit = &tail[..end];
                if !lit.is_empty() {
                    fields.push(lit.to_string());
                }
                rest = &tail[end + 1..];
            }
            if t.contains("];") {
                in_field_order = false;
            }
        }
    }
    Ok(WireSpec {
        magic: magic.ok_or("WIRE_MAGIC not found in source")?,
        version: version.ok_or("WIRE_VERSION not found in source")?,
        fields,
    })
}

/// Extract the spec facts from `docs/WIRE_FORMAT.md` text.
///
/// The magic and version come from the first lines containing
/// `**Magic:**` / `**Version:**` (first backticked token); the field
/// order from the table rows between [`FIELD_ORDER_BEGIN`] and
/// [`FIELD_ORDER_END`] (first backticked token per `|`-row, header and
/// separator rows skipped).
pub fn parse_doc(doc: &str) -> Result<WireSpec, String> {
    let mut magic = None;
    let mut version = None;
    let mut fields = Vec::new();
    let mut in_table = false;
    for line in doc.lines() {
        let t = line.trim();
        if magic.is_none() && t.contains("**Magic:**") {
            magic = Some(
                backticked(t)
                    .ok_or("**Magic:** line has no backticked value")?
                    .to_string(),
            );
        }
        if version.is_none() && t.contains("**Version:**") {
            let v = backticked(t).ok_or("**Version:** line has no backticked value")?;
            version = Some(
                v.parse::<u8>()
                    .map_err(|e| format!("**Version:** value {v:?}: {e}"))?,
            );
        }
        if t == FIELD_ORDER_BEGIN {
            in_table = true;
            continue;
        }
        if t == FIELD_ORDER_END {
            in_table = false;
            continue;
        }
        if in_table && t.starts_with('|') {
            if let Some(name) = backticked(t) {
                fields.push(name.to_string());
            }
        }
    }
    Ok(WireSpec {
        magic: magic.ok_or("**Magic:** line not found in doc")?,
        version: version.ok_or("**Version:** line not found in doc")?,
        fields,
    })
}

/// Compare the code-side and doc-side facts; one human-readable line per
/// disagreement, empty when in sync.
pub fn diff(code: &WireSpec, doc: &WireSpec) -> Vec<String> {
    let mut out = Vec::new();
    if code.magic != doc.magic {
        out.push(format!(
            "magic mismatch: code declares {:?}, doc declares {:?}",
            code.magic, doc.magic
        ));
    }
    if code.version != doc.version {
        out.push(format!(
            "version mismatch: code declares {}, doc declares {}",
            code.version, doc.version
        ));
    }
    if code.fields != doc.fields {
        if code.fields.len() != doc.fields.len() {
            out.push(format!(
                "field count mismatch: code has {}, doc table has {}",
                code.fields.len(),
                doc.fields.len()
            ));
        }
        for (i, (c, d)) in code.fields.iter().zip(&doc.fields).enumerate() {
            if c != d {
                out.push(format!(
                    "field {i} mismatch: code says {c:?}, doc table says {d:?}"
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// DFSPANS1 segment format (the cold tier's on-disk span segments).
// ---------------------------------------------------------------------

/// The DFSPANS1 facts one side (code or doc) declares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentSpec {
    /// The 8-character segment magic.
    pub magic: String,
    /// The segment format version byte.
    pub version: u8,
    /// Segment body sections, in encoding order.
    pub sections: Vec<String>,
    /// Association-index images inside the `assoc_index` section, in
    /// encoding order.
    pub assoc_indexes: Vec<String>,
}

/// Doc-side markers delimiting the normative section table.
pub const SEGMENT_SECTIONS_BEGIN: &str = "<!-- SEGMENT_SECTIONS:BEGIN -->";
/// See [`SEGMENT_SECTIONS_BEGIN`].
pub const SEGMENT_SECTIONS_END: &str = "<!-- SEGMENT_SECTIONS:END -->";
/// Doc-side markers delimiting the normative association-index table.
pub const SEGMENT_ASSOC_BEGIN: &str = "<!-- SEGMENT_ASSOC_INDEXES:BEGIN -->";
/// See [`SEGMENT_ASSOC_BEGIN`].
pub const SEGMENT_ASSOC_END: &str = "<!-- SEGMENT_ASSOC_INDEXES:END -->";

/// Extract the segment facts from `crates/df-storage/src/persist.rs`
/// source text: `SPAN_SEGMENT_MAGIC: &[u8; 8] = b"...";`,
/// `SPAN_SEGMENT_VERSION: u8 = N;`, and the string literals of
/// `SPAN_SEGMENT_SECTIONS` / `SPAN_SEGMENT_ASSOC_INDEXES`.
pub fn parse_segment_source(src: &str) -> Result<SegmentSpec, String> {
    let mut magic = None;
    let mut version = None;
    let mut sections = Vec::new();
    let mut assoc = Vec::new();
    // 0 = outside, 1 = in SECTIONS array, 2 = in ASSOC_INDEXES array.
    let mut in_array = 0u8;
    for line in src.lines() {
        let t = line.trim();
        if t.starts_with("//") {
            continue;
        }
        if t.contains("const SPAN_SEGMENT_MAGIC") && t.contains("b\"") {
            let start = t.find("b\"").expect("checked") + 2;
            let rest = &t[start..];
            let end = rest
                .find('"')
                .ok_or("unterminated SPAN_SEGMENT_MAGIC byte string")?;
            magic = Some(rest[..end].to_string());
        } else if t.contains("const SPAN_SEGMENT_VERSION") && t.contains('=') {
            let rhs = t
                .split('=')
                .nth(1)
                .ok_or("malformed SPAN_SEGMENT_VERSION")?;
            let num: String = rhs.chars().filter(char::is_ascii_digit).collect();
            version = Some(
                num.parse::<u8>()
                    .map_err(|e| format!("SPAN_SEGMENT_VERSION value: {e}"))?,
            );
        }
        if t.contains("const SPAN_SEGMENT_SECTIONS") && t.contains('[') {
            in_array = 1;
        } else if t.contains("const SPAN_SEGMENT_ASSOC_INDEXES") && t.contains('[') {
            in_array = 2;
        }
        if in_array != 0 {
            let out = if in_array == 1 {
                &mut sections
            } else {
                &mut assoc
            };
            let mut rest = t;
            while let Some(start) = rest.find('"') {
                let tail = &rest[start + 1..];
                let Some(end) = tail.find('"') else { break };
                let lit = &tail[..end];
                if !lit.is_empty() {
                    out.push(lit.to_string());
                }
                rest = &tail[end + 1..];
            }
            if t.contains("];") {
                in_array = 0;
            }
        }
    }
    Ok(SegmentSpec {
        magic: magic.ok_or("SPAN_SEGMENT_MAGIC not found in source")?,
        version: version.ok_or("SPAN_SEGMENT_VERSION not found in source")?,
        sections,
        assoc_indexes: assoc,
    })
}

/// Extract the segment facts from `docs/SEGMENT_FORMAT.md` text: the
/// first `**Segment magic:**` / `**Segment version:**` lines (first
/// backticked token) and the two marked tables.
pub fn parse_segment_doc(doc: &str) -> Result<SegmentSpec, String> {
    let mut magic = None;
    let mut version = None;
    let mut sections = Vec::new();
    let mut assoc = Vec::new();
    let mut in_table = 0u8;
    for line in doc.lines() {
        let t = line.trim();
        if magic.is_none() && t.contains("**Segment magic:**") {
            magic = Some(
                backticked(t)
                    .ok_or("**Segment magic:** line has no backticked value")?
                    .to_string(),
            );
        }
        if version.is_none() && t.contains("**Segment version:**") {
            let v = backticked(t).ok_or("**Segment version:** line has no backticked value")?;
            version = Some(
                v.parse::<u8>()
                    .map_err(|e| format!("**Segment version:** value {v:?}: {e}"))?,
            );
        }
        match t {
            _ if t == SEGMENT_SECTIONS_BEGIN => in_table = 1,
            _ if t == SEGMENT_ASSOC_BEGIN => in_table = 2,
            _ if t == SEGMENT_SECTIONS_END || t == SEGMENT_ASSOC_END => in_table = 0,
            _ if in_table != 0 && t.starts_with('|') => {
                if let Some(name) = backticked(t) {
                    if in_table == 1 {
                        sections.push(name.to_string());
                    } else {
                        assoc.push(name.to_string());
                    }
                }
            }
            _ => {}
        }
    }
    Ok(SegmentSpec {
        magic: magic.ok_or("**Segment magic:** line not found in doc")?,
        version: version.ok_or("**Segment version:** line not found in doc")?,
        sections,
        assoc_indexes: assoc,
    })
}

/// Compare code-side and doc-side segment facts; one line per
/// disagreement, empty when in sync.
pub fn diff_segment(code: &SegmentSpec, doc: &SegmentSpec) -> Vec<String> {
    let mut out = Vec::new();
    if code.magic != doc.magic {
        out.push(format!(
            "segment magic mismatch: code declares {:?}, doc declares {:?}",
            code.magic, doc.magic
        ));
    }
    if code.version != doc.version {
        out.push(format!(
            "segment version mismatch: code declares {}, doc declares {}",
            code.version, doc.version
        ));
    }
    for (what, c, d) in [
        ("section", &code.sections, &doc.sections),
        ("assoc index", &code.assoc_indexes, &doc.assoc_indexes),
    ] {
        if c != d {
            if c.len() != d.len() {
                out.push(format!(
                    "{what} count mismatch: code has {}, doc table has {}",
                    c.len(),
                    d.len()
                ));
            }
            for (i, (cv, dv)) in c.iter().zip(d.iter()).enumerate() {
                if cv != dv {
                    out.push(format!(
                        "{what} {i} mismatch: code says {cv:?}, doc table says {dv:?}"
                    ));
                }
            }
        }
    }
    out
}

/// Run the whole check over a repo root: the DFW1 wire spec
/// (`crates/df-types/src/wire.rs` ↔ `docs/WIRE_FORMAT.md`) and the
/// DFSPANS1 segment spec (`crates/df-storage/src/persist.rs` ↔
/// `docs/SEGMENT_FORMAT.md`), returning all mismatch lines (empty = in
/// sync).
pub fn check_tree(root: &std::path::Path) -> Result<Vec<String>, String> {
    let read = |rel: &str| {
        let path = root.join(rel);
        std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))
    };
    let mut out = diff(
        &parse_source(&read("crates/df-types/src/wire.rs")?)?,
        &parse_doc(&read("docs/WIRE_FORMAT.md")?)?,
    );
    out.extend(diff_segment(
        &parse_segment_source(&read("crates/df-storage/src/persist.rs")?)?,
        &parse_segment_doc(&read("docs/SEGMENT_FORMAT.md")?)?,
    ));
    Ok(out)
}

// ---------------------------------------------------------------------
// Exhaustiveness: DFR1 RPC kinds and DFW1/DFSPANS1 presence bits
// ---------------------------------------------------------------------

use crate::lint::Violation;

/// Doc-side markers delimiting the normative RPC-kind table.
pub const RPC_KINDS_BEGIN: &str = "<!-- RPC_KINDS:BEGIN -->";
/// See [`RPC_KINDS_BEGIN`].
pub const RPC_KINDS_END: &str = "<!-- RPC_KINDS:END -->";
/// Doc-side markers delimiting the normative presence-bit table.
pub const PRESENCE_BITS_BEGIN: &str = "<!-- PRESENCE_BITS:BEGIN -->";
/// See [`PRESENCE_BITS_BEGIN`].
pub const PRESENCE_BITS_END: &str = "<!-- PRESENCE_BITS:END -->";

/// What the RPC codec source declares about its kinds. Every entry
/// carries the 1-indexed source line for error attribution.
#[derive(Debug, Clone, Default)]
pub struct RpcKindFacts {
    /// `RPC_KINDS` const entries: (variant name, kind byte, line).
    pub declared: Vec<(String, u8, usize)>,
    /// `RpcBody::Name { .. } => N` arms of `fn kind()` — the encode side.
    pub kind_arms: Vec<(String, u8, usize)>,
    /// `N =>` arms of `fn decode_body` — the decode side.
    pub decode_arms: Vec<(u8, usize)>,
}

/// Lines (1-indexed) of the brace-delimited region starting at the first
/// line containing `needle`, through the line where the brace depth
/// returns to zero. Line-based like the rest of this module; assumes no
/// unbalanced braces inside string literals in the region (true of the
/// codecs this parses).
fn brace_region<'a>(src: &'a str, needle: &str) -> Vec<(usize, &'a str)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut opened = false;
    for (i, line) in src.lines().enumerate() {
        if out.is_empty() && !line.contains(needle) {
            continue;
        }
        out.push((i + 1, line));
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            break;
        }
    }
    out
}

/// Extract the RPC-kind facts from `crates/df-types/src/rpc.rs` source.
pub fn parse_rpc_kinds_source(src: &str) -> RpcKindFacts {
    let mut facts = RpcKindFacts::default();
    // `RPC_KINDS` const entries: `("Name", N)` tuples until `];`.
    let mut in_const = false;
    for (i, line) in src.lines().enumerate() {
        let t = line.trim();
        if t.starts_with("//") {
            continue;
        }
        if t.contains("const RPC_KINDS") {
            in_const = true;
        }
        if in_const {
            let mut rest = t;
            while let Some(start) = rest.find("(\"") {
                let tail = &rest[start + 2..];
                let Some(name_end) = tail.find('"') else {
                    break;
                };
                let name = &tail[..name_end];
                let after = tail[name_end + 1..].trim_start_matches([',', ' ']);
                let digits: String = after.chars().take_while(char::is_ascii_digit).collect();
                if let Ok(byte) = digits.parse::<u8>() {
                    facts.declared.push((name.to_string(), byte, i + 1));
                }
                rest = &tail[name_end + 1..];
            }
            if t.contains("];") {
                in_const = false;
            }
        }
    }
    // `fn kind()` arms: `RpcBody::Name { .. } => N,`.
    for (line_no, line) in brace_region(src, "fn kind(") {
        let t = line.trim();
        if t.starts_with("//") {
            continue;
        }
        let Some(at) = t.find("RpcBody::") else {
            continue;
        };
        let tail = &t[at + "RpcBody::".len()..];
        let name: String = tail
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let Some(arrow) = tail.find("=>") else {
            continue;
        };
        let rhs = tail[arrow + 2..].trim();
        let digits: String = rhs.chars().take_while(char::is_ascii_digit).collect();
        if let Ok(byte) = digits.parse::<u8>() {
            facts.kind_arms.push((name, byte, line_no));
        }
    }
    // `fn decode_body` arms: a trimmed line starting with digits then `=>`,
    // at the depth of the top-level `match kind` (fn body is depth 1, the
    // match block depth 2 — deeper digit arms belong to nested matches
    // like `span_present` and are not kind arms).
    let mut depth = 0i32;
    for (line_no, line) in brace_region(src, "fn decode_body(") {
        let t = line.trim();
        let digits: String = t.chars().take_while(char::is_ascii_digit).collect();
        if !digits.is_empty() && depth == 2 && t[digits.len()..].trim_start().starts_with("=>") {
            if let Ok(byte) = digits.parse::<u8>() {
                facts.decode_arms.push((byte, line_no));
            }
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    facts
}

/// Parse a marker-delimited doc table whose rows are
/// `| <number> | `name` | … |`, returning (name, number, line) triples —
/// `None` when the markers are absent entirely.
pub fn parse_numbered_doc_table(
    doc: &str,
    begin: &str,
    end: &str,
) -> Option<Vec<(String, u8, usize)>> {
    let mut rows = Vec::new();
    let mut in_table = false;
    let mut seen = false;
    for (i, line) in doc.lines().enumerate() {
        let t = line.trim();
        if t == begin {
            in_table = true;
            seen = true;
            continue;
        }
        if t == end {
            in_table = false;
            continue;
        }
        if in_table && t.starts_with('|') {
            let first_cell = t.trim_start_matches('|');
            let num: String = first_cell
                .trim()
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            let (Ok(n), Some(name)) = (num.parse::<u8>(), backticked(t)) else {
                continue;
            };
            rows.push((name.to_string(), n, i + 1));
        }
    }
    seen.then_some(rows)
}

/// Cross-check the RPC-kind facts: the `RPC_KINDS` const, the `kind()`
/// encode arms, the `decode_body` arms and the doc table must all name
/// the same kinds. `src_file`/`doc_file` are used for attribution only.
pub fn check_rpc_kinds(
    facts: &RpcKindFacts,
    doc_rows: Option<&[(String, u8, usize)]>,
    src_file: &std::path::Path,
    doc_file: &std::path::Path,
) -> Vec<Violation> {
    use std::collections::BTreeSet;
    let mut out = Vec::new();
    let v = |file: &std::path::Path, line: usize, message: String| Violation {
        file: file.to_path_buf(),
        line,
        rule: "spec-exhaustive",
        message,
    };
    if facts.declared.is_empty() {
        out.push(v(
            src_file,
            1,
            "normative RPC_KINDS const not found; declare every RPC kind as \
             (\"Name\", byte) entries"
                .to_string(),
        ));
        return out;
    }
    let declared: BTreeSet<(&str, u8)> = facts
        .declared
        .iter()
        .map(|(n, b, _)| (n.as_str(), *b))
        .collect();
    let declared_bytes: BTreeSet<u8> = facts.declared.iter().map(|(_, b, _)| *b).collect();
    if declared_bytes.len() != facts.declared.len() {
        let (n, b, line) = facts
            .declared
            .iter()
            .find(|(_, b, _)| facts.declared.iter().filter(|(_, b2, _)| b2 == b).count() > 1)
            .expect("duplicate exists");
        out.push(v(
            src_file,
            *line,
            format!("RPC_KINDS declares kind byte {b} more than once (at {n})"),
        ));
    }
    let arms: BTreeSet<(&str, u8)> = facts
        .kind_arms
        .iter()
        .map(|(n, b, _)| (n.as_str(), *b))
        .collect();
    for (n, b, line) in &facts.kind_arms {
        if !declared.contains(&(n.as_str(), *b)) {
            out.push(v(
                src_file,
                *line,
                format!("kind() encodes RpcBody::{n} as {b}, which RPC_KINDS does not declare"),
            ));
        }
    }
    for (n, b, line) in &facts.declared {
        if !arms.contains(&(n.as_str(), *b)) {
            out.push(v(
                src_file,
                *line,
                format!("RPC_KINDS declares {n} = {b} but kind() has no matching encode arm"),
            ));
        }
    }
    let decode_bytes: BTreeSet<u8> = facts.decode_arms.iter().map(|(b, _)| *b).collect();
    for (b, line) in &facts.decode_arms {
        if !declared_bytes.contains(b) {
            out.push(v(
                src_file,
                *line,
                format!("decode_body has an arm for kind {b}, which RPC_KINDS does not declare"),
            ));
        }
    }
    for (n, b, line) in &facts.declared {
        if !decode_bytes.contains(b) {
            out.push(v(
                src_file,
                *line,
                format!("RPC_KINDS declares {n} = {b} but decode_body has no arm for it"),
            ));
        }
    }
    match doc_rows {
        None => out.push(v(
            doc_file,
            1,
            format!(
                "doc is missing the {RPC_KINDS_BEGIN} … {RPC_KINDS_END} table for the \
                 declared RPC kinds"
            ),
        )),
        Some(rows) => {
            let doc_set: BTreeSet<(&str, u8)> =
                rows.iter().map(|(n, b, _)| (n.as_str(), *b)).collect();
            for (n, b, line) in rows {
                if !declared.contains(&(n.as_str(), *b)) {
                    out.push(v(
                        doc_file,
                        *line,
                        format!("doc table row {n} = {b} does not match any declared RPC kind"),
                    ));
                }
            }
            for (n, b, line) in &facts.declared {
                if !doc_set.contains(&(n.as_str(), *b)) {
                    out.push(v(
                        src_file,
                        *line,
                        format!("RPC kind {n} = {b} has no row in the doc's RPC_KINDS table"),
                    ));
                }
            }
        }
    }
    out
}

/// What a codec source declares about its presence bits.
#[derive(Debug, Clone, Default)]
pub struct FlagFacts {
    /// `const F_X: u32 = 1 << N;` declarations: (name, bit, line).
    pub declared: Vec<(String, u8, usize)>,
    /// Names seen in `… |= F_X` encode sites.
    pub encode_sites: Vec<String>,
    /// Names seen in `… & F_X` decode sites.
    pub decode_sites: Vec<String>,
}

fn contains_word(line: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(at) = line[start..].find(word) {
        let abs = start + at;
        let before_ok = abs == 0
            || !line.as_bytes()[abs - 1].is_ascii_alphanumeric()
                && line.as_bytes()[abs - 1] != b'_';
        let after = abs + word.len();
        let after_ok = after >= line.len()
            || !line.as_bytes()[after].is_ascii_alphanumeric() && line.as_bytes()[after] != b'_';
        if before_ok && after_ok {
            return true;
        }
        start = abs + word.len();
    }
    false
}

/// Extract presence-bit facts from a codec source: `F_*` consts declared
/// as `1 << N`, plus their encode (`|=`) and decode (`&`) sites.
pub fn parse_flags_source(src: &str) -> FlagFacts {
    let mut facts = FlagFacts::default();
    for (i, line) in src.lines().enumerate() {
        let t = line.trim();
        if t.starts_with("//") {
            continue;
        }
        if let Some(at) = t.find("const F_") {
            let tail = &t[at + "const ".len()..];
            let name: String = tail
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if let Some(shift) = t.find("= 1 <<") {
                let digits: String = t[shift + "= 1 <<".len()..]
                    .trim_start()
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect();
                if let Ok(bit) = digits.parse::<u8>() {
                    facts.declared.push((name, bit, i + 1));
                    continue;
                }
            }
        }
        // Site scan happens in a second pass once names are known.
    }
    for line in src.lines() {
        let t = line.trim();
        if t.starts_with("//") || t.contains("const F_") {
            continue;
        }
        for (name, _, _) in &facts.declared {
            if contains_word(t, name) {
                if t.contains("|=") {
                    facts.encode_sites.push(name.clone());
                }
                // A decode site tests the bit with bitwise-and: `flags & F_X`.
                // Require the `&` adjacent to the name so `&mut`/`&[u8]`
                // elsewhere on the line doesn't count.
                if t.contains(&format!("& {name}")) || t.contains(&format!("&{name}")) {
                    facts.decode_sites.push(name.clone());
                }
            }
        }
    }
    facts
}

/// Cross-check presence-bit facts against the doc table: every declared
/// bit needs an encode site, a decode site, and a doc row; every doc row
/// needs a declaration. `doc_rows = None` means the doc has no marker
/// table — fine iff nothing is declared (DFSPANS1 today).
pub fn check_flags(
    facts: &FlagFacts,
    doc_rows: Option<&[(String, u8, usize)]>,
    src_file: &std::path::Path,
    doc_file: &std::path::Path,
) -> Vec<Violation> {
    use std::collections::BTreeSet;
    let mut out = Vec::new();
    let v = |file: &std::path::Path, line: usize, message: String| Violation {
        file: file.to_path_buf(),
        line,
        rule: "spec-exhaustive",
        message,
    };
    let bits: BTreeSet<u8> = facts.declared.iter().map(|(_, b, _)| *b).collect();
    if bits.len() != facts.declared.len() {
        let (n, b, line) = facts
            .declared
            .iter()
            .find(|(_, b, _)| facts.declared.iter().filter(|(_, b2, _)| b2 == b).count() > 1)
            .expect("duplicate exists");
        out.push(v(
            src_file,
            *line,
            format!("presence bit {b} is declared more than once (at {n})"),
        ));
    }
    for (name, bit, line) in &facts.declared {
        if !facts.encode_sites.contains(name) {
            out.push(v(
                src_file,
                *line,
                format!("presence bit {name} (bit {bit}) has no encode site (`flags |= {name}`)"),
            ));
        }
        if !facts.decode_sites.contains(name) {
            out.push(v(
                src_file,
                *line,
                format!("presence bit {name} (bit {bit}) has no decode site (`flags & {name}`)"),
            ));
        }
    }
    match doc_rows {
        None => {
            if !facts.declared.is_empty() {
                out.push(v(
                    doc_file,
                    1,
                    format!(
                        "doc is missing the {PRESENCE_BITS_BEGIN} … {PRESENCE_BITS_END} table \
                         for the declared presence bits"
                    ),
                ));
            }
        }
        Some(rows) => {
            let declared: BTreeSet<(&str, u8)> = facts
                .declared
                .iter()
                .map(|(n, b, _)| (n.as_str(), *b))
                .collect();
            let doc_set: BTreeSet<(&str, u8)> =
                rows.iter().map(|(n, b, _)| (n.as_str(), *b)).collect();
            for (n, b, line) in rows {
                if !declared.contains(&(n.as_str(), *b)) {
                    out.push(v(
                        doc_file,
                        *line,
                        format!("doc table row {n} = bit {b} does not match any declared bit"),
                    ));
                }
            }
            for (n, b, line) in &facts.declared {
                if !doc_set.contains(&(n.as_str(), *b)) {
                    out.push(v(
                        src_file,
                        *line,
                        format!(
                            "presence bit {n} (bit {b}) has no row in the doc's PRESENCE_BITS \
                             table"
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Run the exhaustiveness checks over a repo root: DFR1 RPC kinds
/// (`rpc.rs` ↔ `docs/WIRE_FORMAT.md`), DFW1 presence bits (`wire.rs` ↔
/// `docs/WIRE_FORMAT.md`) and DFSPANS1 presence bits (`persist.rs` ↔
/// `docs/SEGMENT_FORMAT.md`; none declared today, so the scan simply
/// guards the future).
pub fn check_exhaustiveness(root: &std::path::Path) -> Result<Vec<Violation>, String> {
    let read = |rel: &str| {
        let path = root.join(rel);
        std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))
    };
    let rpc_src = read("crates/df-types/src/rpc.rs")?;
    let wire_src = read("crates/df-types/src/wire.rs")?;
    let persist_src = read("crates/df-storage/src/persist.rs")?;
    let wire_doc = read("docs/WIRE_FORMAT.md")?;
    let segment_doc = read("docs/SEGMENT_FORMAT.md")?;

    let rpc_path = std::path::Path::new("crates/df-types/src/rpc.rs");
    let wire_path = std::path::Path::new("crates/df-types/src/wire.rs");
    let persist_path = std::path::Path::new("crates/df-storage/src/persist.rs");
    let wire_doc_path = std::path::Path::new("docs/WIRE_FORMAT.md");
    let segment_doc_path = std::path::Path::new("docs/SEGMENT_FORMAT.md");

    let mut out = check_rpc_kinds(
        &parse_rpc_kinds_source(&rpc_src),
        parse_numbered_doc_table(&wire_doc, RPC_KINDS_BEGIN, RPC_KINDS_END).as_deref(),
        rpc_path,
        wire_doc_path,
    );
    out.extend(check_flags(
        &parse_flags_source(&wire_src),
        parse_numbered_doc_table(&wire_doc, PRESENCE_BITS_BEGIN, PRESENCE_BITS_END).as_deref(),
        wire_path,
        wire_doc_path,
    ));
    out.extend(check_flags(
        &parse_flags_source(&persist_src),
        parse_numbered_doc_table(&segment_doc, PRESENCE_BITS_BEGIN, PRESENCE_BITS_END).as_deref(),
        persist_path,
        segment_doc_path,
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC_FIXTURE: &str = r#"
/// The frame magic.
pub const WIRE_MAGIC: &[u8; 4] = b"DFW1";
/// The format version.
pub const WIRE_VERSION: u8 = 1;
/// Normative field order.
pub const FIELD_ORDER: [&str; 3] = [
    "span_id", "flags",
    "kind_tap",
];
"#;

    const DOC_FIXTURE: &str = r#"
# DFW1

**Magic:** `DFW1` (4 ASCII bytes)

**Version:** `1`

<!-- FIELD_ORDER:BEGIN -->
| # | Field | Encoding |
|---|-------|----------|
| 0 | `span_id` | varint u64 |
| 1 | `flags` | varint u32 |
| 2 | `kind_tap` | byte |
<!-- FIELD_ORDER:END -->
"#;

    #[test]
    fn fixtures_parse_and_agree() {
        let code = parse_source(SRC_FIXTURE).expect("source parses");
        let doc = parse_doc(DOC_FIXTURE).expect("doc parses");
        assert_eq!(code.magic, "DFW1");
        assert_eq!(code.version, 1);
        assert_eq!(code.fields, vec!["span_id", "flags", "kind_tap"]);
        assert_eq!(code, doc);
        assert!(diff(&code, &doc).is_empty());
    }

    #[test]
    fn seeded_version_mismatch_fails() {
        let code = parse_source(SRC_FIXTURE).unwrap();
        let doc = parse_doc(&DOC_FIXTURE.replace("**Version:** `1`", "**Version:** `2`")).unwrap();
        let d = diff(&code, &doc);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("version mismatch"), "{d:?}");
    }

    #[test]
    fn seeded_magic_mismatch_fails() {
        let code = parse_source(&SRC_FIXTURE.replace("b\"DFW1\"", "b\"DFW2\"")).unwrap();
        let doc = parse_doc(DOC_FIXTURE).unwrap();
        assert!(diff(&code, &doc)[0].contains("magic mismatch"));
    }

    #[test]
    fn seeded_field_rename_and_reorder_fail() {
        let code = parse_source(SRC_FIXTURE).unwrap();
        // Rename.
        let doc = parse_doc(&DOC_FIXTURE.replace("`flags`", "`flag_bits`")).unwrap();
        assert!(diff(&code, &doc).iter().any(|m| m.contains("field 1")));
        // Reorder (swap rows 0 and 1).
        let doc = parse_doc(
            &DOC_FIXTURE
                .replace(
                    "| 0 | `span_id` | varint u64 |",
                    "| 0 | `flags` | varint u32 |",
                )
                .replace(
                    "| 1 | `flags` | varint u32 |",
                    "| 1 | `span_id` | varint u64 |",
                ),
        )
        .unwrap();
        let d = diff(&code, &doc);
        assert!(d.iter().any(|m| m.contains("field 0")), "{d:?}");
        // Dropped row.
        let doc = parse_doc(&DOC_FIXTURE.replace("| 2 | `kind_tap` | byte |\n", "")).unwrap();
        assert!(diff(&code, &doc)
            .iter()
            .any(|m| m.contains("field count mismatch")));
    }

    #[test]
    fn missing_markers_or_lines_are_errors() {
        assert!(parse_doc("# empty").is_err());
        assert!(parse_source("// nothing here").is_err());
        // A doc with magic/version but no marked table yields no fields —
        // caught as a count mismatch rather than a parse error.
        let doc = parse_doc("**Magic:** `DFW1`\n**Version:** `1`\n").unwrap();
        assert!(doc.fields.is_empty());
    }

    const SEG_SRC_FIXTURE: &str = r#"
/// The segment magic.
pub const SPAN_SEGMENT_MAGIC: &[u8; 8] = b"DFSPANS1";
/// The segment version.
pub const SPAN_SEGMENT_VERSION: u8 = 1;
/// Normative section order.
pub const SPAN_SEGMENT_SECTIONS: [&str; 4] = ["spans", "rows", "time_index", "assoc_index"];
/// Normative association-index order.
pub const SPAN_SEGMENT_ASSOC_INDEXES: [&str; 5] = [
    "systrace",
    "pseudo_thread",
    "x_request",
    "tcp_seq",
    "otel_trace",
];
"#;

    const SEG_DOC_FIXTURE: &str = r#"
# DFSPANS1

**Segment magic:** `DFSPANS1` (8 ASCII bytes)

**Segment version:** `1`

<!-- SEGMENT_SECTIONS:BEGIN -->
| # | Section | Contents |
|---|---------|----------|
| 0 | `spans` | DFW1 batch |
| 1 | `rows` | u32 row numbers |
| 2 | `time_index` | (u64, u32) pairs |
| 3 | `assoc_index` | five key tables |
<!-- SEGMENT_SECTIONS:END -->

<!-- SEGMENT_ASSOC_INDEXES:BEGIN -->
| # | Index |
|---|-------|
| 0 | `systrace` |
| 1 | `pseudo_thread` |
| 2 | `x_request` |
| 3 | `tcp_seq` |
| 4 | `otel_trace` |
<!-- SEGMENT_ASSOC_INDEXES:END -->
"#;

    #[test]
    fn segment_fixtures_parse_and_agree() {
        let code = parse_segment_source(SEG_SRC_FIXTURE).expect("source parses");
        let doc = parse_segment_doc(SEG_DOC_FIXTURE).expect("doc parses");
        assert_eq!(code.magic, "DFSPANS1");
        assert_eq!(code.version, 1);
        assert_eq!(
            code.sections,
            ["spans", "rows", "time_index", "assoc_index"]
        );
        assert_eq!(code.assoc_indexes.len(), 5);
        assert_eq!(code, doc);
        assert!(diff_segment(&code, &doc).is_empty());
    }

    #[test]
    fn seeded_segment_mismatches_fail() {
        let code = parse_segment_source(SEG_SRC_FIXTURE).unwrap();
        // Magic drift.
        let doc = parse_segment_doc(&SEG_DOC_FIXTURE.replace("`DFSPANS1`", "`DFSPANS2`")).unwrap();
        assert!(diff_segment(&code, &doc)[0].contains("segment magic mismatch"));
        // Version drift.
        let doc = parse_segment_doc(
            &SEG_DOC_FIXTURE.replace("**Segment version:** `1`", "**Segment version:** `2`"),
        )
        .unwrap();
        assert!(diff_segment(&code, &doc)[0].contains("segment version mismatch"));
        // Section reorder.
        let doc = parse_segment_doc(
            &SEG_DOC_FIXTURE
                .replace(
                    "| 1 | `rows` | u32 row numbers |",
                    "| 1 | `time_index` | x |",
                )
                .replace(
                    "| 2 | `time_index` | (u64, u32) pairs |",
                    "| 2 | `rows` | x |",
                ),
        )
        .unwrap();
        assert!(diff_segment(&code, &doc)
            .iter()
            .any(|m| m.contains("section 1 mismatch")));
        // Dropped assoc-index row.
        let doc =
            parse_segment_doc(&SEG_DOC_FIXTURE.replace("| 4 | `otel_trace` |\n", "")).unwrap();
        assert!(diff_segment(&code, &doc)
            .iter()
            .any(|m| m.contains("assoc index count mismatch")));
        // Missing normative lines are parse errors.
        assert!(parse_segment_doc("# empty").is_err());
        assert!(parse_segment_source("// nothing").is_err());
    }

    const RPC_SRC_FIXTURE: &str = r#"
pub const RPC_KINDS: &[(&str, u8)] = &[("SpanBatch", 1), ("SpanBatchAck", 2)];

impl RpcBody {
    pub fn kind(&self) -> u8 {
        match self {
            RpcBody::SpanBatch { .. } => 1,
            RpcBody::SpanBatchAck { .. } => 2,
        }
    }
}

fn decode_body(kind: u8, body: &[u8]) -> Result<RpcBody, RpcDecodeError> {
    let decoded = match kind {
        1 => RpcBody::SpanBatch {},
        2 => RpcBody::SpanBatchAck {},
        other => return Err(RpcDecodeError::UnknownKind(other)),
    };
    Ok(decoded)
}
"#;

    const RPC_DOC_FIXTURE: &str = r#"
<!-- RPC_KINDS:BEGIN -->
| kind | body | meaning |
|------|------|---------|
| 1 | `SpanBatch` | spans |
| 2 | `SpanBatchAck` | ack |
<!-- RPC_KINDS:END -->
"#;

    fn rpc_check(src: &str, doc: &str) -> Vec<Violation> {
        check_rpc_kinds(
            &parse_rpc_kinds_source(src),
            parse_numbered_doc_table(doc, RPC_KINDS_BEGIN, RPC_KINDS_END).as_deref(),
            std::path::Path::new("rpc.rs"),
            std::path::Path::new("doc.md"),
        )
    }

    #[test]
    fn rpc_kind_fixture_parses_and_agrees() {
        let facts = parse_rpc_kinds_source(RPC_SRC_FIXTURE);
        assert_eq!(facts.declared.len(), 2, "{facts:?}");
        assert_eq!(facts.kind_arms.len(), 2, "{facts:?}");
        assert_eq!(facts.decode_arms.len(), 2, "{facts:?}");
        assert!(rpc_check(RPC_SRC_FIXTURE, RPC_DOC_FIXTURE).is_empty());
    }

    #[test]
    fn undeclared_decode_arm_and_missing_doc_row_fail() {
        // Add decode arm 3 with no declaration.
        let src = RPC_SRC_FIXTURE.replace(
            "2 => RpcBody::SpanBatchAck {},",
            "2 => RpcBody::SpanBatchAck {},\n        3 => RpcBody::SpanBatchAck {},",
        );
        let v = rpc_check(&src, RPC_DOC_FIXTURE);
        assert!(
            v.iter().any(|v| v.message.contains("arm for kind 3")),
            "{v:?}"
        );

        // Drop a doc row.
        let doc = RPC_DOC_FIXTURE.replace("| 2 | `SpanBatchAck` | ack |\n", "");
        let v = rpc_check(RPC_SRC_FIXTURE, &doc);
        assert!(
            v.iter()
                .any(|v| v.message.contains("no row in the doc's RPC_KINDS table")),
            "{v:?}"
        );

        // Declared kind without a decode arm.
        let src = RPC_SRC_FIXTURE.replace("2 => RpcBody::SpanBatchAck {},\n", "");
        let v = rpc_check(&src, RPC_DOC_FIXTURE);
        assert!(
            v.iter()
                .any(|v| v.message.contains("decode_body has no arm")),
            "{v:?}"
        );

        // Missing the table entirely.
        let v = rpc_check(RPC_SRC_FIXTURE, "# no table");
        assert!(v.iter().any(|v| v.message.contains("missing")), "{v:?}");
        assert!(v.iter().all(|v| v.rule == "spec-exhaustive"));
    }

    const FLAGS_SRC_FIXTURE: &str = "\
const F_A: u32 = 1 << 0;\n\
const F_B: u32 = 1 << 1;\n\
fn encode(flags: &mut u32) { *flags |= F_A; *flags |= F_B; }\n\
fn decode(flags: u32) -> (bool, bool) { (flags & F_A != 0, flags & F_B != 0) }\n";

    const FLAGS_DOC_FIXTURE: &str = "\
<!-- PRESENCE_BITS:BEGIN -->\n\
| bit | const | field |\n\
|-----|-------|-------|\n\
| 0 | `F_A` | a |\n\
| 1 | `F_B` | b |\n\
<!-- PRESENCE_BITS:END -->\n";

    fn flags_check(src: &str, doc: &str) -> Vec<Violation> {
        check_flags(
            &parse_flags_source(src),
            parse_numbered_doc_table(doc, PRESENCE_BITS_BEGIN, PRESENCE_BITS_END).as_deref(),
            std::path::Path::new("wire.rs"),
            std::path::Path::new("doc.md"),
        )
    }

    #[test]
    fn presence_bit_fixture_parses_and_agrees() {
        let facts = parse_flags_source(FLAGS_SRC_FIXTURE);
        assert_eq!(facts.declared.len(), 2, "{facts:?}");
        assert!(flags_check(FLAGS_SRC_FIXTURE, FLAGS_DOC_FIXTURE).is_empty());
    }

    #[test]
    fn seeded_presence_bit_violations_fail() {
        // A declared bit with no encode site.
        let src = FLAGS_SRC_FIXTURE.replace("*flags |= F_B; ", "");
        let v = flags_check(&src, FLAGS_DOC_FIXTURE);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("no encode site"), "{v:?}");
        assert_eq!(v[0].line, 2);

        // No decode site.
        let src = FLAGS_SRC_FIXTURE.replace("flags & F_B != 0", "false");
        let v = flags_check(&src, FLAGS_DOC_FIXTURE);
        assert!(v[0].message.contains("no decode site"), "{v:?}");

        // Doc row with the wrong bit number.
        let doc = FLAGS_DOC_FIXTURE.replace("| 1 | `F_B` | b |", "| 2 | `F_B` | b |");
        let v = flags_check(FLAGS_SRC_FIXTURE, &doc);
        assert!(
            v.iter().any(|v| v.message.contains("does not match")),
            "{v:?}"
        );
        assert!(
            v.iter().any(|v| v.message.contains("no row in the doc")),
            "{v:?}"
        );

        // Duplicate bit value.
        let src = FLAGS_SRC_FIXTURE.replace("const F_B: u32 = 1 << 1;", "const F_B: u32 = 1 << 0;");
        let v = flags_check(&src, FLAGS_DOC_FIXTURE);
        assert!(
            v.iter().any(|v| v.message.contains("more than once")),
            "{v:?}"
        );

        // No declared bits + no table is fine (DFSPANS1 today).
        assert!(flags_check("fn f() {}", "# no table").is_empty());
        // Declared bits with no table is not.
        let v = flags_check(FLAGS_SRC_FIXTURE, "# no table");
        assert!(v.iter().any(|v| v.message.contains("missing")), "{v:?}");
    }

    /// The real tree is in sync (the same check ci.sh gates on, run from
    /// the workspace so `cargo test` alone catches drift).
    #[test]
    fn shipped_spec_matches_shipped_codec() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root");
        let mismatches = check_tree(&root).expect("both sides parse");
        assert!(
            mismatches.is_empty(),
            "spec drift:\n{}",
            mismatches.join("\n")
        );
        let v = check_exhaustiveness(&root).expect("exhaustiveness scan runs");
        assert!(
            v.is_empty(),
            "exhaustiveness drift:\n{}",
            v.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
