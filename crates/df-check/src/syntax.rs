//! Structural layer for `df-audit`: a minimal Rust lexer and a
//! brace-matched item scanner, built on the same scrubbed-source
//! foundation as [`crate::lint`] (no rustc internals, std-only).
//!
//! The lexer turns a [`crate::lint::scrub`]-ed source into a flat token
//! stream (identifiers, numbers, punctuation — multi-character operators
//! like `::`, `->`, `+=` are single tokens, which is what disambiguates
//! a binary minus from the arrow in `fn f() -> T`). The item scanner
//! attributes byte ranges to named `fn` items, tracking the attributes
//! on each item so passes can tell test code (`#[test]`, `#[cfg(test)]`)
//! from production code.
//!
//! This is deliberately *not* a Rust parser: it understands exactly as
//! much structure as the audit passes need — token classes, brace
//! nesting, and item boundaries — and nothing more. The passes built on
//! it are heuristic by design; the runtime cross-check in
//! [`crate::audit`] is what keeps the heuristics honest.

use crate::lint::scrub;

/// Token classes produced by [`lex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `self`).
    Ident,
    /// Numeric literal (`42`, `0xFF`, `1_000`).
    Number,
    /// Punctuation; multi-character operators are one token (`::`, `->`,
    /// `=>`, `..=`, `+=`, `<<`, …).
    Punct,
}

/// One token of a scrubbed source file.
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    pub kind: TokenKind,
    pub text: &'a str,
    /// Byte offset in the scrubbed source (scrubbing preserves offsets,
    /// so this indexes the original file too).
    pub off: usize,
}

/// Multi-character operators, longest first so `..=` wins over `..`.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "..", "<<", ">>", "==", "!=", "<=", ">=", "&&",
    "||", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Rust keywords (strict + reserved-in-use); identifiers in this set are
/// never treated as lock names, call targets, or index receivers.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while",
];

/// Is `s` a Rust keyword?
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lex a scrubbed source file into tokens. Lifetimes are dropped whole
/// (`'a` produces no token — otherwise `&'a [u8]` in a signature would
/// read as identifier-then-index); string/char/comment contents were
/// already blanked by the scrubber, so a surviving tick is always a
/// lifetime.
pub fn lex(scrubbed: &str) -> Vec<Token<'_>> {
    let b = scrubbed.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if (c as char).is_whitespace() {
            i += 1;
            continue;
        }
        if c == b'\'' {
            i += 1;
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            // Numbers swallow alphanumerics and `_` (covers 0xFF, 1u32,
            // 1_000, 2.5 without the dot — `2.5` lexes as Number(2),
            // Punct(.), Number(5), which is fine for our purposes: a
            // float never carries a length).
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            toks.push(Token {
                kind: TokenKind::Number,
                text: &scrubbed[start..i],
                off: start,
            });
            continue;
        }
        if is_ident_byte(c) {
            let start = i;
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            toks.push(Token {
                kind: TokenKind::Ident,
                text: &scrubbed[start..i],
                off: start,
            });
            continue;
        }
        let mut matched = false;
        for op in MULTI_PUNCT {
            let ob = op.as_bytes();
            if b.len() - i >= ob.len() && &b[i..i + ob.len()] == ob {
                toks.push(Token {
                    kind: TokenKind::Punct,
                    text: &scrubbed[i..i + ob.len()],
                    off: i,
                });
                i += ob.len();
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        toks.push(Token {
            kind: TokenKind::Punct,
            text: &scrubbed[i..i + 1],
            off: i,
        });
        i += 1;
    }
    toks
}

/// A named `fn` item found by [`scan_items`].
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Byte offset of the name token.
    pub name_off: usize,
    /// Token-index range of the body, *exclusive* of the outer braces.
    pub body_tokens: (usize, usize),
    /// Byte range of the body, inclusive of the outer braces.
    pub body_bytes: (usize, usize),
    /// True when the item carries `#[test]` / `#[cfg(test)]` directly or
    /// sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

impl FnItem {
    /// Does this item's body contain byte offset `off`?
    pub fn contains(&self, off: usize) -> bool {
        off >= self.body_bytes.0 && off < self.body_bytes.1
    }
}

/// Byte ranges of `#[cfg(test)] …{…}` regions, re-exported from the lint
/// layer for passes that work on offsets rather than items.
pub fn test_regions(scrubbed: &str) -> Vec<(usize, usize)> {
    crate::lint::test_regions(scrubbed)
}

/// Scan a token stream for `fn` items. Nested `fn`s each get their own
/// entry; [`innermost_fn`] resolves a byte offset to the tightest one.
pub fn scan_items(toks: &[Token<'_>], scrubbed: &str) -> Vec<FnItem> {
    let tests = test_regions(scrubbed);
    let in_test_region = |off: usize| -> bool { tests.iter().any(|&(a, z)| off >= a && off <= z) };
    let mut items = Vec::new();
    // Attributes seen since the last item-ish token, as flattened text
    // (`cfg(test)`, `test`, `track_caller`). Reset on any `;`/`{`/`}` at
    // the scan level so expression `#[…]` noise cannot leak across items.
    let mut pending_attrs: Vec<String> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = toks[i];
        if t.kind == TokenKind::Punct && t.text == "#" {
            // `#[…]` or `#![…]`: collect the bracketed tokens.
            let mut j = i + 1;
            if j < toks.len() && toks[j].text == "!" {
                j += 1;
            }
            if j < toks.len() && toks[j].text == "[" {
                let mut depth = 0usize;
                let start = j;
                while j < toks.len() {
                    match toks[j].text {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let flat: String = toks[start + 1..j.min(toks.len())]
                    .iter()
                    .map(|t| t.text)
                    .collect();
                pending_attrs.push(flat);
                i = j + 1;
                continue;
            }
        }
        if t.kind == TokenKind::Ident && t.text == "fn" {
            // `fn` then the name; skip the signature (which may contain
            // parens, generics, `->`, `where`) to the first `{` or `;` at
            // bracket depth zero.
            if let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
                let mut j = i + 2;
                let mut paren = 0isize;
                let mut bracket = 0isize;
                let body_open = loop {
                    if j >= toks.len() {
                        break None;
                    }
                    match toks[j].text {
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        "[" => bracket += 1,
                        "]" => bracket -= 1,
                        "{" if paren == 0 && bracket == 0 => break Some(j),
                        ";" if paren == 0 && bracket == 0 => break None,
                        _ => {}
                    }
                    j += 1;
                };
                if let Some(open) = body_open {
                    let mut depth = 0usize;
                    let mut k = open;
                    while k < toks.len() {
                        match toks[k].text {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    let close = k.min(toks.len() - 1);
                    let attr_test = pending_attrs
                        .iter()
                        .any(|a| a == "test" || a.contains("cfg(test"));
                    items.push(FnItem {
                        name: name_tok.text.to_string(),
                        name_off: name_tok.off,
                        body_tokens: (open + 1, close),
                        body_bytes: (toks[open].off, toks[close].off + 1),
                        in_test: attr_test || in_test_region(name_tok.off),
                    });
                }
                pending_attrs.clear();
                // Continue *into* the signature/body so nested fns are
                // found too.
                i += 2;
                continue;
            }
        }
        if matches!(t.text, ";" | "{" | "}") {
            pending_attrs.clear();
        }
        i += 1;
    }
    items
}

/// The innermost `fn` item whose body contains byte offset `off`.
pub fn innermost_fn(items: &[FnItem], off: usize) -> Option<&FnItem> {
    items
        .iter()
        .filter(|f| f.contains(off))
        .min_by_key(|f| f.body_bytes.1 - f.body_bytes.0)
}

/// Convenience: scrub + lex in one call, returning the scrubbed source
/// (token texts borrow from it).
pub fn scrub_source(source: &str) -> String {
    scrub(source)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        let s = scrub(src);
        lex(&s).iter().map(|t| t.text.to_string()).collect()
    }

    #[test]
    fn lexes_multi_char_operators_as_single_tokens() {
        let t = texts("fn f(a: &mut usize) -> u32 { *a += 1; a::b(c..=d) }");
        assert!(t.contains(&"->".to_string()));
        assert!(t.contains(&"+=".to_string()));
        assert!(t.contains(&"::".to_string()));
        assert!(t.contains(&"..=".to_string()));
        // `->` must not produce a lone binary minus.
        assert!(!t.contains(&"-".to_string()));
    }

    #[test]
    fn lexes_numbers_and_idents() {
        let s = scrub("let x1 = 0xFF + 1_000;");
        let toks = lex(&s);
        let kinds: Vec<_> = toks.iter().map(|t| (t.kind, t.text)).collect();
        assert!(kinds.contains(&(TokenKind::Ident, "x1")));
        assert!(kinds.contains(&(TokenKind::Number, "0xFF")));
        assert!(kinds.contains(&(TokenKind::Number, "1_000")));
    }

    #[test]
    fn scan_finds_fns_and_bodies() {
        let src = "pub fn outer(x: u32) -> u32 { inner(x) }\nfn inner(x: u32) -> u32 { x + 1 }";
        let s = scrub(src);
        let toks = lex(&s);
        let items = scan_items(&toks, &s);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "outer");
        assert_eq!(items[1].name, "inner");
        assert!(!items[0].in_test);
        let call_off = src.find("inner(x)").unwrap();
        assert_eq!(innermost_fn(&items, call_off).unwrap().name, "outer");
    }

    #[test]
    fn fn_signature_with_generics_and_where_clause() {
        let src = "fn g<T: Clone>(v: Vec<[u8; 4]>) -> Option<T> where T: Default { None }";
        let s = scrub(src);
        let items = scan_items(&lex(&s), &s);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "g");
        let body = &src[items[0].body_bytes.0..items[0].body_bytes.1];
        assert_eq!(body, "{ None }");
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "trait T { fn decl(&self) -> u32; fn with_default(&self) -> u32 { 1 } }";
        let s = scrub(src);
        let items = scan_items(&lex(&s), &s);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "with_default");
    }

    #[test]
    fn test_attribute_and_cfg_test_region_mark_items() {
        let src = "#[test]\nfn t() { assert!(true) }\n\
                   #[cfg(test)]\nmod tests { fn helper() {} }\n\
                   fn prod() {}";
        let s = scrub(src);
        let items = scan_items(&lex(&s), &s);
        let by_name = |n: &str| items.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("t").in_test);
        assert!(by_name("helper").in_test);
        assert!(!by_name("prod").in_test);
    }

    #[test]
    fn nested_fn_resolution_picks_the_innermost() {
        let src = "fn outer() { fn inner() { let x = 1; } inner(); }";
        let s = scrub(src);
        let items = scan_items(&lex(&s), &s);
        assert_eq!(items.len(), 2);
        let off = src.find("let x").unwrap();
        assert_eq!(innermost_fn(&items, off).unwrap().name, "inner");
    }
}
