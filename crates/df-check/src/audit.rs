//! `df-audit`: structure-aware static analysis passes over the workspace.
//!
//! Three passes, all built on the [`crate::syntax`] token/item layer:
//!
//! 1. **Panic-totality** (`decode-panic`, `decode-index`,
//!    `decode-arith`): the designated total-decode modules
//!    (`df_types::wire`, `df_types::rpc`, `df_storage::persist`) sit in
//!    the ingest path of every traced service, so a panicking decoder is
//!    an outage multiplier. Outside `#[cfg(test)]` code those files may
//!    not call `unwrap`/`expect`/`panic!`-family macros, may not index
//!    slices directly (`buf[i]`, `&buf[a..b]`), and may not do unchecked
//!    `+`/`-`/`*` arithmetic on length-typed expressions — use
//!    `get(..)`, `split_first`, `checked_*`/`saturating_*` instead. A
//!    `// df-audit: allow(<rule>) — <justification>` comment on the
//!    violating line (or the line above) suppresses one rule, and fails
//!    the audit itself when the justification is empty.
//!
//! 2. **Static lock-order** (`lock-order`): per-function
//!    lock-acquisition summaries are extracted from
//!    `df_check::sync` shim call sites (`.lock()`, `.read()`,
//!    `.write()`), guards are tracked through `let` bindings and block
//!    scopes, and the summaries are propagated over an intra-crate
//!    call-graph approximation into a global lock-order graph. Any
//!    AB/BA cycle in that graph fails the audit. The graph is also the
//!    static half of a *cross-check*: every lock edge the runtime
//!    scheduler records during the model suite must appear here (see
//!    [`check_runtime_edges`]); an unpredicted edge means the static
//!    analysis has a blind spot and fails CI.
//!
//! 3. **Spec exhaustiveness** (`spec-exhaustive`): every DFR1 RPC kind
//!    and every DFW1 presence bit must have an encode site, a decode
//!    arm, and a row in the normative spec tables — implemented in
//!    [`crate::spec`], invoked from [`audit_tree`].
//!
//! The analyses are deliberately heuristic (no rustc internals, no type
//! information): names are resolved within one crate, method names that
//! collide with std collection methods are never treated as calls, and
//! cross-crate edges are invisible. The runtime cross-check is what
//! keeps those approximations honest — a real nesting the static pass
//! misses shows up as a runtime edge with no static counterpart.

use crate::lint::Violation;
use crate::syntax::{self, is_keyword, FnItem, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Files subject to the panic-totality pass, relative to the repo root:
/// the wire codec, the RPC envelope/body codec, and the segment codec —
/// everything that parses bytes off the network or disk.
pub const DECODE_TOTAL_FILES: &[&str] = &[
    "crates/df-types/src/wire.rs",
    "crates/df-types/src/rpc.rs",
    "crates/df-storage/src/persist.rs",
];

/// Rules a `df-audit: allow(...)` directive may name.
pub const ALLOWABLE_RULES: &[&str] = &["decode-panic", "decode-index", "decode-arith"];

/// Identifiers treated as length-typed for the `decode-arith` rule.
const LEN_IDENTS: &[&str] = &[
    "cap",
    "count",
    "idx",
    "index",
    "len",
    "n",
    "off",
    "offset",
    "pos",
    "remaining",
    "size",
];

/// Method calls that return a length directly.
const LEN_CALLS: &[&str] = &["capacity", "len", "remaining"];

/// Macros whose invocation can panic.
const PANIC_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "panic",
    "todo",
    "unimplemented",
    "unreachable",
];

/// Method names never treated as intra-crate calls by the lock-order
/// pass: std collection/iterator/option vocabulary that would otherwise
/// collide with first-party function names (`get`, `insert`, `query`
/// receivers are fine — the *name* is what must not resolve) and
/// fabricate edges. A real nesting reached only through such a name is
/// caught by the runtime cross-check instead.
const CALL_DENYLIST: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "binary_search_by",
    "bytes",
    "capacity",
    "chain",
    "chars",
    "checked_add",
    "checked_mul",
    "checked_sub",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "dedup",
    "default",
    "drain",
    "drop",
    "elapsed",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "extend",
    "extend_from_slice",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "for_each",
    "from",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "lock",
    "map",
    "map_err",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "new",
    "next",
    "notify_all",
    "notify_one",
    "now",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "push",
    "push_str",
    "read",
    "recv",
    "remove",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "rsplit",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "send",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "spawn",
    "split",
    "split_at",
    "split_first",
    "split_last",
    "splitn",
    "starts_with",
    "sum",
    "swap",
    "take",
    "then",
    "then_some",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "try_from",
    "try_into",
    "try_lock",
    "try_recv",
    "try_send",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "wait",
    "windows",
    "with_capacity",
    "wrapping_add",
    "wrapping_sub",
    "write",
    "zip",
];

fn line_of(src: &str, offset: usize) -> usize {
    src.as_bytes()[..offset]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

// ---------------------------------------------------------------------
// Allow directives
// ---------------------------------------------------------------------

/// One parsed `// df-audit: allow(<rule>) — <justification>` directive.
#[derive(Debug)]
struct Allow {
    rule: String,
    line: usize,
    justified: bool,
}

/// Parse every allow directive in the *original* (unscrubbed) source.
/// Malformed directives and empty justifications are violations in their
/// own right — an unexplained escape is worse than none.
fn parse_allows(file: &Path, source: &str) -> (Vec<Allow>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut violations = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let Some(at) = raw.find("df-audit:") else {
            continue;
        };
        let rest = raw[at + "df-audit:".len()..].trim_start();
        let bad = |message: String| Violation {
            file: file.to_path_buf(),
            line,
            rule: "audit-allow",
            message,
        };
        let Some(args) = rest.strip_prefix("allow(") else {
            violations.push(bad(
                "malformed df-audit directive; expected `df-audit: allow(<rule>) — \
                 <justification>`"
                    .to_string(),
            ));
            continue;
        };
        let Some(close) = args.find(')') else {
            violations.push(bad("unclosed df-audit: allow( directive".to_string()));
            continue;
        };
        let rule = args[..close].trim().to_string();
        if !ALLOWABLE_RULES.contains(&rule.as_str()) {
            violations.push(bad(format!(
                "unknown rule {rule:?} in df-audit allow; known rules: {ALLOWABLE_RULES:?}"
            )));
            continue;
        }
        let justification = args[close + 1..]
            .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':'))
            .trim();
        let justified = !justification.is_empty();
        if !justified {
            violations.push(bad(format!(
                "df-audit allow({rule}) has an empty justification; explain why the rule \
                 does not apply here"
            )));
        }
        allows.push(Allow {
            rule,
            line,
            justified,
        });
    }
    (allows, violations)
}

fn allowed(allows: &[Allow], rule: &str, line: usize) -> bool {
    allows
        .iter()
        .any(|a| a.justified && a.rule == rule && (a.line == line || a.line + 1 == line))
}

// ---------------------------------------------------------------------
// Pass 1: panic-totality
// ---------------------------------------------------------------------

/// Audit one designated total-decode file. `#[cfg(test)]` regions and
/// `#[test]` items are exempt; justified allow directives suppress
/// individual findings.
pub fn audit_decode_source(file: &Path, source: &str) -> Vec<Violation> {
    let (allows, mut out) = parse_allows(file, source);
    let scrubbed = syntax::scrub_source(source);
    let toks = syntax::lex(&scrubbed);
    let items = syntax::scan_items(&toks, &scrubbed);
    let tests = syntax::test_regions(&scrubbed);

    let exempt = |off: usize| -> bool {
        tests.iter().any(|&(a, z)| off >= a && off <= z)
            || syntax::innermost_fn(&items, off).is_some_and(|f| f.in_test)
    };
    let mut push = |rule: &'static str, off: usize, message: String| {
        let line = line_of(&scrubbed, off);
        if !allowed(&allows, rule, line) {
            out.push(Violation {
                file: file.to_path_buf(),
                line,
                rule,
                message,
            });
        }
    };

    for (i, t) in toks.iter().enumerate() {
        if exempt(t.off) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| toks[p]);
        let next = toks.get(i + 1).copied();
        match t.kind {
            TokenKind::Ident => {
                let is_call = next.is_some_and(|n| n.text == "(");
                let is_method = prev.is_some_and(|p| p.text == ".");
                if is_method && is_call && matches!(t.text, "unwrap" | "expect") {
                    push(
                        "decode-panic",
                        t.off,
                        format!(
                            ".{}() in a total-decode module can panic on malformed input; \
                             return the decode error instead",
                            t.text
                        ),
                    );
                }
                if PANIC_MACROS.contains(&t.text) && next.is_some_and(|n| n.text == "!") {
                    push(
                        "decode-panic",
                        t.off,
                        format!(
                            "{}! in a total-decode module; decoders must be total — return \
                             an error for every input",
                            t.text
                        ),
                    );
                }
            }
            TokenKind::Punct => {
                // Direct indexing: `expr[...]` where expr ends in an
                // identifier, `)` or `]`. `#[attr]`, `![...]`, types like
                // `[u8; 4]` and `vec![…]` all fail the prefix test.
                if t.text == "[" {
                    let postfix = prev.is_some_and(|p| match p.kind {
                        TokenKind::Ident => !is_keyword(p.text),
                        _ => p.text == ")" || p.text == "]",
                    });
                    if postfix {
                        push(
                            "decode-index",
                            t.off,
                            "direct slice/array indexing can panic on malformed input; use \
                             .get(..) / .split_first() / fixed-size reads"
                                .to_string(),
                        );
                    }
                }
                if matches!(t.text, "+" | "-" | "*") {
                    let binary = prev.is_some_and(|p| match p.kind {
                        TokenKind::Ident => !is_keyword(p.text),
                        TokenKind::Number => true,
                        TokenKind::Punct => p.text == ")" || p.text == "]",
                    });
                    if binary && (len_operand_left(&toks, i) || len_operand_right(&toks, i)) {
                        push(
                            "decode-arith",
                            t.off,
                            format!(
                                "unchecked `{}` on a length-typed expression can overflow on \
                                 malformed input; use checked_*/saturating_* arithmetic",
                                t.text
                            ),
                        );
                    }
                }
                if matches!(t.text, "+=" | "-=" | "*=") {
                    let lhs_len = prev.is_some_and(|p| {
                        p.kind == TokenKind::Ident && LEN_IDENTS.contains(&p.text)
                    });
                    if lhs_len {
                        push(
                            "decode-arith",
                            t.off,
                            format!(
                                "unchecked `{}` on a length-typed variable can overflow on \
                                 malformed input; use checked_*/saturating_* arithmetic",
                                t.text
                            ),
                        );
                    }
                }
            }
            TokenKind::Number => {}
        }
    }
    out
}

/// Is the operand to the left of the operator at token index `i`
/// length-typed — a length-ish identifier or a `.len()`-style call?
fn len_operand_left(toks: &[Token<'_>], i: usize) -> bool {
    let Some(p) = i.checked_sub(1) else {
        return false;
    };
    match toks[p].kind {
        TokenKind::Ident => LEN_IDENTS.contains(&toks[p].text),
        TokenKind::Punct if toks[p].text == ")" => {
            // Walk back to the matching `(`; a call like `.len()` makes
            // the operand length-typed.
            let mut depth = 0isize;
            let mut j = p;
            loop {
                match toks[j].text {
                    ")" => depth += 1,
                    "(" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == 0 {
                    return false;
                }
                j -= 1;
            }
            j >= 2
                && toks[j - 1].kind == TokenKind::Ident
                && LEN_CALLS.contains(&toks[j - 1].text)
                && toks[j - 2].text == "."
        }
        _ => false,
    }
}

/// Is the operand to the right of the operator at token index `i`
/// length-typed?
fn len_operand_right(toks: &[Token<'_>], i: usize) -> bool {
    let Some(n) = toks.get(i + 1) else {
        return false;
    };
    if n.kind != TokenKind::Ident {
        return false;
    }
    if LEN_IDENTS.contains(&n.text) {
        return true;
    }
    // Follow a field/method chain: `rest.len()`, `self.buf.len()`.
    let mut j = i + 1;
    while toks.get(j + 1).is_some_and(|t| t.text == ".")
        && toks.get(j + 2).is_some_and(|t| t.kind == TokenKind::Ident)
    {
        j += 2;
    }
    j > i + 1 && LEN_CALLS.contains(&toks[j].text) && toks.get(j + 1).is_some_and(|t| t.text == "(")
}

// ---------------------------------------------------------------------
// Pass 2: static lock-order
// ---------------------------------------------------------------------

/// Where a static lock-order edge was induced.
#[derive(Debug, Clone)]
pub struct EdgeSite {
    pub file: String,
    pub line: usize,
    /// The function whose body induced the edge.
    pub via: String,
}

/// A lock creation site (`name: Mutex::new(..)` / `let name =
/// RwLock::new(..)`), used to resolve the runtime scheduler's
/// creation-`Location`s back to static lock names.
#[derive(Debug, Clone)]
pub struct CreationSite {
    /// Repo-relative path of the file.
    pub file: String,
    /// Line of the `Mutex::new` / `RwLock::new` token (what
    /// `#[track_caller]` records at runtime).
    pub line: usize,
    /// Crate-qualified lock name, e.g. `df-server::gens`.
    pub name: String,
}

/// The statically derived lock-order graph for a tree.
#[derive(Debug, Default)]
pub struct LockAnalysis {
    /// (held, acquired) → where that edge was induced. Names are
    /// crate-qualified; self-edges are never recorded.
    pub edges: BTreeMap<(String, String), EdgeSite>,
    /// Every lock creation site found in the scanned files.
    pub creations: Vec<CreationSite>,
    /// Cycle violations (rule `lock-order`).
    pub violations: Vec<Violation>,
}

#[derive(Debug)]
struct FnSummary {
    name: String,
    krate: String,
    file: String,
    /// (held, acquired, line) edges from direct nesting in this body.
    direct_edges: Vec<(String, String, usize)>,
    /// Every lock name this body acquires somewhere.
    direct_acquires: BTreeSet<String>,
    /// (callee, locks held at the call site, line).
    calls: Vec<(String, BTreeSet<String>, usize)>,
}

struct GuardRec {
    name: String,
    /// Brace depth this guard dies at: for `let`-bound guards the depth
    /// of the binding block, for temporaries the depth of the statement.
    depth: usize,
    bound: bool,
    /// The `let` binding ident when bound (`let g = m.lock()…` → `g`),
    /// so `drop(g)` can release it early.
    binding: Option<String>,
}

/// Extract a lock summary from one `fn` body.
fn summarize_fn(
    item: &FnItem,
    toks: &[Token<'_>],
    scrubbed: &str,
    krate: &str,
    file: &str,
) -> FnSummary {
    let qualify = |name: &str| format!("{krate}::{name}");
    let mut sum = FnSummary {
        name: item.name.clone(),
        krate: krate.to_string(),
        file: file.to_string(),
        direct_edges: Vec::new(),
        direct_acquires: BTreeSet::new(),
        calls: Vec::new(),
    };
    let mut guards: Vec<GuardRec> = Vec::new();
    let mut depth = 0usize;
    let mut let_stack: Vec<usize> = Vec::new();
    let mut pending_binding: Option<String> = None;
    let (start, end) = item.body_tokens;
    let mut i = start;
    while i < end.min(toks.len()) {
        let t = toks[i];
        match t.text {
            "{" => depth += 1,
            "}" => {
                guards.retain(|g| g.depth < depth);
                depth = depth.saturating_sub(1);
                while let_stack.last().is_some_and(|&d| d > depth) {
                    let_stack.pop();
                }
            }
            ";" => {
                guards.retain(|g| g.bound || g.depth < depth);
                if let_stack.last() == Some(&depth) {
                    let_stack.pop();
                }
                pending_binding = None;
            }
            "let" if t.kind == TokenKind::Ident => {
                // `if let` / `while let` scrutinee guards live for the
                // conditional block, not a statement — the block-scope
                // rule already covers them, so only statement `let`s are
                // tracked.
                let prev_if = i
                    .checked_sub(1)
                    .is_some_and(|p| matches!(toks[p].text, "if" | "while"));
                if !prev_if {
                    let_stack.push(depth);
                    let mut b = i + 1;
                    if toks.get(b).is_some_and(|t| t.text == "mut") {
                        b += 1;
                    }
                    pending_binding = toks
                        .get(b)
                        .filter(|t| t.kind == TokenKind::Ident && !is_keyword(t.text))
                        .map(|t| t.text.to_string());
                }
            }
            "drop"
                if t.kind == TokenKind::Ident
                    && toks.get(i + 1).is_some_and(|t| t.text == "(")
                    && toks.get(i + 2).is_some_and(|t| t.kind == TokenKind::Ident)
                    && toks.get(i + 3).is_some_and(|t| t.text == ")") =>
            {
                let victim = toks[i + 2].text;
                guards.retain(|g| g.binding.as_deref() != Some(victim));
                i += 4;
                continue;
            }
            _ => {}
        }
        // Acquisition: `<ident> . lock ( )` / `.read()` / `.write()`.
        if t.text == "."
            && toks
                .get(i + 1)
                .is_some_and(|m| matches!(m.text, "lock" | "read" | "write"))
            && toks.get(i + 2).is_some_and(|t| t.text == "(")
            && toks.get(i + 3).is_some_and(|t| t.text == ")")
        {
            let recv = i
                .checked_sub(1)
                .map(|p| toks[p])
                .filter(|p| p.kind == TokenKind::Ident && !is_keyword(p.text));
            if let Some(recv) = recv {
                let name = qualify(recv.text);
                let line = line_of(scrubbed, t.off);
                for g in &guards {
                    if g.name != name {
                        sum.direct_edges.push((g.name.clone(), name.clone(), line));
                    }
                }
                sum.direct_acquires.insert(name.clone());
                // Does the postfix chain keep the guard (only
                // unwrap/expect-style adapters until the chain ends), or
                // consume it (`.clone()`, `.route_for(..)` make the
                // statement's *result* a non-guard and the guard a
                // temporary)? A leading `*` deref (`let v = *m.lock()…`)
                // also consumes: the binding holds the copied pointee,
                // not the guard. Either way the guard lives at least to
                // the end of the statement — what differs is whether a
                // `let` extends it to the block.
                let deref = i.checked_sub(2).is_some_and(|p| toks[p].text == "*");
                let keeps_guard = !deref && chain_keeps_guard(toks, i + 4);
                // Bind only when the `let` is at the current brace depth:
                // a `let` outside a nested block (e.g. `let t = { … }` or
                // a closure body) does not keep guards acquired in inner
                // statements alive.
                let bound = keeps_guard && let_stack.last() == Some(&depth);
                let g_depth = if bound {
                    *let_stack.last().expect("let_stack nonempty")
                } else {
                    depth
                };
                guards.push(GuardRec {
                    name,
                    depth: g_depth,
                    bound,
                    binding: if bound { pending_binding.clone() } else { None },
                });
                i += 4;
                continue;
            }
        }
        // Intra-crate call: `name(...)`, `.name(...)`, `Path::name(...)`.
        if t.kind == TokenKind::Ident
            && !is_keyword(t.text)
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
            && i.checked_sub(1)
                .map(|p| toks[p].text != "fn")
                .unwrap_or(true)
            && !CALL_DENYLIST.contains(&t.text)
        {
            let held: BTreeSet<String> = guards.iter().map(|g| g.name.clone()).collect();
            sum.calls
                .push((t.text.to_string(), held, line_of(scrubbed, t.off)));
        }
        i += 1;
    }
    sum
}

/// After a lock acquisition, scan the postfix chain starting at token
/// `i` (just past the `()`): `true` when only result adapters
/// (`unwrap`, `expect`, `unwrap_or_else`, `map_err`) follow before the
/// chain ends, i.e. the expression's value *is* the guard.
fn chain_keeps_guard(toks: &[Token<'_>], mut i: usize) -> bool {
    const ADAPTERS: &[&str] = &["expect", "map_err", "unwrap", "unwrap_or_else"];
    while toks.get(i).is_some_and(|t| t.text == ".") {
        let Some(m) = toks.get(i + 1).filter(|m| m.kind == TokenKind::Ident) else {
            return true;
        };
        if !ADAPTERS.contains(&m.text) {
            return false;
        }
        // Skip the adapter's argument list.
        let Some(open) = toks.get(i + 2).filter(|t| t.text == "(") else {
            return false;
        };
        let _ = open;
        let mut depth = 0isize;
        let mut j = i + 2;
        while j < toks.len() {
            match toks[j].text {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j + 1;
    }
    true
}

/// Find lock creation sites (`name: Mutex::new(..)`, `let name =
/// Arc::new(RwLock::new(..))`) in one file's token stream.
fn creation_sites(
    toks: &[Token<'_>],
    scrubbed: &str,
    krate: &str,
    file: &str,
    out: &mut Vec<CreationSite>,
) {
    for i in 0..toks.len() {
        let t = toks[i];
        if t.kind != TokenKind::Ident || !matches!(t.text, "Mutex" | "RwLock") {
            continue;
        }
        if !(toks.get(i + 1).is_some_and(|n| n.text == "::")
            && toks
                .get(i + 2)
                .is_some_and(|n| matches!(n.text, "new" | "default"))
            && toks.get(i + 3).is_some_and(|n| n.text == "("))
        {
            continue;
        }
        // Walk back over path/constructor noise to the binding: the
        // nearest `=` or `:` whose preceding token is the bound name.
        let mut j = i;
        let name = loop {
            if j == 0 {
                break None;
            }
            j -= 1;
            match toks[j].text {
                "=" | ":" => {
                    break j
                        .checked_sub(1)
                        .map(|p| toks[p])
                        .filter(|p| p.kind == TokenKind::Ident && !is_keyword(p.text))
                        .map(|p| p.text.to_string());
                }
                "::" | "(" | "&" => continue,
                _ if toks[j].kind == TokenKind::Ident => continue,
                _ => break None,
            }
        };
        if let Some(name) = name {
            out.push(CreationSite {
                file: file.to_string(),
                line: line_of(scrubbed, t.off),
                name: format!("{krate}::{name}"),
            });
        }
    }
}

/// Crates whose sources feed the static lock-order graph: exactly the
/// shim-visible universe ([`crate::lint::SYNC_SCOPED_CRATES`]), plus
/// every crate's `*df_check_models*` test files — the only places model
/// executions (and therefore runtime lock edges) come from.
fn lock_scan_files(root: &Path) -> Result<Vec<(PathBuf, String)>, String> {
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read_dir {}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for crate_dir in crate_dirs {
        let krate = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        if crate::lint::SYNC_SCOPED_CRATES.contains(&krate.as_str()) {
            let src = crate_dir.join("src");
            if src.is_dir() {
                let mut src_files = Vec::new();
                rust_files(&src, &mut src_files)?;
                files.extend(src_files.into_iter().map(|f| (f, krate.clone())));
            }
        }
        let tests = crate_dir.join("tests");
        if tests.is_dir() {
            let mut test_files = Vec::new();
            rust_files(&tests, &mut test_files)?;
            for f in test_files {
                let is_model = f
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.contains("df_check_models"));
                if is_model {
                    files.push((f, krate.clone()));
                }
            }
        }
    }
    Ok(files)
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Build the static lock-order graph for the tree under `root`.
///
/// Summaries are extracted per function (production code only in `src`
/// files; model-test files contribute all their functions, since model
/// scenarios are exactly what the runtime records), the intra-crate
/// call graph propagates acquire-sets to a fixpoint, and every AB/BA
/// cycle among the resulting edges becomes a `lock-order` violation.
pub fn analyze_locks(root: &Path) -> Result<LockAnalysis, String> {
    let mut summaries: Vec<FnSummary> = Vec::new();
    let mut analysis = LockAnalysis::default();
    for (file, krate) in lock_scan_files(root)? {
        let source =
            std::fs::read_to_string(&file).map_err(|e| format!("read {}: {e}", file.display()))?;
        let rel = rel_path(root, &file);
        let scrubbed = syntax::scrub_source(&source);
        let toks = syntax::lex(&scrubbed);
        let items = syntax::scan_items(&toks, &scrubbed);
        creation_sites(&toks, &scrubbed, &krate, &rel, &mut analysis.creations);
        let is_test_file = rel.contains("/tests/");
        for item in &items {
            if !is_test_file && item.in_test {
                continue;
            }
            summaries.push(summarize_fn(item, &toks, &scrubbed, &krate, &rel));
        }
    }

    // name → summary indices, per crate, for call resolution.
    let mut by_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (idx, s) in summaries.iter().enumerate() {
        by_name
            .entry((s.krate.clone(), s.name.clone()))
            .or_default()
            .push(idx);
    }

    // Fixpoint: a function's acquire-set includes every callee's.
    let mut total: Vec<BTreeSet<String>> = summaries
        .iter()
        .map(|s| s.direct_acquires.clone())
        .collect();
    loop {
        let mut changed = false;
        for (idx, s) in summaries.iter().enumerate() {
            for (callee, _, _) in &s.calls {
                if let Some(targets) = by_name.get(&(s.krate.clone(), callee.clone())) {
                    for &t in targets {
                        if t == idx {
                            continue;
                        }
                        let extra: Vec<String> = total[t]
                            .iter()
                            .filter(|a| !total[idx].contains(*a))
                            .cloned()
                            .collect();
                        if !extra.is_empty() {
                            total[idx].extend(extra);
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edges: direct nestings plus held-across-call × callee acquires.
    for (idx, s) in summaries.iter().enumerate() {
        let _ = idx;
        for (held, acquired, line) in &s.direct_edges {
            analysis
                .edges
                .entry((held.clone(), acquired.clone()))
                .or_insert_with(|| EdgeSite {
                    file: s.file.clone(),
                    line: *line,
                    via: s.name.clone(),
                });
        }
        for (callee, held, line) in &s.calls {
            if held.is_empty() {
                continue;
            }
            if let Some(targets) = by_name.get(&(s.krate.clone(), callee.clone())) {
                let mut acquires: BTreeSet<String> = BTreeSet::new();
                for &t in targets {
                    acquires.extend(total[t].iter().cloned());
                }
                for h in held {
                    for a in &acquires {
                        if h != a {
                            analysis
                                .edges
                                .entry((h.clone(), a.clone()))
                                .or_insert_with(|| EdgeSite {
                                    file: s.file.clone(),
                                    line: *line,
                                    via: format!("{} -> {}", s.name, callee),
                                });
                        }
                    }
                }
            }
        }
    }

    analysis.violations = find_cycles(&analysis.edges);
    Ok(analysis)
}

/// Every AB/BA (or longer) cycle in the edge set, one violation per
/// distinct node set.
fn find_cycles(edges: &BTreeMap<(String, String), EdgeSite>) -> Vec<Violation> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut out = Vec::new();
    for (a, b) in edges.keys() {
        // Path b ⇝ a closes a cycle through edge a→b.
        let mut stack = vec![b.as_str()];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        let mut found = false;
        while let Some(n) = stack.pop() {
            if n == a.as_str() {
                found = true;
                break;
            }
            if !visited.insert(n) {
                continue;
            }
            for &m in adj.get(n).into_iter().flatten() {
                if !visited.contains(m) {
                    parent.entry(m).or_insert(n);
                    stack.push(m);
                }
            }
        }
        if !found {
            continue;
        }
        // Reconstruct b ⇝ a, then close with a→b.
        let mut path = vec![a.as_str()];
        let mut n = a.as_str();
        while n != b.as_str() {
            n = parent.get(n).copied().unwrap_or(b.as_str());
            path.push(n);
        }
        path.reverse(); // b … a
        let mut canon: Vec<String> = path.iter().map(|s| s.to_string()).collect();
        canon.sort();
        canon.dedup();
        if !seen_cycles.insert(canon) {
            continue;
        }
        let site = &edges[&(a.clone(), b.clone())];
        let back = edges
            .iter()
            .find(|((x, y), _)| path.contains(&x.as_str()) && y == a && *x != *a)
            .map(|((x, _), s)| format!("; edge {x} -> {a} at {}:{}", s.file, s.line))
            .unwrap_or_default();
        let shown: Vec<&str> = path
            .iter()
            .copied()
            .chain(std::iter::once(b.as_str()))
            .collect();
        out.push(Violation {
            file: PathBuf::from(site.file.clone()),
            line: site.line,
            rule: "lock-order",
            message: format!(
                "static lock-order cycle: {} (edge {a} -> {b} in {} at {}:{}{back})",
                shown.join(" -> "),
                site.via,
                site.file,
                site.line
            ),
        });
    }
    out
}

// ---------------------------------------------------------------------
// Runtime cross-check
// ---------------------------------------------------------------------

/// Resolve a runtime creation site (`file:line`, as recorded by the
/// scheduler from `#[track_caller]`) to a crate-qualified lock name.
pub fn resolve_creation(analysis: &LockAnalysis, site: &str) -> Option<String> {
    let (file, line) = site.rsplit_once(':')?;
    let line: usize = line.parse().ok()?;
    analysis
        .creations
        .iter()
        .find(|c| c.line == line && (file.ends_with(&c.file) || c.file.ends_with(file)))
        .map(|c| c.name.clone())
}

/// Check that every runtime lock edge (pairs of creation `file:line`
/// sites, from [`crate::model::runtime_lock_edges`]) is predicted by
/// the static graph. Returns a description of every gap: an unresolvable
/// creation site or an edge the static analysis missed. Same-name edges
/// (two instances created at one site, e.g. two shard `store` locks) are
/// skipped — instance ordering within one name is the dynamic checker's
/// job, not the static graph's.
pub fn check_runtime_edges(analysis: &LockAnalysis, runtime: &[(String, String)]) -> Vec<String> {
    let mut gaps = Vec::new();
    for (held_site, acq_site) in runtime {
        let Some(held) = resolve_creation(analysis, held_site) else {
            gaps.push(format!(
                "runtime lock created at {held_site} has no static creation site \
                 (is the file outside the lock-order scan set?)"
            ));
            continue;
        };
        let Some(acq) = resolve_creation(analysis, acq_site) else {
            gaps.push(format!(
                "runtime lock created at {acq_site} has no static creation site \
                 (is the file outside the lock-order scan set?)"
            ));
            continue;
        };
        if held == acq {
            continue;
        }
        if !analysis.edges.contains_key(&(held.clone(), acq.clone())) {
            gaps.push(format!(
                "runtime lock edge {held} -> {acq} (created {held_site}, {acq_site}) is \
                 not in the static lock-order graph — the static analysis has a blind spot"
            ));
        }
    }
    gaps
}

// ---------------------------------------------------------------------
// Tree entry point
// ---------------------------------------------------------------------

/// Run every df-audit pass over the tree at `root`: panic-totality on
/// the designated decode modules, the static lock-order cycle check,
/// and spec exhaustiveness. Returns all violations, sorted by file/line.
pub fn audit_tree(root: &Path) -> Result<Vec<Violation>, String> {
    let mut out = Vec::new();
    for rel in DECODE_TOTAL_FILES {
        let path = root.join(rel);
        let source =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        out.extend(audit_decode_source(Path::new(rel), &source));
    }
    out.extend(analyze_locks(root)?.violations);
    out.extend(crate::spec::check_exhaustiveness(root)?);
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_violations(src: &str) -> Vec<Violation> {
        audit_decode_source(Path::new("x.rs"), src)
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let v = decode_violations(
            "fn f(b: &[u8]) -> u8 { b.first().copied().unwrap() }\n\
             fn g() { panic!(\"no\") }\n\
             fn h(x: Option<u8>) -> u8 { x.expect(\"set\") }\n\
             fn k(n: usize) { assert!(n > 0); }",
        );
        let rules: Vec<_> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert_eq!(
            rules,
            vec![
                ("decode-panic", 1),
                ("decode-panic", 2),
                ("decode-panic", 3),
                ("decode-panic", 4)
            ],
            "{v:?}"
        );
    }

    #[test]
    fn flags_direct_indexing_but_not_types_or_attrs() {
        let v = decode_violations(
            "#[derive(Debug)]\n\
             struct S { a: [u8; 4] }\n\
             fn f(b: &[u8]) -> u8 { b[0] }\n\
             fn g(b: &[u8]) -> &[u8] { &b[1..] }\n\
             fn h() -> Vec<u8> { vec![0; 4] }",
        );
        let rules: Vec<_> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert_eq!(
            rules,
            vec![("decode-index", 3), ("decode-index", 4)],
            "{v:?}"
        );
    }

    #[test]
    fn flags_length_arithmetic_but_not_plain_constants() {
        let v = decode_violations(
            "fn f(s: &str) -> usize { s.len() + 5 }\n\
             fn g(n: usize) -> usize { n * 20 }\n\
             fn h(pos: usize) -> usize { pos - 1 }\n\
             fn k() -> usize { 8 * 1024 }\n\
             fn m(x: usize) -> usize { x.checked_mul(4).unwrap_or(0) }",
        );
        let rules: Vec<_> = v.iter().map(|v| (v.rule, v.line)).collect();
        assert_eq!(
            rules,
            vec![
                ("decode-arith", 1),
                ("decode-arith", 2),
                ("decode-arith", 3)
            ],
            "{v:?}"
        );
    }

    #[test]
    fn compound_assign_on_length_vars_flagged() {
        let v = decode_violations("fn f(pos: &mut usize) { *pos += 1; }");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "decode-arith");
    }

    #[test]
    fn test_code_is_exempt() {
        let v = decode_violations(
            "#[cfg(test)]\nmod tests {\n fn f(b: &[u8]) -> u8 { b[0] }\n}\n\
             #[test]\nfn t() { assert!(true) }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn justified_allow_suppresses_unjustified_fails() {
        let ok = "// df-audit: allow(decode-index) — header length checked 3 lines up\n\
                  fn f(b: &[u8]) -> u8 { b[0] }";
        assert!(decode_violations(ok).is_empty());

        let same_line =
            "fn f(b: &[u8]) -> u8 { b[0] } // df-audit: allow(decode-index) — checked above";
        assert!(decode_violations(same_line).is_empty());

        let empty = "// df-audit: allow(decode-index)\nfn f(b: &[u8]) -> u8 { b[0] }";
        let v = decode_violations(empty);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|v| v.rule == "audit-allow"));
        assert!(v.iter().any(|v| v.rule == "decode-index"));

        let unknown = "// df-audit: allow(decode-everything) — because\nfn f() {}";
        let v = decode_violations(unknown);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "audit-allow");
    }

    fn summaries_for(src: &str) -> Vec<FnSummary> {
        let scrubbed = syntax::scrub_source(src);
        let toks = syntax::lex(&scrubbed);
        let items = syntax::scan_items(&toks, &scrubbed);
        items
            .iter()
            .map(|i| summarize_fn(i, &toks, &scrubbed, "c", "f.rs"))
            .collect()
    }

    #[test]
    fn direct_nesting_produces_an_edge() {
        let s = summaries_for(
            "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                let g = a.lock().unwrap();\n\
                let h = b.lock().unwrap();\n\
                drop(h); drop(g);\n\
             }",
        );
        assert_eq!(
            s[0].direct_edges,
            vec![("c::a".to_string(), "c::b".to_string(), 3)]
        );
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let s = summaries_for(
            "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                let x = a.lock().unwrap().wrapping_add(1);\n\
                let g = b.lock().unwrap();\n\
             }",
        );
        assert!(
            s[0].direct_edges.is_empty(),
            "temporary `a` guard must not survive its statement: {:?}",
            s[0].direct_edges
        );
    }

    #[test]
    fn guard_held_during_call_records_the_call() {
        let s = summaries_for(
            "fn f(c: &Mutex<Cache>) {\n\
                let g = c.lock().unwrap();\n\
                g.store_trace(1);\n\
             }",
        );
        assert_eq!(s[0].calls.len(), 1);
        let (callee, held, _) = &s[0].calls[0];
        assert_eq!(callee, "store_trace");
        assert!(held.contains("c::c"));
    }

    #[test]
    fn scoped_guard_dies_with_its_block() {
        let s = summaries_for(
            "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                { let g = a.lock().unwrap(); }\n\
                let h = b.lock().unwrap();\n\
             }",
        );
        assert!(s[0].direct_edges.is_empty(), "{:?}", s[0].direct_edges);
    }

    #[test]
    fn dropped_guard_stops_producing_edges() {
        let s = summaries_for(
            "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
                let g = a.lock().unwrap();\n\
                drop(g);\n\
                let h = b.lock().unwrap();\n\
             }",
        );
        assert!(s[0].direct_edges.is_empty(), "{:?}", s[0].direct_edges);
    }

    #[test]
    fn cycle_detection_reports_ab_ba() {
        let mut edges = BTreeMap::new();
        let site = |f: &str, l: usize| EdgeSite {
            file: f.to_string(),
            line: l,
            via: "f".to_string(),
        };
        edges.insert(("a".to_string(), "b".to_string()), site("x.rs", 1));
        edges.insert(("b".to_string(), "a".to_string()), site("y.rs", 2));
        let v = find_cycles(&edges);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "lock-order");
        assert!(v[0].message.contains("a -> b"), "{}", v[0].message);

        edges.remove(&("b".to_string(), "a".to_string()));
        assert!(find_cycles(&edges).is_empty());
    }

    #[test]
    fn creation_sites_found_for_let_and_field_forms() {
        let src = "fn f() {\n\
                     let store = Arc::new(RwLock::new(Vec::new()));\n\
                     let s = S { gens: Mutex::new(0), cache: Mutex::new(1) };\n\
                   }";
        let scrubbed = syntax::scrub_source(src);
        let toks = syntax::lex(&scrubbed);
        let mut out = Vec::new();
        creation_sites(&toks, &scrubbed, "c", "f.rs", &mut out);
        let names: Vec<_> = out.iter().map(|c| (c.name.as_str(), c.line)).collect();
        assert_eq!(
            names,
            vec![("c::store", 2), ("c::gens", 3), ("c::cache", 3)],
            "{out:?}"
        );
    }

    #[test]
    fn runtime_edge_cross_check_finds_gaps_and_matches() {
        let mut analysis = LockAnalysis::default();
        analysis.creations.push(CreationSite {
            file: "crates/x/src/a.rs".to_string(),
            line: 10,
            name: "x::a".to_string(),
        });
        analysis.creations.push(CreationSite {
            file: "crates/x/src/a.rs".to_string(),
            line: 20,
            name: "x::b".to_string(),
        });
        analysis.edges.insert(
            ("x::a".to_string(), "x::b".to_string()),
            EdgeSite {
                file: "crates/x/src/a.rs".to_string(),
                line: 30,
                via: "f".to_string(),
            },
        );
        let ok = vec![(
            "crates/x/src/a.rs:10".to_string(),
            "crates/x/src/a.rs:20".to_string(),
        )];
        assert!(check_runtime_edges(&analysis, &ok).is_empty());

        // Same-name edges (two instances from one site) are skipped.
        let same = vec![(
            "crates/x/src/a.rs:10".to_string(),
            "crates/x/src/a.rs:10".to_string(),
        )];
        assert!(check_runtime_edges(&analysis, &same).is_empty());

        let reversed = vec![(
            "crates/x/src/a.rs:20".to_string(),
            "crates/x/src/a.rs:10".to_string(),
        )];
        let gaps = check_runtime_edges(&analysis, &reversed);
        assert_eq!(gaps.len(), 1, "{gaps:?}");
        assert!(gaps[0].contains("x::b -> x::a"), "{gaps:?}");

        let unknown = vec![(
            "crates/x/src/zzz.rs:1".to_string(),
            "crates/x/src/a.rs:20".to_string(),
        )];
        let gaps = check_runtime_edges(&analysis, &unknown);
        assert_eq!(gaps.len(), 1);
        assert!(gaps[0].contains("no static creation site"));
    }
}
