#![forbid(unsafe_code)]
//! # df-check — concurrency correctness tooling for the DeepFlow tree
//!
//! PR 3 took the shard boundary across threads; its core invariant (bucket
//! generations bumped inside the shard write lock, the assembler holding
//! all shard read locks through the cache store) was proven by one
//! hand-rolled interleaving test. Every new lock or channel interaction
//! multiplies the interleaving space faster than hand-written tests can
//! cover it, so this crate provides systematic tooling in four layers:
//!
//! 1. **[`sync`] — instrumented shims.** Drop-in stand-ins for
//!    `std::sync::{Mutex, RwLock, Condvar, Arc}`,
//!    `std::sync::atomic::AtomicUsize` and
//!    `std::sync::mpsc::sync_channel`. In a normal build they are plain
//!    re-exports of `std::sync` (zero cost). Under the `checked` feature
//!    (or `--cfg df_check`) they become thin wrappers that route every
//!    acquire/release/send/recv through the controlling scheduler *when
//!    the current thread belongs to a model execution* — and pass straight
//!    through to `std` otherwise, so retrofitted production code keeps
//!    exact `std` semantics even in checked builds.
//!
//! 2. **[`model`] — a schedule-exploring model checker.** [`model::check`]
//!    runs a closure repeatedly under depth-first schedule exploration:
//!    every sync op is a cooperative yield point, exactly one model thread
//!    runs between yield points, and the scheduler replays one schedule
//!    per path deterministically (loom-style, hand-rolled, std-only).
//!    Exploration is bounded by a preemption budget and deduplicated by a
//!    state hash, and a failing schedule is reported as the exact
//!    interleaving (with source locations) plus a decision vector that
//!    [`model::replay`] re-executes verbatim. Layered on the same
//!    instrumentation are a **vector-clock data-race detector** (per-thread
//!    clocks joined on release→acquire edges; racy accesses are modelled
//!    with [`sync::Racy`]) and a **lock-order graph** whose cycles flag
//!    potential deadlocks even on schedules that happen to pass.
//!
//! 3. **[`lint`] — the `df-lint` sync-discipline pass.** A token-level
//!    source scan (no rustc internals) that bans raw `std::sync` imports
//!    in the sync-scoped crates (they must use these shims so the model
//!    tests stay honest), bans `.lock().unwrap()`-style lock unwraps
//!    outside test code, checks `#![forbid(unsafe_code)]` in every
//!    first-party crate root, confines `std::fs` to the tiering layer,
//!    and bans OS threads (`thread::spawn`/`thread::scope`) inside
//!    model-test files where they would escape the checked scheduler.
//!    Shipped as the `df-lint` binary and wired into `ci.sh`.
//!
//! 4. **[`audit`] — the `df-audit` static analysis passes**, built on
//!    the [`syntax`] lexer/item layer: panic-totality of the designated
//!    total-decode modules (no `unwrap`/`panic!`, no slice indexing, no
//!    unchecked length arithmetic — with a justification-required
//!    `// df-audit: allow(...)` escape), a static lock-order graph
//!    derived from shim call sites and call-graph propagation (AB/BA
//!    cycles fail CI), and spec exhaustiveness via [`spec`] (every RPC
//!    kind and presence bit: encode site + decode arm + doc-table row).
//!    The lock graph is cross-checked against the edges the checked
//!    scheduler actually observes ([`model::runtime_lock_edges`] /
//!    [`audit::check_runtime_edges`]), so the heuristic static pass
//!    cannot silently under-approximate. Rule catalogue:
//!    `docs/LINTS.md`.
//!
//! The model tests that exercise the PR 3 invariants live next to the code
//! they check, in `df-server/tests/df_check_models.rs`; this crate's own
//! tests exercise the checker itself (deadlock detection, race detection,
//! preemption bounds, replay determinism). See
//! `docs/ARCHITECTURE.md` § "Correctness tooling" for how to write a
//! `df-check` test and pick a schedule budget.
//!
//! ## Example (degrades gracefully when `checked` is off)
//!
//! ```
//! use df_check::{model, sync};
//!
//! let report = model::explore(model::CheckConfig::default(), || {
//!     let counter = sync::Arc::new(sync::Mutex::new(0u32));
//!     let c2 = sync::Arc::clone(&counter);
//!     let t = model::spawn(move || {
//!         *c2.lock().expect("lock") += 1;
//!     });
//!     *counter.lock().expect("lock") += 1;
//!     t.join();
//!     assert_eq!(*counter.lock().expect("lock"), 2);
//! });
//! assert!(report.failure.is_none());
//! ```

pub mod audit;
pub mod lint;
pub mod model;
pub mod spec;
pub mod sync;
pub mod syntax;

#[cfg(any(feature = "checked", df_check))]
mod sched;

/// Whether this build has the instrumented scheduler compiled in (the
/// `checked` feature or `--cfg df_check`). When `false`, [`model::check`]
/// degrades to running the closure once with plain `std` primitives —
/// tests that need real exploration should skip themselves when this
/// returns `false` (and CI runs them with the feature on).
pub const fn is_checked() -> bool {
    cfg!(any(feature = "checked", df_check))
}
