//! Instrumented drop-in stand-ins for `std::sync`.
//!
//! Retrofitted code swaps `use std::sync::X` for `use df_check::sync::X`
//! and changes nothing else: the module mirrors the `std::sync` paths it
//! replaces (`sync::{Mutex, RwLock, Condvar, Barrier, Once, Arc}`,
//! `sync::atomic`, `sync::mpsc::sync_channel`).
//!
//! * **Unchecked build (default):** everything here is a plain re-export
//!   of `std::sync` — zero cost, zero behaviour change.
//! * **Checked build (`checked` feature / `--cfg df_check`):** the types
//!   become thin wrappers holding the real `std` primitive plus an
//!   instance id. When the calling thread belongs to a
//!   [`crate::model`] execution, every acquire/release/send/recv first
//!   yields to the model scheduler (which decides who runs, maintains
//!   vector clocks and the lock-order graph) and only then performs the
//!   real operation — which at that point is guaranteed uncontended,
//!   because exactly one model thread runs between yield points. On any
//!   thread *outside* a model execution the wrappers pass straight
//!   through to `std`, so production code keeps exact `std` semantics
//!   even in checked builds (cargo feature unification is harmless).
//!
//! [`Racy`] is the one addition over `std::sync`: a deliberately
//! unsynchronized-looking cell for modelling shared state that the code
//! under test is *supposed* to protect by other means. The checker's
//! vector-clock detector reports a data race when two `Racy` accesses
//! (at least one a write) are not ordered by happens-before.

#[cfg(not(any(feature = "checked", df_check)))]
mod imp {
    pub use std::sync::mpsc::sync_channel;
    pub use std::sync::{
        Arc, Barrier, BarrierWaitResult, Condvar, LockResult, Mutex, MutexGuard, Once, OnceState,
        PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError, TryLockResult,
        WaitTimeoutResult,
    };

    /// Mirror of `std::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::*;
    }

    /// Mirror of `std::sync::mpsc`.
    pub mod mpsc {
        pub use std::sync::mpsc::*;
    }

    /// Unchecked [`Racy`](crate::sync::Racy): an ordinary mutex-protected
    /// cell (the race detector only exists in checked builds).
    pub struct Racy<T> {
        cell: std::sync::Mutex<T>,
    }

    impl<T: Copy> Racy<T> {
        pub fn new(value: T) -> Self {
            Racy {
                cell: std::sync::Mutex::new(value),
            }
        }

        fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
            let mut guard = match self.cell.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            f(&mut guard)
        }

        pub fn get(&self) -> T {
            self.with(|v| *v)
        }

        pub fn set(&self, value: T) {
            self.with(|v| *v = value)
        }

        pub fn update(&self, f: impl FnOnce(T) -> T) -> T {
            self.with(|v| {
                *v = f(*v);
                *v
            })
        }
    }
}

#[cfg(any(feature = "checked", df_check))]
mod imp {
    use crate::sched::{self, ObjKind, Op, OpKind};
    use std::panic::Location;

    pub use std::sync::{
        Arc, LockResult, PoisonError, TryLockError, TryLockResult, WaitTimeoutResult,
    };

    fn ctx() -> Option<sched::Ctx> {
        sched::current()
    }

    /// Deferred logical release carried by a lock guard: on drop, yield
    /// the matching unlock op to the scheduler (or update its state
    /// silently when the guard is dropped during a panic unwind, where a
    /// new yield point could double-panic).
    struct ModelRelease {
        sched: Arc<sched::Scheduler>,
        tid: sched::Tid,
        obj: sched::ObjId,
        op: OpKind,
        site: &'static Location<'static>,
    }

    impl ModelRelease {
        fn release(self) {
            if std::thread::panicking() {
                self.sched
                    .silent_release(self.tid, self.obj, self.op == OpKind::RwUnlockRead);
            } else {
                let _ = self
                    .sched
                    .yield_op(self.tid, Op::on(self.op, self.obj), self.site);
            }
        }
    }

    // -- Mutex --------------------------------------------------------

    pub struct Mutex<T> {
        instance: u64,
        created: &'static Location<'static>,
        inner: std::sync::Mutex<T>,
    }

    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
        model: Option<ModelRelease>,
    }

    impl<T> Mutex<T> {
        #[track_caller]
        pub fn new(value: T) -> Self {
            Mutex {
                instance: sched::next_instance(),
                created: Location::caller(),
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Exclusive access through `&mut self` needs no scheduling: the
        /// borrow checker already proves no other thread holds the lock.
        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.inner.get_mut()
        }

        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }

        #[track_caller]
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            let site = Location::caller();
            let model = ctx().map(|c| {
                let obj = c.sched.obj(self.instance, ObjKind::Mutex, 0, self.created);
                let _ = c
                    .sched
                    .yield_op(c.tid, Op::on(OpKind::MutexLock, obj), site);
                ModelRelease {
                    sched: c.sched,
                    tid: c.tid,
                    obj,
                    op: OpKind::MutexUnlock,
                    site,
                }
            });
            // With a model grant in hand the inner lock is uncontended:
            // exactly one model thread runs between yield points, and the
            // previous holder released physically before its next yield.
            match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model,
                })),
            }
        }
    }

    impl<T: Default> Default for Mutex<T> {
        #[track_caller]
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("mutex guard is live")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("mutex guard is live")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Logical release first, physical second (the inner guard
            // drops after this body): nobody else can be granted the lock
            // until this thread's *next* yield, by which time the inner
            // mutex is free.
            if let Some(m) = self.model.take() {
                m.release();
            }
        }
    }

    // -- RwLock -------------------------------------------------------

    pub struct RwLock<T> {
        instance: u64,
        created: &'static Location<'static>,
        inner: std::sync::RwLock<T>,
    }

    pub struct RwLockReadGuard<'a, T> {
        inner: Option<std::sync::RwLockReadGuard<'a, T>>,
        model: Option<ModelRelease>,
    }

    pub struct RwLockWriteGuard<'a, T> {
        inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
        model: Option<ModelRelease>,
    }

    impl<T> RwLock<T> {
        #[track_caller]
        pub fn new(value: T) -> Self {
            RwLock {
                instance: sched::next_instance(),
                created: Location::caller(),
                inner: std::sync::RwLock::new(value),
            }
        }

        #[track_caller]
        pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
            let site = Location::caller();
            let model = ctx().map(|c| {
                let obj = c.sched.obj(self.instance, ObjKind::RwLock, 0, self.created);
                let _ = c.sched.yield_op(c.tid, Op::on(OpKind::RwRead, obj), site);
                ModelRelease {
                    sched: c.sched,
                    tid: c.tid,
                    obj,
                    op: OpKind::RwUnlockRead,
                    site,
                }
            });
            match self.inner.read() {
                Ok(g) => Ok(RwLockReadGuard {
                    inner: Some(g),
                    model,
                }),
                Err(p) => Err(PoisonError::new(RwLockReadGuard {
                    inner: Some(p.into_inner()),
                    model,
                })),
            }
        }

        #[track_caller]
        pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
            let site = Location::caller();
            let model = ctx().map(|c| {
                let obj = c.sched.obj(self.instance, ObjKind::RwLock, 0, self.created);
                let _ = c.sched.yield_op(c.tid, Op::on(OpKind::RwWrite, obj), site);
                ModelRelease {
                    sched: c.sched,
                    tid: c.tid,
                    obj,
                    op: OpKind::RwUnlockWrite,
                    site,
                }
            });
            match self.inner.write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    inner: Some(g),
                    model,
                }),
                Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                    inner: Some(p.into_inner()),
                    model,
                })),
            }
        }
    }

    impl<T> RwLock<T> {
        /// See [`Mutex::get_mut`]: `&mut self` access needs no scheduling.
        pub fn get_mut(&mut self) -> LockResult<&mut T> {
            self.inner.get_mut()
        }

        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: Default> Default for RwLock<T> {
        #[track_caller]
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("read guard is live")
        }
    }

    impl<T> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(m) = self.model.take() {
                m.release();
            }
        }
    }

    impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("write guard is live")
        }
    }

    impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("write guard is live")
        }
    }

    impl<T> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            if let Some(m) = self.model.take() {
                m.release();
            }
        }
    }

    // -- Condvar ------------------------------------------------------

    pub struct Condvar {
        instance: u64,
        created: &'static Location<'static>,
        inner: std::sync::Condvar,
    }

    impl Condvar {
        #[track_caller]
        pub fn new() -> Self {
            Condvar {
                instance: sched::next_instance(),
                created: Location::caller(),
                inner: std::sync::Condvar::new(),
            }
        }

        #[track_caller]
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let site = Location::caller();
            let lock = guard.lock;
            if let Some(m) = guard.model.take() {
                // Physical unlock now; the *logical* release happens
                // atomically with going to sleep, inside the CvWait
                // effect (no other thread can be granted the mutex in
                // between because nobody else is running).
                guard.inner = None;
                drop(guard);
                let cv = m
                    .sched
                    .obj(self.instance, ObjKind::Condvar, 0, self.created);
                let _ = m.sched.yield_op(m.tid, Op::cv_wait(cv, m.obj), site);
                // Granted again: the scheduler converted this thread's
                // wakeup into a MutexLock and we now hold the mutex
                // logically; reacquire it physically.
                let model = Some(ModelRelease {
                    sched: m.sched,
                    tid: m.tid,
                    obj: m.obj,
                    op: OpKind::MutexUnlock,
                    site,
                });
                return match lock.inner.lock() {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        inner: Some(g),
                        model,
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(p.into_inner()),
                        model,
                    })),
                };
            }
            let inner = guard.inner.take().expect("mutex guard is live");
            drop(guard);
            match self.inner.wait(inner) {
                Ok(g) => Ok(MutexGuard {
                    lock,
                    inner: Some(g),
                    model: None,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock,
                    inner: Some(p.into_inner()),
                    model: None,
                })),
            }
        }

        #[track_caller]
        pub fn notify_one(&self) {
            if let Some(c) = ctx() {
                let obj = c
                    .sched
                    .obj(self.instance, ObjKind::Condvar, 0, self.created);
                let _ =
                    c.sched
                        .yield_op(c.tid, Op::on(OpKind::CvNotifyOne, obj), Location::caller());
                return;
            }
            self.inner.notify_one();
        }

        #[track_caller]
        pub fn notify_all(&self) {
            if let Some(c) = ctx() {
                let obj = c
                    .sched
                    .obj(self.instance, ObjKind::Condvar, 0, self.created);
                let _ =
                    c.sched
                        .yield_op(c.tid, Op::on(OpKind::CvNotifyAll, obj), Location::caller());
                return;
            }
            self.inner.notify_all();
        }
    }

    impl Default for Condvar {
        #[track_caller]
        fn default() -> Self {
            Condvar::new()
        }
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    // -- Barrier ------------------------------------------------------

    /// Checked [`std::sync::Barrier`]: composed from the shim [`Mutex`]
    /// and [`Condvar`] so every rendezvous goes through the model
    /// scheduler (which can interleave arrivals in every order) instead
    /// of parking on an OS primitive the scheduler cannot see.
    pub struct Barrier {
        n: usize,
        state: Mutex<BarrierState>,
        cv: Condvar,
    }

    struct BarrierState {
        count: usize,
        generation: usize,
    }

    /// Mirror of [`std::sync::BarrierWaitResult`].
    pub struct BarrierWaitResult(bool);

    impl BarrierWaitResult {
        pub fn is_leader(&self) -> bool {
            self.0
        }
    }

    impl Barrier {
        #[track_caller]
        pub fn new(n: usize) -> Self {
            Barrier {
                n,
                state: Mutex::new(BarrierState {
                    count: 0,
                    generation: 0,
                }),
                cv: Condvar::new(),
            }
        }

        #[track_caller]
        pub fn wait(&self) -> BarrierWaitResult {
            let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            let generation = s.generation;
            s.count += 1;
            if s.count >= self.n {
                // Leader of this generation: reset for reuse and release
                // every waiter parked on the previous generation.
                s.count = 0;
                s.generation = s.generation.wrapping_add(1);
                drop(s);
                self.cv.notify_all();
                BarrierWaitResult(true)
            } else {
                while s.generation == generation {
                    s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
                }
                BarrierWaitResult(false)
            }
        }
    }

    impl std::fmt::Debug for Barrier {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Barrier").finish_non_exhaustive()
        }
    }

    // -- Once ---------------------------------------------------------

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum OnceStatus {
        New,
        Running,
        Complete,
        Poisoned,
    }

    /// Checked [`std::sync::Once`], composed from the shim [`Mutex`] and
    /// [`Condvar`] so contending initializers are scheduled by the model.
    /// One deviation from `std`: [`Once::new`] is not `const` (every shim
    /// primitive draws a runtime instance id), so checked code holds its
    /// `Once` in a struct or `Arc` rather than a `static`.
    pub struct Once {
        state: Mutex<OnceStatus>,
        cv: Condvar,
    }

    /// Mirror of [`std::sync::OnceState`].
    pub struct OnceState {
        poisoned: bool,
    }

    impl OnceState {
        pub fn is_poisoned(&self) -> bool {
            self.poisoned
        }
    }

    impl Once {
        #[track_caller]
        pub fn new() -> Self {
            Once {
                state: Mutex::new(OnceStatus::New),
                cv: Condvar::new(),
            }
        }

        pub fn is_completed(&self) -> bool {
            *self.state.lock().unwrap_or_else(PoisonError::into_inner) == OnceStatus::Complete
        }

        #[track_caller]
        pub fn call_once<F: FnOnce()>(&self, f: F) {
            self.call_impl(false, |_| f());
        }

        #[track_caller]
        pub fn call_once_force<F: FnOnce(&OnceState)>(&self, f: F) {
            self.call_impl(true, f);
        }

        fn call_impl<F: FnOnce(&OnceState)>(&self, ignore_poison: bool, f: F) {
            let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                match *s {
                    OnceStatus::Complete => return,
                    OnceStatus::Poisoned if !ignore_poison => {
                        panic!("Once instance has previously been poisoned");
                    }
                    OnceStatus::New | OnceStatus::Poisoned => {
                        let was_poisoned = *s == OnceStatus::Poisoned;
                        *s = OnceStatus::Running;
                        drop(s);
                        // Poison-on-unwind guard, matching `std`: if the
                        // closure panics, waiters must observe Poisoned
                        // (not hang on Running forever).
                        struct PoisonGuard<'a> {
                            once: &'a Once,
                            done: bool,
                        }
                        impl Drop for PoisonGuard<'_> {
                            fn drop(&mut self) {
                                let status = if self.done {
                                    OnceStatus::Complete
                                } else {
                                    OnceStatus::Poisoned
                                };
                                *self
                                    .once
                                    .state
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner) = status;
                                self.once.cv.notify_all();
                            }
                        }
                        let mut guard = PoisonGuard {
                            once: self,
                            done: false,
                        };
                        f(&OnceState {
                            poisoned: was_poisoned,
                        });
                        guard.done = true;
                        return;
                    }
                    OnceStatus::Running => {
                        s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        }
    }

    impl Default for Once {
        #[track_caller]
        fn default() -> Self {
            Once::new()
        }
    }

    impl std::fmt::Debug for Once {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Once").finish_non_exhaustive()
        }
    }

    // -- atomics ------------------------------------------------------

    /// Mirror of `std::sync::atomic`, with [`AtomicUsize`] instrumented
    /// (the locally defined wrapper shadows the glob re-export; other
    /// atomic types pass through unmodelled).
    pub mod atomic {
        pub use std::sync::atomic::*;

        use super::ctx;
        use crate::sched::{self, ObjKind, Op, OpKind};
        use std::panic::Location;

        pub struct AtomicUsize {
            instance: u64,
            created: &'static Location<'static>,
            inner: std::sync::atomic::AtomicUsize,
        }

        impl AtomicUsize {
            #[track_caller]
            pub fn new(value: usize) -> Self {
                AtomicUsize {
                    instance: sched::next_instance(),
                    created: Location::caller(),
                    inner: std::sync::atomic::AtomicUsize::new(value),
                }
            }

            #[track_caller]
            fn hook(&self, kind: OpKind, site: &'static Location<'static>) {
                if let Some(c) = ctx() {
                    let obj = c.sched.obj(self.instance, ObjKind::Atomic, 0, self.created);
                    let _ = c.sched.yield_op(c.tid, Op::on(kind, obj), site);
                }
            }

            #[track_caller]
            pub fn load(&self, order: Ordering) -> usize {
                self.hook(OpKind::AtomicLoad, Location::caller());
                self.inner.load(order)
            }

            #[track_caller]
            pub fn store(&self, value: usize, order: Ordering) {
                self.hook(OpKind::AtomicStore, Location::caller());
                self.inner.store(value, order)
            }

            #[track_caller]
            pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
                self.hook(OpKind::AtomicRmw, Location::caller());
                self.inner.fetch_add(value, order)
            }

            #[track_caller]
            pub fn fetch_sub(&self, value: usize, order: Ordering) -> usize {
                self.hook(OpKind::AtomicRmw, Location::caller());
                self.inner.fetch_sub(value, order)
            }

            #[track_caller]
            pub fn swap(&self, value: usize, order: Ordering) -> usize {
                self.hook(OpKind::AtomicRmw, Location::caller());
                self.inner.swap(value, order)
            }
        }

        impl std::fmt::Debug for AtomicUsize {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }
    }

    // -- mpsc ---------------------------------------------------------

    /// Mirror of `std::sync::mpsc` for bounded channels. The model only
    /// supports `sync_channel` with capacity ≥ 1 (no rendezvous).
    pub mod mpsc {
        pub use std::sync::mpsc::{
            RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError,
        };

        use super::ctx;
        use crate::sched::{self, Grant, ObjKind, Op, OpKind};
        use std::panic::Location;

        #[derive(Clone, Copy)]
        struct ChanMeta {
            instance: u64,
            created: &'static Location<'static>,
            cap: usize,
        }

        impl ChanMeta {
            fn obj(&self, c: &sched::Ctx) -> sched::ObjId {
                c.sched
                    .obj(self.instance, ObjKind::Channel, self.cap, self.created)
            }
        }

        pub struct SyncSender<T> {
            meta: ChanMeta,
            inner: std::sync::mpsc::SyncSender<T>,
        }

        pub struct Receiver<T> {
            meta: ChanMeta,
            inner: std::sync::mpsc::Receiver<T>,
        }

        #[track_caller]
        pub fn sync_channel<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
            let meta = ChanMeta {
                instance: sched::next_instance(),
                created: Location::caller(),
                cap,
            };
            let (tx, rx) = std::sync::mpsc::sync_channel(cap);
            (SyncSender { meta, inner: tx }, Receiver { meta, inner: rx })
        }

        impl<T> SyncSender<T> {
            #[track_caller]
            pub fn send(&self, value: T) -> Result<(), SendError<T>> {
                let site = Location::caller();
                if let Some(c) = ctx() {
                    assert!(
                        self.meta.cap > 0,
                        "df-check model does not support rendezvous channels (capacity 0)"
                    );
                    let obj = self.meta.obj(&c);
                    if c.sched.yield_op(c.tid, Op::on(OpKind::ChanSend, obj), site)
                        == Grant::SendDisconnected
                    {
                        return Err(SendError(value));
                    }
                    // Granted: the model guarantees a free slot and a
                    // live receiver, so this cannot block or fail.
                    return self.inner.send(value);
                }
                self.inner.send(value)
            }
        }

        impl<T> std::fmt::Debug for SyncSender<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }

        impl<T> std::fmt::Debug for Receiver<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }

        impl<T> Clone for SyncSender<T> {
            fn clone(&self) -> Self {
                if let Some(c) = ctx() {
                    let obj = self.meta.obj(&c);
                    c.sched.chan_sender_cloned(obj);
                }
                SyncSender {
                    meta: self.meta,
                    inner: self.inner.clone(),
                }
            }
        }

        impl<T> Drop for SyncSender<T> {
            fn drop(&mut self) {
                if let Some(c) = ctx() {
                    let obj = self.meta.obj(&c);
                    c.sched.chan_sender_dropped(obj);
                }
            }
        }

        impl<T> Receiver<T> {
            #[track_caller]
            pub fn recv(&self) -> Result<T, RecvError> {
                let site = Location::caller();
                if let Some(c) = ctx() {
                    let obj = self.meta.obj(&c);
                    if c.sched.yield_op(c.tid, Op::on(OpKind::ChanRecv, obj), site)
                        == Grant::RecvDisconnected
                    {
                        return Err(RecvError);
                    }
                    // Granted: the model guarantees a queued message.
                    return self.inner.try_recv().map_err(|_| RecvError);
                }
                self.inner.recv()
            }
        }

        impl<T> Drop for Receiver<T> {
            fn drop(&mut self) {
                if let Some(c) = ctx() {
                    let obj = self.meta.obj(&c);
                    c.sched.chan_rx_dropped(obj);
                }
            }
        }
    }

    pub use self::mpsc::sync_channel;

    // -- Racy ---------------------------------------------------------

    /// A cell for shared state the code under test must order by *other*
    /// means (locks, channel edges): every access is tracked by the
    /// vector-clock detector and two happens-before-unordered accesses
    /// (at least one a write) fail the check as a data race. Storage is a
    /// real mutex so the wrapper itself stays `unsafe`-free; the model's
    /// race check is on the happens-before relation, not on UB.
    pub struct Racy<T> {
        instance: u64,
        created: &'static Location<'static>,
        cell: std::sync::Mutex<T>,
    }

    impl<T: Copy> Racy<T> {
        #[track_caller]
        pub fn new(value: T) -> Self {
            Racy {
                instance: sched::next_instance(),
                created: Location::caller(),
                cell: std::sync::Mutex::new(value),
            }
        }

        fn hook(&self, kind: OpKind, site: &'static Location<'static>) {
            if let Some(c) = ctx() {
                let obj = c.sched.obj(self.instance, ObjKind::Racy, 0, self.created);
                let _ = c.sched.yield_op(c.tid, Op::on(kind, obj), site);
            }
        }

        fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
            let mut guard = match self.cell.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            f(&mut guard)
        }

        #[track_caller]
        pub fn get(&self) -> T {
            self.hook(OpKind::RacyRead, Location::caller());
            self.with(|v| *v)
        }

        #[track_caller]
        pub fn set(&self, value: T) {
            self.hook(OpKind::RacyWrite, Location::caller());
            self.with(|v| *v = value)
        }

        /// A non-atomic read-modify-write: a racy read, the closure, then
        /// a racy write — the scheduler can (and will) interleave other
        /// threads between the two halves.
        #[track_caller]
        pub fn update(&self, f: impl FnOnce(T) -> T) -> T {
            let site = Location::caller();
            self.hook(OpKind::RacyRead, site);
            let old = self.with(|v| *v);
            let new = f(old);
            self.hook(OpKind::RacyWrite, site);
            self.with(|v| *v = new);
            new
        }
    }
}

pub use imp::*;
