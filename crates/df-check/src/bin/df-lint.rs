//! The `df-lint` binary: lint the repository tree for sync-discipline
//! violations (see [`df_check::lint`] for the rules) and exit nonzero if
//! any are found. Usage: `df-lint [repo-root]` (default `.`).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    match df_check::lint::lint_tree(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("df-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("df-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("df-lint: error: {e}");
            ExitCode::FAILURE
        }
    }
}
