//! The `df-audit` binary: structure-aware static analysis over the
//! repository tree (see [`df_check::audit`] for the passes — decoder
//! panic-totality, static lock-order, spec exhaustiveness) and exit
//! nonzero if any violation is found. Usage: `df-audit [repo-root]`
//! (default `.`); `df-audit --graph [repo-root]` prints the derived
//! static lock-order graph instead of auditing.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let graph = args.first().is_some_and(|a| a == "--graph");
    if graph {
        args.remove(0);
    }
    let root = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    if graph {
        return match df_check::audit::analyze_locks(&root) {
            Ok(analysis) => {
                for ((held, acquired), site) in &analysis.edges {
                    println!(
                        "{held} -> {acquired}  (via {} at {}:{})",
                        site.via, site.file, site.line
                    );
                }
                for c in &analysis.creations {
                    println!("lock {} created at {}:{}", c.name, c.file, c.line);
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("df-audit: error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match df_check::audit::audit_tree(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("df-audit: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("df-audit: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("df-audit: error: {e}");
            ExitCode::FAILURE
        }
    }
}
