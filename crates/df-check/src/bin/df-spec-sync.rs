//! The `df-spec-sync` binary: verify that the normative DFW1 wire spec
//! (`docs/WIRE_FORMAT.md`) agrees with the codec constants in
//! `crates/df-types/src/wire.rs` (see [`df_check::spec`] for what is
//! compared) and exit nonzero on any drift.
//! Usage: `df-spec-sync [repo-root]` (default `.`).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    match df_check::spec::check_tree(&root) {
        Ok(mismatches) if mismatches.is_empty() => {
            println!("df-spec-sync: docs/WIRE_FORMAT.md matches df_types::wire");
            ExitCode::SUCCESS
        }
        Ok(mismatches) => {
            for m in &mismatches {
                eprintln!("df-spec-sync: {m}");
            }
            eprintln!("df-spec-sync: {} mismatch(es)", mismatches.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("df-spec-sync: error: {e}");
            ExitCode::FAILURE
        }
    }
}
