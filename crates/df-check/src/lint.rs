//! `df-lint`: the sync-discipline source lint (token-level, no rustc
//! internals — a comment/string-aware scrubber plus token-sequence
//! matching, so it is fast, dependency-free, and robust to formatting).
//!
//! Five rules, all motivated by keeping the model checker honest:
//!
//! 1. **No raw `std::sync` in the sync-scoped crates** (`df-server`,
//!    `df-storage`). Code there must import the [`crate::sync`] shims, or
//!    the model tests silently stop seeing its lock/channel operations.
//! 2. **No `.unwrap()` on lock results outside `#[cfg(test)]`** —
//!    `.lock().unwrap()`, `.read().unwrap()`, `.write().unwrap()` turn a
//!    poisoned lock (a panic on another thread) into a cascading panic in
//!    whatever thread touches the lock next; production code must decide
//!    (`.expect` with a message explaining why poisoning is impossible,
//!    or recovery via `unwrap_or_else(|p| p.into_inner())`).
//! 3. **`#![forbid(unsafe_code)]` in every first-party crate root**
//!    (everything under `crates/`; the vendored stand-ins are excluded).
//! 4. **`std::fs` confined to the storage IO modules** in the
//!    sync-scoped crates: only `persist.rs` (the segment codec) and
//!    `disk_sched.rs` (the background IO thread) may touch the
//!    filesystem. Anywhere else — an ingest worker, a shard, the buffer
//!    pool itself — direct file IO would run under shard locks and
//!    bypass the disk scheduler's queue, counters and shutdown drain.
//! 5. **No OS threads in model-test files**: `thread::spawn` /
//!    `std::thread::scope` in a `*df_check_models*.rs` suite spawns a
//!    thread the model scheduler cannot pause or order, silently turning
//!    exhaustive exploration into a plain racy run; model code must use
//!    [`crate::model::spawn`].
//!
//! Run as `cargo run -p df-check --bin df-lint -- <repo-root>`; wired
//! into `ci.sh`. Exits nonzero iff any violation is found.

use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose sources must use the `df_check::sync` shims.
pub const SYNC_SCOPED_CRATES: &[&str] = &["df-server", "df-storage", "df-cluster"];

/// File names (within the sync-scoped crates) allowed to use `std::fs`
/// directly: the segment codec and the disk-scheduler IO thread.
pub const FS_ALLOWED_FILES: &[&str] = &["persist.rs", "disk_sched.rs"];

#[derive(Debug, Clone)]
pub struct Violation {
    pub file: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

// ---------------------------------------------------------------------
// Source scrubbing
// ---------------------------------------------------------------------

/// Replace the contents of comments, string/char literals, and raw
/// strings with spaces, preserving newlines (so byte offsets map to the
/// original line numbers) and all code tokens. The result is safe for
/// naive token-sequence matching.
pub fn scrub(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;

    let blank = |c: u8| if c == b'\n' { b'\n' } else { b' ' };

    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                out.push(blank(b[i]));
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"..." / r#"..."# / br#"..."#.
        let raw_start = if c == b'r' {
            Some(i + 1)
        } else if c == b'b' && i + 1 < b.len() && b[i + 1] == b'r' {
            Some(i + 2)
        } else {
            None
        };
        let prev_ident = i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
        if let Some(mut j) = raw_start.filter(|_| !prev_ident) {
            let mut hashes = 0;
            while j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < b.len() && b[j] == b'"' {
                // Emit the prefix as spaces, then consume to the closing
                // quote followed by the same number of hashes.
                out.extend(std::iter::repeat_n(b' ', j - i + 1));
                i = j + 1;
                'raw: while i < b.len() {
                    if b[i] == b'"' {
                        let mut k = i + 1;
                        let mut seen = 0;
                        while k < b.len() && b[k] == b'#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            out.extend(std::iter::repeat_n(b' ', k - i));
                            i = k;
                            break 'raw;
                        }
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        // String / byte-string literal.
        if c == b'"' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'"' && !prev_ident) {
            if c == b'b' {
                out.push(b' ');
                i += 1;
            }
            out.push(b' ');
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    out.push(b' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    out.push(b' ');
                    i += 1;
                    break;
                }
                out.push(blank(b[i]));
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            let is_char = if i + 1 < b.len() && b[i + 1] == b'\\' {
                true
            } else {
                i + 2 < b.len() && b[i + 2] == b'\''
            };
            if is_char {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.push(b' ');
                        out.push(blank(b[i + 1]));
                        i += 2;
                        continue;
                    }
                    if b[i] == b'\'' {
                        out.push(b' ');
                        i += 1;
                        break;
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
            } else {
                // Lifetime: keep the tick (harmless) and move on.
                out.push(b'\'');
                i += 1;
            }
            continue;
        }
        out.push(c);
        i += 1;
    }
    String::from_utf8(out).expect("scrub only replaces ASCII bytes with spaces")
}

// ---------------------------------------------------------------------
// Token-sequence matching on scrubbed source
// ---------------------------------------------------------------------

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Match a sequence of literal tokens starting at `pos`, skipping
/// whitespace between (not within) tokens. Returns the end offset.
fn match_tokens(b: &[u8], mut pos: usize, tokens: &[&str]) -> Option<usize> {
    for (idx, tok) in tokens.iter().enumerate() {
        if idx > 0 {
            while pos < b.len() && (b[pos] as char).is_whitespace() {
                pos += 1;
            }
        }
        let t = tok.as_bytes();
        if pos + t.len() > b.len() || &b[pos..pos + t.len()] != t {
            return None;
        }
        // Identifier tokens must end at a word boundary.
        if is_ident(t[t.len() - 1]) && pos + t.len() < b.len() && is_ident(b[pos + t.len()]) {
            return None;
        }
        pos += t.len();
    }
    Some(pos)
}

fn line_of(src: &str, offset: usize) -> usize {
    src.as_bytes()[..offset]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

/// Byte ranges of `#[cfg(test)] ... { ... }` regions (attribute through
/// the matching close brace of the next block), where the lock-unwrap
/// rule does not apply. Also used by the `df-audit` structural layer
/// ([`crate::syntax`]) to mark items as test code.
pub(crate) fn test_regions(scrubbed: &str) -> Vec<(usize, usize)> {
    let b = scrubbed.as_bytes();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'#' {
            if let Some(end) = match_tokens(b, i, &["#", "[", "cfg", "(", "test", ")", "]"]) {
                // Find the next block and skip to its matching brace.
                let mut j = end;
                while j < b.len() && b[j] != b'{' && b[j] != b'#' {
                    j += 1;
                }
                if j < b.len() && b[j] == b'{' {
                    let mut depth = 0usize;
                    let mut k = j;
                    while k < b.len() {
                        if b[k] == b'{' {
                            depth += 1;
                        } else if b[k] == b'}' {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    regions.push((i, k.min(b.len())));
                    i = k.min(b.len());
                }
            }
        }
        i += 1;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], pos: usize) -> bool {
    regions.iter().any(|&(a, z)| pos >= a && pos <= z)
}

/// Does the (scrubbed) crate root carry `#![forbid(unsafe_code)]`?
pub fn has_forbid_unsafe(scrubbed: &str) -> bool {
    let b = scrubbed.as_bytes();
    (0..b.len()).any(|i| {
        b[i] == b'#'
            && match_tokens(
                b,
                i,
                &["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"],
            )
            .is_some()
    })
}

/// Lint one source file (already read). `sync_scoped` enables the
/// `std::sync` import ban and the lock-unwrap ban.
pub fn lint_source(file: &Path, source: &str, sync_scoped: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    if !sync_scoped {
        return out;
    }
    let scrubbed = scrub(source);
    let b = scrubbed.as_bytes();
    let tests = test_regions(&scrubbed);
    let fs_allowed = file
        .file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| FS_ALLOWED_FILES.contains(&n));
    let mut i = 0;
    while i < b.len() {
        let boundary = i == 0 || !is_ident(b[i - 1]);
        // Rule 1: any `std :: sync` path, import or inline.
        if boundary && b[i] == b's' {
            if let Some(end) = match_tokens(b, i, &["std", "::", "sync"]) {
                out.push(Violation {
                    file: file.to_path_buf(),
                    line: line_of(&scrubbed, i),
                    rule: "std-sync-import",
                    message: "raw std::sync path; use the df_check::sync shims so model \
                              tests see this operation"
                        .to_string(),
                });
                i = end;
                continue;
            }
            // Rule 4: any `std :: fs` path outside the storage IO modules.
            if !fs_allowed {
                if let Some(end) = match_tokens(b, i, &["std", "::", "fs"]) {
                    out.push(Violation {
                        file: file.to_path_buf(),
                        line: line_of(&scrubbed, i),
                        rule: "fs-confinement",
                        message: "direct std::fs outside persist.rs/disk_sched.rs; route file \
                                  IO through the DiskScheduler so it never runs under shard \
                                  locks"
                            .to_string(),
                    });
                    i = end;
                    continue;
                }
            }
        }
        // Rule 2: `.lock().unwrap()` / `.read().unwrap()` / `.write().unwrap()`.
        if b[i] == b'.' && !in_regions(&tests, i) {
            for m in ["lock", "read", "write"] {
                if let Some(end) = match_tokens(b, i, &[".", m, "(", ")", ".", "unwrap", "(", ")"])
                {
                    out.push(Violation {
                        file: file.to_path_buf(),
                        line: line_of(&scrubbed, i),
                        rule: "lock-unwrap",
                        message: format!(
                            ".{m}().unwrap() outside tests propagates lock poisoning as a \
                             cascading panic; use .expect(\"why poisoning is impossible\") or \
                             recover via unwrap_or_else(|p| p.into_inner())"
                        ),
                    });
                    i = end;
                    break;
                }
            }
        }
        i += 1;
    }
    out
}

/// File-name predicate for the model-test-file rule: the df-check model
/// suites are `*df_check_models*.rs` under a crate's `tests/` directory.
pub fn is_model_test_file(file: &Path) -> bool {
    file.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.contains("df_check_models") && n.ends_with(".rs"))
}

/// Rule 5: OS threads in model-test files. `thread::spawn` and
/// `thread::scope` (with or without a `std::` prefix) create threads the
/// model scheduler cannot pause or order, so a model suite using them
/// silently degrades from exhaustive exploration to one racy run.
pub fn lint_model_test_source(file: &Path, source: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let scrubbed = scrub(source);
    let b = scrubbed.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let boundary = i == 0 || !is_ident(b[i - 1]);
        if boundary && b[i] == b't' {
            for m in ["spawn", "scope"] {
                if let Some(end) = match_tokens(b, i, &["thread", "::", m]) {
                    out.push(Violation {
                        file: file.to_path_buf(),
                        line: line_of(&scrubbed, i),
                        rule: "model-thread-spawn",
                        message: format!(
                            "thread::{m} in a model-test file spawns an OS thread the model \
                             scheduler cannot see; use df_check::model::spawn so the checker \
                             controls every interleaving"
                        ),
                    });
                    i = end;
                    break;
                }
            }
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------
// Tree walking
// ---------------------------------------------------------------------

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Lint a repository tree: every crate under `<root>/crates/` must have
/// `#![forbid(unsafe_code)]` in its root, and the sync-scoped crates are
/// scanned file-by-file for the import/unwrap rules. Vendored crates
/// (`<root>/vendor/`) are not touched.
pub fn lint_tree(root: &Path) -> Result<Vec<Violation>, String> {
    let crates_dir = root.join("crates");
    let mut violations = Vec::new();
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read_dir {}: {e}", crates_dir.display()))?;
    let mut crate_dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        let lib_rs = crate_dir.join("src").join("lib.rs");
        if lib_rs.is_file() {
            let source = std::fs::read_to_string(&lib_rs)
                .map_err(|e| format!("read {}: {e}", lib_rs.display()))?;
            if !has_forbid_unsafe(&scrub(&source)) {
                violations.push(Violation {
                    file: lib_rs.clone(),
                    line: 1,
                    rule: "forbid-unsafe",
                    message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
                });
            }
        }
        if SYNC_SCOPED_CRATES.contains(&crate_name.as_str()) {
            let src = crate_dir.join("src");
            if src.is_dir() {
                let mut files = Vec::new();
                rust_files(&src, &mut files)?;
                for file in files {
                    let source = std::fs::read_to_string(&file)
                        .map_err(|e| format!("read {}: {e}", file.display()))?;
                    violations.extend(lint_source(&file, &source, true));
                }
            }
        }
        // Rule 5 applies to every crate's model-test suites.
        let tests_dir = crate_dir.join("tests");
        if tests_dir.is_dir() {
            let mut files = Vec::new();
            rust_files(&tests_dir, &mut files)?;
            for file in files.into_iter().filter(|f| is_model_test_file(f)) {
                let source = std::fs::read_to_string(&file)
                    .map_err(|e| format!("read {}: {e}", file.display()))?;
                violations.extend(lint_model_test_source(&file, &source));
            }
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings() {
        let src = "let a = \"std::sync\"; // std::sync\n/* std::sync */ let b = 'x';";
        let s = scrub(src);
        assert!(!s.contains("std::sync"), "scrubbed: {s}");
        assert!(s.contains("let a ="));
        assert!(s.contains("let b ="));
        assert_eq!(s.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn scrub_handles_raw_strings_and_lifetimes() {
        let src = "let r = r#\"std::sync::Mutex\"#; fn f<'a>(x: &'a str) {}";
        let s = scrub(src);
        assert!(!s.contains("std::sync"));
        assert!(s.contains("fn f<'a>"));
    }

    #[test]
    fn flags_std_sync_paths_but_not_shims() {
        let bad = "use std::sync::Mutex;\nlet m = std :: sync :: RwLock::new(0);";
        let v = lint_source(Path::new("x.rs"), bad, true);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "std-sync-import"));
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);

        let good = "use df_check::sync::{Arc, Mutex};\nuse df_check::sync::mpsc::sync_channel;";
        assert!(lint_source(Path::new("x.rs"), good, true).is_empty());

        // Out of scope: nothing flagged.
        assert!(lint_source(Path::new("x.rs"), bad, false).is_empty());
    }

    #[test]
    fn flags_lock_unwrap_outside_tests_only() {
        let bad = "fn f(m: &Mutex<u32>) { *m.lock().unwrap() += 1; }";
        let v = lint_source(Path::new("x.rs"), bad, true);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "lock-unwrap");

        let ok = "fn f(m: &Mutex<u32>) { *m.lock().expect(\"no panics hold this\") += 1; }\n\
                  fn g(r: Result<u32, ()>) { r.unwrap(); }";
        assert!(lint_source(Path::new("x.rs"), ok, true).is_empty());

        let in_tests = "#[cfg(test)]\nmod tests {\n fn f(m: &Mutex<u32>) { m.lock().unwrap(); }\n}";
        assert!(lint_source(Path::new("x.rs"), in_tests, true).is_empty());
    }

    #[test]
    fn flags_std_fs_outside_the_storage_io_modules() {
        let bad = "use std::fs;\npub fn f() { std :: fs :: read(\"x\").ok(); }";
        let v = lint_source(Path::new("store.rs"), bad, true);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "fs-confinement"));
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);

        // The two storage IO modules are exempt, by file name.
        assert!(lint_source(Path::new("persist.rs"), bad, true).is_empty());
        assert!(lint_source(Path::new("src/disk_sched.rs"), bad, true).is_empty());

        // Out of scope: nothing flagged.
        assert!(lint_source(Path::new("store.rs"), bad, false).is_empty());

        // `std::fmt` and a local `fs` module are not `std::fs`.
        let ok = "use std::fmt;\nmod fs { pub fn read() {} }\npub fn g() { fs::read(); }";
        assert!(lint_source(Path::new("store.rs"), ok, true).is_empty());
    }

    #[test]
    fn flags_os_threads_in_model_test_files() {
        assert!(is_model_test_file(Path::new(
            "crates/df-server/tests/df_check_models.rs"
        )));
        assert!(!is_model_test_file(Path::new(
            "crates/df-server/tests/concurrency.rs"
        )));

        let bad = "fn round() { let t = std::thread::spawn(|| {}); t.join().unwrap(); }\n\
                   fn scoped() { thread::scope(|s| { s.spawn(|| {}); }); }";
        let v = lint_model_test_source(Path::new("df_check_models.rs"), bad);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "model-thread-spawn"));
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);

        // model::spawn is the sanctioned API; a local `spawn` helper and
        // commented-out thread::spawn are fine too.
        let ok = "fn round() { let t = model::spawn(|| {}); t.join(); }\n\
                  // thread::spawn(|| {});\nfn h() { spawn(); }";
        assert!(lint_model_test_source(Path::new("df_check_models.rs"), ok).is_empty());
    }

    #[test]
    fn forbid_unsafe_detection() {
        assert!(has_forbid_unsafe(&scrub(
            "#![forbid(unsafe_code)]\npub fn f() {}"
        )));
        assert!(has_forbid_unsafe(&scrub("#! [ forbid ( unsafe_code ) ]")));
        assert!(!has_forbid_unsafe(&scrub(
            "// #![forbid(unsafe_code)]\npub fn f() {}"
        )));
        assert!(!has_forbid_unsafe(&scrub("#![deny(unsafe_code)]")));
    }
}
