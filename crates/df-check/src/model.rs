//! The model-checking executor: run a closure under every schedule (up to
//! a preemption bound, with state-hash dedup) and report the exact failing
//! interleaving, or prove the bounded space clean.
//!
//! * [`explore`] returns a [`CheckReport`] whether or not the closure
//!   failed — use it when a failure is the *expected* outcome (mutation
//!   tests) or when you want the exploration stats.
//! * [`check`] is the test-friendly wrapper: it panics with the rendered
//!   interleaving and decision vector on failure.
//! * [`replay`] re-executes one recorded decision vector deterministically
//!   — paste the `schedule` from a failure report to single-step a bug.
//! * [`spawn`]/[`JoinHandle`]/[`yield_now`] are the thread API model
//!   closures use; outside a model execution (or in an unchecked build)
//!   they fall through to `std::thread`.
//!
//! Without the `checked` feature (or `--cfg df_check`) the scheduler is
//! not compiled at all and [`explore`] degrades to running the closure
//! once on plain `std` primitives; gate tests that need real exploration
//! on [`crate::is_checked`].

#[cfg(any(feature = "checked", df_check))]
use crate::sched;
#[cfg(any(feature = "checked", df_check))]
use std::sync::{Arc, Mutex};

/// Exploration tunables. `Default` is a good starting point for protocol
/// models of 2–4 threads; see docs/ARCHITECTURE.md for budget guidance.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Preemption bound: schedules needing more involuntary context
    /// switches are not explored (2–3 finds almost all real bugs).
    pub max_preemptions: usize,
    /// Total schedules to explore before giving up (`complete: false`).
    pub max_schedules: usize,
    /// Per-run decision cap — exceeding it fails the run as a probable
    /// livelock ([`FailureKind::StepLimit`]).
    pub max_steps: usize,
    /// Treat a detected data race as a failure (on by default).
    pub fail_on_race: bool,
    /// Treat a lock-order cycle as a failure (on by default).
    pub fail_on_lock_cycle: bool,
    /// Replay exactly this decision vector once instead of exploring.
    pub replay: Option<Vec<usize>>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_preemptions: 2,
            max_schedules: 50_000,
            max_steps: 20_000,
            fail_on_race: true,
            fail_on_lock_cycle: true,
            replay: None,
        }
    }
}

impl CheckConfig {
    /// Apply CI budget overrides from the environment:
    /// `DF_CHECK_MAX_SCHEDULES` caps the schedule count and
    /// `DF_CHECK_MAX_PREEMPTIONS` the preemption bound, so `ci.sh` can
    /// bound the whole suite without editing each test.
    pub fn env_budget(mut self) -> Self {
        if let Some(n) = std::env::var("DF_CHECK_MAX_SCHEDULES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            self.max_schedules = n;
        }
        if let Some(n) = std::env::var("DF_CHECK_MAX_PREEMPTIONS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            self.max_preemptions = n;
        }
        self
    }
}

/// Why a schedule failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (an assertion in the closure failed).
    Panic,
    /// Every live thread was blocked.
    Deadlock,
    /// Two [`crate::sync::Racy`] accesses unordered by happens-before.
    DataRace,
    /// The lock-order graph contains a cycle that could block (reported
    /// even when every explored schedule passed).
    LockOrderCycle,
    /// A run exceeded [`CheckConfig::max_steps`] decisions.
    StepLimit,
}

/// A failed schedule: what went wrong, the interleaving that led there
/// (one rendered line per granted operation, with source locations), and
/// the decision vector [`replay`] re-executes verbatim.
#[derive(Debug, Clone)]
pub struct Failure {
    pub kind: FailureKind,
    pub message: String,
    pub trace: Vec<String>,
    pub schedule: Vec<usize>,
}

impl Failure {
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:?}: {}\nschedule {:?}\n",
            self.kind, self.message, self.schedule
        );
        for (i, line) in self.trace.iter().enumerate() {
            out.push_str(&format!("  {i:3}. {line}\n"));
        }
        out
    }
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct CheckReport {
    /// Schedules actually executed.
    pub schedules: usize,
    /// `true` iff the bounded, deduplicated schedule space was exhausted
    /// (nothing left to explore within the preemption bound).
    pub complete: bool,
    /// Runs cut short because their state hash had been seen before.
    pub states_pruned: usize,
    /// Lock-order cycles observed across all runs (deduplicated), each
    /// rendered as a `Kind#id (created src:line) -> ...` chain.
    pub lock_cycles: Vec<String>,
    /// The first failure encountered, if any.
    pub failure: Option<Failure>,
}

pub(crate) fn payload_msg(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------
// explore / check / replay
// ---------------------------------------------------------------------

/// Run `f` under DFS schedule exploration and return the report (no panic
/// on failure — assert on the report instead).
#[cfg(any(feature = "checked", df_check))]
pub fn explore<F>(cfg: CheckConfig, f: F) -> CheckReport
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut report = CheckReport {
        schedules: 0,
        complete: false,
        states_pruned: 0,
        lock_cycles: Vec::new(),
        failure: None,
    };
    let replay_only = cfg.replay.is_some();
    let mut target = cfg.replay.clone().unwrap_or_default();
    let mut seen = std::collections::HashSet::new();
    loop {
        let sched = sched::Scheduler::new(cfg.clone(), target.clone(), std::mem::take(&mut seen));
        let body = Arc::clone(&f);
        let s2 = Arc::clone(&sched);
        let main = std::thread::Builder::new()
            .name("df-check-main".to_string())
            .spawn(move || sched::run_model_thread(s2, 0, Box::new(move || body())))
            .expect("spawn model main thread");
        let outcome = sched.finish_run(main);
        report.schedules += 1;
        report.states_pruned = outcome.pruned;
        seen = outcome.seen;
        for c in outcome.lock_cycles {
            if !report.lock_cycles.contains(&c) {
                report.lock_cycles.push(c);
            }
        }
        if let Some(failure) = outcome.failure {
            report.failure = Some(failure);
            return report;
        }
        if cfg.fail_on_lock_cycle && !report.lock_cycles.is_empty() {
            report.failure = Some(Failure {
                kind: FailureKind::LockOrderCycle,
                message: format!(
                    "lock-order cycle(s) could deadlock under some schedule: {}",
                    report.lock_cycles.join(" | ")
                ),
                trace: Vec::new(),
                schedule: outcome.decisions.iter().map(|d| d.chosen).collect(),
            });
            return report;
        }
        if replay_only {
            return report;
        }
        match sched::next_target(&outcome.decisions, cfg.max_preemptions) {
            Some(t) => target = t,
            None => {
                report.complete = true;
                return report;
            }
        }
        if report.schedules >= cfg.max_schedules {
            return report;
        }
    }
}

/// Unchecked fallback: run the closure once on plain `std`; a panic maps
/// to a [`FailureKind::Panic`] report with no trace.
#[cfg(not(any(feature = "checked", df_check)))]
pub fn explore<F>(_cfg: CheckConfig, f: F) -> CheckReport
where
    F: Fn() + Send + Sync + 'static,
{
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
    CheckReport {
        schedules: 1,
        complete: false,
        states_pruned: 0,
        lock_cycles: Vec::new(),
        failure: result.err().map(|p| Failure {
            kind: FailureKind::Panic,
            message: payload_msg(p),
            trace: Vec::new(),
            schedule: Vec::new(),
        }),
    }
}

/// Every lock-order edge observed by model executions in this process,
/// as `(held, acquired)` lock-creation-site pairs formatted `file:line`.
/// `df-audit`'s static/dynamic cross-check feeds these to
/// [`crate::audit::check_runtime_edges`] to assert the static lock-order
/// graph predicted every edge the model suite actually exercised.
#[cfg(any(feature = "checked", df_check))]
pub fn runtime_lock_edges() -> Vec<(String, String)> {
    crate::sched::runtime_lock_edges()
}

/// Unchecked fallback: plain `std` locks record nothing, so the runtime
/// lock-order graph is empty.
#[cfg(not(any(feature = "checked", df_check)))]
pub fn runtime_lock_edges() -> Vec<(String, String)> {
    Vec::new()
}

/// [`explore`] with a test-friendly contract: panic with the rendered
/// interleaving (and replayable decision vector) on any failure, return
/// the report otherwise.
pub fn check<F>(cfg: CheckConfig, f: F) -> CheckReport
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore(cfg, f);
    if let Some(failure) = &report.failure {
        panic!("df-check failure\n{}", failure.render());
    }
    report
}

/// Deterministically re-execute one recorded decision vector (from
/// [`Failure::schedule`]) and return that single run's report.
pub fn replay<F>(schedule: Vec<usize>, f: F) -> CheckReport
where
    F: Fn() + Send + Sync + 'static,
{
    explore(
        CheckConfig {
            replay: Some(schedule),
            ..CheckConfig::default()
        },
        f,
    )
}

// ---------------------------------------------------------------------
// Thread API for model closures
// ---------------------------------------------------------------------

enum Imp<T> {
    Std(std::thread::JoinHandle<T>),
    #[cfg(any(feature = "checked", df_check))]
    Model {
        sched: Arc<sched::Scheduler>,
        tid: sched::Tid,
        slot: Arc<Mutex<Option<T>>>,
    },
}

/// Handle returned by [`spawn`]; [`JoinHandle::join`] returns the
/// closure's value (a panicked model thread fails the whole check, so
/// `join` does not surface per-thread errors).
pub struct JoinHandle<T>(Imp<T>);

impl<T> JoinHandle<T> {
    #[track_caller]
    pub fn join(self) -> T {
        match self.0 {
            Imp::Std(h) => h
                .join()
                .unwrap_or_else(|p| panic!("joined thread panicked: {}", payload_msg(p))),
            #[cfg(any(feature = "checked", df_check))]
            Imp::Model { sched, tid, slot } => {
                let ctx = sched::current().expect("model JoinHandle joined off-model");
                let _ = ctx.sched.yield_op(
                    ctx.tid,
                    sched::Op::join(tid),
                    std::panic::Location::caller(),
                );
                drop(sched);
                let mut guard = match slot.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                guard.take().expect("joined model thread stored its value")
            }
        }
    }
}

/// Spawn a thread. Inside a model execution this registers a new model
/// thread with the scheduler (the spawn is itself a yield point); outside
/// one it is `std::thread::spawn`.
#[track_caller]
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    #[cfg(any(feature = "checked", df_check))]
    if let Some(ctx) = sched::current() {
        let site = std::panic::Location::caller();
        let slot = Arc::new(Mutex::new(None));
        let slot2 = Arc::clone(&slot);
        let grant = ctx
            .sched
            .yield_op(ctx.tid, sched::Op::new(sched::OpKind::Spawn), site);
        let sched::Grant::Spawned(child) = grant else {
            panic!("spawn yielded a non-spawn grant: {grant:?}");
        };
        let sched2 = Arc::clone(&ctx.sched);
        let handle = std::thread::Builder::new()
            .name(format!("df-check-{child}"))
            .spawn(move || {
                sched::run_model_thread(
                    sched2,
                    child,
                    Box::new(move || {
                        let value = f();
                        let mut guard = match slot2.lock() {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                        *guard = Some(value);
                    }),
                )
            })
            .expect("spawn model thread");
        ctx.sched.os_thread_spawned(handle);
        return JoinHandle(Imp::Model {
            sched: Arc::clone(&ctx.sched),
            tid: child,
            slot,
        });
    }
    JoinHandle(Imp::Std(std::thread::spawn(f)))
}

/// A pure scheduling yield point (no object involved) — use it to give the
/// explorer a branch point inside busy loops.
#[track_caller]
pub fn yield_now() {
    #[cfg(any(feature = "checked", df_check))]
    if let Some(ctx) = sched::current() {
        let _ = ctx.sched.yield_op(
            ctx.tid,
            sched::Op::new(sched::OpKind::Yield),
            std::panic::Location::caller(),
        );
        return;
    }
    std::thread::yield_now();
}
