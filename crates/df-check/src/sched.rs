//! The model-checking scheduler (compiled only under `checked`/`df_check`).
//!
//! One execution ("run") explores exactly one schedule: every sync op in
//! [`crate::sync`] is a cooperative yield point, and at each yield the
//! scheduler makes one *decision* — which thread advances next, chosen
//! among the threads whose pending op is enabled. Model threads are real
//! OS threads, but at most one executes model code at a time; the rest are
//! parked on the scheduler's condvar, so everything between two yield
//! points runs exclusively and the whole run is deterministic given the
//! decision vector.
//!
//! Exploration is depth-first over decision vectors: a run replays a
//! `target` prefix, extends it with default choices (prefer the thread
//! that was already running — zero preemptions), and the explorer then
//! backtracks to the deepest decision with an untried alternative within
//! the preemption bound. States are deduplicated by a hash built from
//! per-thread operation-history hashes and per-object access-history
//! hashes: two interleavings of operations on disjoint objects fold to
//! the same hash, which prunes commuting schedules (a cheap cousin of
//! partial-order reduction). Dedup is sound for closures whose behaviour
//! depends only on what they observe through the shims, which the
//! `df-lint` import ban makes the norm.
//!
//! Layered on the same instrumentation:
//!
//! * **Vector clocks** — each thread and each sync object carries a clock;
//!   release joins the thread clock into the object, acquire joins the
//!   object clock into the thread (channel sends attach the sender's clock
//!   to the message). [`crate::sync::Racy`] accesses are checked against
//!   these clocks: a pair of accesses (at least one write) unordered by
//!   happens-before is reported as a data race with both sites.
//! * **Lock-order graph** — acquiring `B` while holding `A` records the
//!   edge `A → B` with both hold modes; a cycle whose edges are not all
//!   shared/shared is a potential deadlock and is reported even when every
//!   explored schedule happens to pass.

use crate::model::{payload_msg, CheckConfig, Failure, FailureKind};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Model thread id (0 is the closure's main thread).
pub type Tid = usize;
/// Per-run sync object id (registration order, deterministic per schedule).
pub type ObjId = usize;

const NO_OBJ: usize = usize::MAX;

/// Global instance counter for shim objects (stable identity handle; the
/// per-run [`ObjId`] is assigned at first use inside a run).
static INSTANCES: AtomicU64 = AtomicU64::new(1);

pub fn next_instance() -> u64 {
    INSTANCES.fetch_add(1, Ordering::Relaxed)
}

/// Process-global registry of every lock-order edge any model execution
/// has observed, as `(held, acquired)` creation-site pairs formatted
/// `file:line`. `df-audit`'s static/dynamic cross-check reads this after
/// the model suite runs to assert every runtime edge was statically
/// predicted (see [`crate::audit::check_runtime_edges`]).
static RUNTIME_LOCK_EDGES: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());

fn record_runtime_edge(held: &'static Location<'static>, acquired: &'static Location<'static>) {
    let pair = (
        format!("{}:{}", held.file(), held.line()),
        format!("{}:{}", acquired.file(), acquired.line()),
    );
    let mut reg = RUNTIME_LOCK_EDGES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if !reg.contains(&pair) {
        reg.push(pair);
    }
}

/// Every lock-order edge recorded by model executions in this process,
/// as `(held creation site, acquired creation site)` `file:line` pairs.
pub(crate) fn runtime_lock_edges() -> Vec<(String, String)> {
    RUNTIME_LOCK_EDGES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// What kind of shim object an [`ObjId`] refers to (for reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjKind {
    Mutex,
    RwLock,
    Condvar,
    Channel,
    Atomic,
    Racy,
}

/// One yield-point operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Begin,
    MutexLock,
    MutexUnlock,
    RwRead,
    RwWrite,
    RwUnlockRead,
    RwUnlockWrite,
    CvWait,
    CvNotifyOne,
    CvNotifyAll,
    ChanSend,
    ChanRecv,
    AtomicLoad,
    AtomicStore,
    AtomicRmw,
    RacyRead,
    RacyWrite,
    Spawn,
    Join,
    Yield,
    Finish,
}

/// An operation a thread is about to perform: kind, object (or [`NO_OBJ`])
/// and an auxiliary operand (the mutex for `CvWait`, the target thread for
/// `Join`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    pub kind: OpKind,
    pub obj: usize,
    pub aux: usize,
}

impl Op {
    pub fn new(kind: OpKind) -> Self {
        Op {
            kind,
            obj: NO_OBJ,
            aux: NO_OBJ,
        }
    }
    pub fn on(kind: OpKind, obj: ObjId) -> Self {
        Op {
            kind,
            obj,
            aux: NO_OBJ,
        }
    }
    pub fn cv_wait(cv: ObjId, mutex: ObjId) -> Self {
        Op {
            kind: OpKind::CvWait,
            obj: cv,
            aux: mutex,
        }
    }
    pub fn join(target: Tid) -> Self {
        Op {
            kind: OpKind::Join,
            obj: NO_OBJ,
            aux: target,
        }
    }
}

/// What a granted operation resolved to (channel ops can resolve to a
/// disconnect, spawn returns the new thread id).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grant {
    Ok,
    SendDisconnected,
    RecvDisconnected,
    Spawned(Tid),
}

/// One entry of the interleaving trace.
#[derive(Debug, Clone)]
pub struct Event {
    pub tid: Tid,
    pub op: Op,
    pub site: &'static Location<'static>,
    pub obj_kind: Option<ObjKind>,
    pub obj_site: Option<&'static Location<'static>>,
}

impl Event {
    pub fn render(&self) -> String {
        let what = match (self.obj_kind, self.obj_site) {
            (Some(k), Some(loc)) => format!(" {:?}#{} (created {})", k, self.op.obj, loc),
            _ => String::new(),
        };
        format!("T{} {:?}{} at {}", self.tid, self.op.kind, what, self.site)
    }
}

// ---------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    Running,
    SleepCv,
    Finished,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Excl,
    Shared,
}

#[derive(Debug)]
struct ThreadRec {
    status: Status,
    pending: Option<(Op, &'static Location<'static>)>,
    grant: Option<Grant>,
    vc: Vec<u64>,
    hist: u64,
    held: Vec<(ObjId, Mode)>,
    /// The mutex to reacquire when this thread is woken from a condvar.
    wait_mutex: Option<ObjId>,
}

impl ThreadRec {
    fn new(vc: Vec<u64>) -> Self {
        ThreadRec {
            status: Status::Ready,
            pending: None,
            grant: None,
            vc,
            hist: 0x9e3779b97f4a7c15,
            held: Vec::new(),
            wait_mutex: None,
        }
    }
}

#[derive(Debug)]
struct ObjRec {
    kind: ObjKind,
    created: &'static Location<'static>,
    vc: Vec<u64>,
    sig: u64,
    /// Mutex owner / RwLock writer.
    owner: Option<Tid>,
    /// RwLock readers (with multiplicity).
    readers: Vec<Tid>,
    /// Condvar waiters, FIFO.
    waiters: Vec<Tid>,
    /// Channel state.
    cap: usize,
    len: usize,
    senders: usize,
    rx_alive: bool,
    msg_vcs: VecDeque<Vec<u64>>,
    /// Racy-cell access history for the race detector.
    last_write: Option<(Tid, Vec<u64>, &'static Location<'static>)>,
    reads: Vec<(Tid, Vec<u64>, &'static Location<'static>)>,
}

impl ObjRec {
    fn new(kind: ObjKind, cap: usize, created: &'static Location<'static>) -> Self {
        ObjRec {
            kind,
            created,
            vc: Vec::new(),
            sig: 0x517cc1b727220a95,
            owner: None,
            readers: Vec::new(),
            waiters: Vec::new(),
            cap,
            len: 0,
            senders: 1,
            rx_alive: true,
            msg_vcs: VecDeque::new(),
            last_write: None,
            reads: Vec::new(),
        }
    }
}

/// One scheduling decision, kept for backtracking.
#[derive(Debug, Clone)]
pub struct Decision {
    pub(crate) order: Vec<Tid>,
    pub(crate) chosen: usize,
    pub(crate) preemptions_before: usize,
    pub(crate) last_running: Option<Tid>,
    pub(crate) last_in_order: bool,
    pub(crate) can_increment: bool,
}

struct SchedInner {
    cfg: CheckConfig,
    target: Vec<usize>,
    threads: Vec<ThreadRec>,
    objs: Vec<ObjRec>,
    obj_ids: HashMap<u64, ObjId>,
    decisions: Vec<Decision>,
    trace: Vec<Event>,
    last_running: Option<Tid>,
    preemptions: usize,
    live: usize,
    failure: Option<Failure>,
    aborting: bool,
    exec_done: bool,
    suppressed: bool,
    pruned: usize,
    seen: HashSet<u64>,
    /// Lock-order edges of this run: (held, acquired) → (hold mode, acquire mode).
    lock_edges: HashMap<(ObjId, ObjId), (Mode, Mode)>,
    os_unfinished: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// The per-run scheduler shared by every model thread of one execution.
pub struct Scheduler {
    inner: Mutex<SchedInner>,
    cv: Condvar,
}

/// Everything the explorer needs from a finished run.
pub struct RunOutcome {
    pub failure: Option<Failure>,
    pub decisions: Vec<Decision>,
    pub seen: HashSet<u64>,
    pub pruned: usize,
    pub lock_cycles: Vec<String>,
}

/// Panic payload used to tear model threads down after a failure; filtered
/// out by the thread wrapper so it is never reported as a model panic.
pub struct AbortPanic;

// ---------------------------------------------------------------------
// Thread-local model context
// ---------------------------------------------------------------------

#[derive(Clone)]
pub struct Ctx {
    pub sched: Arc<Scheduler>,
    pub tid: Tid,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The calling thread's model context, if it belongs to a model execution.
pub fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

// ---------------------------------------------------------------------
// Vector-clock helpers
// ---------------------------------------------------------------------

fn vc_join(a: &mut Vec<u64>, b: &[u64]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (i, &v) in b.iter().enumerate() {
        if a[i] < v {
            a[i] = v;
        }
    }
}

fn vc_leq(a: &[u64], b: &[u64]) -> bool {
    a.iter()
        .enumerate()
        .all(|(i, &v)| v <= b.get(i).copied().unwrap_or(0))
}

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v)
        .wrapping_mul(0x0001_0000_0000_01b3)
        .rotate_left(23)
        .wrapping_add(0x9e37_79b9)
}

fn op_hash(op: &Op) -> u64 {
    mix(mix(op.kind as u64 + 1, op.obj as u64), op.aux as u64)
}

impl Scheduler {
    pub fn new(cfg: CheckConfig, target: Vec<usize>, seen: HashSet<u64>) -> Arc<Self> {
        let mut main = ThreadRec::new(vec![1]);
        main.pending = Some((Op::new(OpKind::Begin), Location::caller()));
        Arc::new(Scheduler {
            inner: Mutex::new(SchedInner {
                cfg,
                target,
                threads: vec![main],
                objs: Vec::new(),
                obj_ids: HashMap::new(),
                decisions: Vec::new(),
                trace: Vec::new(),
                last_running: None,
                preemptions: 0,
                live: 1,
                failure: None,
                aborting: false,
                exec_done: false,
                suppressed: false,
                pruned: 0,
                seen,
                lock_edges: HashMap::new(),
                os_unfinished: 1,
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedInner> {
        // The scheduler's own mutex can only be poisoned by a bug in this
        // module; recover so teardown paths still work.
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Register (or look up) the per-run object id for a shim instance.
    pub fn obj(
        &self,
        instance: u64,
        kind: ObjKind,
        cap: usize,
        created: &'static Location<'static>,
    ) -> ObjId {
        let mut g = self.lock();
        if let Some(&id) = g.obj_ids.get(&instance) {
            return id;
        }
        let id = g.objs.len();
        g.objs.push(ObjRec::new(kind, cap, created));
        g.obj_ids.insert(instance, id);
        id
    }

    // -- silent (non-scheduling) state updates ------------------------

    /// Release a lock without a yield point (guard dropped during panic
    /// unwinding — the run is being torn down anyway).
    pub fn silent_release(&self, tid: Tid, obj: ObjId, shared: bool) {
        let mut g = self.lock();
        release_obj(
            &mut g,
            tid,
            obj,
            if shared { Mode::Shared } else { Mode::Excl },
        );
    }

    pub fn chan_sender_cloned(&self, obj: ObjId) {
        self.lock().objs[obj].senders += 1;
    }

    pub fn chan_sender_dropped(&self, obj: ObjId) {
        let mut g = self.lock();
        g.objs[obj].senders = g.objs[obj].senders.saturating_sub(1);
    }

    pub fn chan_rx_dropped(&self, obj: ObjId) {
        self.lock().objs[obj].rx_alive = false;
    }

    // -- model-thread lifecycle ---------------------------------------

    /// First call from a model OS thread: wait until the scheduler grants
    /// our `Begin`. The main thread (tid 0) kicks the very first decision.
    /// Returns `false` if the run aborted before we ever ran.
    pub fn begin(&self, tid: Tid) -> bool {
        let mut g = self.lock();
        if tid == 0 && !g.aborting {
            self.schedule(&mut g);
        }
        loop {
            if g.threads[tid].status == Status::Running {
                return true;
            }
            if g.aborting {
                return false;
            }
            g = match self.cv.wait(g) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Yield point: register the pending op, schedule, block until granted.
    pub fn yield_op(&self, tid: Tid, op: Op, site: &'static Location<'static>) -> Grant {
        let mut g = self.lock();
        if g.aborting {
            drop(g);
            return abort_now();
        }
        g.threads[tid].status = Status::Ready;
        g.threads[tid].pending = Some((op, site));
        g.threads[tid].grant = None;
        self.schedule(&mut g);
        loop {
            match g.threads[tid].status {
                Status::Running | Status::Finished => break,
                _ => {}
            }
            if g.aborting {
                drop(g);
                return abort_now();
            }
            g = match self.cv.wait(g) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        g.threads[tid].grant.take().unwrap_or(Grant::Ok)
    }

    /// Clean finish: the thread's closure returned.
    pub fn finish(&self, tid: Tid, site: &'static Location<'static>) {
        let _ = self.yield_op(tid, Op::new(OpKind::Finish), site);
    }

    /// Teardown finish: the thread's closure unwound (abort or panic).
    pub fn finish_aborted(&self, tid: Tid) {
        let mut g = self.lock();
        if g.threads[tid].status != Status::Finished {
            g.threads[tid].status = Status::Finished;
            g.live = g.live.saturating_sub(1);
        }
        if g.live == 0 {
            g.exec_done = true;
        }
        self.cv.notify_all();
    }

    /// A model thread panicked with a real (non-abort) payload.
    pub fn record_panic(&self, tid: Tid, msg: String) {
        let mut g = self.lock();
        if g.failure.is_none() {
            fail(
                &mut g,
                FailureKind::Panic,
                format!("model thread T{tid} panicked: {msg}"),
            );
        } else {
            g.aborting = true;
        }
        self.cv.notify_all();
    }

    /// The OS thread backing a model thread exited.
    pub fn os_thread_exited(&self) {
        let mut g = self.lock();
        g.os_unfinished = g.os_unfinished.saturating_sub(1);
        self.cv.notify_all();
    }

    pub fn os_thread_spawned(&self, handle: std::thread::JoinHandle<()>) {
        let mut g = self.lock();
        g.os_unfinished += 1;
        g.handles.push(handle);
    }

    /// Wait for the run to finish, join every model OS thread, and return
    /// the run outcome (failure, decisions, dedup set, lock cycles).
    pub fn finish_run(&self, main: std::thread::JoinHandle<()>) -> RunOutcome {
        let handles = {
            let mut g = self.lock();
            while g.os_unfinished > 0 {
                g = match self.cv.wait(g) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
            std::mem::take(&mut g.handles)
        };
        let _ = main.join();
        for h in handles {
            let _ = h.join();
        }
        let mut g = self.lock();
        let lock_cycles = lock_cycles(&g);
        RunOutcome {
            failure: g.failure.take(),
            decisions: std::mem::take(&mut g.decisions),
            seen: std::mem::take(&mut g.seen),
            pruned: g.pruned,
            lock_cycles,
        }
    }

    // -- the scheduling loop ------------------------------------------

    fn schedule(&self, g: &mut SchedInner) {
        loop {
            if g.aborting || g.exec_done {
                self.cv.notify_all();
                return;
            }
            if g.live == 0 {
                g.exec_done = true;
                self.cv.notify_all();
                return;
            }
            let enabled: Vec<Tid> = (0..g.threads.len())
                .filter(|&t| g.threads[t].status == Status::Ready && op_enabled(g, t))
                .collect();
            if enabled.is_empty() {
                let blocked: Vec<String> = (0..g.threads.len())
                    .filter(|&t| g.threads[t].status != Status::Finished)
                    .map(|t| describe_blocked(g, t))
                    .collect();
                fail(
                    g,
                    FailureKind::Deadlock,
                    format!(
                        "deadlock: every live thread is blocked [{}]",
                        blocked.join("; ")
                    ),
                );
                self.cv.notify_all();
                return;
            }
            if g.decisions.len() >= g.cfg.max_steps {
                fail(
                    g,
                    FailureKind::StepLimit,
                    format!("run exceeded {} decisions (livelock?)", g.cfg.max_steps),
                );
                self.cv.notify_all();
                return;
            }
            let preferred = g
                .last_running
                .filter(|t| enabled.contains(t))
                .unwrap_or(enabled[0]);
            let mut order = vec![preferred];
            order.extend(enabled.iter().copied().filter(|&t| t != preferred));
            let last_in_order = g.last_running.is_some_and(|lr| order.contains(&lr));
            let depth = g.decisions.len();
            let chosen = if depth < g.target.len() {
                g.target[depth].min(order.len() - 1)
            } else {
                if !g.suppressed {
                    let sig = state_sig(g);
                    if !g.seen.insert(sig) {
                        g.suppressed = true;
                        g.pruned += 1;
                    }
                }
                0
            };
            let t = order[chosen];
            let preempt = last_in_order && g.last_running != Some(t);
            let preemptions_before = g.preemptions;
            if preempt {
                g.preemptions += 1;
            }
            g.decisions.push(Decision {
                order: order.clone(),
                chosen,
                preemptions_before,
                last_running: g.last_running,
                last_in_order,
                can_increment: !g.suppressed,
            });
            grant(g, t);
            if g.threads[t].status == Status::Running {
                g.last_running = Some(t);
                self.cv.notify_all();
                return;
            }
            // CvWait put the thread to sleep, or Finish retired it — the
            // effect is applied but nobody is running: decide again.
            g.last_running = Some(t);
        }
    }
}

fn abort_now() -> Grant {
    if std::thread::panicking() {
        // A guard being dropped during unwinding must not double-panic.
        return Grant::Ok;
    }
    std::panic::panic_any(AbortPanic);
}

fn fail(g: &mut SchedInner, kind: FailureKind, message: String) {
    if g.failure.is_none() {
        g.failure = Some(Failure {
            kind,
            message,
            trace: g.trace.iter().map(Event::render).collect(),
            schedule: g.decisions.iter().map(|d| d.chosen).collect(),
        });
    }
    g.aborting = true;
    g.exec_done = true;
}

fn describe_blocked(g: &SchedInner, t: Tid) -> String {
    let rec = &g.threads[t];
    match rec.status {
        Status::SleepCv => format!("T{t} asleep on condvar"),
        _ => match rec.pending {
            Some((op, site)) => format!("T{t} blocked on {:?} at {site}", op.kind),
            None => format!("T{t} running"),
        },
    }
}

fn op_enabled(g: &SchedInner, t: Tid) -> bool {
    let Some((op, _)) = g.threads[t].pending else {
        return false;
    };
    match op.kind {
        OpKind::MutexLock => g.objs[op.obj].owner.is_none(),
        OpKind::RwRead => g.objs[op.obj].owner.is_none(),
        OpKind::RwWrite => {
            let o = &g.objs[op.obj];
            o.owner.is_none() && o.readers.is_empty()
        }
        OpKind::ChanSend => {
            let o = &g.objs[op.obj];
            o.len < o.cap || !o.rx_alive
        }
        OpKind::ChanRecv => {
            let o = &g.objs[op.obj];
            o.len > 0 || o.senders == 0
        }
        OpKind::Join => g.threads[op.aux].status == Status::Finished,
        _ => true,
    }
}

fn release_obj(g: &mut SchedInner, tid: Tid, obj: ObjId, mode: Mode) {
    let vc = g.threads[tid].vc.clone();
    let o = &mut g.objs[obj];
    match mode {
        Mode::Excl => o.owner = None,
        Mode::Shared => {
            if let Some(pos) = o.readers.iter().position(|&r| r == tid) {
                o.readers.remove(pos);
            }
        }
    }
    vc_join(&mut o.vc, &vc);
    let rec = &mut g.threads[tid];
    if rec.vc.len() <= tid {
        rec.vc.resize(tid + 1, 0);
    }
    rec.vc[tid] += 1;
    if let Some(pos) = rec.held.iter().position(|&(h, _)| h == obj) {
        rec.held.remove(pos);
    }
}

fn acquire_obj(g: &mut SchedInner, tid: Tid, obj: ObjId, mode: Mode) {
    // Lock-order edges from everything currently held to the new lock.
    let held = g.threads[tid].held.clone();
    for (h, hm) in held {
        if h != obj {
            g.lock_edges.entry((h, obj)).or_insert((hm, mode));
            record_runtime_edge(g.objs[h].created, g.objs[obj].created);
        }
    }
    match mode {
        Mode::Excl => g.objs[obj].owner = Some(tid),
        Mode::Shared => g.objs[obj].readers.push(tid),
    }
    let ovc = g.objs[obj].vc.clone();
    vc_join(&mut g.threads[tid].vc, &ovc);
    g.threads[tid].held.push((obj, mode));
}

/// Apply the effect of thread `t`'s pending op (it has been chosen).
fn grant(g: &mut SchedInner, t: Tid) {
    let (op, site) = g.threads[t]
        .pending
        .take()
        .expect("granted thread has a pending op");
    let (obj_kind, obj_site) = if op.obj != NO_OBJ {
        (Some(g.objs[op.obj].kind), Some(g.objs[op.obj].created))
    } else {
        (None, None)
    };
    g.trace.push(Event {
        tid: t,
        op,
        site,
        obj_kind,
        obj_site,
    });
    let mut next_status = Status::Running;
    match op.kind {
        OpKind::Begin | OpKind::Yield => {}
        OpKind::MutexLock | OpKind::RwWrite => acquire_obj(g, t, op.obj, Mode::Excl),
        OpKind::RwRead => acquire_obj(g, t, op.obj, Mode::Shared),
        OpKind::MutexUnlock | OpKind::RwUnlockWrite => release_obj(g, t, op.obj, Mode::Excl),
        OpKind::RwUnlockRead => release_obj(g, t, op.obj, Mode::Shared),
        OpKind::CvWait => {
            release_obj(g, t, op.aux, Mode::Excl);
            g.objs[op.obj].waiters.push(t);
            g.threads[t].wait_mutex = Some(op.aux);
            next_status = Status::SleepCv;
        }
        OpKind::CvNotifyOne | OpKind::CvNotifyAll => {
            let n_waiting = g.objs[op.obj].waiters.len();
            let n = if op.kind == OpKind::CvNotifyOne {
                n_waiting.min(1)
            } else {
                n_waiting
            };
            let woken: Vec<Tid> = g.objs[op.obj].waiters.drain(..n).collect();
            for w in woken {
                let m = g.threads[w]
                    .wait_mutex
                    .take()
                    .expect("sleeper has a wait mutex");
                g.threads[w].status = Status::Ready;
                g.threads[w].pending = Some((Op::on(OpKind::MutexLock, m), site));
            }
        }
        OpKind::ChanSend => {
            if g.objs[op.obj].rx_alive {
                let vc = g.threads[t].vc.clone();
                let o = &mut g.objs[op.obj];
                o.len += 1;
                o.msg_vcs.push_back(vc.clone());
                vc_join(&mut o.vc, &vc);
                let rec = &mut g.threads[t];
                if rec.vc.len() <= t {
                    rec.vc.resize(t + 1, 0);
                }
                rec.vc[t] += 1;
                g.threads[t].grant = Some(Grant::Ok);
            } else {
                g.threads[t].grant = Some(Grant::SendDisconnected);
            }
        }
        OpKind::ChanRecv => {
            if g.objs[op.obj].len > 0 {
                g.objs[op.obj].len -= 1;
                let mvc = g.objs[op.obj]
                    .msg_vcs
                    .pop_front()
                    .expect("msg clock in lockstep");
                vc_join(&mut g.threads[t].vc, &mvc);
                g.threads[t].grant = Some(Grant::Ok);
            } else {
                g.threads[t].grant = Some(Grant::RecvDisconnected);
            }
        }
        OpKind::AtomicLoad => {
            let ovc = g.objs[op.obj].vc.clone();
            vc_join(&mut g.threads[t].vc, &ovc);
        }
        OpKind::AtomicStore | OpKind::AtomicRmw => {
            let ovc = g.objs[op.obj].vc.clone();
            vc_join(&mut g.threads[t].vc, &ovc);
            let vc = g.threads[t].vc.clone();
            vc_join(&mut g.objs[op.obj].vc, &vc);
            let rec = &mut g.threads[t];
            if rec.vc.len() <= t {
                rec.vc.resize(t + 1, 0);
            }
            rec.vc[t] += 1;
        }
        OpKind::RacyRead => {
            let vc = g.threads[t].vc.clone();
            let race = g.objs[op.obj]
                .last_write
                .as_ref()
                .filter(|(wt, wvc, _)| *wt != t && !vc_leq(wvc, &vc))
                .map(|(wt, _, wsite)| (*wt, *wsite));
            if let Some((wt, wsite)) = race {
                if g.cfg.fail_on_race {
                    let msg = format!(
                        "data race on {:?}#{} (created {}): write by T{wt} at {wsite} is unordered with read by T{t} at {site}",
                        g.objs[op.obj].kind, op.obj, g.objs[op.obj].created
                    );
                    fail(g, FailureKind::DataRace, msg);
                    return;
                }
            }
            g.objs[op.obj].reads.push((t, vc, site));
        }
        OpKind::RacyWrite => {
            let vc = g.threads[t].vc.clone();
            let prior_write = g.objs[op.obj]
                .last_write
                .as_ref()
                .filter(|(wt, wvc, _)| *wt != t && !vc_leq(wvc, &vc))
                .map(|(wt, _, wsite)| (*wt, *wsite, "write"));
            let prior_read = g.objs[op.obj]
                .reads
                .iter()
                .find(|(rt, rvc, _)| *rt != t && !vc_leq(rvc, &vc))
                .map(|(rt, _, rsite)| (*rt, *rsite, "read"));
            if let Some((ot, osite, what)) = prior_write.or(prior_read) {
                if g.cfg.fail_on_race {
                    let msg = format!(
                        "data race on {:?}#{} (created {}): {what} by T{ot} at {osite} is unordered with write by T{t} at {site}",
                        g.objs[op.obj].kind, op.obj, g.objs[op.obj].created
                    );
                    fail(g, FailureKind::DataRace, msg);
                    return;
                }
            }
            g.objs[op.obj].last_write = Some((t, vc, site));
            g.objs[op.obj].reads.clear();
        }
        OpKind::Spawn => {
            let child = g.threads.len();
            let mut vc = g.threads[t].vc.clone();
            if vc.len() <= child {
                vc.resize(child + 1, 0);
            }
            vc[child] = 1;
            let mut rec = ThreadRec::new(vc);
            rec.pending = Some((Op::new(OpKind::Begin), site));
            g.threads.push(rec);
            g.live += 1;
            let parent = &mut g.threads[t];
            if parent.vc.len() <= t {
                parent.vc.resize(t + 1, 0);
            }
            parent.vc[t] += 1;
            g.threads[t].grant = Some(Grant::Spawned(child));
        }
        OpKind::Join => {
            let tvc = g.threads[op.aux].vc.clone();
            vc_join(&mut g.threads[t].vc, &tvc);
        }
        OpKind::Finish => {
            let rec = &mut g.threads[t];
            if rec.vc.len() <= t {
                rec.vc.resize(t + 1, 0);
            }
            rec.vc[t] += 1;
            next_status = Status::Finished;
            g.live -= 1;
            if g.live == 0 {
                g.exec_done = true;
            }
        }
    }
    // History hashes for state dedup: thread and object histories are
    // intertwined so that equal hashes imply equal observable histories.
    if op.obj != NO_OBJ {
        let th = g.threads[t].hist;
        let o = &mut g.objs[op.obj];
        o.sig = mix(o.sig, mix(th, op_hash(&op)));
        let osig = o.sig;
        g.threads[t].hist = mix(th, osig);
    } else {
        g.threads[t].hist = mix(g.threads[t].hist, op_hash(&op));
    }
    g.threads[t].status = next_status;
}

/// Hash of the scheduler-visible state at a decision point. Equal hashes
/// mean (w.h.p.) equal per-thread/per-object observable histories, which
/// for closures that communicate only through the shims means equal
/// continuations — safe to prune.
fn state_sig(g: &SchedInner) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for t in &g.threads {
        h = mix(h, t.status as u64);
        h = mix(h, t.hist);
        if let Some((op, _)) = t.pending {
            h = mix(h, op_hash(&op));
        }
    }
    for o in &g.objs {
        h = mix(h, o.sig);
        h = mix(h, o.owner.map_or(u64::MAX, |t| t as u64));
        h = mix(h, o.readers.len() as u64);
        h = mix(h, o.waiters.len() as u64);
        h = mix(h, o.len as u64);
        h = mix(h, o.senders as u64);
        h = mix(h, u64::from(o.rx_alive));
    }
    h
}

/// Cycles in the run's lock-order graph that could actually block (at
/// least one edge involves an exclusive mode), rendered for the report.
fn lock_cycles(g: &SchedInner) -> Vec<String> {
    let mut adj: HashMap<ObjId, Vec<ObjId>> = HashMap::new();
    for &(a, b) in g.lock_edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut cycles = Vec::new();
    let nodes: Vec<ObjId> = adj.keys().copied().collect();
    for &start in &nodes {
        // DFS from each node looking for a path back to it.
        let mut stack = vec![(start, vec![start])];
        let mut visited: HashSet<ObjId> = HashSet::new();
        while let Some((node, path)) = stack.pop() {
            for &nxt in adj.get(&node).into_iter().flatten() {
                if nxt == start {
                    let mut full = path.clone();
                    full.push(start);
                    let all_shared = full.windows(2).all(|w| {
                        matches!(
                            g.lock_edges.get(&(w[0], w[1])),
                            Some((Mode::Shared, Mode::Shared))
                        )
                    });
                    if !all_shared
                        && start == *full[..full.len() - 1].iter().min().expect("nonempty")
                    {
                        let chain: Vec<String> = full
                            .iter()
                            .map(|&o| {
                                format!(
                                    "{:?}#{} (created {})",
                                    g.objs[o].kind, o, g.objs[o].created
                                )
                            })
                            .collect();
                        let rendered = chain.join(" -> ");
                        if !cycles.contains(&rendered) {
                            cycles.push(rendered);
                        }
                    }
                } else if visited.insert(nxt) {
                    let mut p = path.clone();
                    p.push(nxt);
                    stack.push((nxt, p));
                }
            }
        }
    }
    cycles
}

/// The explorer's backtracking step: deepest decision with an untried
/// alternative within the preemption bound, or `None` when the (bounded,
/// deduplicated) schedule space is exhausted.
pub fn next_target(decisions: &[Decision], bound: usize) -> Option<Vec<usize>> {
    for i in (0..decisions.len()).rev() {
        let d = &decisions[i];
        if !d.can_increment {
            continue;
        }
        for c in (d.chosen + 1)..d.order.len() {
            let preempt = d.last_in_order && d.last_running != Some(d.order[c]);
            if d.preemptions_before + usize::from(preempt) <= bound {
                let mut t: Vec<usize> = decisions[..i].iter().map(|d| d.chosen).collect();
                t.push(c);
                return Some(t);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Model-thread wrapper
// ---------------------------------------------------------------------

/// Install (once) a panic-hook filter that silences expected model-thread
/// panics — both real assertion failures (which the checker reports
/// itself, with the schedule) and `AbortPanic` teardowns.
fn quiet_model_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let name = std::thread::current().name().map(str::to_string);
            if name.as_deref().is_some_and(|n| n.starts_with("df-check-")) {
                return;
            }
            prev(info);
        }));
    });
}

/// Body of every model OS thread: gate on `Begin`, run the closure under
/// the thread-local model context, then finish (cleanly or aborted).
pub fn run_model_thread(sched: Arc<Scheduler>, tid: Tid, f: Box<dyn FnOnce() + Send>) {
    quiet_model_panics();
    if !sched.begin(tid) {
        sched.finish_aborted(tid);
        sched.os_thread_exited();
        return;
    }
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            sched: Arc::clone(&sched),
            tid,
        })
    });
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    CTX.with(|c| c.borrow_mut().take());
    match result {
        Ok(()) => sched.finish(tid, Location::caller()),
        Err(payload) => {
            if payload.downcast_ref::<AbortPanic>().is_none() {
                sched.record_panic(tid, payload_msg(payload));
            }
            sched.finish_aborted(tid);
        }
    }
    sched.os_thread_exited();
}
