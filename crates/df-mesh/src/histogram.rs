//! Log-linear latency histogram (HdrHistogram-style), for the wrk2-like
//! load generator's coordinated-omission-free latency recording
//! (paper §5.4 / Appendix B use wrk2).

use df_types::DurationNs;

const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = 5; // log2(SUB_BUCKETS)
const MAJORS: usize = 64;

/// A fixed-memory histogram of nanosecond durations with ~3% relative error.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: u64,
    min: u64,
    sum: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; MAJORS * SUB_BUCKETS],
            total: 0,
            max: 0,
            min: u64::MAX,
            sum: 0,
        }
    }

    fn index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let major = (msb - SUB_BITS + 1) as usize;
        let sub = (value >> (major as u32 - 1)) as usize & (SUB_BUCKETS - 1);
        (major * SUB_BUCKETS + sub).min(MAJORS * SUB_BUCKETS - 1)
    }

    fn bucket_value(index: usize) -> u64 {
        let major = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if major == 0 {
            return sub;
        }
        // Bucket covers [(32+sub) << (major-1), (32+sub+1) << (major-1));
        // report the midpoint.
        let shift = major as u32 - 1;
        let lo = (SUB_BUCKETS as u64 + sub) << shift;
        lo + (1u64 << shift) / 2
    }

    /// Record one duration.
    pub fn record(&mut self, d: DurationNs) {
        let v = d.as_nanos();
        self.counts[Self::index(v)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate value at a quantile in [0, 1].
    pub fn quantile(&self, q: f64) -> DurationNs {
        if self.total == 0 {
            return DurationNs::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                let v = Self::bucket_value(i);
                return DurationNs(v.clamp(self.min, self.max));
            }
        }
        DurationNs(self.max)
    }

    /// Median.
    pub fn p50(&self) -> DurationNs {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> DurationNs {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> DurationNs {
        self.quantile(0.99)
    }

    /// Mean.
    pub fn mean(&self) -> DurationNs {
        self.sum
            .checked_div(self.total)
            .map_or(DurationNs::ZERO, DurationNs)
    }

    /// Maximum recorded value.
    pub fn max(&self) -> DurationNs {
        if self.total == 0 {
            DurationNs::ZERO
        } else {
            DurationNs(self.max)
        }
    }

    /// Minimum recorded value.
    pub fn min(&self) -> DurationNs {
        if self.total == 0 {
            DurationNs::ZERO
        } else {
            DurationNs(self.min)
        }
    }

    /// Merge another histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), DurationNs::ZERO);
        assert_eq!(h.mean(), DurationNs::ZERO);
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(DurationNs(v));
        }
        assert_eq!(h.p50(), DurationNs(3));
        assert_eq!(h.min(), DurationNs(1));
        assert_eq!(h.max(), DurationNs(5));
        assert_eq!(h.mean(), DurationNs(3));
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LatencyHistogram::new();
        // 10k samples uniform in [1ms, 10ms]
        for i in 0..10_000u64 {
            h.record(DurationNs(1_000_000 + i * 900));
        }
        let p50 = h.p50().as_nanos() as f64;
        let expect = 1_000_000.0 + 5_000.0 * 900.0;
        assert!(
            (p50 - expect).abs() / expect < 0.10,
            "p50 {p50} vs {expect}"
        );
        let p99 = h.p99().as_nanos() as f64;
        let expect99 = 1_000_000.0 + 9_900.0 * 900.0;
        assert!(
            (p99 - expect99).abs() / expect99 < 0.10,
            "p99 {p99} vs {expect99}"
        );
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..1000u64 {
            h.record(DurationNs(i * i));
        }
        let mut last = DurationNs::ZERO;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q}) regressed");
            last = v;
        }
    }

    #[test]
    fn merge_combines_populations() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for _ in 0..100 {
            a.record(DurationNs(1_000));
            b.record(DurationNs(100_000));
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert!(a.p50() <= DurationNs(2_000) || a.p50() >= DurationNs(90_000));
        assert_eq!(a.min(), DurationNs(1_000));
        assert!(a.max() >= DurationNs(99_000));
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record(DurationNs(0));
        h.record(DurationNs(u64::MAX));
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) > DurationNs::ZERO);
    }
}
