//! The discrete-event world: kernels + fabric + services + clients under
//! one virtual clock.
//!
//! Everything observable happens through real substrate calls — services do
//! honest syscalls on their node's [`Kernel`], segments travel the
//! [`Fabric`], agents hook the kernels. The world merely sequences events:
//!
//! * [`Event::Deliver`] — a segment arrives at a node's kernel;
//! * [`Event::Resume`] — a thread unblocks (socket wakeup or compute timer);
//! * [`Event::ClientFire`] — the open-loop load generator's next request is
//!   due (wrk2-style constant throughput);
//! * [`Event::Internal`] — a proxy's cross-thread handoff queue gained work.

use crate::client::{self, Client};
use crate::service::{self, Service};
use df_kernel::{Kernel, KernelConfig};
use df_net::fabric::Fabric;
use df_types::packet::Segment;
use df_types::{L7Protocol, NodeId, Tid, TimeNs};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::net::Ipv4Addr;

/// Simulator events.
#[derive(Debug, Clone)]
pub enum Event {
    /// Segment delivery to a node.
    Deliver {
        /// Destination node.
        node: NodeId,
        /// The segment.
        segment: Segment,
    },
    /// A thread should resume (retry its blocked syscall / timer fired).
    Resume {
        /// Node.
        node: NodeId,
        /// Thread.
        tid: Tid,
    },
    /// A load-generator request is due.
    ClientFire {
        /// Client index.
        client: usize,
        /// Scheduled fire time (the latency baseline — coordinated-omission
        /// free, like wrk2).
        scheduled: TimeNs,
    },
    /// A client request timed out.
    ClientTimeout {
        /// Client index.
        client: usize,
        /// Connection index.
        conn: usize,
        /// The request sequence the timeout guards.
        req_seq: u64,
    },
    /// A proxy handoff queue became non-empty.
    Internal {
        /// Service index.
        service: usize,
    },
}

#[derive(Debug)]
struct Queued {
    at: TimeNs,
    seq: u64,
    ev: Event,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Queued>>,
    seq: u64,
}

impl EventQueue {
    /// Schedule an event.
    pub fn schedule(&mut self, at: TimeNs, ev: Event) {
        self.seq += 1;
        self.heap.push(Reverse(Queued {
            at,
            seq: self.seq,
            ev,
        }));
    }

    fn pop(&mut self) -> Option<(TimeNs, Event)> {
        self.heap.pop().map(|Reverse(q)| (q.at, q.ev))
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Which task owns a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Owner {
    /// A service worker.
    Service {
        /// Service index.
        idx: usize,
        /// Worker index within the service.
        worker: usize,
    },
    /// A client connection.
    Client {
        /// Client index.
        idx: usize,
        /// Connection index.
        conn: usize,
    },
}

/// A resolved service endpoint.
#[derive(Debug, Clone, Copy)]
pub struct Endpoint {
    /// Service IP.
    pub ip: Ipv4Addr,
    /// Service port.
    pub port: u16,
    /// Protocol the service speaks.
    pub protocol: L7Protocol,
}

/// Execution context handed to task state machines: everything except the
/// task collections themselves (disjoint borrows).
pub struct Ctx<'a> {
    /// Kernels by node.
    pub kernels: &'a mut BTreeMap<NodeId, Kernel>,
    /// The network.
    pub fabric: &'a mut Fabric,
    /// The event queue.
    pub queue: &'a mut EventQueue,
    /// Service registry.
    pub registry: &'a HashMap<String, Endpoint>,
    /// Owner table (so tasks can register new threads).
    pub owners: &'a mut HashMap<(NodeId, Tid), Owner>,
    /// Deterministic randomness.
    pub rng: &'a mut SmallRng,
    /// Per-node CPU tax: the fraction of node compute capacity consumed by
    /// co-resident monitoring (a deployed agent's user-space processing).
    /// Service compute stretches by `1 + tax` on taxed nodes.
    pub cpu_tax: &'a HashMap<NodeId, f64>,
}

impl Ctx<'_> {
    /// The compute-stretch factor for a node.
    pub fn compute_stretch(&self, node: NodeId) -> f64 {
        1.0 + self.cpu_tax.get(&node).copied().unwrap_or(0.0)
    }
}

impl Ctx<'_> {
    /// The kernel of a node.
    pub fn kernel(&mut self, node: NodeId) -> &mut Kernel {
        self.kernels.get_mut(&node).expect("node has a kernel")
    }

    /// Push a node's outbound segments through the fabric, scheduling their
    /// deliveries.
    pub fn flush(&mut self, node: NodeId, t: TimeNs) {
        let segs = self.kernel(node).drain_outbox();
        for seg in segs {
            for d in self.fabric.transmit(seg, t) {
                self.queue.schedule(
                    d.at,
                    Event::Deliver {
                        node: d.node,
                        segment: d.segment,
                    },
                );
            }
        }
    }
}

/// The world.
pub struct World {
    /// Kernels by node (public: agents poll them).
    pub kernels: BTreeMap<NodeId, Kernel>,
    /// The network (public: agents drain taps; tests inject faults).
    pub fabric: Fabric,
    /// Services.
    pub services: Vec<Service>,
    /// Clients (load generators).
    pub clients: Vec<Client>,
    registry: HashMap<String, Endpoint>,
    queue: EventQueue,
    owners: HashMap<(NodeId, Tid), Owner>,
    /// Per-node CPU tax (monitoring overhead model; see [`Ctx::cpu_tax`]).
    pub cpu_tax: HashMap<NodeId, f64>,
    now: TimeNs,
    rng: SmallRng,
    steps: u64,
}

impl World {
    /// Build a world over a fabric: one kernel per topology node.
    pub fn new(fabric: Fabric, seed: u64) -> Self {
        let mut kernels = BTreeMap::new();
        for node in fabric.topology.node_ids() {
            let name = fabric
                .topology
                .node_name(node)
                .unwrap_or("node")
                .to_string();
            // NOTE: the kernel itself mixes its node id into the seed; do
            // not pre-XOR it here or the two mixes cancel and every kernel
            // draws identical initial sequence numbers (which would make
            // unrelated flows collide on tcp_seq).
            kernels.insert(
                node,
                Kernel::new(KernelConfig {
                    node,
                    hostname: name,
                    seed: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    ..Default::default()
                }),
            );
        }
        World {
            kernels,
            fabric,
            services: Vec::new(),
            clients: Vec::new(),
            registry: HashMap::new(),
            queue: EventQueue::default(),
            owners: HashMap::new(),
            cpu_tax: HashMap::new(),
            now: TimeNs::ZERO,
            rng: SmallRng::seed_from_u64(seed),
            steps: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> TimeNs {
        self.now
    }

    /// Resolve a registered service.
    pub fn endpoint(&self, name: &str) -> Option<Endpoint> {
        self.registry.get(name).copied()
    }

    /// Register a pseudo-endpoint (e.g. an L4 gateway VIP) that clients can
    /// dial by name.
    pub fn register_endpoint(&mut self, name: &str, endpoint: Endpoint) {
        self.registry.insert(name.to_string(), endpoint);
    }

    /// Register and start a service. Spawns its process, binds its
    /// listener, and parks every worker in `accept`.
    pub fn add_service(&mut self, spec: service::ServiceSpec) -> usize {
        let idx = self.services.len();
        self.registry.insert(
            spec.name.clone(),
            Endpoint {
                ip: spec.ip,
                port: spec.port,
                protocol: spec.protocol,
            },
        );
        let svc = service::Service::start(spec, idx, &mut self.kernels, &mut self.owners, self.now);
        self.services.push(svc);
        idx
    }

    /// Register a client (load generator) and schedule its request arrivals
    /// (constant-throughput open loop over `[start, start+duration)`).
    pub fn add_client(&mut self, spec: client::ClientSpec) -> usize {
        let idx = self.clients.len();
        let cl = client::Client::start(
            spec,
            idx,
            &mut self.kernels,
            &mut self.owners,
            &mut self.queue,
            self.now,
        );
        self.clients.push(cl);
        idx
    }

    /// Schedule a raw event (tests, custom scenarios).
    pub fn schedule(&mut self, at: TimeNs, ev: Event) {
        self.queue.schedule(at, ev);
    }

    /// Execute one event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.steps += 1;
        let World {
            kernels,
            fabric,
            services,
            clients,
            registry,
            queue,
            owners,
            rng,
            now,
            cpu_tax,
            ..
        } = self;
        let mut ctx = Ctx {
            kernels,
            fabric,
            queue,
            registry,
            owners,
            rng,
            cpu_tax,
        };
        match ev {
            Event::Deliver { node, segment } => {
                let wakeups = ctx.kernel(node).deliver(&segment, *now);
                ctx.flush(node, *now);
                for w in wakeups {
                    ctx.queue.schedule(*now, Event::Resume { node, tid: w.tid });
                }
            }
            Event::Resume { node, tid } => {
                match ctx.owners.get(&(node, tid)).copied() {
                    Some(Owner::Service { idx, worker }) => {
                        service::step(&mut services[idx], &mut ctx, worker, *now);
                    }
                    Some(Owner::Client { idx, conn }) => {
                        client::resume(&mut clients[idx], &mut ctx, conn, *now);
                    }
                    None => {} // thread died / unowned
                }
            }
            Event::ClientFire { client, scheduled } => {
                client::fire(&mut clients[client], &mut ctx, scheduled, *now);
            }
            Event::ClientTimeout {
                client,
                conn,
                req_seq,
            } => {
                client::timeout(&mut clients[client], &mut ctx, conn, req_seq, *now);
            }
            Event::Internal { service } => {
                service::internal(&mut services[service], &mut ctx, *now);
            }
        }
        true
    }

    /// Run until the queue drains or virtual time reaches `until`.
    pub fn run_until(&mut self, until: TimeNs) {
        while let Some(Reverse(q)) = self.queue.heap.peek() {
            if q.at > until {
                break;
            }
            self.step();
        }
        self.now = self
            .now
            .max(until.min(self.now + df_types::DurationNs::ZERO));
        if self.queue.is_empty() || self.peek_time().map(|t| t > until).unwrap_or(true) {
            self.now = until;
        }
    }

    /// Run until the event queue is empty (quiescence).
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    fn peek_time(&self) -> Option<TimeNs> {
        self.queue.heap.peek().map(|Reverse(q)| q.at)
    }

    /// Events executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_net::fabric::FabricConfig;
    use df_net::topology::Topology;

    fn empty_world() -> World {
        let mut topo = Topology::new();
        topo.add_simple_node("n1", Ipv4Addr::new(192, 168, 0, 1));
        World::new(Fabric::new(topo, FabricConfig::default()), 42)
    }

    #[test]
    fn queue_orders_by_time_then_fifo() {
        let mut q = EventQueue::default();
        q.schedule(TimeNs(30), Event::Internal { service: 3 });
        q.schedule(TimeNs(10), Event::Internal { service: 1 });
        q.schedule(TimeNs(10), Event::Internal { service: 2 });
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, ev)| match ev {
                Event::Internal { service } => service,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3], "same-time events keep FIFO order");
    }

    #[test]
    fn world_creates_one_kernel_per_node() {
        let w = empty_world();
        assert_eq!(w.kernels.len(), 1);
        assert_eq!(w.now(), TimeNs::ZERO);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut w = empty_world();
        w.run_until(TimeNs::from_secs(5));
        assert_eq!(w.now(), TimeNs::from_secs(5));
    }

    #[test]
    fn resume_of_unowned_thread_is_harmless() {
        let mut w = empty_world();
        let node = *w.kernels.keys().next().unwrap();
        w.schedule(TimeNs(5), Event::Resume { node, tid: Tid(99) });
        w.run_to_quiescence();
        assert_eq!(w.steps(), 1);
    }
}
