//! # df-mesh — the microservice simulator
//!
//! The workload substrate for every experiment (DESIGN.md §1): simulated
//! microservices doing *real* syscalls on simulated kernels, connected by
//! the virtual network, driven by a discrete-event loop, and loaded by a
//! wrk2-style open-loop generator. The services are deliberately
//! tracer-oblivious — DeepFlow observes them from the kernel, in zero code;
//! intrusive baselines plug in through the [`tracer::AppTracer`] interface.
//!
//! * [`sim`] — the [`sim::World`]: kernels + fabric + event queue;
//! * [`service`] — service components: leaf servers, call chains, reverse
//!   proxies with X-Request-ID (optionally cross-thread), coroutine
//!   runtimes, TLS services;
//! * [`client`] — constant-throughput open-loop load generator with
//!   HdrHistogram-style latency recording;
//! * [`histogram`] — the latency histogram;
//! * [`tracer`] — the intrusive-SDK interface the Fig. 16 baselines
//!   implement;
//! * [`apps`] — the paper's application templates: the Spring Boot demo,
//!   Istio Bookinfo (with sidecars), an Nginx ingress, and an AMQP broker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod client;
pub mod histogram;
pub mod service;
pub mod sim;
pub mod tracer;

pub use client::{Client, ClientSpec};
pub use histogram::LatencyHistogram;
pub use service::{Behavior, Call, RuntimeKind, Service, ServiceSpec};
pub use sim::{Ctx, Event, Owner, World};
pub use tracer::{AppTracer, NoopTracer};
