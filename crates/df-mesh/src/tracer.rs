//! The intrusive-tracer interface (explicit context propagation).
//!
//! The mesh calls these hooks when a service has an *intrusive* tracing SDK
//! "instrumented" into it — the Fig. 16 baselines (Jaeger-like,
//! Zipkin-like, implemented in `df-baselines`). A tracer creates app spans,
//! tells the service which headers to inject into downstream requests
//! (explicit context propagation, §3.3), and charges a per-operation
//! virtual overhead that models the SDK's instrumentation cost.
//!
//! DeepFlow itself never appears here: its whole point is that the mesh
//! services run **uninstrumented** and tracing happens in the kernel.

use df_protocols::TraceHeaders;
use df_types::span::Span;
use df_types::{DurationNs, TimeNs};

/// Opaque token for an open server-side span.
pub type ServerToken = u64;
/// Opaque token for an open client-call span.
pub type CallToken = u64;

/// An intrusive tracing SDK wired into a service.
pub trait AppTracer: Send {
    /// A request arrived at the instrumented service. `incoming` carries
    /// any context headers parsed from the request.
    fn on_request(
        &mut self,
        service: &str,
        endpoint: &str,
        incoming: &TraceHeaders,
        now: TimeNs,
    ) -> ServerToken;

    /// The service is about to call `target`. Returns the headers to inject
    /// into the outgoing request (explicit context propagation).
    fn on_call(
        &mut self,
        server: ServerToken,
        target: &str,
        now: TimeNs,
    ) -> (CallToken, Vec<(String, String)>);

    /// The downstream call completed.
    fn on_call_done(&mut self, call: CallToken, now: TimeNs, ok: bool);

    /// The service responded.
    fn on_response(&mut self, server: ServerToken, now: TimeNs, ok: bool);

    /// Virtual CPU cost charged per tracer operation (models SDK overhead;
    /// drives the Fig. 16 baseline overhead curves).
    fn overhead_per_op(&self) -> DurationNs;

    /// Drain the app spans produced so far (`SpanKind::App`).
    fn drain_spans(&mut self) -> Vec<Span>;

    /// Tracer name for reports.
    fn name(&self) -> &str;
}

/// The no-op tracer: an uninstrumented service.
#[derive(Debug, Default)]
pub struct NoopTracer;

impl AppTracer for NoopTracer {
    fn on_request(
        &mut self,
        _service: &str,
        _endpoint: &str,
        _incoming: &TraceHeaders,
        _now: TimeNs,
    ) -> ServerToken {
        0
    }
    fn on_call(
        &mut self,
        _server: ServerToken,
        _target: &str,
        _now: TimeNs,
    ) -> (CallToken, Vec<(String, String)>) {
        (0, Vec::new())
    }
    fn on_call_done(&mut self, _call: CallToken, _now: TimeNs, _ok: bool) {}
    fn on_response(&mut self, _server: ServerToken, _now: TimeNs, _ok: bool) {}
    fn overhead_per_op(&self) -> DurationNs {
        DurationNs::ZERO
    }
    fn drain_spans(&mut self) -> Vec<Span> {
        Vec::new()
    }
    fn name(&self) -> &str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_tracer_is_free_and_silent() {
        let mut t = NoopTracer;
        let tok = t.on_request("svc", "GET /", &TraceHeaders::default(), TimeNs(0));
        let (call, headers) = t.on_call(tok, "db", TimeNs(1));
        assert!(headers.is_empty());
        t.on_call_done(call, TimeNs(2), true);
        t.on_response(tok, TimeNs(3), true);
        assert_eq!(t.overhead_per_op(), DurationNs::ZERO);
        assert!(t.drain_spans().is_empty());
        assert_eq!(t.name(), "none");
    }
}
