//! The load generator — a wrk2-style constant-throughput open-loop client.
//!
//! Requests *fire* at fixed, pre-scheduled instants regardless of how slow
//! responses are; latency is measured from the **scheduled** fire time, so
//! queueing delay under saturation is charged to the server (no coordinated
//! omission) — the measurement discipline of wrk2, used by the
//! paper's §5.4 and Appendix B experiments.

use crate::histogram::LatencyHistogram;
use crate::service::{build_request, tls_unwrap, tls_wrap};
use crate::sim::{Ctx, Event, Owner};
use df_kernel::{Fd, Kernel, SyscallOutcome, SyscallSurface};
use df_protocols::inference;
use df_types::{DurationNs, L7Protocol, NodeId, Pid, Tid, TimeNs, TransportProtocol};
use rand::Rng;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::Ipv4Addr;

/// Client definition.
#[derive(Debug, Clone)]
pub struct ClientSpec {
    /// Name (process name on its node).
    pub name: String,
    /// Node the client runs on.
    pub node: NodeId,
    /// Client IP.
    pub ip: Ipv4Addr,
    /// Target service (registry name).
    pub target: String,
    /// Protocol to speak.
    pub protocol: L7Protocol,
    /// Weighted endpoints to request.
    pub endpoints: Vec<(String, u32)>,
    /// Extra headers on every request (HTTP protocols only).
    pub headers: Vec<(String, String)>,
    /// Whether requests must be TLS-wrapped.
    pub tls: bool,
    /// Concurrent connections.
    pub connections: usize,
    /// Maximum in-flight requests per connection. 1 = strict
    /// request/response (HTTP-style); larger values pipeline without
    /// waiting (AMQP publishers, the Fig. 12 producer).
    pub pipeline_depth: usize,
    /// Offered load in requests/second.
    pub rps: f64,
    /// First fire time.
    pub start: TimeNs,
    /// Load duration.
    pub duration: DurationNs,
    /// Per-request timeout.
    pub timeout: DurationNs,
}

impl ClientSpec {
    /// A basic HTTP client.
    pub fn http(name: &str, node: NodeId, ip: Ipv4Addr, target: &str) -> Self {
        ClientSpec {
            name: name.to_string(),
            node,
            ip,
            target: target.to_string(),
            protocol: L7Protocol::Http1,
            endpoints: vec![("GET /".to_string(), 1)],
            headers: Vec::new(),
            tls: false,
            connections: 8,
            pipeline_depth: 1,
            rps: 100.0,
            start: TimeNs::ZERO,
            duration: DurationNs::from_secs(10),
            timeout: DurationNs::from_secs(5),
        }
    }
}

#[derive(Debug, Clone)]
struct PendingReq {
    scheduled: TimeNs,
    endpoint: String,
}

#[derive(Debug)]
enum CState {
    Disconnected,
    Connecting { pending: PendingReq },
    Ready,
}

#[derive(Debug)]
struct Conn {
    tid: Tid,
    fd: Option<Fd>,
    state: CState,
    /// In-flight requests, FIFO: `(scheduled fire time, request seq)`.
    outstanding: VecDeque<(TimeNs, u64)>,
}

/// A running client.
pub struct Client {
    /// The spec.
    pub spec: ClientSpec,
    /// Process id.
    pub pid: Pid,
    conns: Vec<Conn>,
    backlog: VecDeque<PendingReq>,
    /// Latency distribution (scheduled-fire → response).
    pub hist: LatencyHistogram,
    /// Requests fired.
    pub fired: u64,
    /// Responses received.
    pub completed: u64,
    /// Error responses (4xx/5xx/protocol errors).
    pub errors: u64,
    /// Requests timed out or killed by resets.
    pub failed: u64,
    req_seq: u64,
    mux: u64,
    my_index: usize,
}

impl Client {
    /// Spawn the client process, its connection threads, and the fire
    /// schedule.
    pub fn start(
        spec: ClientSpec,
        my_index: usize,
        kernels: &mut BTreeMap<NodeId, Kernel>,
        owners: &mut HashMap<(NodeId, Tid), Owner>,
        queue: &mut crate::sim::EventQueue,
        now: TimeNs,
    ) -> Client {
        let kernel = kernels.get_mut(&spec.node).expect("client node exists");
        let (pid, main_tid) = kernel.procs.spawn_process(&spec.name);
        let mut conns = Vec::with_capacity(spec.connections.max(1));
        for c in 0..spec.connections.max(1) {
            let tid = if c == 0 {
                main_tid
            } else {
                kernel.procs.spawn_thread(pid).expect("client thread")
            };
            owners.insert(
                (spec.node, tid),
                Owner::Client {
                    idx: my_index,
                    conn: c,
                },
            );
            conns.push(Conn {
                tid,
                fd: None,
                state: CState::Disconnected,
                outstanding: VecDeque::new(),
            });
        }
        // Open-loop schedule: fixed fire instants at 1/rps spacing.
        let total = (spec.rps * spec.duration.as_secs_f64()).round() as u64;
        let interval_ns = if spec.rps > 0.0 {
            (1e9 / spec.rps) as u64
        } else {
            u64::MAX
        };
        let base = now.max(spec.start);
        for i in 0..total {
            let at = TimeNs(base.as_nanos() + i * interval_ns);
            queue.schedule(
                at,
                Event::ClientFire {
                    client: my_index,
                    scheduled: at,
                },
            );
        }
        Client {
            spec,
            pid,
            conns,
            backlog: VecDeque::new(),
            hist: LatencyHistogram::new(),
            fired: 0,
            completed: 0,
            errors: 0,
            failed: 0,
            req_seq: 0,
            mux: 1,
            my_index,
        }
    }

    /// Achieved throughput over a window (completed / window).
    pub fn achieved_rps(&self, window: DurationNs) -> f64 {
        if window.as_nanos() == 0 {
            0.0
        } else {
            self.completed as f64 / window.as_secs_f64()
        }
    }

    fn pick_endpoint(&self, rng: &mut rand::rngs::SmallRng) -> String {
        let total: u32 = self.spec.endpoints.iter().map(|(_, w)| *w).sum();
        let mut roll = rng.gen_range(0..total.max(1));
        for (ep, w) in &self.spec.endpoints {
            if roll < *w {
                return ep.clone();
            }
            roll -= w;
        }
        self.spec.endpoints[0].0.clone()
    }
}

/// A scheduled request fires.
pub fn fire(cl: &mut Client, ctx: &mut Ctx<'_>, scheduled: TimeNs, now: TimeNs) {
    cl.fired += 1;
    let endpoint = cl.pick_endpoint(ctx.rng);
    let pending = PendingReq {
        scheduled,
        endpoint,
    };
    // Open the whole pool first (wrk pre-opens all connections — and
    // per-connection L4 load balancers need the spread), then rotate
    // across connections with pipeline capacity; else backlog.
    let free = cl
        .conns
        .iter()
        .position(|c| matches!(c.state, CState::Disconnected));
    if let Some(c) = free {
        connect(cl, ctx, c, pending, now);
        return;
    }
    let n = cl.conns.len();
    let depth = cl.spec.pipeline_depth.max(1);
    let start = (cl.fired as usize) % n.max(1);
    let available = (0..n).map(|i| (start + i) % n).find(|&i| {
        matches!(cl.conns[i].state, CState::Ready)
            && cl.conns[i].fd.is_some()
            && cl.conns[i].outstanding.len() < depth
    });
    if let Some(c) = available {
        send(cl, ctx, c, pending, now);
        return;
    }
    cl.backlog.push_back(pending);
}

fn connect(cl: &mut Client, ctx: &mut Ctx<'_>, c: usize, pending: PendingReq, now: TimeNs) {
    let node = cl.spec.node;
    let tid = cl.conns[c].tid;
    let Some(endpoint) = ctx.registry.get(&cl.spec.target).copied() else {
        cl.failed += 1;
        return;
    };
    let transport = if cl.spec.protocol == L7Protocol::Dns {
        TransportProtocol::Udp
    } else {
        TransportProtocol::Tcp
    };
    let Ok(fd) = ctx.kernel(node).socket(cl.pid, transport) else {
        cl.failed += 1;
        return;
    };
    cl.conns[c].fd = Some(fd);
    let ip = cl.spec.ip;
    match ctx
        .kernel(node)
        .connect(tid, cl.pid, fd, ip, (endpoint.ip, endpoint.port))
    {
        SyscallOutcome::Complete { .. } => {
            send(cl, ctx, c, pending, now);
        }
        SyscallOutcome::WouldBlock => {
            ctx.flush(node, now);
            cl.conns[c].state = CState::Connecting { pending };
        }
        SyscallOutcome::Error { .. } => {
            cl.failed += 1;
            cl.conns[c].fd = None;
            cl.conns[c].state = CState::Disconnected;
        }
    }
}

fn send(cl: &mut Client, ctx: &mut Ctx<'_>, c: usize, pending: PendingReq, now: TimeNs) {
    let node = cl.spec.node;
    let tid = cl.conns[c].tid;
    let Some(fd) = cl.conns[c].fd else {
        cl.failed += 1;
        cl.conns[c].state = CState::Disconnected;
        return;
    };
    cl.mux += 1;
    let mux = cl.mux;
    let payload = build_request(cl.spec.protocol, &pending.endpoint, &cl.spec.headers, mux);
    let payload = if cl.spec.tls {
        tls_wrap(&payload)
    } else {
        payload
    };
    cl.req_seq += 1;
    let seq = cl.req_seq;
    let mut t = now;
    match ctx.kernel(node).sys_write(tid, cl.pid, fd, payload, t) {
        SyscallOutcome::Complete { duration, .. } => {
            t += duration;
        }
        _ => {
            fail_conn(cl, ctx, c, t);
            return;
        }
    }
    ctx.flush(node, t);
    cl.conns[c].state = CState::Ready;
    cl.conns[c].outstanding.push_back((pending.scheduled, seq));
    // Arm the timeout.
    ctx.queue.schedule(
        t + cl.spec.timeout,
        Event::ClientTimeout {
            client: cl.my_index,
            conn: c,
            req_seq: seq,
        },
    );
    // Post the read (parks unless the response is somehow already in).
    try_read(cl, ctx, c, t);
}

/// Abort a connection, counting every in-flight request as failed.
fn fail_conn(cl: &mut Client, ctx: &mut Ctx<'_>, c: usize, now: TimeNs) {
    let node = cl.spec.node;
    cl.failed += 1 + cl.conns[c].outstanding.len() as u64;
    cl.conns[c].outstanding.clear();
    if let Some(fd) = cl.conns[c].fd.take() {
        let _ = ctx.kernel(node).close(cl.pid, fd);
        ctx.flush(node, now);
    }
    cl.conns[c].state = CState::Disconnected;
}

fn try_read(cl: &mut Client, ctx: &mut Ctx<'_>, c: usize, now: TimeNs) {
    let node = cl.spec.node;
    let tid = cl.conns[c].tid;
    let mut t = now;
    loop {
        if cl.conns[c].outstanding.is_empty() {
            break; // idle: nothing to read for
        }
        let Some(fd) = cl.conns[c].fd else { return };
        match ctx.kernel(node).sys_read(tid, cl.pid, fd, 65536, t) {
            SyscallOutcome::Complete { value, duration } => {
                t += duration;
                if value.data.is_empty() {
                    // Peer closed with requests in flight.
                    fail_conn(cl, ctx, c, t);
                    return;
                }
                let plain = if cl.spec.tls {
                    tls_unwrap(&value.data).unwrap_or(value.data.clone())
                } else {
                    value.data.clone()
                };
                let (scheduled, _seq) = cl.conns[c]
                    .outstanding
                    .pop_front()
                    .expect("checked non-empty");
                cl.completed += 1;
                cl.hist.record(t.saturating_since(scheduled));
                if let Some(parse) = inference::infer_protocol(&plain)
                    .and_then(|p| inference::parse_message(p, &plain))
                {
                    if parse.client_error || parse.server_error {
                        cl.errors += 1;
                    }
                }
                // A slot freed up: drain the backlog.
                if let Some(next) = cl.backlog.pop_front() {
                    send(cl, ctx, c, next, t);
                    return; // send() re-enters try_read
                }
            }
            SyscallOutcome::WouldBlock => break, // parked; resume() retries
            SyscallOutcome::Error { .. } => {
                fail_conn(cl, ctx, c, t);
                return;
            }
        }
    }
}

/// A connection thread resumed (socket wakeup).
pub fn resume(cl: &mut Client, ctx: &mut Ctx<'_>, c: usize, now: TimeNs) {
    match &cl.conns[c].state {
        CState::Connecting { .. } => {
            let CState::Connecting { pending } =
                std::mem::replace(&mut cl.conns[c].state, CState::Ready)
            else {
                unreachable!()
            };
            // Either the connect completed or it failed; sending finds out.
            send(cl, ctx, c, pending, now);
        }
        CState::Ready => try_read(cl, ctx, c, now),
        CState::Disconnected => {}
    }
}

/// A request timeout fired.
pub fn timeout(cl: &mut Client, ctx: &mut Ctx<'_>, c: usize, req_seq: u64, now: TimeNs) {
    if !matches!(cl.conns[c].state, CState::Ready) {
        return;
    }
    // Still in flight? (FIFO responses: if the guarded seq is gone, the
    // request completed.)
    if !cl.conns[c].outstanding.iter().any(|(_, s)| *s == req_seq) {
        return;
    }
    // Abort the wedged connection; everything outstanding is lost.
    cl.failed += cl.conns[c].outstanding.len() as u64;
    cl.conns[c].outstanding.clear();
    if let Some(fd) = cl.conns[c].fd.take() {
        let _ = ctx.kernel(cl.spec.node).abort(cl.pid, fd);
        ctx.flush(cl.spec.node, now);
    }
    cl.conns[c].state = CState::Disconnected;
    // Give the backlog a chance on this freed slot.
    if let Some(next) = cl.backlog.pop_front() {
        connect(cl, ctx, c, next, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Behavior, ServiceSpec};
    use crate::sim::World;
    use df_net::fabric::{Fabric, FabricConfig};
    use df_net::topology::Topology;

    fn world_with_leaf(compute_us: u64, workers: usize) -> (World, Ipv4Addr, Ipv4Addr) {
        let mut topo = Topology::new();
        let n1 = topo.add_simple_node("n1", Ipv4Addr::new(192, 168, 0, 1));
        let n2 = topo.add_simple_node("n2", Ipv4Addr::new(192, 168, 0, 2));
        let client_ip = Ipv4Addr::new(10, 1, 0, 100);
        let svc_ip = Ipv4Addr::new(10, 1, 1, 10);
        topo.add_pod(n1, "client", client_ip, "d", "c", "c");
        topo.add_pod(n2, "svc", svc_ip, "d", "s", "s");
        let mut world = World::new(Fabric::new(topo, FabricConfig::default()), 0xc11e);
        world.add_service(
            ServiceSpec::http("svc", n2, svc_ip, 80)
                .with_workers(workers)
                .with_compute(DurationNs::from_micros(compute_us))
                .with_behavior(Behavior::Leaf),
        );
        (world, client_ip, svc_ip)
    }

    #[test]
    fn open_loop_client_completes_offered_load_below_capacity() {
        let (mut world, client_ip, _svc) = world_with_leaf(100, 4);
        let n1 = world.fabric.topology.node_ids()[0];
        let idx = world.add_client(ClientSpec {
            rps: 100.0,
            duration: DurationNs::from_secs(2),
            connections: 4,
            ..ClientSpec::http("wrk", n1, client_ip, "svc")
        });
        world.run_until(TimeNs::from_secs(3));
        let cl = &world.clients[idx];
        assert_eq!(cl.fired, 200);
        assert_eq!(cl.completed, 200);
        assert_eq!(cl.failed, 0);
        assert!(cl.hist.p50() > DurationNs::from_micros(100));
        assert!((cl.achieved_rps(DurationNs::from_secs(2)) - 100.0).abs() < 1.0);
    }

    #[test]
    fn saturation_throughput_is_bounded_by_server_capacity() {
        // 1 worker x 1ms compute → ~1000 RPS capacity; offer 5000.
        let (mut world, client_ip, _svc) = world_with_leaf(1000, 1);
        let n1 = world.fabric.topology.node_ids()[0];
        let idx = world.add_client(ClientSpec {
            rps: 5000.0,
            duration: DurationNs::from_secs(1),
            connections: 1,
            timeout: DurationNs::from_secs(60),
            ..ClientSpec::http("wrk", n1, client_ip, "svc")
        });
        world.run_until(TimeNs::from_secs(10));
        let cl = &world.clients[idx];
        // Everything eventually completes (we run past the load window)...
        assert!(cl.completed > 3000, "completed {}", cl.completed);
        // ...but queueing shows up as latency: p99 >> p of an unloaded run
        // (coordinated-omission-free accounting).
        assert!(
            cl.hist.p99() > DurationNs::from_millis(100),
            "p99 {} reflects saturation queueing",
            cl.hist.p99()
        );
    }

    #[test]
    fn pipelined_client_keeps_multiple_requests_in_flight() {
        // Server is slow (10ms); a depth-8 pipelined client on ONE
        // connection fires 8 requests before the first response.
        let (mut world, client_ip, _svc) = world_with_leaf(10_000, 1);
        let n1 = world.fabric.topology.node_ids()[0];
        let idx = world.add_client(ClientSpec {
            rps: 400.0,
            duration: DurationNs::from_millis(100),
            connections: 1,
            pipeline_depth: 8,
            timeout: DurationNs::from_secs(30),
            ..ClientSpec::http("wrk", n1, client_ip, "svc")
        });
        // Run only 30ms: no response has arrived yet (compute is 10ms and
        // the server answers one request at a time), but multiple sends
        // must already be in flight.
        world.run_until(TimeNs::from_millis(15));
        let cl = &world.clients[idx];
        let in_flight: usize = cl.conns.iter().map(|c| c.outstanding.len()).sum();
        assert!(in_flight >= 2, "pipelined in-flight: {in_flight}");
        world.run_until(TimeNs::from_secs(5));
        let cl = &world.clients[idx];
        assert_eq!(cl.completed, 40, "all pipelined requests answered");
    }

    #[test]
    fn timeout_fails_outstanding_requests_and_reconnects() {
        // No such service: connects are refused; requests fail fast.
        let mut topo = Topology::new();
        let n1 = topo.add_simple_node("n1", Ipv4Addr::new(192, 168, 0, 1));
        let client_ip = Ipv4Addr::new(10, 1, 0, 100);
        topo.add_pod(n1, "client", client_ip, "d", "c", "c");
        let mut world = World::new(Fabric::new(topo, FabricConfig::default()), 1);
        let idx = world.add_client(ClientSpec {
            rps: 20.0,
            duration: DurationNs::from_secs(1),
            connections: 2,
            timeout: DurationNs::from_millis(100),
            ..ClientSpec::http("wrk", n1, client_ip, "ghost-svc")
        });
        world.run_until(TimeNs::from_secs(3));
        let cl = &world.clients[idx];
        assert_eq!(cl.completed, 0);
        assert!(cl.failed >= 20, "failures recorded: {}", cl.failed);
    }

    #[test]
    fn weighted_endpoints_are_sampled_proportionally() {
        let (mut world, client_ip, _svc) = world_with_leaf(10, 8);
        let n1 = world.fabric.topology.node_ids()[0];
        let idx = world.add_client(ClientSpec {
            rps: 500.0,
            duration: DurationNs::from_secs(2),
            connections: 8,
            endpoints: vec![("GET /hot".to_string(), 9), ("GET /cold".to_string(), 1)],
            ..ClientSpec::http("wrk", n1, client_ip, "svc")
        });
        // Sample through the client's own picker for determinism.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        use rand::SeedableRng;
        let cl = &world.clients[idx];
        let hot = (0..1000)
            .filter(|_| cl.pick_endpoint(&mut rng) == "GET /hot")
            .count();
        assert!((850..=950).contains(&hot), "hot sampled {hot}/1000");
        world.run_until(TimeNs::from_secs(3));
        assert!(world.clients[idx].completed > 900);
    }
}
