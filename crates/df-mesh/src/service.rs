//! Simulated microservice components.
//!
//! A [`Service`] is a process with a listener and a pool of worker threads,
//! each a blocking-style state machine: accept → read request → compute →
//! (downstream calls | proxy forward) → respond. All I/O goes through the
//! simulated kernel's Table 3 syscalls, so DeepFlow's hooks observe it
//! exactly as they would a real component — including closed-source ones,
//! since nothing here cooperates with the tracer.
//!
//! Behaviours cover the paper's scenarios: leaf servers (Redis, MySQL, DNS,
//! static HTTP), call chains (Bookinfo-style fan-out), reverse proxies with
//! `X-Request-ID` injection (Nginx/Envoy — §3.3.2 cross-thread
//! association), optional cross-thread handoff, Go-style coroutine
//! runtimes, and TLS services whose wire bytes are opaque but whose
//! plaintext is visible to `ssl_read`/`ssl_write` uprobes.

use crate::sim::{Ctx, Event, Owner};
use crate::tracer::{AppTracer, NoopTracer, ServerToken};
use bytes::Bytes;
use df_kernel::{Fd, Kernel, SyscallOutcome, SyscallSurface};
use df_protocols::{amqp, dns, dubbo, http1, http2, kafka, mqtt, mysql, redis};
use df_protocols::{inference, TraceHeaders};
use df_types::{
    CoroutineId, DurationNs, L7Protocol, MessageType, NodeId, Pid, SessionKey, Tid, TimeNs,
    TransportProtocol, XRequestId,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::Ipv4Addr;

/// A downstream call made while handling a request.
#[derive(Debug, Clone)]
pub struct Call {
    /// Target service name (resolved through the world registry).
    pub target: String,
    /// Protocol to speak.
    pub protocol: L7Protocol,
    /// Operation (e.g. `"GET /ratings/7"`, `"GET product:7"`, `"SELECT ..."`).
    pub endpoint: String,
}

/// What the service does with a request.
pub enum Behavior {
    /// Respond directly.
    Leaf,
    /// Make these calls sequentially, then respond.
    Chain(Vec<Call>),
    /// Forward to an upstream service, injecting an `X-Request-ID`.
    Proxy {
        /// Upstream service name.
        upstream: String,
        /// Hand the request to a different thread before forwarding
        /// (exercises cross-thread intra-component association, §3.3.2).
        handoff: bool,
    },
}

/// Threading model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeKind {
    /// Plain thread-per-request workers.
    Threads,
    /// Go-style: each request runs in a fresh coroutine (pseudo-thread
    /// tracking, §3.3.1).
    Coroutines,
}

/// Service definition.
pub struct ServiceSpec {
    /// Name (registry key).
    pub name: String,
    /// Hosting node.
    pub node: NodeId,
    /// Pod/host IP.
    pub ip: Ipv4Addr,
    /// Listen port.
    pub port: u16,
    /// Protocol served.
    pub protocol: L7Protocol,
    /// Worker threads.
    pub workers: usize,
    /// Compute time per request.
    pub compute: DurationNs,
    /// Response body size.
    pub resp_bytes: usize,
    /// Behaviour.
    pub behavior: Behavior,
    /// Threading model.
    pub runtime: RuntimeKind,
    /// Whether the wire bytes are TLS-wrapped (uprobes still see plaintext).
    pub tls: bool,
    /// Endpoint-substring → forced status code (fault injection, e.g. the
    /// Fig. 11 Nginx pod returning 404).
    pub error_endpoints: Vec<(String, u16)>,
    /// Intrusive tracing SDK, if this service is "instrumented".
    pub tracer: Box<dyn AppTracer>,
}

impl ServiceSpec {
    /// A plain HTTP service.
    pub fn http(name: &str, node: NodeId, ip: Ipv4Addr, port: u16) -> Self {
        ServiceSpec {
            name: name.to_string(),
            node,
            ip,
            port,
            protocol: L7Protocol::Http1,
            workers: 4,
            compute: DurationNs::from_micros(500),
            resp_bytes: 256,
            behavior: Behavior::Leaf,
            runtime: RuntimeKind::Threads,
            tls: false,
            error_endpoints: Vec::new(),
            tracer: Box::new(NoopTracer),
        }
    }

    /// Builder: set behaviour.
    pub fn with_behavior(mut self, b: Behavior) -> Self {
        self.behavior = b;
        self
    }

    /// Builder: set protocol.
    pub fn with_protocol(mut self, p: L7Protocol) -> Self {
        self.protocol = p;
        self
    }

    /// Builder: set compute time.
    pub fn with_compute(mut self, c: DurationNs) -> Self {
        self.compute = c;
        self
    }

    /// Builder: set workers.
    pub fn with_workers(mut self, w: usize) -> Self {
        self.workers = w;
        self
    }

    /// Builder: coroutine runtime.
    pub fn with_coroutines(mut self) -> Self {
        self.runtime = RuntimeKind::Coroutines;
        self
    }

    /// Builder: TLS.
    pub fn with_tls(mut self) -> Self {
        self.tls = true;
        self
    }

    /// Builder: intrusive tracer.
    pub fn with_tracer(mut self, t: Box<dyn AppTracer>) -> Self {
        self.tracer = t;
        self
    }

    /// Builder: force a status for endpoints containing `substr`.
    pub fn with_error_endpoint(mut self, substr: &str, status: u16) -> Self {
        self.error_endpoints.push((substr.to_string(), status));
        self
    }
}

/// A request in flight inside a worker.
#[derive(Debug, Clone)]
struct ReqCtx {
    endpoint: String,
    key: SessionKey,
    headers_in: TraceHeaders,
    status: u16,
    server_token: ServerToken,
    coroutine: Option<CoroutineId>,
    #[allow(dead_code)] // kept for raw-forwarding proxies / debugging
    raw_request: Bytes,
    /// Headers the tracer wants injected into downstream calls.
    inject: Vec<(String, String)>,
    /// Datagram peer (UDP requests) for the reply.
    peer: Option<(Ipv4Addr, u16)>,
}

/// Work handed between proxy threads.
#[derive(Debug, Clone)]
struct ProxyJob {
    down_fd: Fd,
    req: ReqCtx,
    xid: XRequestId,
}

#[derive(Debug)]
enum WState {
    AwaitAccept,
    AwaitRequest {
        conn: Fd,
    },
    Computing {
        conn: Fd,
        req: ReqCtx,
    },
    Connecting {
        conn: Fd,
        req: ReqCtx,
        call: usize,
    },
    AwaitCallResponse {
        conn: Fd,
        req: ReqCtx,
        call: usize,
        up_fd: Fd,
        tok: crate::tracer::CallToken,
    },
    AwaitInternal,
    ForwardConnecting {
        job: ProxyJob,
    },
    ForwardAwaitResponse {
        job: ProxyJob,
        up_fd: Fd,
    },
}

struct Worker {
    tid: Tid,
    state: WState,
    conn_cache: HashMap<String, Fd>,
}

/// A running service.
pub struct Service {
    /// The spec (behaviour, protocol...).
    pub spec: ServiceSpec,
    /// Process id.
    pub pid: Pid,
    listen_fd: Fd,
    workers: Vec<Worker>,
    handoff: VecDeque<ProxyJob>,
    mux: u64,
    xid_counter: u128,
    my_index: usize,
    /// Requests served.
    pub served: u64,
    /// Error responses returned.
    pub errors: u64,
    /// Upstream failures turned into 502s.
    pub upstream_failures: u64,
}

impl Service {
    /// Spawn the service on its node: process, listener, parked workers.
    pub fn start(
        spec: ServiceSpec,
        my_index: usize,
        kernels: &mut BTreeMap<NodeId, Kernel>,
        owners: &mut HashMap<(NodeId, Tid), Owner>,
        _now: TimeNs,
    ) -> Service {
        let kernel = kernels.get_mut(&spec.node).expect("service node exists");
        let (pid, main_tid) = kernel.procs.spawn_process(&spec.name);
        let transport = if spec.protocol == L7Protocol::Dns {
            TransportProtocol::Udp
        } else {
            TransportProtocol::Tcp
        };
        let listen_fd = kernel.socket(pid, transport).expect("socket");
        kernel
            .bind(pid, listen_fd, spec.ip, spec.port)
            .expect("bind");
        if transport == TransportProtocol::Tcp {
            kernel.listen(pid, listen_fd, 1024).expect("listen");
        }
        let mut workers = Vec::with_capacity(spec.workers.max(1));
        for w in 0..spec.workers.max(1) {
            let tid = if w == 0 {
                main_tid
            } else {
                kernel.procs.spawn_thread(pid).expect("spawn worker")
            };
            owners.insert(
                (spec.node, tid),
                Owner::Service {
                    idx: my_index,
                    worker: w,
                },
            );
            let forwarder = matches!(spec.behavior, Behavior::Proxy { handoff: true, .. })
                && w >= spec.workers.max(1) / 2;
            let state = if transport == TransportProtocol::Udp {
                // UDP "workers" all read from the bound socket.
                WState::AwaitRequest { conn: listen_fd }
            } else if forwarder {
                // Handoff proxies dedicate the second half of the pool to
                // forwarding; these threads wait on the internal queue.
                WState::AwaitInternal
            } else {
                WState::AwaitAccept
            };
            workers.push(Worker {
                tid,
                state,
                conn_cache: HashMap::new(),
            });
        }
        let mut svc = Service {
            spec,
            pid,
            listen_fd,
            workers,
            handoff: VecDeque::new(),
            mux: 1,
            xid_counter: 1,
            my_index,
            served: 0,
            errors: 0,
            upstream_failures: 0,
        };
        // Park every worker (accept / read).
        for w in 0..svc.workers.len() {
            park_initial(&mut svc, kernel, w);
        }
        svc
    }

    /// The service's listener fd (socket-option tweaks from scenarios).
    pub fn listen_fd(&self) -> Fd {
        self.listen_fd
    }

    fn next_xid(&mut self) -> XRequestId {
        let v = self.xid_counter;
        self.xid_counter += 1;
        XRequestId((u128::from(self.pid.raw()) << 64) | v)
    }

    fn next_mux(&mut self) -> u64 {
        let v = self.mux;
        self.mux += 1;
        v
    }
}

fn park_initial(svc: &mut Service, kernel: &mut Kernel, w: usize) {
    let tid = svc.workers[w].tid;
    match &svc.workers[w].state {
        WState::AwaitAccept => {
            let _ = kernel.accept(tid, svc.pid, svc.listen_fd);
        }
        WState::AwaitRequest { conn } => {
            let _ = kernel.sys_recvfrom(tid, svc.pid, *conn, 65536, TimeNs::ZERO);
        }
        _ => {}
    }
}

/// Resume a worker: drive its state machine until it blocks.
pub fn step(svc: &mut Service, ctx: &mut Ctx<'_>, w: usize, now: TimeNs) {
    let node = svc.spec.node;
    let mut t = now;
    // Bounded loop: a worker can serve several back-to-back requests per
    // resume, but never spins forever.
    for _ in 0..64 {
        let state = std::mem::replace(&mut svc.workers[w].state, WState::AwaitAccept);
        let outcome = advance(svc, ctx, w, state, &mut t);
        ctx.flush(node, t);
        match outcome {
            Flow::Continue => continue,
            Flow::Blocked => break,
        }
    }
}

enum Flow {
    Continue,
    Blocked,
}

fn advance(svc: &mut Service, ctx: &mut Ctx<'_>, w: usize, state: WState, t: &mut TimeNs) -> Flow {
    let node = svc.spec.node;
    let pid = svc.pid;
    let tid = svc.workers[w].tid;
    match state {
        WState::AwaitAccept => match ctx.kernel(node).accept(tid, pid, svc.listen_fd) {
            SyscallOutcome::Complete {
                value: conn,
                duration,
            } => {
                *t += duration;
                svc.workers[w].state = WState::AwaitRequest { conn };
                Flow::Continue
            }
            SyscallOutcome::WouldBlock => {
                svc.workers[w].state = WState::AwaitAccept;
                Flow::Blocked
            }
            SyscallOutcome::Error { .. } => {
                svc.workers[w].state = WState::AwaitAccept;
                Flow::Blocked
            }
        },
        WState::AwaitRequest { conn } => read_request(svc, ctx, w, conn, t),
        WState::Computing { conn, req } => start_behavior(svc, ctx, w, conn, req, t),
        WState::Connecting { conn, req, call } => {
            // The connect wakeup arrived; the cached fd was stored before
            // parking. Re-send through the call path.
            do_call(svc, ctx, w, conn, req, call, t)
        }
        WState::AwaitCallResponse {
            conn,
            req,
            call,
            up_fd,
            tok,
        } => read_call_response(svc, ctx, w, conn, req, call, up_fd, tok, t),
        WState::AwaitInternal => {
            if let Some(job) = svc.handoff.pop_front() {
                forward(svc, ctx, w, job, t)
            } else {
                svc.workers[w].state = WState::AwaitInternal;
                Flow::Blocked
            }
        }
        WState::ForwardConnecting { job } => forward(svc, ctx, w, job, t),
        WState::ForwardAwaitResponse { job, up_fd } => {
            read_forward_response(svc, ctx, w, job, up_fd, t)
        }
    }
}

fn read_request(svc: &mut Service, ctx: &mut Ctx<'_>, w: usize, conn: Fd, t: &mut TimeNs) -> Flow {
    let node = svc.spec.node;
    let pid = svc.pid;
    let tid = svc.workers[w].tid;
    let udp = svc.spec.protocol == L7Protocol::Dns;
    let result = if udp {
        ctx.kernel(node).sys_recvfrom(tid, pid, conn, 65536, *t)
    } else {
        ctx.kernel(node).sys_read(tid, pid, conn, 65536, *t)
    };
    match result {
        SyscallOutcome::Complete { value, duration } => {
            *t += duration;
            if value.data.is_empty() {
                // EOF: connection closed by peer.
                let _ = ctx.kernel(node).close(pid, conn);
                svc.workers[w].state = WState::AwaitAccept;
                return Flow::Continue;
            }
            // TLS services unwrap the record to get plaintext, visible to
            // the ssl_read uprobe.
            let plaintext = if svc.spec.tls {
                let Some(inner) = tls_unwrap(&value.data) else {
                    svc.workers[w].state = WState::AwaitRequest { conn };
                    return Flow::Continue;
                };
                let overhead =
                    ctx.kernel(node)
                        .invoke_user_fn(tid, pid, "ssl_read", &inner, Some(conn), *t);
                *t += overhead;
                inner
            } else {
                value.data.clone()
            };
            let Some(parse) =
                inference::parse_message(infer_or(svc.spec.protocol, &plaintext), &plaintext)
            else {
                svc.workers[w].state = WState::AwaitRequest { conn };
                return Flow::Continue;
            };
            if parse.msg_type != MessageType::Request {
                svc.workers[w].state = WState::AwaitRequest { conn };
                return Flow::Continue;
            }
            // Status: error-endpoint fault injection.
            let mut status = 200u16;
            for (substr, code) in &svc.spec.error_endpoints {
                if parse.endpoint.contains(substr.as_str()) {
                    status = *code;
                }
            }
            // Intrusive tracer server span.
            let server_token =
                svc.spec
                    .tracer
                    .on_request(&svc.spec.name, &parse.endpoint, &parse.headers, *t);
            let tracer_cost = svc.spec.tracer.overhead_per_op();
            // Coroutine runtime: each request runs in a fresh coroutine.
            let coroutine = if svc.spec.runtime == RuntimeKind::Coroutines {
                let kernel = ctx.kernel(node);
                let c = kernel.procs.spawn_coroutine(pid, None);
                let _ = kernel.procs.set_current_coroutine(tid, Some(c));
                Some(c)
            } else {
                None
            };
            let req = ReqCtx {
                endpoint: parse.endpoint.clone(),
                key: parse.session_key,
                headers_in: parse.headers,
                status,
                server_token,
                coroutine,
                raw_request: plaintext,
                inject: Vec::new(),
                peer: value.peer,
            };
            // Compute, then continue via timer. A co-resident agent's
            // user-space processing taxes the node's CPUs (see Ctx::cpu_tax).
            let stretched = svc.spec.compute.mul_f64(ctx.compute_stretch(node));
            let ready = *t + stretched + tracer_cost;
            ctx.queue.schedule(ready, Event::Resume { node, tid });
            svc.workers[w].state = WState::Computing { conn, req };
            Flow::Blocked
        }
        SyscallOutcome::WouldBlock => {
            svc.workers[w].state = WState::AwaitRequest { conn };
            Flow::Blocked
        }
        SyscallOutcome::Error { .. } => {
            let _ = ctx.kernel(node).close(pid, conn);
            svc.workers[w].state = WState::AwaitAccept;
            Flow::Continue
        }
    }
}

fn start_behavior(
    svc: &mut Service,
    ctx: &mut Ctx<'_>,
    w: usize,
    conn: Fd,
    req: ReqCtx,
    t: &mut TimeNs,
) -> Flow {
    match &svc.spec.behavior {
        Behavior::Leaf => respond(svc, ctx, w, conn, req, t),
        Behavior::Chain(_) => do_call(svc, ctx, w, conn, req, 0, t),
        Behavior::Proxy { upstream, handoff } => {
            let upstream = upstream.clone();
            let handoff = *handoff;
            let xid = svc.next_xid();
            let job = ProxyJob {
                down_fd: conn,
                req,
                xid,
            };
            if handoff {
                // Cross-thread handoff: queue the job and go back to
                // reading; a forwarder thread picks it up.
                svc.handoff.push_back(job);
                ctx.queue.schedule(
                    *t + DurationNs::from_micros(20),
                    Event::Internal {
                        service: svc.my_index,
                    },
                );
                svc.workers[w].state = WState::AwaitRequest { conn };
                Flow::Continue
            } else {
                let _ = upstream;
                forward(svc, ctx, w, job, t)
            }
        }
    }
}

/// Make (or continue) downstream call `idx` of a Chain.
fn do_call(
    svc: &mut Service,
    ctx: &mut Ctx<'_>,
    w: usize,
    conn: Fd,
    mut req: ReqCtx,
    idx: usize,
    t: &mut TimeNs,
) -> Flow {
    let Behavior::Chain(calls) = &svc.spec.behavior else {
        return respond(svc, ctx, w, conn, req, t);
    };
    if idx >= calls.len() {
        return respond(svc, ctx, w, conn, req, t);
    }
    let call = calls[idx].clone();
    let node = svc.spec.node;
    let pid = svc.pid;
    let tid = svc.workers[w].tid;
    let Some(endpoint) = ctx.registry.get(&call.target).copied() else {
        req.status = 502;
        svc.upstream_failures += 1;
        return respond(svc, ctx, w, conn, req, t);
    };
    // Connection (re)use.
    let up_fd = match svc.workers[w].conn_cache.get(&call.target).copied() {
        Some(fd) => fd,
        None => {
            let transport = if call.protocol == L7Protocol::Dns {
                TransportProtocol::Udp
            } else {
                TransportProtocol::Tcp
            };
            let fd = match ctx.kernel(node).socket(pid, transport) {
                Ok(fd) => fd,
                Err(_) => {
                    req.status = 502;
                    svc.upstream_failures += 1;
                    return respond(svc, ctx, w, conn, req, t);
                }
            };
            let ip = svc.spec.ip;
            match ctx
                .kernel(node)
                .connect(tid, pid, fd, ip, (endpoint.ip, endpoint.port))
            {
                SyscallOutcome::Complete { duration, .. } => {
                    *t += duration;
                    svc.workers[w].conn_cache.insert(call.target.clone(), fd);
                    fd
                }
                SyscallOutcome::WouldBlock => {
                    ctx.flush(node, *t);
                    svc.workers[w].conn_cache.insert(call.target.clone(), fd);
                    svc.workers[w].state = WState::Connecting {
                        conn,
                        req,
                        call: idx,
                    };
                    return Flow::Blocked;
                }
                SyscallOutcome::Error { .. } => {
                    req.status = 502;
                    svc.upstream_failures += 1;
                    return respond(svc, ctx, w, conn, req, t);
                }
            }
        }
    };
    // Intrusive tracer: client span + headers for explicit propagation.
    let (call_token, headers) = svc.spec.tracer.on_call(req.server_token, &call.target, *t);
    *t += svc.spec.tracer.overhead_per_op();
    req.inject = headers.clone();
    let mux = svc.next_mux();
    let payload = build_request(call.protocol, &call.endpoint, &headers, mux);
    let send = ctx.kernel(node).sys_write(tid, pid, up_fd, payload, *t);
    match send {
        SyscallOutcome::Complete { duration, .. } => {
            *t += duration;
            svc.workers[w].state = WState::AwaitCallResponse {
                conn,
                req,
                call: idx,
                up_fd,
                tok: call_token,
            };
            Flow::Continue
        }
        SyscallOutcome::WouldBlock => unreachable!("sends never block in the sim"),
        SyscallOutcome::Error { .. } => {
            svc.workers[w].conn_cache.remove(&call.target);
            req.status = 502;
            svc.upstream_failures += 1;
            respond(svc, ctx, w, conn, req, t)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn read_call_response(
    svc: &mut Service,
    ctx: &mut Ctx<'_>,
    w: usize,
    conn: Fd,
    mut req: ReqCtx,
    idx: usize,
    up_fd: Fd,
    tok: crate::tracer::CallToken,
    t: &mut TimeNs,
) -> Flow {
    let node = svc.spec.node;
    let pid = svc.pid;
    let tid = svc.workers[w].tid;
    match ctx.kernel(node).sys_read(tid, pid, up_fd, 65536, *t) {
        SyscallOutcome::Complete { value, duration } => {
            *t += duration;
            let ok = !value.data.is_empty();
            let failed = value.data.is_empty();
            svc.spec.tracer.on_call_done(tok, *t, ok);
            *t += svc.spec.tracer.overhead_per_op();
            if failed {
                // upstream closed on us
                req.status = 502;
                svc.upstream_failures += 1;
                if let Behavior::Chain(calls) = &svc.spec.behavior {
                    let target = &calls[idx].target;
                    let cached = svc.workers[w].conn_cache.remove(target);
                    if let Some(fd) = cached {
                        let _ = ctx.kernel(node).close(pid, fd);
                    }
                }
                return respond(svc, ctx, w, conn, req, t);
            }
            // Error responses from dependencies may propagate.
            if let Some(parse) = inference::infer_protocol(&value.data)
                .and_then(|p| inference::parse_message(p, &value.data))
            {
                if parse.server_error && req.status == 200 {
                    req.status = 503;
                }
            }
            do_call(svc, ctx, w, conn, req, idx + 1, t)
        }
        SyscallOutcome::WouldBlock => {
            svc.workers[w].state = WState::AwaitCallResponse {
                conn,
                req,
                call: idx,
                up_fd,
                tok,
            };
            Flow::Blocked
        }
        SyscallOutcome::Error { .. } => {
            if let Behavior::Chain(calls) = &svc.spec.behavior {
                svc.workers[w].conn_cache.remove(&calls[idx].target);
            }
            req.status = 502;
            svc.upstream_failures += 1;
            respond(svc, ctx, w, conn, req, t)
        }
    }
}

/// Proxy forward path (inline or from the handoff queue).
fn forward(svc: &mut Service, ctx: &mut Ctx<'_>, w: usize, job: ProxyJob, t: &mut TimeNs) -> Flow {
    let Behavior::Proxy { upstream, .. } = &svc.spec.behavior else {
        return Flow::Blocked;
    };
    let upstream = upstream.clone();
    let node = svc.spec.node;
    let pid = svc.pid;
    let tid = svc.workers[w].tid;
    let Some(endpoint) = ctx.registry.get(&upstream).copied() else {
        return respond_proxy_error(svc, ctx, w, job, t);
    };
    let up_fd = match svc.workers[w].conn_cache.get(&upstream).copied() {
        Some(fd) => fd,
        None => {
            let Ok(fd) = ctx.kernel(node).socket(pid, TransportProtocol::Tcp) else {
                return respond_proxy_error(svc, ctx, w, job, t);
            };
            let ip = svc.spec.ip;
            match ctx
                .kernel(node)
                .connect(tid, pid, fd, ip, (endpoint.ip, endpoint.port))
            {
                SyscallOutcome::Complete { duration, .. } => {
                    *t += duration;
                    svc.workers[w].conn_cache.insert(upstream.clone(), fd);
                    fd
                }
                SyscallOutcome::WouldBlock => {
                    ctx.flush(node, *t);
                    svc.workers[w].conn_cache.insert(upstream.clone(), fd);
                    svc.workers[w].state = WState::ForwardConnecting { job };
                    return Flow::Blocked;
                }
                SyscallOutcome::Error { .. } => {
                    return respond_proxy_error(svc, ctx, w, job, t);
                }
            }
        }
    };
    // Re-emit the request with the proxy's X-Request-ID added (the
    // "original capabilities" DeepFlow leans on for cross-thread
    // association).
    let mut headers = vec![("X-Request-ID".to_string(), job.xid.to_wire())];
    if let Some(tp) = traceparent_of(&job.req.headers_in) {
        headers.push(("traceparent".to_string(), tp));
    }
    let payload = build_request(L7Protocol::Http1, &job.req.endpoint, &headers, 0);
    match ctx.kernel(node).sys_write(tid, pid, up_fd, payload, *t) {
        SyscallOutcome::Complete { duration, .. } => {
            *t += duration;
            svc.workers[w].state = WState::ForwardAwaitResponse { job, up_fd };
            Flow::Continue
        }
        _ => respond_proxy_error(svc, ctx, w, job, t),
    }
}

fn read_forward_response(
    svc: &mut Service,
    ctx: &mut Ctx<'_>,
    w: usize,
    job: ProxyJob,
    up_fd: Fd,
    t: &mut TimeNs,
) -> Flow {
    let node = svc.spec.node;
    let pid = svc.pid;
    let tid = svc.workers[w].tid;
    match ctx.kernel(node).sys_read(tid, pid, up_fd, 65536, *t) {
        SyscallOutcome::Complete { value, duration } => {
            *t += duration;
            if value.data.is_empty() {
                if let Behavior::Proxy { upstream, .. } = &svc.spec.behavior {
                    svc.workers[w].conn_cache.remove(upstream.as_str());
                }
                return respond_proxy_error(svc, ctx, w, job, t);
            }
            // Relay the response downstream, tagging it with the same
            // X-Request-ID so both legs share the id.
            let status = inference::infer_protocol(&value.data)
                .and_then(|p| inference::parse_message(p, &value.data))
                .and_then(|p| p.status_code)
                .unwrap_or(200);
            let headers = vec![("X-Request-ID".to_string(), job.xid.to_wire())];
            let resp = http1::response(status, &headers, &vec![b'p'; svc.spec.resp_bytes]);
            let _ = ctx.kernel(node).sys_write(tid, pid, job.down_fd, resp, *t);
            svc.served += 1;
            if status >= 400 {
                svc.errors += 1;
            }
            finish_forwarder(svc, w, job.down_fd);
            Flow::Continue
        }
        SyscallOutcome::WouldBlock => {
            svc.workers[w].state = WState::ForwardAwaitResponse { job, up_fd };
            Flow::Blocked
        }
        SyscallOutcome::Error { .. } => {
            if let Behavior::Proxy { upstream, .. } = &svc.spec.behavior {
                svc.workers[w].conn_cache.remove(upstream.as_str());
            }
            respond_proxy_error(svc, ctx, w, job, t)
        }
    }
}

fn respond_proxy_error(
    svc: &mut Service,
    ctx: &mut Ctx<'_>,
    w: usize,
    job: ProxyJob,
    t: &mut TimeNs,
) -> Flow {
    let node = svc.spec.node;
    let tid = svc.workers[w].tid;
    svc.upstream_failures += 1;
    svc.errors += 1;
    svc.served += 1;
    let headers = vec![("X-Request-ID".to_string(), job.xid.to_wire())];
    let resp = http1::response(502, &headers, b"bad gateway");
    let _ = ctx
        .kernel(node)
        .sys_write(tid, svc.pid, job.down_fd, resp, *t);
    finish_forwarder(svc, w, job.down_fd);
    Flow::Continue
}

/// After a forward completes, the worker either takes the next handoff job
/// or (inline proxies) returns to reading its own connection.
fn finish_forwarder(svc: &mut Service, w: usize, down_fd: Fd) {
    let handoff = matches!(svc.spec.behavior, Behavior::Proxy { handoff: true, .. });
    if handoff && is_forwarder(svc, w) {
        svc.workers[w].state = WState::AwaitInternal;
    } else {
        // Inline proxy: the downstream fd is this worker's own connection;
        // go back to reading the next request on it.
        svc.workers[w].state = WState::AwaitRequest { conn: down_fd };
    }
}

/// In handoff mode the second half of the pool are dedicated forwarders.
fn is_forwarder(svc: &Service, w: usize) -> bool {
    w >= svc.workers.len() / 2
}

fn respond(
    svc: &mut Service,
    ctx: &mut Ctx<'_>,
    w: usize,
    conn: Fd,
    req: ReqCtx,
    t: &mut TimeNs,
) -> Flow {
    let node = svc.spec.node;
    let pid = svc.pid;
    let tid = svc.workers[w].tid;
    let ok = req.status < 400;
    // Echo the request's X-Request-ID in the response when present.
    let mut headers = Vec::new();
    if let Some(xid) = req.headers_in.x_request_id {
        headers.push(("X-Request-ID".to_string(), xid.to_wire()));
    }
    let body = vec![b'd'; svc.spec.resp_bytes];
    let payload = build_response(
        svc.spec.protocol,
        req.key,
        &req.endpoint,
        req.status,
        &headers,
        &body,
    );
    let payload = if svc.spec.tls {
        let overhead =
            ctx.kernel(node)
                .invoke_user_fn(tid, pid, "ssl_write", &payload, Some(conn), *t);
        *t += overhead;
        tls_wrap(&payload)
    } else {
        payload
    };
    svc.spec.tracer.on_response(req.server_token, *t, ok);
    *t += svc.spec.tracer.overhead_per_op();
    if let Some(c) = req.coroutine {
        let kernel = ctx.kernel(node);
        kernel.procs.finish_coroutine(pid, c);
        let _ = kernel.procs.set_current_coroutine(tid, None);
    }
    let udp = svc.spec.protocol == L7Protocol::Dns;
    let result = if udp {
        // UDP: reply to the datagram's recorded peer.
        ctx.kernel(node)
            .sys_sendto(tid, pid, conn, payload, req.peer, *t)
    } else {
        ctx.kernel(node).sys_write(tid, pid, conn, payload, *t)
    };
    match result {
        SyscallOutcome::Complete { duration, .. } => {
            *t += duration;
        }
        _ => {
            // Peer went away; nothing to do.
        }
    }
    svc.served += 1;
    if !ok {
        svc.errors += 1;
    }
    svc.workers[w].state = WState::AwaitRequest { conn };
    Flow::Continue
}

/// Internal handoff event: wake an idle forwarder.
pub fn internal(svc: &mut Service, ctx: &mut Ctx<'_>, now: TimeNs) {
    if svc.handoff.is_empty() {
        return;
    }
    let idle = svc
        .workers
        .iter()
        .position(|w| matches!(w.state, WState::AwaitInternal));
    if let Some(w) = idle {
        step(svc, ctx, w, now);
    }
    // No idle forwarder: the job waits; the next finish_forwarder checks
    // the queue via AwaitInternal.
}

fn infer_or(declared: L7Protocol, payload: &[u8]) -> L7Protocol {
    inference::infer_protocol(payload).unwrap_or(declared)
}

fn traceparent_of(h: &TraceHeaders) -> Option<String> {
    match (h.trace_id, h.span_id) {
        (Some(t), Some(s)) => Some(format!("00-{}-{}-01", t.to_hex(), s.to_hex())),
        _ => None,
    }
}

/// Build a downstream request payload.
pub fn build_request(
    protocol: L7Protocol,
    endpoint: &str,
    headers: &[(String, String)],
    mux: u64,
) -> Bytes {
    match protocol {
        L7Protocol::Http1 => {
            let (method, path) = endpoint.split_once(' ').unwrap_or(("GET", endpoint));
            http1::request(method, path, headers, b"")
        }
        L7Protocol::Http2 => {
            let (method, path) = endpoint.split_once(' ').unwrap_or(("GET", endpoint));
            http2::request(mux as u32, method, path, headers)
        }
        L7Protocol::Dns => {
            let name = endpoint.strip_prefix("A ").unwrap_or(endpoint);
            dns::query(mux as u16, name)
        }
        L7Protocol::Redis => {
            let args: Vec<&str> = endpoint.split_whitespace().collect();
            redis::command(&args)
        }
        L7Protocol::Mysql => mysql::query(endpoint),
        L7Protocol::Kafka => kafka::request(kafka::API_PRODUCE, mux as i32, "df-mesh"),
        L7Protocol::Mqtt => mqtt::publish(mux as u16, endpoint, b"payload"),
        L7Protocol::Dubbo => {
            let (svc, method) = endpoint.split_once('/').unwrap_or((endpoint, "call"));
            dubbo::request(mux, svc, method)
        }
        L7Protocol::Amqp => {
            let queue = endpoint.strip_prefix("basic.publish ").unwrap_or(endpoint);
            amqp::publish(mux as u16, queue, b"{}")
        }
        L7Protocol::Custom(_) | L7Protocol::Tls | L7Protocol::Unknown => {
            let (method, path) = endpoint.split_once(' ').unwrap_or(("GET", endpoint));
            http1::request(method, path, headers, b"")
        }
    }
}

/// Build a response payload matching the request's protocol and session key.
pub fn build_response(
    protocol: L7Protocol,
    key: SessionKey,
    endpoint: &str,
    status: u16,
    headers: &[(String, String)],
    body: &[u8],
) -> Bytes {
    let mux = match key {
        SessionKey::Multiplexed(id) => id,
        SessionKey::Ordered => 0,
    };
    match protocol {
        L7Protocol::Http1 => http1::response(status, headers, body),
        L7Protocol::Http2 => http2::response(mux as u32, status, headers),
        L7Protocol::Dns => {
            let name = endpoint.strip_prefix("A ").unwrap_or(endpoint);
            let rcode = if status >= 500 {
                dns::RCODE_SERVFAIL
            } else if status >= 400 {
                dns::RCODE_NXDOMAIN
            } else {
                dns::RCODE_OK
            };
            dns::answer(mux as u16, name, rcode)
        }
        L7Protocol::Redis => {
            if status >= 400 {
                redis::error("simulated failure")
            } else {
                redis::bulk(body)
            }
        }
        L7Protocol::Mysql => {
            if status >= 400 {
                mysql::err(status, "simulated failure")
            } else {
                mysql::result_set(3)
            }
        }
        L7Protocol::Kafka => kafka::response(mux as i32, if status >= 400 { 6 } else { 0 }),
        L7Protocol::Mqtt => mqtt::puback(mux as u16),
        L7Protocol::Dubbo => dubbo::response(
            mux,
            if status >= 400 {
                dubbo::STATUS_SERVER_ERROR
            } else {
                dubbo::STATUS_OK
            },
            body,
        ),
        L7Protocol::Amqp => amqp::ack(mux as u16),
        L7Protocol::Custom(_) | L7Protocol::Tls | L7Protocol::Unknown => {
            http1::response(status, headers, body)
        }
    }
}

/// Wrap plaintext in a TLS-record-looking envelope (opaque to sniffers).
pub fn tls_wrap(plain: &Bytes) -> Bytes {
    let mut out = Vec::with_capacity(plain.len() + 5);
    out.extend_from_slice(&[0x16, 0x03, 0x03]);
    out.extend_from_slice(&(plain.len() as u16).to_be_bytes());
    // XOR so the body doesn't accidentally sniff as an inner protocol.
    out.extend(plain.iter().map(|b| b ^ 0xAA));
    Bytes::from(out)
}

/// Unwrap the TLS envelope.
pub fn tls_unwrap(wire: &Bytes) -> Option<Bytes> {
    if wire.len() < 5 || wire[0] != 0x16 {
        return None;
    }
    let len = u16::from_be_bytes([wire[3], wire[4]]) as usize;
    let body = wire.get(5..5 + len)?;
    Some(Bytes::from(
        body.iter().map(|b| b ^ 0xAA).collect::<Vec<u8>>(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tls_wrap_round_trips_and_defeats_sniffers() {
        let plain = http1::request("GET", "/secret", &[], b"");
        let wire = tls_wrap(&plain);
        assert!(inference::infer_protocol(&wire).is_none(), "wire is opaque");
        assert_eq!(tls_unwrap(&wire).unwrap(), plain);
        assert!(tls_unwrap(&Bytes::from_static(b"junk")).is_none());
    }

    #[test]
    fn request_builders_emit_parseable_bytes() {
        for proto in [
            L7Protocol::Http1,
            L7Protocol::Http2,
            L7Protocol::Dns,
            L7Protocol::Redis,
            L7Protocol::Mysql,
            L7Protocol::Kafka,
            L7Protocol::Mqtt,
            L7Protocol::Dubbo,
            L7Protocol::Amqp,
        ] {
            let endpoint = match proto {
                L7Protocol::Dns => "A svc.cluster.local",
                L7Protocol::Redis => "GET key:1",
                L7Protocol::Mysql => "SELECT 1",
                L7Protocol::Dubbo => "OrderSvc/place",
                L7Protocol::Amqp => "basic.publish orders",
                L7Protocol::Mqtt => "telemetry/x",
                _ => "GET /api",
            };
            let req = build_request(proto, endpoint, &[], 7);
            let inferred = inference::infer_protocol(&req).expect("sniffable");
            assert_eq!(inferred, proto, "builder for {proto}");
            let parsed = inference::parse_message(inferred, &req).expect("parseable");
            assert_eq!(parsed.msg_type, MessageType::Request, "{proto}");
        }
    }

    #[test]
    fn response_builders_match_request_keys() {
        for (proto, key) in [
            (L7Protocol::Http1, SessionKey::Ordered),
            (L7Protocol::Http2, SessionKey::Multiplexed(9)),
            (L7Protocol::Dns, SessionKey::Multiplexed(5)),
            (L7Protocol::Redis, SessionKey::Ordered),
            (L7Protocol::Mysql, SessionKey::Ordered),
            (L7Protocol::Kafka, SessionKey::Multiplexed(3)),
            (L7Protocol::Dubbo, SessionKey::Multiplexed(11)),
        ] {
            let resp = build_response(proto, key, "A x.local", 200, &[], b"ok");
            let parsed = inference::parse_message(proto, &resp).expect("parseable");
            assert_eq!(parsed.msg_type, MessageType::Response, "{proto}");
            assert_eq!(parsed.session_key, key, "{proto}");
        }
    }

    #[test]
    fn error_statuses_translate_per_protocol() {
        let r = build_response(
            L7Protocol::Redis,
            SessionKey::Ordered,
            "GET k",
            500,
            &[],
            b"",
        );
        assert!(
            inference::parse_message(L7Protocol::Redis, &r)
                .unwrap()
                .server_error
        );
        let d = build_response(
            L7Protocol::Dns,
            SessionKey::Multiplexed(1),
            "A missing.local",
            404,
            &[],
            b"",
        );
        assert!(
            inference::parse_message(L7Protocol::Dns, &d)
                .unwrap()
                .client_error
        );
        let m = build_response(
            L7Protocol::Mysql,
            SessionKey::Ordered,
            "SELECT 1",
            500,
            &[],
            b"",
        );
        assert!(
            inference::parse_message(L7Protocol::Mysql, &m)
                .unwrap()
                .server_error
        );
    }
}
