//! Application templates — the workloads the paper evaluates on.
//!
//! * [`springboot_demo`] — the Spring Boot demo of Fig. 16(a): an API
//!   gateway, an application service and a MySQL database;
//! * [`bookinfo`] — the Istio Bookinfo application of Fig. 16(b):
//!   productpage → details + reviews → ratings, every service fronted by an
//!   Envoy-style sidecar proxy injecting X-Request-IDs;
//! * [`nginx_ingress_cluster`] — the Fig. 11 case: an L4 VIP load-balancing
//!   across Nginx ingress pods (one of them faulty, returning 404) in front
//!   of a backend;
//! * [`amqp_backlog`] — the Fig. 12 case: a producer flooding an AMQP
//!   broker whose consumer has stalled (tiny receive buffer ⇒ zero-window
//!   advertisements ⇒ reset).
//!
//! Each builder returns a ready [`World`] plus handles to its pieces, and
//! [`standard_taps`] lists the capture points so callers can wire agents.

use crate::client::ClientSpec;
use crate::service::{Behavior, Call, ServiceSpec};
use crate::sim::World;
use crate::tracer::{AppTracer, NoopTracer};
use df_net::fabric::{Fabric, FabricConfig};
use df_net::gateway::L4Gateway;
use df_net::taps::{TapFilter, TapKind};
use df_net::topology::{ElementId, Topology};
use df_types::{DurationNs, L7Protocol, NodeId};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Factory for the intrusive tracer wired into each instrumented service.
/// `|| Box::new(NoopTracer)` gives the uninstrumented baseline.
pub type TracerFactory<'a> = &'a mut dyn FnMut() -> Box<dyn AppTracer>;

/// A no-instrumentation factory.
pub fn no_tracer() -> Box<dyn AppTracer> {
    Box::new(NoopTracer)
}

/// Handles into a built application.
pub struct AppHandles {
    /// Client (load generator) index.
    pub client: usize,
    /// Service indexes by name, in creation order.
    pub services: Vec<(String, usize)>,
}

impl AppHandles {
    /// Find a service index by name.
    pub fn service(&self, name: &str) -> Option<usize> {
        self.services
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, i)| *i)
    }
}

/// The standard three-node cluster of the paper's testbed (§5: "a
/// three-node Kubernetes cluster"). Returns the topology and node ids.
pub fn three_node_cluster() -> (Topology, [NodeId; 3]) {
    let mut topo = Topology::new();
    let n1 = topo.add_node(
        "node-1",
        Ipv4Addr::new(192, 168, 0, 1),
        "rack-1",
        "region-1",
        "az-1",
        "vpc-prod",
        "subnet-1",
        "k8s-prod",
    );
    let n2 = topo.add_node(
        "node-2",
        Ipv4Addr::new(192, 168, 0, 2),
        "rack-1",
        "region-1",
        "az-1",
        "vpc-prod",
        "subnet-1",
        "k8s-prod",
    );
    let n3 = topo.add_node(
        "node-3",
        Ipv4Addr::new(192, 168, 0, 3),
        "rack-2",
        "region-1",
        "az-2",
        "vpc-prod",
        "subnet-2",
        "k8s-prod",
    );
    (topo, [n1, n2, n3])
}

/// Tap descriptors: `(owning node, interface label, kind, local IPs)`.
/// Callers install these on the fabric and register them with agents.
pub type TapDescriptor = (NodeId, String, TapKind, HashSet<Ipv4Addr>);

/// Standard taps for a world: pod veths + node NICs (the default agent
/// deployment of the paper — hypervisor/ToR taps are opt-in extensions).
pub fn standard_taps(world: &World) -> Vec<TapDescriptor> {
    let topo = &world.fabric.topology;
    let mut taps = Vec::new();
    for node in topo.node_ids() {
        // node NIC: local IPs are every pod on the node + the node IP
        let mut local = HashSet::new();
        for svc in &world.services {
            if svc.spec.node == node {
                local.insert(svc.spec.ip);
            }
        }
        for cl in &world.clients {
            if cl.spec.node == node {
                local.insert(cl.spec.ip);
            }
        }
        taps.push((node, "eth0".to_string(), TapKind::NodeNic, local));
        for svc in &world.services {
            if svc.spec.node == node && topo.is_pod_ip(svc.spec.ip) {
                let pod = topo.pod_name(svc.spec.ip).unwrap_or(&svc.spec.name);
                taps.push((
                    node,
                    format!("veth-{pod}"),
                    TapKind::PodVeth,
                    [svc.spec.ip].into_iter().collect(),
                ));
            }
        }
        for cl in &world.clients {
            if cl.spec.node == node && topo.is_pod_ip(cl.spec.ip) {
                let pod = topo.pod_name(cl.spec.ip).unwrap_or(&cl.spec.name);
                taps.push((
                    node,
                    format!("veth-{pod}"),
                    TapKind::PodVeth,
                    [cl.spec.ip].into_iter().collect(),
                ));
            }
        }
    }
    taps
}

/// Install the standard taps on the fabric (agents still need
/// `register_tap` with the same descriptors).
pub fn install_taps(world: &mut World, taps: &[TapDescriptor]) {
    for (node, interface, kind, local) in taps {
        let element = match kind {
            TapKind::NodeNic => ElementId::NodeNic(*node),
            TapKind::PodVeth => {
                let ip = *local.iter().next().expect("veth has its pod ip");
                ElementId::PodVeth(ip)
            }
            TapKind::PhysNic => ElementId::PhysNic(*node),
            TapKind::TorMirror => ElementId::Tor(
                world
                    .fabric
                    .topology
                    .rack_of(*node)
                    .unwrap_or("rack-1")
                    .to_string(),
            ),
            TapKind::Gateway => continue,
        };
        let _ = interface;
        world
            .fabric
            .taps
            .install(element, *node, *kind, TapFilter::all());
    }
}

/// The Spring Boot demo (Fig. 16(a)): client → api-gateway → spring-svc →
/// MySQL. `rps`/`duration` shape the load; `tracers` instruments the two
/// HTTP services (the DB is "closed-source": never instrumented — exactly
/// the blind spot intrusive tracers have).
pub fn springboot_demo(
    rps: f64,
    duration: DurationNs,
    tracers: TracerFactory<'_>,
) -> (World, AppHandles) {
    let (mut topo, [n1, n2, n3]) = three_node_cluster();
    let gw_ip = Ipv4Addr::new(10, 1, 0, 10);
    let app_ip = Ipv4Addr::new(10, 1, 0, 20);
    let db_ip = Ipv4Addr::new(10, 1, 0, 30);
    let client_ip = Ipv4Addr::new(10, 1, 0, 100);
    topo.add_pod(
        n2,
        "api-gateway-0",
        gw_ip,
        "demo",
        "api-gateway",
        "api-gateway",
    );
    topo.add_pod(
        n2,
        "spring-svc-0",
        app_ip,
        "demo",
        "spring-svc",
        "spring-svc",
    );
    topo.add_pod(n3, "mysql-0", db_ip, "demo", "mysql", "mysql");
    topo.add_pod(n1, "wrk2-0", client_ip, "demo", "wrk2", "wrk2");
    let fabric = Fabric::new(topo, FabricConfig::default());
    let mut world = World::new(fabric, 0xdeed);

    let mut services = Vec::new();
    let gw = world.add_service(
        ServiceSpec::http("api-gateway", n2, gw_ip, 8080)
            .with_workers(8)
            .with_compute(DurationNs::from_micros(150))
            .with_behavior(Behavior::Chain(vec![Call {
                target: "spring-svc".into(),
                protocol: L7Protocol::Http1,
                endpoint: "GET /api/orders".into(),
            }]))
            .with_tracer(tracers()),
    );
    services.push(("api-gateway".to_string(), gw));
    let app = world.add_service(
        ServiceSpec::http("spring-svc", n2, app_ip, 8081)
            .with_workers(8)
            .with_compute(DurationNs::from_micros(250))
            .with_behavior(Behavior::Chain(vec![Call {
                target: "mysql".into(),
                protocol: L7Protocol::Mysql,
                endpoint: "SELECT * FROM orders WHERE id = 1".into(),
            }]))
            .with_tracer(tracers()),
    );
    services.push(("spring-svc".to_string(), app));
    let db = world.add_service(
        ServiceSpec::http("mysql", n3, db_ip, 3306)
            .with_protocol(L7Protocol::Mysql)
            .with_workers(8)
            .with_compute(DurationNs::from_micros(100)),
    );
    services.push(("mysql".to_string(), db));

    // Connection-per-worker servers: the client pool must not exceed the
    // entry service's worker pool or the surplus connections starve.
    let client = world.add_client(ClientSpec {
        rps,
        duration,
        connections: 8,
        endpoints: vec![("GET /api/orders".to_string(), 1)],
        ..ClientSpec::http("wrk2", n1, client_ip, "api-gateway")
    });
    (world, AppHandles { client, services })
}

/// The Istio Bookinfo application (Fig. 16(b)), with Envoy-style sidecars.
pub fn bookinfo(rps: f64, duration: DurationNs, tracers: TracerFactory<'_>) -> (World, AppHandles) {
    let (mut topo, [n1, n2, n3]) = three_node_cluster();
    let ips = BookinfoIps::default();
    topo.add_pod(n1, "wrk2-0", ips.client, "default", "wrk2", "wrk2");
    topo.add_pod(
        n2,
        "productpage-v1-0",
        ips.productpage,
        "default",
        "productpage-v1",
        "productpage",
    );
    topo.add_pod(
        n2,
        "productpage-envoy",
        ips.pp_sidecar,
        "default",
        "productpage-v1",
        "productpage",
    );
    topo.add_pod(
        n2,
        "details-v1-0",
        ips.details,
        "default",
        "details-v1",
        "details",
    );
    topo.add_pod(
        n2,
        "details-envoy",
        ips.details_sidecar,
        "default",
        "details-v1",
        "details",
    );
    topo.add_pod(
        n3,
        "reviews-v2-0",
        ips.reviews,
        "default",
        "reviews-v2",
        "reviews",
    );
    topo.add_pod(
        n3,
        "reviews-envoy",
        ips.reviews_sidecar,
        "default",
        "reviews-v2",
        "reviews",
    );
    topo.add_pod(
        n3,
        "ratings-v1-0",
        ips.ratings,
        "default",
        "ratings-v1",
        "ratings",
    );
    topo.add_pod(
        n3,
        "ratings-envoy",
        ips.ratings_sidecar,
        "default",
        "ratings-v1",
        "ratings",
    );
    topo.add_pod_label(ips.reviews, "version", "v2");
    let fabric = Fabric::new(topo, FabricConfig::default());
    let mut world = World::new(fabric, 0xb00c);
    let mut services = Vec::new();

    // Sidecars (never instrumented — they're infrastructure).
    for (name, node, ip, upstream) in [
        ("productpage-envoy", n2, ips.pp_sidecar, "productpage"),
        ("details-envoy", n2, ips.details_sidecar, "details"),
        ("reviews-envoy", n3, ips.reviews_sidecar, "reviews"),
        ("ratings-envoy", n3, ips.ratings_sidecar, "ratings"),
    ] {
        let idx = world.add_service(
            ServiceSpec::http(name, node, ip, 15001)
                .with_workers(8)
                .with_compute(DurationNs::from_micros(60))
                .with_behavior(Behavior::Proxy {
                    upstream: upstream.to_string(),
                    handoff: false,
                }),
        );
        services.push((name.to_string(), idx));
    }
    let pp = world.add_service(
        ServiceSpec::http("productpage", n2, ips.productpage, 9080)
            .with_workers(8)
            .with_compute(DurationNs::from_micros(400))
            .with_behavior(Behavior::Chain(vec![
                Call {
                    target: "details-envoy".into(),
                    protocol: L7Protocol::Http1,
                    endpoint: "GET /details/0".into(),
                },
                Call {
                    target: "reviews-envoy".into(),
                    protocol: L7Protocol::Http1,
                    endpoint: "GET /reviews/0".into(),
                },
            ]))
            .with_tracer(tracers()),
    );
    services.push(("productpage".to_string(), pp));
    let details = world.add_service(
        ServiceSpec::http("details", n2, ips.details, 9080)
            .with_workers(8)
            .with_compute(DurationNs::from_micros(150))
            .with_tracer(tracers()),
    );
    services.push(("details".to_string(), details));
    let reviews = world.add_service(
        ServiceSpec::http("reviews", n3, ips.reviews, 9080)
            .with_workers(8)
            .with_compute(DurationNs::from_micros(300))
            .with_coroutines()
            .with_behavior(Behavior::Chain(vec![Call {
                target: "ratings-envoy".into(),
                protocol: L7Protocol::Http1,
                endpoint: "GET /ratings/0".into(),
            }]))
            .with_tracer(tracers()),
    );
    services.push(("reviews".to_string(), reviews));
    let ratings = world.add_service(
        ServiceSpec::http("ratings", n3, ips.ratings, 9080)
            .with_workers(8)
            .with_compute(DurationNs::from_micros(120))
            .with_tracer(tracers()),
    );
    services.push(("ratings".to_string(), ratings));

    let client = world.add_client(ClientSpec {
        rps,
        duration,
        connections: 8,
        endpoints: vec![("GET /productpage".to_string(), 1)],
        ..ClientSpec::http("wrk2", n1, ips.client, "productpage-envoy")
    });
    (world, AppHandles { client, services })
}

/// Bookinfo pod IPs.
pub struct BookinfoIps {
    /// Load generator.
    pub client: Ipv4Addr,
    /// productpage pod.
    pub productpage: Ipv4Addr,
    /// productpage sidecar.
    pub pp_sidecar: Ipv4Addr,
    /// details pod.
    pub details: Ipv4Addr,
    /// details sidecar.
    pub details_sidecar: Ipv4Addr,
    /// reviews pod.
    pub reviews: Ipv4Addr,
    /// reviews sidecar.
    pub reviews_sidecar: Ipv4Addr,
    /// ratings pod.
    pub ratings: Ipv4Addr,
    /// ratings sidecar.
    pub ratings_sidecar: Ipv4Addr,
}

impl Default for BookinfoIps {
    fn default() -> Self {
        BookinfoIps {
            client: Ipv4Addr::new(10, 1, 0, 100),
            productpage: Ipv4Addr::new(10, 1, 0, 11),
            pp_sidecar: Ipv4Addr::new(10, 1, 0, 12),
            details: Ipv4Addr::new(10, 1, 0, 21),
            details_sidecar: Ipv4Addr::new(10, 1, 0, 22),
            reviews: Ipv4Addr::new(10, 1, 1, 11),
            reviews_sidecar: Ipv4Addr::new(10, 1, 1, 12),
            ratings: Ipv4Addr::new(10, 1, 1, 21),
            ratings_sidecar: Ipv4Addr::new(10, 1, 1, 22),
        }
    }
}

/// The Fig. 11 scenario: an L4 VIP load-balancing over Nginx ingress pods,
/// pod `faulty_pod` misconfigured to return 404 for `/api/checkout`.
pub fn nginx_ingress_cluster(
    rps: f64,
    duration: DurationNs,
    faulty_pod: usize,
) -> (World, AppHandles, Ipv4Addr) {
    let (mut topo, [n1, n2, n3]) = three_node_cluster();
    let client_ip = Ipv4Addr::new(10, 1, 0, 100);
    let backend_ip = Ipv4Addr::new(10, 1, 1, 50);
    let nginx_ips = [
        Ipv4Addr::new(10, 1, 0, 31),
        Ipv4Addr::new(10, 1, 0, 32),
        Ipv4Addr::new(10, 1, 1, 33),
    ];
    let vip = Ipv4Addr::new(10, 96, 0, 1);
    topo.add_pod(n1, "wrk2-0", client_ip, "default", "wrk2", "wrk2");
    topo.add_pod(
        n2,
        "nginx-ingress-0",
        nginx_ips[0],
        "ingress",
        "nginx-ingress",
        "ingress",
    );
    topo.add_pod(
        n2,
        "nginx-ingress-1",
        nginx_ips[1],
        "ingress",
        "nginx-ingress",
        "ingress",
    );
    topo.add_pod(
        n3,
        "nginx-ingress-2",
        nginx_ips[2],
        "ingress",
        "nginx-ingress",
        "ingress",
    );
    topo.add_pod(
        n3,
        "checkout-0",
        backend_ip,
        "default",
        "checkout",
        "checkout",
    );
    let mut fabric = Fabric::new(topo, FabricConfig::default());
    fabric.add_l4_gateway(L4Gateway::new("ingress-vip", vip, 80, nginx_ips.to_vec()));
    let mut world = World::new(fabric, 0x9913);

    let mut services = Vec::new();
    for (i, ip) in nginx_ips.iter().enumerate() {
        let node = if i < 2 { n2 } else { n3 };
        let mut spec = ServiceSpec::http(&format!("nginx-ingress-{i}"), node, *ip, 80)
            .with_workers(8)
            .with_compute(DurationNs::from_micros(80))
            .with_behavior(Behavior::Proxy {
                upstream: "checkout".to_string(),
                handoff: i == 0, // one multi-threaded proxy for coverage
            });
        if i == faulty_pod {
            // The broken pod answers /api/checkout with 404 itself instead
            // of forwarding — the Fig. 11 bug.
            spec = ServiceSpec::http(&format!("nginx-ingress-{i}"), node, *ip, 80)
                .with_workers(8)
                .with_compute(DurationNs::from_micros(80))
                .with_error_endpoint("/api/checkout", 404);
        }
        let idx = world.add_service(spec);
        services.push((format!("nginx-ingress-{i}"), idx));
    }
    let backend = world.add_service(
        ServiceSpec::http("checkout", n3, backend_ip, 8080)
            .with_workers(8)
            .with_compute(DurationNs::from_micros(300)),
    );
    services.push(("checkout".to_string(), backend));

    // The client dials the VIP: register it as a pseudo-service endpoint.
    world.register_endpoint(
        "ingress-vip",
        crate::sim::Endpoint {
            ip: vip,
            port: 80,
            protocol: L7Protocol::Http1,
        },
    );
    // 9 connections → 3 per ingress pod under the VIP's round-robin; the
    // handoff pod only has half its pool reading, so stay under that.
    let client = world.add_client(ClientSpec {
        rps,
        duration,
        connections: 9,
        endpoints: vec![("GET /api/checkout".to_string(), 1)],
        ..ClientSpec::http("wrk2", n1, client_ip, "ingress-vip")
    });
    (world, AppHandles { client, services }, vip)
}

/// The Fig. 12 scenario: a producer floods an AMQP broker whose consumer
/// stalled. The broker's tiny receive buffer fills → zero-window
/// advertisements → hard overflow → TCP reset.
pub fn amqp_backlog(rps: f64, duration: DurationNs) -> (World, AppHandles) {
    let (mut topo, [n1, n2, _n3]) = three_node_cluster();
    let producer_ip = Ipv4Addr::new(10, 1, 0, 100);
    let broker_ip = Ipv4Addr::new(10, 1, 0, 60);
    topo.add_pod(
        n1,
        "order-producer-0",
        producer_ip,
        "default",
        "order-producer",
        "producer",
    );
    topo.add_pod(n2, "rabbitmq-0", broker_ip, "mq", "rabbitmq", "rabbitmq");
    let fabric = Fabric::new(topo, FabricConfig::default());
    let mut world = World::new(fabric, 0xab1e);

    // The broker "computes" absurdly slowly — its consumer is wedged, so it
    // stops draining the socket. The kernel-level consequences (zero
    // windows, reset) are what DeepFlow's flow metrics surface.
    let broker = world.add_service(
        ServiceSpec::http("rabbitmq", n2, broker_ip, 5672)
            .with_protocol(L7Protocol::Amqp)
            .with_workers(1)
            .with_compute(DurationNs::from_secs(30)),
    );
    // Shrink the broker's receive buffer so the backlog manifests quickly.
    {
        let svc = &world.services[broker];
        let pid = svc.pid;
        let node = svc.spec.node;
        let fd = svc.listen_fd();
        world
            .kernels
            .get_mut(&node)
            .unwrap()
            .set_recv_capacity(pid, fd, 4 * 1024)
            .unwrap();
    }
    // AMQP publishers don't wait for acks: deep pipelining floods the
    // wedged broker's receive buffer, producing the Fig. 12 kernel-level
    // distress signals.
    let client = world.add_client(ClientSpec {
        rps,
        duration,
        connections: 1,
        pipeline_depth: 10_000,
        protocol: L7Protocol::Amqp,
        endpoints: vec![("basic.publish orders".to_string(), 1)],
        timeout: DurationNs::from_secs(2),
        ..ClientSpec::http("order-producer", n1, producer_ip, "rabbitmq")
    });
    (
        world,
        AppHandles {
            client,
            services: vec![("rabbitmq".to_string(), broker)],
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_types::TimeNs;

    #[test]
    fn springboot_demo_serves_requests_end_to_end() {
        let mut f = no_tracer_factory();
        let (mut world, handles) = springboot_demo(200.0, DurationNs::from_secs(2), &mut f);
        world.run_until(TimeNs::from_secs(4));
        let client = &world.clients[handles.client];
        assert!(client.fired >= 390, "fired {}", client.fired);
        assert!(
            client.completed as f64 >= client.fired as f64 * 0.95,
            "completed {}/{}",
            client.completed,
            client.fired
        );
        assert_eq!(client.errors, 0, "no errors in the healthy demo");
        // Every service on the chain served.
        for (name, idx) in &handles.services {
            assert!(world.services[*idx].served > 0, "{name} served nothing");
        }
        // Latency is sane: compute chain is ~500us + network.
        let p50 = client.hist.p50();
        assert!(
            p50 >= DurationNs::from_micros(300) && p50 <= DurationNs::from_millis(50),
            "p50 {p50}"
        );
    }

    #[test]
    fn bookinfo_serves_through_sidecars() {
        let mut f = no_tracer_factory();
        let (mut world, handles) = bookinfo(100.0, DurationNs::from_secs(2), &mut f);
        world.run_until(TimeNs::from_secs(5));
        let client = &world.clients[handles.client];
        assert!(
            client.completed as f64 >= client.fired as f64 * 0.9,
            "completed {}/{}",
            client.completed,
            client.fired
        );
        // The full fan-out ran: ratings (leaf of the deepest chain) served.
        let ratings = handles.service("ratings").unwrap();
        assert!(world.services[ratings].served > 0);
        // Sidecars forwarded.
        let pp_envoy = handles.service("productpage-envoy").unwrap();
        assert!(world.services[pp_envoy].served > 0);
    }

    #[test]
    fn nginx_cluster_mixes_ok_and_404_depending_on_pod() {
        let (mut world, handles, _vip) = nginx_ingress_cluster(150.0, DurationNs::from_secs(2), 1);
        world.run_until(TimeNs::from_secs(5));
        let client = &world.clients[handles.client];
        assert!(client.completed > 0);
        // Pod 1 is faulty: roughly a third of responses are 404.
        let ratio = client.errors as f64 / client.completed.max(1) as f64;
        assert!(
            ratio > 0.15 && ratio < 0.55,
            "404 ratio {ratio} ({} / {})",
            client.errors,
            client.completed
        );
        // The faulty pod answered without forwarding; the healthy ones
        // proxied to checkout.
        let checkout = handles.service("checkout").unwrap();
        assert!(world.services[checkout].served > 0);
    }

    #[test]
    fn amqp_backlog_produces_failures() {
        let (mut world, handles) = amqp_backlog(500.0, DurationNs::from_secs(3));
        world.run_until(TimeNs::from_secs(8));
        let client = &world.clients[handles.client];
        // The broker is wedged: almost nothing completes; failures abound.
        assert!(
            client.failed > 0,
            "expected timeouts/resets, got failed={} completed={}",
            client.failed,
            client.completed
        );
        let broker_stats = world.fabric.stats();
        let _ = broker_stats;
    }

    #[test]
    fn standard_taps_cover_nodes_and_pods() {
        let mut f = no_tracer_factory();
        let (world, _) = springboot_demo(10.0, DurationNs::from_secs(1), &mut f);
        let taps = standard_taps(&world);
        // 3 node NICs + 4 pod veths
        let nics = taps
            .iter()
            .filter(|(_, _, k, _)| *k == TapKind::NodeNic)
            .count();
        let veths = taps
            .iter()
            .filter(|(_, _, k, _)| *k == TapKind::PodVeth)
            .count();
        assert_eq!(nics, 3);
        assert_eq!(veths, 4);
    }

    fn no_tracer_factory() -> impl FnMut() -> Box<dyn AppTracer> {
        || no_tracer()
    }
}
