//! Integration: network-side coverage under faults — the paper's core
//! value proposition (Fig. 2: 47.3% of anomalies live in the network;
//! §4.1.2/§4.1.3 case studies).

use deepflow::mesh::apps;
use deepflow::net::faults::Fault;
use deepflow::net::topology::ElementId;
use deepflow::prelude::*;
use deepflow::types::DurationNs as D;

#[test]
fn packet_loss_shows_up_as_retransmissions_on_spans() {
    let mut make_tracer = || apps::no_tracer();
    let (mut world, handles) = apps::springboot_demo(50.0, D::from_secs(2), &mut make_tracer);
    // 20% loss at the rack-1 ToR.
    world
        .fabric
        .faults
        .inject(ElementId::Tor("rack-1".into()), Fault::Loss { p: 0.2 });
    let mut df = Deployment::install(&mut world).unwrap();
    df.run(&mut world, TimeNs::from_secs(4), D::from_millis(200));

    assert!(
        world.fabric.stats().retransmissions > 0,
        "fabric retransmitted"
    );
    let all = df.server.span_list(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    let with_retx = all
        .iter()
        .filter_map(|s| s.flow_metrics)
        .filter(|m| m.retransmissions > 0)
        .count();
    assert!(
        with_retx > 0,
        "spans carry correlated retransmission counts (the §4.1.3 workflow)"
    );
    // And the workload visibly suffered: p99 latency spikes past the RTO.
    let client = &world.clients[handles.client];
    assert!(
        client.hist.p99() >= D::from_millis(100),
        "p99 {} reflects retransmission delays",
        client.hist.p99()
    );
}

#[test]
fn latency_fault_is_localisable_by_comparing_hop_spans() {
    let mut make_tracer = || apps::no_tracer();
    let (mut world, _h) = apps::springboot_demo(30.0, D::from_secs(2), &mut make_tracer);
    // 5ms of extra latency at node-2's physical NIC.
    let victim = world.fabric.topology.node_ids()[1];
    world.fabric.faults.inject(
        ElementId::PhysNic(victim),
        Fault::ExtraLatency(D::from_millis(5)),
    );
    let mut df = Deployment::install(&mut world).unwrap();
    df.run(&mut world, TimeNs::from_secs(3), D::from_millis(200));

    let slowest = df
        .server
        .slowest_span(TimeNs::ZERO, TimeNs::from_secs(3))
        .unwrap();
    let trace = df.server.trace(slowest);
    assert!(trace.len() > 5);
    // The hop-by-hop spans expose the jump: some adjacent parent/child pair
    // differs by ≥5ms where the fault sits.
    let mut max_gap = D::ZERO;
    for s in &trace.spans {
        if let Some(pid) = s.parent {
            if let Some(parent) = trace.spans.iter().find(|p| p.span.span_id == pid) {
                let gap = s.span.req_time.saturating_since(parent.span.req_time);
                max_gap = max_gap.max(gap);
            }
        }
    }
    assert!(
        max_gap >= D::from_millis(5),
        "hop-level spans localise the 5ms jump (max gap {max_gap}):\n{}",
        trace.render_text()
    );
}

#[test]
fn amqp_backlog_yields_zero_windows_then_resets() {
    // The Fig. 12 case study end-to-end: flow metrics reveal that the
    // broker's backlog (zero windows) escalates to connection resets.
    let (mut world, handles) = apps::amqp_backlog(800.0, D::from_secs(3));
    let mut df = Deployment::install(&mut world).unwrap();
    // Run past the 60 s session window (x2 slots) so unanswered publishes
    // expire into Incomplete spans.
    df.run(&mut world, TimeNs::from_secs(200), D::from_secs(20));

    let client = &world.clients[handles.client];
    assert!(
        client.failed > 0,
        "producer saw failures: {}",
        client.failed
    );

    // The agents' flow tables observed the kernel-level distress directly.
    let mut zero_windows = 0u64;
    let mut resets = 0u64;
    for agent in df.agents.values() {
        let t = agent.flows.totals();
        zero_windows += t.zero_windows;
        resets += t.resets;
    }
    assert!(
        zero_windows > 0,
        "zero-window advertisements observed (backlogged consumer)"
    );
    assert!(resets > 0, "connection resets observed");
    // And the tracing side shows incomplete publishes whose correlated
    // flow metrics point at the network-level cause — the Fig. 12
    // one-minute diagnosis.
    let all = df.server.span_list(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    let incomplete: Vec<&Span> = all
        .iter()
        .filter(|s| s.status == SpanStatus::Incomplete && s.l7_protocol == L7Protocol::Amqp)
        .collect();
    assert!(!incomplete.is_empty(), "incomplete AMQP sessions recorded");
    assert!(
        incomplete
            .iter()
            .filter_map(|s| s.flow_metrics)
            .any(|m| m.is_anomalous()),
        "incomplete spans carry the anomalous flow metrics"
    );
}

#[test]
fn blackhole_produces_incomplete_spans_not_silence() {
    let mut make_tracer = || apps::no_tracer();
    let (mut world, handles) = apps::springboot_demo(20.0, D::from_secs(1), &mut make_tracer);
    // Run healthy for 0.5s, then blackhole node-3 (MySQL's node).
    let mut df = Deployment::install(&mut world).unwrap();
    df.run(&mut world, TimeNs::from_millis(500), D::from_millis(100));
    let n3 = world.fabric.topology.node_ids()[2];
    world
        .fabric
        .faults
        .inject(ElementId::NodeNic(n3), Fault::BlackHole);
    df.run(&mut world, TimeNs::from_secs(200), D::from_secs(30));

    // DeepFlow records the requests that vanished into the black hole as
    // Incomplete spans (§3.3.1 "unexpected execution terminations").
    let all = df.server.span_list(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    let incomplete = all
        .iter()
        .filter(|s| s.status == SpanStatus::Incomplete)
        .count();
    assert!(
        incomplete > 0,
        "blackholed requests became Incomplete spans"
    );
    let client = &world.clients[handles.client];
    assert!(client.failed > 0, "client saw timeouts");
}

#[test]
fn arp_storm_is_visible_per_interface_like_section_4_1_2() {
    // Fresh pods try to reach the gateway; a faulty physical NIC floods
    // redundant ARP requests and delays resolution. The per-interface ARP
    // counters expose WHERE (the paper's operators took months by hand).
    let mut make_tracer = || apps::no_tracer();
    let (mut world, _h) = apps::springboot_demo(20.0, D::from_secs(1), &mut make_tracer);
    let victim = world.fabric.topology.node_ids()[0]; // client's node
    world.fabric.faults.inject(
        ElementId::PhysNic(victim),
        Fault::ArpStorm {
            extra_requests: 5,
            resolution_delay: D::from_millis(50),
        },
    );
    let mut df = Deployment::install(&mut world).unwrap();
    // Also tap the physical NICs (the extension taps of Appendix A).
    world.fabric.taps.install(
        ElementId::PhysNic(victim),
        victim,
        deepflow::net::taps::TapKind::PhysNic,
        deepflow::net::taps::TapFilter::all(),
    );
    df.run(&mut world, TimeNs::from_secs(2), D::from_millis(100));

    let agent = df.agents.get(&victim).unwrap();
    let storm = agent.flows.arp_requests_on("phys0");
    assert!(
        storm >= 6,
        "the faulty NIC's interface shows the redundant ARPs: {storm}"
    );
    // Healthy interfaces show none-to-few.
    let eth = agent.flows.arp_requests_on("eth0");
    assert!(
        eth < storm,
        "healthy interface ({eth}) vs faulty ({storm}) isolates the device"
    );
}
