//! End-to-end integration: the paper's headline claim — distributed traces
//! for an uninstrumented microservice application, in zero code, with
//! network-side coverage.

use deepflow::mesh::apps;
use deepflow::prelude::*;

fn run_bookinfo(seconds: u64) -> (deepflow::mesh::World, apps::AppHandles, Deployment) {
    let mut make_tracer = || apps::no_tracer();
    let (mut world, handles) =
        apps::bookinfo(50.0, DurationNs::from_secs(seconds), &mut make_tracer);
    let mut df = Deployment::install(&mut world).expect("programs verify");
    df.run(
        &mut world,
        TimeNs::from_secs(seconds + 1),
        DurationNs::from_millis(200),
    );
    (world, handles, df)
}

#[test]
fn bookinfo_traces_assemble_without_any_instrumentation() {
    let (world, handles, df) = run_bookinfo(2);
    let client = &world.clients[handles.client];
    assert!(client.completed > 50, "workload ran: {}", client.completed);

    // Pick a productpage server span and assemble its trace.
    let spans = df.server.span_list(&SpanQuery {
        endpoint: Some("GET /productpage".to_string()),
        limit: usize::MAX,
        ..Default::default()
    });
    assert!(!spans.is_empty(), "productpage spans captured");
    let start = spans
        .iter()
        .find(|s| s.capture.tap_side == TapSide::ServerProcess)
        .expect("server-side productpage span")
        .span_id;
    let trace = df.server.trace(start);
    assert!(trace.is_well_formed());

    // The trace must reach every tier of the application: productpage,
    // details, reviews, ratings — plus the sidecars — without one line of
    // instrumentation.
    let endpoints: Vec<&str> = trace
        .spans
        .iter()
        .map(|s| s.span.endpoint.as_str())
        .collect();
    for needle in ["/productpage", "/details", "/reviews", "/ratings"] {
        assert!(
            endpoints.iter().any(|e| e.contains(needle)),
            "trace missing {needle}: got {endpoints:?}"
        );
    }

    // Paper §5.4: DeepFlow produces tens of spans per Bookinfo trace
    // (38 in the paper's deployment; ours differs in capture points but
    // must be far beyond the 6 an intrusive tracer gets).
    assert!(
        trace.len() >= 15,
        "expected a rich multi-hop trace, got {} spans:\n{}",
        trace.len(),
        trace.render_text()
    );

    // Both sys spans (process side) and net spans (NIC side) participate —
    // the network blind spots are gone.
    let sys = trace
        .spans
        .iter()
        .filter(|s| s.span.kind == SpanKind::Sys)
        .count();
    let net = trace
        .spans
        .iter()
        .filter(|s| s.span.kind == SpanKind::Net)
        .count();
    assert!(sys >= 6, "sys spans: {sys}");
    assert!(net >= 6, "net spans: {net}");
}

#[test]
fn sidecar_x_request_ids_stitch_proxy_legs() {
    let (_world, _handles, df) = run_bookinfo(2);
    // Proxy legs share X-Request-IDs: find a span pair (downstream /
    // upstream of one envoy) agreeing on the id.
    let all = df.server.span_list(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    let with_xid = all
        .iter()
        .filter(|s| s.x_request_id_req.is_some() || s.x_request_id_resp.is_some())
        .count();
    assert!(with_xid >= 4, "X-Request-IDs captured on spans: {with_xid}");
}

#[test]
fn smart_encoded_tags_let_users_filter_by_pod() {
    let (_world, _handles, df) = run_bookinfo(2);
    let pod_id = df
        .server
        .dictionary()
        .pod_id("reviews-v2-0")
        .expect("pod in dictionary");
    let reviews_spans = df.server.span_list(&SpanQuery {
        pod_id: Some(pod_id),
        limit: usize::MAX,
        ..Default::default()
    });
    assert!(!reviews_spans.is_empty(), "pod filter finds reviews spans");
    // Query-time label join (phase 3): the reviews pod carries version=v2.
    assert!(
        reviews_spans
            .iter()
            .any(|s| s.tags.label("version") == Some("v2")),
        "self-defined labels joined at query time"
    );
}

#[test]
fn coroutine_service_spans_carry_pseudo_thread_ids() {
    let (_world, _handles, df) = run_bookinfo(2);
    let all = df.server.span_list(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    // reviews runs a coroutine runtime: its server-side spans must carry
    // pseudo-thread ids (paper §3.3.1 pseudo-thread structure).
    let reviews_with_pth = all
        .iter()
        .filter(|s| s.process_name.as_deref() == Some("reviews") && s.pseudo_thread_id.is_some())
        .count();
    assert!(reviews_with_pth > 0, "pseudo-thread ids on coroutine spans");
}

#[test]
fn every_assembled_trace_is_well_formed() {
    let (_world, _handles, df) = run_bookinfo(1);
    let ids: Vec<SpanId> = df
        .server
        .span_list(&SpanQuery {
            limit: 50,
            ..Default::default()
        })
        .iter()
        .map(|s| s.span_id)
        .collect();
    assert!(!ids.is_empty());
    for id in ids {
        let t = df.server.trace(id);
        assert!(t.is_well_formed(), "trace from {id} malformed");
        assert!(!t.is_empty());
    }
}

#[test]
fn agents_observe_flow_metrics_alongside_traces() {
    let (_world, _handles, df) = run_bookinfo(2);
    let all = df.server.span_list(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    let with_metrics = all.iter().filter(|s| s.flow_metrics.is_some()).count();
    assert!(
        with_metrics * 2 >= all.len(),
        "most spans carry correlated flow metrics: {with_metrics}/{}",
        all.len()
    );
    // A healthy run has no anomalous flows.
    let anomalous = all
        .iter()
        .filter_map(|s| s.flow_metrics)
        .filter(|m| m.is_anomalous())
        .count();
    assert_eq!(anomalous, 0, "healthy bookinfo shows no network anomalies");
}
