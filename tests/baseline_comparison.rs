//! Integration: intrusive baselines vs DeepFlow on the same workload —
//! span coverage (Fig. 16's "spans per trace") and third-party span
//! integration (§3.3.2).

use deepflow::baselines::intrusive::{reporter, IntrusiveTracer};
use deepflow::mesh::apps;
use deepflow::prelude::*;

#[test]
fn jaeger_like_tracer_produces_app_spans_with_explicit_context() {
    let rep = reporter();
    let mut seed = 0u64;
    let mut make_tracer = || -> Box<dyn deepflow::mesh::AppTracer> {
        seed += 1;
        Box::new(IntrusiveTracer::jaeger_like(rep.clone(), seed))
    };
    let (mut world, handles) =
        apps::springboot_demo(50.0, DurationNs::from_secs(2), &mut make_tracer);
    world.run_until(TimeNs::from_secs(3));
    let client = &world.clients[handles.client];
    assert!(client.completed > 50);

    let app_spans = rep.lock().unwrap();
    // Per request: gateway server + gateway→svc call + svc server + svc→db
    // call = 4 app spans (the paper's "Jaeger only constructs 4 spans for a
    // single trace" on the Spring Boot demo).
    let per_trace = app_spans.len() as f64 / client.completed as f64;
    assert!(
        (3.5..=4.5).contains(&per_trace),
        "jaeger-like spans/trace = {per_trace}"
    );
    // Explicit propagation: spans of one trace share a trace id.
    let first_trace = app_spans[0].otel_trace_id.unwrap();
    let same_trace = app_spans
        .iter()
        .filter(|s| s.otel_trace_id == Some(first_trace))
        .count();
    assert!(same_trace >= 2, "context propagated across services");
}

#[test]
fn deepflow_traces_dwarf_intrusive_coverage_on_the_same_run() {
    // Instrumented app + DeepFlow deployed simultaneously; the assembled
    // DeepFlow trace must contain the app spans (third-party integration)
    // AND far more spans than the SDK alone produced.
    let rep = reporter();
    let mut seed = 100u64;
    let mut make_tracer = || -> Box<dyn deepflow::mesh::AppTracer> {
        seed += 1;
        Box::new(IntrusiveTracer::jaeger_like(rep.clone(), seed))
    };
    let (mut world, handles) =
        apps::springboot_demo(30.0, DurationNs::from_secs(2), &mut make_tracer);
    let mut df = Deployment::install(&mut world).unwrap();
    df.run(
        &mut world,
        TimeNs::from_secs(3),
        DurationNs::from_millis(100),
    );

    // Ship the SDK's app spans into the server too (OpenTelemetry-style
    // integration, §3.2.1 instrumentation extensions).
    let app_spans: Vec<Span> = rep.lock().unwrap().clone();
    let app_count_per_trace = 4.0;
    df.server.ingest_batch(app_spans);

    let gateway_spans = df.server.span_list(&SpanQuery {
        endpoint: Some("GET /api/orders".to_string()),
        limit: usize::MAX,
        ..Default::default()
    });
    let start = gateway_spans
        .iter()
        .find(|s| s.capture.tap_side == TapSide::ServerProcess && s.kind == SpanKind::Sys)
        .expect("gateway server span")
        .span_id;
    let trace = df.server.trace(start);
    assert!(trace.is_well_formed());

    let sys_net = trace
        .spans
        .iter()
        .filter(|s| s.span.kind != SpanKind::App)
        .count() as f64;
    assert!(
        sys_net >= app_count_per_trace * 3.0,
        "DeepFlow coverage ({sys_net}) well beyond the SDK's ({app_count_per_trace})"
    );
    // Third-party spans joined the same trace (rules 13–15).
    let apps_in_trace = trace
        .spans
        .iter()
        .filter(|s| s.span.kind == SpanKind::App)
        .count();
    assert!(
        apps_in_trace >= 2,
        "app spans integrated into the DeepFlow trace: {apps_in_trace}\n{}",
        trace.render_text()
    );
    let _ = handles;
}

#[test]
fn context_propagation_dies_at_headerless_protocols_but_deepflow_continues() {
    // The spring-svc → MySQL hop can't carry traceparent (the MySQL wire
    // protocol has no headers). The SDK's trace stops there; DeepFlow's
    // trace includes the MySQL exchange.
    let rep = reporter();
    let mut seed = 200u64;
    let mut make_tracer = || -> Box<dyn deepflow::mesh::AppTracer> {
        seed += 1;
        Box::new(IntrusiveTracer::jaeger_like(rep.clone(), seed))
    };
    let (mut world, _handles) =
        apps::springboot_demo(20.0, DurationNs::from_secs(1), &mut make_tracer);
    let mut df = Deployment::install(&mut world).unwrap();
    df.run(
        &mut world,
        TimeNs::from_secs(2),
        DurationNs::from_millis(100),
    );

    // No app span mentions MySQL serving (it is uninstrumented), and no
    // MySQL-side sys span carries a third-party trace id (the context
    // could not propagate over the MySQL protocol)...
    let all = df.server.span_list(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    let mysql_sys: Vec<&Span> = all
        .iter()
        .filter(|s| s.l7_protocol == L7Protocol::Mysql && s.kind == SpanKind::Sys)
        .collect();
    assert!(!mysql_sys.is_empty(), "DeepFlow captured the MySQL hop");
    assert!(
        mysql_sys.iter().all(|s| s.otel_trace_id.is_none()),
        "no explicit context survived the headerless protocol"
    );
    // ...yet the assembled trace still reaches MySQL via systrace chaining.
    let svc_span = all
        .iter()
        .find(|s| {
            s.process_name.as_deref() == Some("spring-svc")
                && s.capture.tap_side == TapSide::ServerProcess
        })
        .expect("spring-svc server span");
    let trace = df.server.trace(svc_span.span_id);
    assert!(
        trace
            .spans
            .iter()
            .any(|s| s.span.l7_protocol == L7Protocol::Mysql),
        "implicit context bridges the SDK's blind spot:\n{}",
        trace.render_text()
    );
}
