//! Integration: the paper's instrumentation extensions (§3.2.1) — TLS
//! uprobes, user-supplied protocol specifications — and failure injection
//! on the observation plane itself (perf-ring overflow).

use deepflow::mesh::{Behavior, ClientSpec, ServiceSpec, World};
use deepflow::net::fabric::{Fabric, FabricConfig};
use deepflow::net::topology::Topology;
use deepflow::prelude::*;
use deepflow::protocols::inference::CustomProtocol;
use deepflow::protocols::MessageSummary;
use deepflow::types::DurationNs as D;
use std::net::Ipv4Addr;

fn two_pod_world() -> (World, Ipv4Addr, Ipv4Addr) {
    let mut topo = Topology::new();
    let n1 = topo.add_simple_node("n1", Ipv4Addr::new(192, 168, 0, 1));
    let n2 = topo.add_simple_node("n2", Ipv4Addr::new(192, 168, 0, 2));
    let client_ip = Ipv4Addr::new(10, 1, 0, 100);
    let svc_ip = Ipv4Addr::new(10, 1, 1, 10);
    topo.add_pod(n1, "client", client_ip, "default", "client", "client");
    topo.add_pod(
        n2,
        "secure-svc",
        svc_ip,
        "default",
        "secure-svc",
        "secure-svc",
    );
    (
        World::new(Fabric::new(topo, FabricConfig::default()), 0xe57),
        client_ip,
        svc_ip,
    )
}

#[test]
fn tls_services_are_traced_via_ssl_uprobes_despite_opaque_wire() {
    let (mut world, client_ip, svc_ip) = two_pod_world();
    let n2 = world.fabric.topology.node_ids()[1];
    world.add_service(
        ServiceSpec::http("secure-svc", n2, svc_ip, 443)
            .with_workers(4)
            .with_tls()
            .with_behavior(Behavior::Leaf),
    );
    let n1 = world.fabric.topology.node_ids()[0];
    let client = world.add_client(ClientSpec {
        rps: 50.0,
        duration: D::from_secs(2),
        connections: 4,
        tls: true,
        endpoints: vec![("GET /secret".to_string(), 1)],
        ..ClientSpec::http("client", n1, client_ip, "secure-svc")
    });
    let mut df = Deployment::install(&mut world).unwrap();
    df.run(&mut world, TimeNs::from_secs(3), D::from_millis(200));

    let cl = &world.clients[client];
    assert!(cl.completed > 80, "TLS workload ran: {}", cl.completed);

    let all = df.server.span_list(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    // The wire is opaque: NO net span carries the plaintext endpoint.
    let net_plain = all
        .iter()
        .filter(|s| s.kind == SpanKind::Net && s.endpoint.contains("/secret"))
        .count();
    assert_eq!(net_plain, 0, "taps must not see plaintext of TLS traffic");
    // Yet the server-side uprobe spans DO: "easy access to important
    // information, such as the original payload prior to TLS encryption".
    let uprobe_spans: Vec<&Span> = all
        .iter()
        .filter(|s| {
            s.kind == SpanKind::Sys
                && s.endpoint == "GET /secret"
                && s.process_name.as_deref() == Some("secure-svc")
        })
        .collect();
    assert!(
        uprobe_spans.len() as u64 >= cl.completed / 2,
        "ssl_read/ssl_write uprobes produced plaintext spans: {}",
        uprobe_spans.len()
    );
    assert!(uprobe_spans
        .iter()
        .all(|s| s.capture.tap_side == TapSide::ServerProcess));
    assert!(uprobe_spans.iter().all(|s| s.status_code == Some(200)));
}

#[test]
fn user_supplied_protocol_specifications_extend_inference() {
    // A proprietary length-prefixed RPC: [0xC9]['Q'|'R'][id][verb...].
    // Without a user-supplied spec the flow is Unknown; with one, full
    // spans appear — the §3.3.1 extension point.
    fn acme_spec() -> CustomProtocol {
        CustomProtocol {
            name: "acme-rpc".into(),
            sniff: Box::new(|p| p.first() == Some(&0xC9) && p.len() >= 3),
            parse: Box::new(|p| {
                let kind = *p.get(1)?;
                let id = u64::from(*p.get(2)?);
                let verb = std::str::from_utf8(p.get(3..)?).ok()?;
                Some(MessageSummary::basic(
                    L7Protocol::Unknown,
                    match kind {
                        b'Q' => deepflow::types::MessageType::Request,
                        b'R' => deepflow::types::MessageType::Response,
                        _ => return None,
                    },
                    deepflow::types::SessionKey::Multiplexed(id),
                    format!("acme.{verb}"),
                ))
            }),
        }
    }

    // Feed the agent's syscall path directly through a kernel pair.
    use deepflow::agent::{Agent, AgentConfig};
    use deepflow::kernel::{Kernel, KernelConfig, SyscallSurface};
    use deepflow::types::TransportProtocol;
    let mut ka = Kernel::new(KernelConfig {
        node: deepflow::types::NodeId(1),
        ..Default::default()
    });
    let mut kb = Kernel::new(KernelConfig {
        node: deepflow::types::NodeId(2),
        ..Default::default()
    });
    let mut agent_b = Agent::new(AgentConfig::for_node(kb.node()));
    agent_b.install(&mut kb).unwrap();
    let slot = agent_b.register_custom_protocol(acme_spec);
    assert_eq!(slot, L7Protocol::Custom(0));

    // Minimal fabric to carry segments.
    let mut topo = Topology::new();
    let n1 = topo.add_simple_node("a", Ipv4Addr::new(10, 0, 0, 1));
    let n2 = topo.add_simple_node("b", Ipv4Addr::new(10, 0, 0, 2));
    assert_eq!(
        (n1, n2),
        (deepflow::types::NodeId(1), deepflow::types::NodeId(2))
    );
    let mut fabric = Fabric::new(topo, FabricConfig::default());

    fn pump(ka: &mut Kernel, kb: &mut Kernel, fabric: &mut Fabric) {
        loop {
            let out_a = ka.drain_outbox();
            let out_b = kb.drain_outbox();
            if out_a.is_empty() && out_b.is_empty() {
                break;
            }
            for seg in out_a {
                for d in fabric.transmit(seg, TimeNs(0)) {
                    let _ = kb.deliver(&d.segment, d.at);
                }
            }
            for seg in out_b {
                for d in fabric.transmit(seg, TimeNs(0)) {
                    let _ = ka.deliver(&d.segment, d.at);
                }
            }
        }
    }

    // Server listens; client speaks acme-rpc.
    let (spid, stid) = kb.procs.spawn_process("acme-server");
    let lfd = kb.socket(spid, TransportProtocol::Tcp).unwrap();
    kb.bind(spid, lfd, Ipv4Addr::new(10, 0, 0, 2), 7000)
        .unwrap();
    kb.listen(spid, lfd, 16).unwrap();
    kb.accept(stid, spid, lfd);
    let (cpid, ctid) = ka.procs.spawn_process("acme-client");
    let cfd = ka.socket(cpid, TransportProtocol::Tcp).unwrap();
    ka.connect(
        ctid,
        cpid,
        cfd,
        Ipv4Addr::new(10, 0, 0, 1),
        (Ipv4Addr::new(10, 0, 0, 2), 7000),
    );
    pump(&mut ka, &mut kb, &mut fabric);
    let (sfd, _) = kb.accept(stid, spid, lfd).unwrap_complete();

    // Request → server reads → server responds.
    ka.sys_write(
        ctid,
        cpid,
        cfd,
        bytes::Bytes::from(vec![0xC9, b'Q', 7, b'p', b'i', b'n', b'g']),
        TimeNs(1000),
    )
    .unwrap_complete();
    kb.sys_read(stid, spid, sfd, 4096, TimeNs(1000));
    pump(&mut ka, &mut kb, &mut fabric);
    kb.sys_read(stid, spid, sfd, 4096, TimeNs(2000))
        .unwrap_complete();
    kb.sys_write(
        stid,
        spid,
        sfd,
        bytes::Bytes::from(vec![0xC9, b'R', 7, b'o', b'k']),
        TimeNs(3000),
    )
    .unwrap_complete();
    pump(&mut ka, &mut kb, &mut fabric);

    let spans = agent_b.poll(&mut kb, &mut fabric, TimeNs::from_secs(1));
    assert_eq!(spans.len(), 1, "one acme-rpc span: {spans:#?}");
    let s = &spans[0];
    assert_eq!(s.l7_protocol, L7Protocol::Custom(0));
    assert_eq!(s.endpoint, "acme.ping");
    assert_eq!(s.capture.tap_side, TapSide::ServerProcess);
    // Capture timestamps are the syscall exits (enter + kernel time).
    assert!(s.req_time >= TimeNs(2000) && s.req_time < TimeNs(2000) + D::from_micros(10));
    assert!(s.resp_time >= TimeNs(3000) && s.resp_time < TimeNs(3000) + D::from_micros(10));
}

#[test]
fn perf_ring_overflow_degrades_gracefully() {
    // A tiny perf ring under heavy load: events drop (counted), the agent
    // still produces consistent spans for what survived, and nothing
    // panics — the §3.3.1 tolerance for missing halves.
    use deepflow::agent::{Agent, AgentConfig};
    use deepflow::kernel::KernelConfig;
    let (mut world, client_ip, svc_ip) = two_pod_world();
    // Rebuild node-2's kernel with an 8-entry ring.
    let n2 = world.fabric.topology.node_ids()[1];
    let tiny = deepflow::kernel::Kernel::new(KernelConfig {
        node: n2,
        hostname: "n2".into(),
        ring_capacity: 8,
        ..Default::default()
    });
    world.kernels.insert(n2, tiny);
    world.add_service(
        ServiceSpec::http("secure-svc", n2, svc_ip, 80)
            .with_workers(4)
            .with_behavior(Behavior::Leaf),
    );
    let n1 = world.fabric.topology.node_ids()[0];
    let client_idx = world.add_client(ClientSpec {
        rps: 200.0,
        duration: D::from_secs(1),
        connections: 4,
        endpoints: vec![("GET /".to_string(), 1)],
        ..ClientSpec::http("client", n1, client_ip, "secure-svc")
    });
    let mut agent = Agent::new(AgentConfig::for_node(n2));
    agent.install(world.kernels.get_mut(&n2).unwrap()).unwrap();
    // Run the whole workload WITHOUT polling: the 8-entry ring overflows.
    world.run_until(TimeNs::from_secs(2));
    let kernel = world.kernels.get_mut(&n2).unwrap();
    let dropped = kernel.hooks.ring.dropped();
    assert!(dropped > 100, "ring overflowed: {dropped} drops");
    // The late poll still works with whatever survived.
    let spans = agent.poll(kernel, &mut world.fabric, TimeNs::from_secs(400));
    let stats = agent.stats();
    assert!(stats.messages <= 8, "only the ring's capacity survived");
    // Sessions may be half-missing: spans are complete or Incomplete, never
    // corrupt.
    for s in &spans {
        assert!(s.resp_time >= s.req_time);
    }
    // The workload itself was unaffected (monitoring loss ≠ service loss).
    let cl = &world.clients[client_idx];
    assert!(cl.completed > 150, "service kept serving: {}", cl.completed);
}

#[test]
fn server_side_re_aggregation_reunites_out_of_window_sessions() {
    // Agent configured with a tiny 1 s session slot; the service takes 3 s
    // to respond. The request expires (Incomplete), the late response
    // ships as a ResponseOnly fragment, and the SERVER re-aggregates them
    // — §3.3.1's "aggregated again using the same technique".
    use deepflow::agent::AgentConfig;
    let (mut world, client_ip, svc_ip) = two_pod_world();
    let n2 = world.fabric.topology.node_ids()[1];
    world.add_service(
        ServiceSpec::http("secure-svc", n2, svc_ip, 80)
            .with_workers(2)
            .with_compute(D::from_secs(3))
            .with_behavior(Behavior::Leaf),
    );
    let n1 = world.fabric.topology.node_ids()[0];
    let client = world.add_client(ClientSpec {
        rps: 2.0,
        duration: D::from_secs(1),
        connections: 2,
        timeout: D::from_secs(30),
        ..ClientSpec::http("client", n1, client_ip, "secure-svc")
    });
    let mut df = Deployment::install_with(&mut world, |node| AgentConfig {
        session_slot: D::from_secs(1),
        ..AgentConfig::for_node(node)
    })
    .unwrap();
    df.run(&mut world, TimeNs::from_secs(20), D::from_millis(500));
    assert!(world.clients[client].completed > 0);

    let before = df.server.span_list(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    let incomplete_before = before
        .iter()
        .filter(|s| s.status == SpanStatus::Incomplete)
        .count();
    assert!(
        incomplete_before > 0,
        "requests expired out of the 1s window"
    );

    let merged = df.server.re_aggregate();
    assert!(merged > 0, "re-aggregation reunited sessions: {merged}");

    let after = df.server.span_list(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    let incomplete_after = after
        .iter()
        .filter(|s| s.status == SpanStatus::Incomplete)
        .count();
    assert!(
        incomplete_after < incomplete_before,
        "incomplete spans shrank: {incomplete_before} -> {incomplete_after}"
    );
    // A reunited span has a real ~3s duration and an Ok status again.
    let reunited = after
        .iter()
        .find(|s| s.status == SpanStatus::Ok && s.duration() >= D::from_secs(2))
        .expect("a reunited long-duration span exists");
    assert_eq!(reunited.status_code, Some(200));
    // Consumed fragments no longer appear in queries.
    let fragments_after = after
        .iter()
        .filter(|s| s.status == SpanStatus::ResponseOnly)
        .count();
    let fragments_before = before
        .iter()
        .filter(|s| s.status == SpanStatus::ResponseOnly)
        .count();
    assert!(fragments_after < fragments_before.max(1));
}

#[test]
fn agents_aggregate_l7_metrics_per_endpoint() {
    // §3.4: metrics and traces come from one pipeline. The agent maintains
    // request/error/latency series per (process, endpoint).
    let (mut world, client_ip, svc_ip) = two_pod_world();
    let n2 = world.fabric.topology.node_ids()[1];
    world.add_service(
        ServiceSpec::http("secure-svc", n2, svc_ip, 80)
            .with_workers(4)
            .with_error_endpoint("/broken", 500)
            .with_behavior(Behavior::Leaf),
    );
    let n1 = world.fabric.topology.node_ids()[0];
    let client = world.add_client(ClientSpec {
        rps: 100.0,
        duration: D::from_secs(2),
        connections: 4,
        endpoints: vec![("GET /ok".to_string(), 3), ("GET /broken".to_string(), 1)],
        ..ClientSpec::http("client", n1, client_ip, "secure-svc")
    });
    let mut df = Deployment::install(&mut world).unwrap();
    df.run(&mut world, TimeNs::from_secs(3), D::from_millis(200));
    let completed = world.clients[client].completed;
    assert!(completed > 150);

    let agent = df.agents.get(&n2).unwrap();
    let ok = agent
        .l7_metrics("secure-svc", "GET /ok")
        .expect("metrics for /ok");
    let broken = agent
        .l7_metrics("secure-svc", "GET /broken")
        .expect("metrics for /broken");
    assert!(ok.request_count > 100, "/ok requests: {}", ok.request_count);
    assert_eq!(ok.server_errors, 0);
    assert!(broken.request_count > 20);
    assert_eq!(
        broken.server_errors, broken.request_count,
        "every /broken request errored"
    );
    assert!((broken.error_ratio() - 1.0).abs() < 1e-9);
    assert!(ok.latency_mean() > D::from_micros(100));
    // Client-side series exist on the client's agent too.
    let ca = df.agents.get(&n1).unwrap();
    assert!(ca.l7_metrics("client", "GET /ok").is_some());
}
