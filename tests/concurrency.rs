//! Concurrency tests for the threaded sharded store
//! (`deepflow::server::concurrent`): determinism of concurrent ingest
//! against the single-threaded oracle, and a multi-producer stress run
//! with interleaved tombstone / completion / eviction traffic.
//!
//! Run under `RUST_TEST_THREADS=8` in CI (see `ci.sh`) so the worker and
//! producer threads genuinely interleave with other test threads.

use deepflow::server::assemble::{assemble_trace_reference, AssembleConfig};
use deepflow::server::concurrent::{ConcurrentConfig, ConcurrentShardedStore};
use deepflow::server::sharded::ShardedSpanStore;
use deepflow::storage::{ShardPolicy, SpanQuery, SpanStore};
use deepflow::types::span::{SpanStatus, TapSide};
use deepflow::types::{FiveTuple, Span, SpanId, TimeNs, Trace};
use df_check::sync::Barrier;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// A corpus of `flows` four-span capture ladders. Each flow links its
/// spans by TCP sequence number, and the server-side pair sits on a
/// *different* five-tuple than the client-side pair (joined by
/// X-Request-ID), so assembly genuinely crosses shard boundaries.
fn corpus(flows: usize) -> Vec<Span> {
    let mut spans = Vec::new();
    for f in 0..flows {
        let base = 1_000 + f as u64 * 3_000;
        let seq = f as u32 + 1;
        let xreq = f as u128 + 1;
        let client_flow = FiveTuple::tcp(
            Ipv4Addr::new(10, 0, (f % 13) as u8, 1),
            40_000 + (f % 97) as u16,
            Ipv4Addr::new(10, 1, 0, 1),
            80,
        );
        let server_flow = FiveTuple::tcp(
            Ipv4Addr::new(10, 1, 0, 1),
            50_000 + (f % 89) as u16,
            Ipv4Addr::new(10, 2, (f % 7) as u8, 2),
            8080,
        );
        let mut a = Span::synthetic(TapSide::ClientProcess, base, base + 900);
        a.tcp_seq_req = Some(seq);
        a.x_request_id_req = Some(deepflow::types::ids::XRequestId(xreq));
        a.five_tuple = client_flow;
        let mut b = Span::synthetic(TapSide::ClientNodeNic, base + 10, base + 890);
        b.kind = deepflow::types::SpanKind::Net;
        b.tcp_seq_req = Some(seq);
        b.x_request_id_req = Some(deepflow::types::ids::XRequestId(xreq));
        b.five_tuple = client_flow;
        let mut c = Span::synthetic(TapSide::ServerProcess, base + 20, base + 880);
        c.tcp_seq_req = Some(1_000_000 + seq);
        c.x_request_id_req = Some(deepflow::types::ids::XRequestId(xreq));
        c.five_tuple = server_flow;
        let mut d = Span::synthetic(TapSide::ServerPodNic, base + 30, base + 870);
        d.kind = deepflow::types::SpanKind::Net;
        d.tcp_seq_req = Some(1_000_000 + seq);
        d.five_tuple = server_flow;
        spans.extend([a, b, c, d]);
    }
    spans
}

fn shuffle<T>(items: &mut [T], rng: &mut SmallRng) {
    for i in (1..items.len()).rev() {
        let j: usize = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

fn edges(t: &Trace) -> Vec<(SpanId, Option<SpanId>)> {
    let mut e: Vec<_> = t.spans.iter().map(|s| (s.span.span_id, s.parent)).collect();
    e.sort_unstable();
    e
}

/// Concurrent ingest of a shuffled corpus is bit-for-bit the single-
/// threaded result at 1, 4 and 8 workers: same ids, same shard layout,
/// same query answers, same assembled traces — differentially against
/// both `ShardedSpanStore` and the single-store Algorithm 1 reference.
#[test]
fn concurrent_ingest_is_deterministic_across_worker_counts() {
    let mut spans = corpus(120);
    let mut rng = SmallRng::seed_from_u64(0xDF_2026);
    shuffle(&mut spans, &mut rng);

    // Single-store oracle (ids follow insert order, as everywhere).
    let mut oracle = SpanStore::new();
    for s in &spans {
        oracle.insert(s.clone());
    }
    let cfg = AssembleConfig::default();

    for workers in [1usize, 4, 8] {
        let policy = ShardPolicy::with_shards(workers);

        // Single-threaded sharded store, one batch.
        let mut sharded = ShardedSpanStore::new(policy);
        let expected_ids = sharded.insert_batch(spans.clone());

        // Concurrent store, same span order split into uneven batches so
        // worker application and producer enqueue genuinely overlap.
        let store = ConcurrentShardedStore::new(policy);
        let mut got_ids = Vec::new();
        for chunk in spans.chunks(97) {
            got_ids.extend(store.insert_batch(chunk.to_vec()));
        }
        store.flush();

        assert_eq!(got_ids, expected_ids, "{workers} workers: id assignment");
        assert_eq!(store.len(), sharded.len());
        assert_eq!(
            store.shard_sizes(),
            sharded.shard_sizes(),
            "{workers} workers: routing must not depend on threading"
        );
        assert_eq!(store.pending(), 0, "flush drained every queue");

        // Every span applied, none lost, none duplicated.
        for &id in &got_ids {
            let got = store
                .get(id)
                .unwrap_or_else(|| panic!("{workers} workers lost span {id:?}"));
            assert_eq!(got.span_id, id);
            assert_eq!(got, *sharded.get(id).expect("oracle has id"));
        }

        // Windowed queries agree with the single-threaded sharded store.
        let q = SpanQuery::window(TimeNs(0), TimeNs(500_000));
        let got: Vec<SpanId> = store.query(&q).iter().map(|s| s.span_id).collect();
        let want: Vec<SpanId> = sharded.query(&q).iter().map(|s| s.span_id).collect();
        assert_eq!(got, want, "{workers} workers: query order");

        // Assembly from a sample of start spans matches the reference
        // formulation of Algorithm 1 on the unsharded oracle.
        for &start in expected_ids.iter().step_by(37) {
            let want = assemble_trace_reference(&oracle, start, &cfg);
            let got = store.query_trace(start);
            assert_eq!(
                edges(&got),
                edges(&want),
                "{workers} workers: trace from {start:?} diverged"
            );
        }
    }
}

/// N producers × M shards under interleaved tombstone / completion /
/// eviction traffic: no span is lost, mutations land in order, and the
/// stats snapshot stays coherent while readers query mid-ingest.
#[test]
fn multi_producer_stress_loses_nothing_and_keeps_stats_coherent() {
    const PRODUCERS: usize = 4;
    const ROUNDS: usize = 40;
    const BATCH: usize = 24;

    let policy = ShardPolicy {
        shards: 4,
        // Low threshold so worker-side eviction compaction actually fires
        // during the run.
        evict_threshold: 8,
        ..ShardPolicy::default()
    };
    let store = ConcurrentShardedStore::with_config(
        policy,
        ConcurrentConfig {
            // Shallow queues: producers hit backpressure for real.
            queue_depth: 4,
            ..ConcurrentConfig::default()
        },
    );

    // Start gate: producers and the reader all rendezvous before touching
    // the store, so the contention window opens with every thread live
    // instead of the first spawned producer racing ahead alone.
    let gate = Barrier::new(PRODUCERS + 1);

    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let store = &store;
            let gate = &gate;
            scope.spawn(move || {
                gate.wait();
                let mut rng = SmallRng::seed_from_u64(p as u64 + 7);
                for round in 0..ROUNDS {
                    let mut batch = Vec::with_capacity(BATCH);
                    for i in 0..BATCH {
                        let base = 1_000 + ((p * ROUNDS + round) * BATCH + i) as u64 * 100;
                        let mut s = Span::synthetic(TapSide::ClientProcess, base, base + 50);
                        s.tcp_seq_req = Some((p * 1_000_000 + round * 1_000 + i) as u32);
                        s.five_tuple = FiveTuple::tcp(
                            Ipv4Addr::new(10, p as u8, (round % 23) as u8, (i % 11) as u8),
                            40_000 + i as u16,
                            Ipv4Addr::new(10, 200, 0, 1),
                            80,
                        );
                        if i % 5 == 0 {
                            s.status = SpanStatus::Incomplete;
                        }
                        batch.push(s);
                    }
                    let ids = store.insert_batch(batch);
                    // Interleave mutations with other producers' inserts,
                    // without flushing first: ordering is the store's job.
                    for (i, &id) in ids.iter().enumerate() {
                        if i % 5 == 0 {
                            let resp = Span::synthetic(TapSide::ClientProcess, 1_000, 2_000);
                            store.complete_span(id, resp);
                        } else if i % 7 == 0 {
                            store.tombstone(id);
                        }
                    }
                    if rng.gen_bool(0.1) {
                        store.evict_tombstoned();
                    }
                }
            });
        }
        // A reader hammering queries mid-ingest: every snapshot must be
        // coherent, every returned trace well-formed.
        let store = &store;
        let gate = &gate;
        scope.spawn(move || {
            gate.wait();
            for i in 0..200u64 {
                let trace = store.query_trace(SpanId(i % 500 + 1));
                assert!(trace.is_well_formed());
                let st = store.stats();
                assert_eq!(
                    st.trace_queries,
                    st.cache_hits + st.cache_stale_hits + st.cache_misses + st.cache_invalidations,
                    "mid-ingest stats snapshot incoherent"
                );
            }
        });
    });
    store.flush();

    let total = PRODUCERS * ROUNDS * BATCH;
    assert_eq!(store.len(), total, "every routed span accounted for");
    assert_eq!(store.pending(), 0, "flush drained all queues");
    assert_eq!(
        store.shard_sizes().iter().sum::<usize>(),
        total,
        "every span applied to some shard"
    );
    let st = store.stats();
    assert_eq!(st.ingested, total as u64);

    // No lost spans: every id resolves, mutations applied in enqueue
    // order. Ids were assigned under the routing lock so per-producer
    // patterns are not recoverable; instead verify global integrity.
    let mut completed = 0u64;
    let mut tombstoned = 0u64;
    for raw in 1..=total as u64 {
        let id = SpanId(raw);
        let span = store
            .get(id)
            .unwrap_or_else(|| panic!("span {id:?} lost in the stress run"));
        assert_eq!(span.span_id, id);
        assert_ne!(
            span.status,
            SpanStatus::Incomplete,
            "{id:?}: completion enqueued right after its insert must apply"
        );
        if span.status == SpanStatus::Ok && span.resp_time == TimeNs(2_000) {
            completed += 1;
        }
        if store.is_tombstoned(id) {
            tombstoned += 1;
        }
    }
    // Each producer round completes ceil(BATCH/5) spans and tombstones
    // the i%7==0, i%5!=0 remainder; totals are exact because no op is lost.
    let complete_per_round = BATCH.div_ceil(5) as u64;
    let tombstone_per_round = (0..BATCH).filter(|i| i % 7 == 0 && i % 5 != 0).count() as u64;
    assert_eq!(completed, complete_per_round * (PRODUCERS * ROUNDS) as u64);
    assert_eq!(
        tombstoned,
        tombstone_per_round * (PRODUCERS * ROUNDS) as u64
    );

    // Post-run stats stay coherent after the reader thread's traffic.
    assert_eq!(
        st.trace_queries,
        st.cache_hits + st.cache_stale_hits + st.cache_misses + st.cache_invalidations
    );
}

/// Backpressure sanity: a queue depth of 1 forces producers to block on
/// the worker and everything still lands exactly once.
#[test]
fn minimal_queue_depth_only_slows_ingest_down() {
    let store = ConcurrentShardedStore::with_config(
        ShardPolicy::with_shards(2),
        ConcurrentConfig {
            queue_depth: 1,
            ..ConcurrentConfig::default()
        },
    );
    let spans = corpus(30);
    let n = spans.len();
    let ids: Vec<SpanId> = spans
        .chunks(7)
        .flat_map(|c| store.insert_batch(c.to_vec()))
        .collect();
    store.flush();
    assert_eq!(ids.len(), n);
    assert_eq!(store.len(), n);
    assert_eq!(store.shard_sizes().iter().sum::<usize>(), n);
}
