//! Integration: Appendix A — tracing requests across L4/L7 gateways and to
//! the ToR switch, "the full coverage of a request in the data center".

use deepflow::agent::net_spans::TapContext;
use deepflow::mesh::apps;
use deepflow::net::taps::{TapFilter, TapKind};
use deepflow::net::topology::ElementId;
use deepflow::prelude::*;
use deepflow::types::DurationNs as D;

#[test]
fn l4_gateway_crossing_joins_by_preserved_tcp_seq() {
    let (mut world, _handles, vip) = apps::nginx_ingress_cluster(40.0, D::from_secs(2), 1);
    let mut df = Deployment::install(&mut world).unwrap();
    // Also tap the gateway itself (Fig. 18's dedicated capture point).
    let n1 = world.fabric.topology.node_ids()[0];
    world.fabric.taps.install(
        ElementId::L4Gw("ingress-vip".into()),
        n1,
        TapKind::Gateway,
        TapFilter::all(),
    );
    df.agents.get_mut(&n1).unwrap().register_tap(
        "gw-ingress-vip",
        TapContext {
            kind: TapKind::Gateway,
            local_ips: Default::default(),
        },
    );
    df.run(&mut world, TimeNs::from_secs(4), D::from_millis(200));

    // Client-side spans dial the VIP; server-side spans see the DNATed
    // backend — yet the same trace contains both, joined by the preserved
    // TCP sequence (Appendix A, Fig. 18).
    let all = df.server.span_list(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    let client_leg = all
        .iter()
        .find(|s| {
            s.capture.tap_side == TapSide::ClientProcess
                && s.five_tuple.dst_ip == vip
                && s.kind == SpanKind::Sys
        })
        .expect("client span dialing the VIP");
    let trace = df.server.trace(client_leg.span_id);
    assert!(trace.is_well_formed());
    let has_backend_side = trace.spans.iter().any(|s| {
        s.span.capture.tap_side == TapSide::ServerProcess && s.span.five_tuple.dst_ip != vip
    });
    assert!(
        has_backend_side,
        "trace crosses the L4 gateway: VIP leg + backend leg:\n{}",
        trace.render_text()
    );
    // The gateway capture point appears inside the trace.
    let has_gw_span = trace
        .spans
        .iter()
        .any(|s| s.span.capture.tap_side == TapSide::Gateway);
    assert!(has_gw_span, "gateway tap produced a span in the trace");
    // Client and backend legs share the request seq.
    let backend = trace
        .spans
        .iter()
        .find(|s| {
            s.span.capture.tap_side == TapSide::ServerProcess && s.span.five_tuple.dst_ip != vip
        })
        .unwrap();
    assert_eq!(client_leg.tcp_seq_req, backend.span.tcp_seq_req);
}

#[test]
fn l7_proxy_crossing_joins_by_x_request_id() {
    // The ingress pods are L7 proxies terminating TCP: sequence numbers do
    // NOT survive them; the trace still crosses via X-Request-ID (rule 12).
    let (mut world, _handles, _vip) = apps::nginx_ingress_cluster(40.0, D::from_secs(2), 1);
    let mut df = Deployment::install(&mut world).unwrap();
    df.run(&mut world, TimeNs::from_secs(4), D::from_millis(200));

    let all = df.server.span_list(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    // Find a checkout (backend) server span reached through a healthy proxy.
    let backend_span = all
        .iter()
        .find(|s| {
            s.process_name.as_deref() == Some("checkout")
                && s.capture.tap_side == TapSide::ServerProcess
        })
        .expect("backend server span");
    let trace = df.server.trace(backend_span.span_id);
    // The trace reaches back through the proxy to the client leg, whose
    // five-tuple has a different connection (proxy terminated it).
    let legs: std::collections::HashSet<(u32, u32)> = trace
        .spans
        .iter()
        .filter(|s| s.span.kind == SpanKind::Sys)
        .map(|s| {
            (
                u32::from(s.span.five_tuple.src_ip),
                u32::from(s.span.five_tuple.dst_ip),
            )
        })
        .collect();
    assert!(
        legs.len() >= 2,
        "trace spans two TCP connections (downstream + upstream of the proxy):\n{}",
        trace.render_text()
    );
}

#[test]
fn tor_mirror_extends_coverage_to_the_switch() {
    // Fig. 18: "mirror the traffic on the top-of-rack switch to a physical
    // machine dedicated to DeepFlow Agent".
    let mut make_tracer = || apps::no_tracer();
    let (mut world, _h) = apps::springboot_demo(30.0, D::from_secs(2), &mut make_tracer);
    let capture_node = world.fabric.topology.node_ids()[0];
    world.fabric.topology.set_tor_mirror("rack-1", capture_node);
    let mut df = Deployment::install(&mut world).unwrap();
    world.fabric.taps.install(
        ElementId::Tor("rack-1".into()),
        capture_node,
        TapKind::TorMirror,
        TapFilter::all(),
    );
    df.agents.get_mut(&capture_node).unwrap().register_tap(
        "tor-rack-1",
        TapContext {
            kind: TapKind::TorMirror,
            local_ips: Default::default(),
        },
    );
    df.run(&mut world, TimeNs::from_secs(3), D::from_millis(200));

    let all = df.server.span_list(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    let tor_spans = all
        .iter()
        .filter(|s| s.capture.interface.as_deref() == Some("tor-rack-1"))
        .count();
    assert!(tor_spans > 0, "ToR mirror produced spans: {tor_spans}");
}
