//! Integration: every supported L7 protocol traced end-to-end through the
//! full pipeline — mesh service ↔ kernel syscalls ↔ agent inference ↔
//! session aggregation ↔ server. Exercises pipelined (Ordered) and
//! multiplexed session keys, and the UDP path (DNS).

use deepflow::mesh::apps::no_tracer;
use deepflow::mesh::{Behavior, ClientSpec, ServiceSpec, World};
use deepflow::net::fabric::{Fabric, FabricConfig};
use deepflow::net::topology::Topology;
use deepflow::prelude::*;
use deepflow::types::DurationNs as D;
use std::net::Ipv4Addr;

struct Case {
    protocol: L7Protocol,
    port: u16,
    endpoint: &'static str,
    expect_endpoint: &'static str,
}

const CASES: [Case; 8] = [
    Case {
        protocol: L7Protocol::Http1,
        port: 80,
        endpoint: "GET /api",
        expect_endpoint: "GET /api",
    },
    Case {
        protocol: L7Protocol::Http2,
        port: 8080,
        endpoint: "GET /grpc.Svc/Call",
        expect_endpoint: "GET /grpc.Svc/Call",
    },
    Case {
        protocol: L7Protocol::Dns,
        port: 53,
        endpoint: "A reviews.default.svc.cluster.local",
        expect_endpoint: "A reviews.default.svc.cluster.local",
    },
    Case {
        protocol: L7Protocol::Redis,
        port: 6379,
        endpoint: "GET product:42",
        expect_endpoint: "GET",
    },
    Case {
        protocol: L7Protocol::Mysql,
        port: 3306,
        endpoint: "SELECT * FROM t",
        expect_endpoint: "SELECT",
    },
    Case {
        protocol: L7Protocol::Kafka,
        port: 9092,
        endpoint: "Produce orders",
        expect_endpoint: "Produce",
    },
    Case {
        protocol: L7Protocol::Dubbo,
        port: 20880,
        endpoint: "OrderSvc/place",
        expect_endpoint: "OrderSvc/place",
    },
    Case {
        protocol: L7Protocol::Amqp,
        port: 5672,
        endpoint: "basic.publish orders",
        expect_endpoint: "basic.publish orders",
    },
];

fn run_case(case: &Case) -> (Vec<Span>, u64) {
    let mut topo = Topology::new();
    let n1 = topo.add_simple_node("n1", Ipv4Addr::new(192, 168, 0, 1));
    let n2 = topo.add_simple_node("n2", Ipv4Addr::new(192, 168, 0, 2));
    let client_ip = Ipv4Addr::new(10, 1, 0, 100);
    let svc_ip = Ipv4Addr::new(10, 1, 1, 10);
    topo.add_pod(n1, "client", client_ip, "d", "c", "c");
    topo.add_pod(n2, "svc", svc_ip, "d", "s", "s");
    let mut world = World::new(Fabric::new(topo, FabricConfig::default()), 0x9a7);
    world.add_service(
        ServiceSpec::http("svc", n2, svc_ip, case.port)
            .with_protocol(case.protocol)
            .with_workers(4)
            .with_behavior(Behavior::Leaf),
    );
    let client = world.add_client(ClientSpec {
        rps: 40.0,
        duration: D::from_secs(1),
        connections: 4,
        protocol: case.protocol,
        endpoints: vec![(case.endpoint.to_string(), 1)],
        ..ClientSpec::http("client", n1, client_ip, "svc")
    });
    let mut df = Deployment::install(&mut world).unwrap();
    df.run(&mut world, TimeNs::from_secs(2), D::from_millis(200));
    let completed = world.clients[client].completed;
    let spans = df.server.span_list(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    (spans, completed)
}

#[test]
fn every_protocol_round_trips_through_the_full_pipeline() {
    for case in &CASES {
        let (spans, completed) = run_case(case);
        assert!(
            completed >= 35,
            "{}: workload ran ({completed})",
            case.protocol
        );
        let proto_spans: Vec<&Span> = spans
            .iter()
            .filter(|s| s.l7_protocol == case.protocol && s.kind == SpanKind::Sys)
            .collect();
        // Client-side and server-side sys spans, one each per request.
        let client_side = proto_spans
            .iter()
            .filter(|s| s.capture.tap_side == TapSide::ClientProcess)
            .count() as u64;
        let server_side = proto_spans
            .iter()
            .filter(|s| s.capture.tap_side == TapSide::ServerProcess)
            .count() as u64;
        assert!(
            client_side >= completed && server_side >= completed,
            "{}: both sides produced sys spans (c={client_side}, s={server_side}, done={completed})",
            case.protocol
        );
        // Endpoints parsed with protocol-native semantics.
        assert!(
            proto_spans
                .iter()
                .any(|s| s.endpoint == case.expect_endpoint),
            "{}: endpoint '{}' found; got e.g. {:?}",
            case.protocol,
            case.expect_endpoint,
            proto_spans.first().map(|s| &s.endpoint)
        );
        // Completed spans only; statuses healthy.
        assert!(
            proto_spans.iter().all(|s| s.status == SpanStatus::Ok),
            "{}: all sessions healthy",
            case.protocol
        );
        // UDP protocols carry no TCP sequence (association via ids instead).
        if case.protocol == L7Protocol::Dns {
            assert!(proto_spans.iter().all(|s| s.tcp_seq_req.is_none()));
        } else {
            assert!(proto_spans.iter().all(|s| s.tcp_seq_req.is_some()));
        }
    }
}

#[test]
fn multiplexed_protocols_match_out_of_order_responses() {
    // Dubbo is fully multiplexed: a pipelining client keeps several
    // requests in flight on ONE connection; the embedded request ids keep
    // sessions straight even though the slow server answers serially.
    let mut topo = Topology::new();
    let n1 = topo.add_simple_node("n1", Ipv4Addr::new(192, 168, 0, 1));
    let n2 = topo.add_simple_node("n2", Ipv4Addr::new(192, 168, 0, 2));
    let client_ip = Ipv4Addr::new(10, 1, 0, 100);
    let svc_ip = Ipv4Addr::new(10, 1, 1, 10);
    topo.add_pod(n1, "client", client_ip, "d", "c", "c");
    topo.add_pod(n2, "svc", svc_ip, "d", "s", "s");
    let mut world = World::new(Fabric::new(topo, FabricConfig::default()), 0xd0b0);
    world.add_service(
        ServiceSpec::http("svc", n2, svc_ip, 20880)
            .with_protocol(L7Protocol::Dubbo)
            .with_workers(1)
            .with_compute(D::from_millis(25))
            .with_behavior(Behavior::Leaf),
    );
    let client = world.add_client(ClientSpec {
        rps: 100.0,
        duration: D::from_secs(1),
        connections: 1,
        pipeline_depth: 16,
        protocol: L7Protocol::Dubbo,
        endpoints: vec![("OrderSvc/place".to_string(), 1)],
        timeout: D::from_secs(30),
        ..ClientSpec::http("client", n1, client_ip, "svc")
    });
    let mut df = Deployment::install(&mut world).unwrap();
    df.run(&mut world, TimeNs::from_secs(10), D::from_millis(500));
    assert_eq!(world.clients[client].completed, 100);
    let spans = df.server.span_list(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    let server_sys = spans
        .iter()
        .filter(|s| {
            s.l7_protocol == L7Protocol::Dubbo
                && s.kind == SpanKind::Sys
                && s.capture.tap_side == TapSide::ServerProcess
        })
        .count();
    assert_eq!(server_sys, 100, "every multiplexed session span-ified");
    // Durations reflect genuine queueing (~5ms × queue depth), proving the
    // pairing didn't collapse onto the wrong requests.
    let max_dur = spans
        .iter()
        .filter(|s| s.l7_protocol == L7Protocol::Dubbo && s.kind == SpanKind::Sys)
        .map(|s| s.duration())
        .max()
        .unwrap();
    assert!(
        max_dur >= D::from_millis(100),
        "queueing visible: {max_dur}"
    );
    let _ = no_tracer; // silence unused import on some cfgs
}
