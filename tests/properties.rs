//! Property-based tests over the core invariants.

use deepflow::agent::session::{SessionAggregator, SessionOutcome};
use deepflow::kernel::{ReadOutcome, Socket};
use deepflow::protocols::inference;
use deepflow::types::net::TcpFlags;
use deepflow::types::packet::Segment;
use deepflow::types::{
    DurationNs, FiveTuple, L7Protocol, MessageType, SessionKey, SocketId, SpanStatus, TapSide,
    TimeNs, TransportProtocol,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    /// No parser panics on arbitrary bytes, and inference never claims a
    /// protocol it then fails to parse.
    #[test]
    fn inference_is_total_and_self_consistent(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Some(proto) = inference::infer_protocol(&payload) {
            // A sniffed protocol must parse its own bytes (no half-claims).
            let parsed = inference::parse_message(proto, &payload);
            prop_assert!(
                parsed.is_some(),
                "sniffer claimed {proto} but parser rejected"
            );
        }
        // Every concrete parser is panic-free on arbitrary input.
        for proto in L7Protocol::ALL {
            let _ = inference::parse_message(proto, &payload);
        }
    }

    /// TCP reassembly delivers exactly the sent byte stream once, whatever
    /// the segment arrival order and duplication pattern.
    #[test]
    fn socket_reassembly_is_exactly_once(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 1..10),
        order in proptest::collection::vec(any::<usize>(), 0..30),
        dup_mask in any::<u32>(),
    ) {
        let mut sock = Socket::new(
            SocketId(1),
            TransportProtocol::Tcp,
            (Ipv4Addr::new(10, 0, 0, 1), 80),
            0,
        );
        sock.remote = Some((Ipv4Addr::new(10, 0, 0, 2), 9999));
        sock.state = deepflow::kernel::SocketState::Established;
        sock.rcv_nxt = 1000;

        // Build segments for one logical message.
        let mut segments = Vec::new();
        let mut seq = 1000u32;
        let n = chunks.len();
        for (i, c) in chunks.iter().enumerate() {
            segments.push(Segment {
                five_tuple: FiveTuple::tcp(
                    Ipv4Addr::new(10, 0, 0, 2), 9999,
                    Ipv4Addr::new(10, 0, 0, 1), 80,
                ),
                seq,
                ack: 0,
                flags: if i + 1 == n { TcpFlags::PSH_ACK } else { TcpFlags::ACK },
                window: 65535,
                payload: bytes::Bytes::from(c.clone()),
                is_retransmission: false,
            });
            seq = seq.wrapping_add(c.len() as u32);
        }
        let expected: Vec<u8> = chunks.concat();

        // Deliver in a scrambled order with duplicates, then in order to
        // guarantee completion.
        for (k, &i) in order.iter().enumerate() {
            let idx = i % segments.len();
            sock.receive_data(&segments[idx]);
            if dup_mask & (1 << (k % 32)) != 0 {
                sock.receive_data(&segments[idx]); // duplicate
            }
        }
        for s in &segments {
            sock.receive_data(s);
        }

        let mut got = Vec::new();
        while let Ok(ReadOutcome { data, .. }) = sock.read(usize::MAX) {
            if data.is_empty() {
                break;
            }
            got.extend_from_slice(&data);
        }
        prop_assert_eq!(got, expected, "stream delivered exactly once, in order");
    }

    /// Session aggregation conserves messages: every request is eventually
    /// matched, expired, or still pending — never duplicated or lost.
    #[test]
    fn session_aggregation_conserves_requests(
        ops in proptest::collection::vec((any::<u8>(), any::<bool>(), 0u64..8), 1..200),
    ) {
        let mut agg: SessionAggregator<u64> = SessionAggregator::new(DurationNs::from_secs(60));
        let mut sent_requests = 0u64;
        let mut matched = 0u64;
        let mut out_of_window = 0u64;
        let mut t = 0u64;
        for (i, (flow, is_req, key)) in ops.iter().enumerate() {
            t += 1_000_000; // 1ms apart
            let flow_key = u64::from(flow % 4);
            let skey = if *key == 0 {
                SessionKey::Ordered
            } else {
                SessionKey::Multiplexed(*key)
            };
            let mtype = if *is_req { MessageType::Request } else { MessageType::Response };
            match agg.offer(flow_key, skey, mtype, TimeNs(t), i as u64) {
                SessionOutcome::Stored => sent_requests += 1,
                SessionOutcome::Matched { .. } => matched += 1,
                SessionOutcome::OutOfWindow { .. } => out_of_window += 1,
                SessionOutcome::OrphanResponse(_) | SessionOutcome::Ignored(_) => {}
            }
        }
        let pending = agg.pending() as u64;
        // Multiplexed re-keying can *replace* a pending request (retry
        // semantics), so pending + matched + replaced == sent.
        prop_assert!(matched + out_of_window + pending <= sent_requests);
        let drained = agg.drain_pending().len() as u64;
        prop_assert_eq!(drained, pending);
        prop_assert_eq!(agg.pending(), 0);
    }

    /// Segmentize → receive round trip for arbitrary payload sizes
    /// (including multi-MSS) preserves bytes and message boundaries.
    #[test]
    fn segmentize_receive_round_trip(size in 1usize..6000) {
        let mut tx = Socket::new(
            SocketId(1),
            TransportProtocol::Tcp,
            (Ipv4Addr::new(10, 0, 0, 1), 1234),
            777,
        );
        tx.remote = Some((Ipv4Addr::new(10, 0, 0, 2), 80));
        tx.state = deepflow::kernel::SocketState::Established;

        let mut rx = Socket::new(
            SocketId(2),
            TransportProtocol::Tcp,
            (Ipv4Addr::new(10, 0, 0, 2), 80),
            0,
        );
        rx.remote = Some((Ipv4Addr::new(10, 0, 0, 1), 1234));
        rx.state = deepflow::kernel::SocketState::Established;
        rx.rcv_nxt = 777;

        let payload: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let segs = tx.segmentize(bytes::Bytes::from(payload.clone())).unwrap();
        for s in &segs {
            rx.receive_data(s);
        }
        let r = rx.read(usize::MAX).unwrap();
        prop_assert_eq!(r.data.to_vec(), payload);
        prop_assert!(r.msg_start);
        prop_assert_eq!(r.seq, 777);
    }

    /// Five-tuple canonicalisation is an involution-compatible projection:
    /// canonical(x) == canonical(reverse(x)) and canonical is idempotent.
    #[test]
    fn five_tuple_canonical_properties(
        a in any::<u32>(), b in any::<u32>(), pa in any::<u16>(), pb in any::<u16>(),
    ) {
        let t = FiveTuple::tcp(Ipv4Addr::from(a), pa, Ipv4Addr::from(b), pb);
        prop_assert_eq!(t.canonical(), t.reversed().canonical());
        prop_assert_eq!(t.canonical().canonical(), t.canonical());
        prop_assert!(t.same_flow(&t.reversed()));
    }

    /// The latency histogram's quantiles never regress and always land
    /// inside [min, max].
    #[test]
    fn histogram_quantiles_bounded_and_monotone(
        samples in proptest::collection::vec(1u64..10_000_000_000, 1..300),
    ) {
        let mut h = deepflow::mesh::LatencyHistogram::new();
        for &s in &samples {
            h.record(DurationNs(s));
        }
        let lo = *samples.iter().min().unwrap();
        let hi = *samples.iter().max().unwrap();
        let mut last = 0u64;
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).as_nanos();
            prop_assert!(v >= last, "quantile regressed at {q}");
            prop_assert!(v >= lo && v <= hi, "quantile {q} out of [{lo}, {hi}]: {v}");
            last = v;
        }
    }
}

/// Build a span from the generated association-attribute pools used by the
/// assembly properties.
#[allow(clippy::too_many_arguments)]
fn prop_span(
    tap: u8,
    t: u64,
    d: u64,
    seq_r: Option<u32>,
    seq_p: Option<u32>,
    sys_r: Option<u64>,
    sys_p: Option<u64>,
    xr: Option<u128>,
    ot: Option<u128>,
    pth: Option<u64>,
) -> deepflow::types::Span {
    use deepflow::types::ids::*;
    use deepflow::types::span::{CapturePoint, SpanKind};
    use deepflow::types::tags::TagSet;

    let tap_sides = [
        TapSide::ClientApp,
        TapSide::ClientProcess,
        TapSide::ClientPodNic,
        TapSide::ClientNodeNic,
        TapSide::ClientHypervisor,
        TapSide::Gateway,
        TapSide::ServerHypervisor,
        TapSide::ServerNodeNic,
        TapSide::ServerPodNic,
        TapSide::ServerProcess,
        TapSide::ServerApp,
    ];
    let req = t * 1_000_000;
    deepflow::types::Span {
        span_id: SpanId(0),
        kind: if tap == 0 || tap == 10 {
            SpanKind::App
        } else {
            SpanKind::Sys
        },
        capture: CapturePoint {
            node: NodeId(1),
            tap_side: tap_sides[tap as usize % 11],
            interface: None,
        },
        agent: AgentId(1),
        flow_id: FlowId(u64::from(seq_r.unwrap_or(99))),
        five_tuple: FiveTuple::tcp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 0, 2), 2),
        l7_protocol: L7Protocol::Http1,
        endpoint: "op".to_string(),
        req_time: TimeNs(req),
        resp_time: TimeNs(req + d * 1_000_000),
        status: SpanStatus::Ok,
        status_code: Some(200),
        req_bytes: 0,
        resp_bytes: 0,
        pid: None,
        tid: None,
        process_name: None,
        systrace_id_req: sys_r.map(SysTraceId),
        systrace_id_resp: sys_p.map(SysTraceId),
        pseudo_thread_id: pth.map(PseudoThreadId),
        x_request_id_req: xr.map(XRequestId),
        x_request_id_resp: None,
        tcp_seq_req: seq_r,
        tcp_seq_resp: seq_p,
        otel_trace_id: ot.map(OtelTraceId),
        otel_span_id: ot.map(|v| OtelSpanId(v as u64)),
        otel_parent_span_id: None,
        tags: TagSet::default(),
        flow_metrics: None,
    }
}

proptest! {
    /// The frontier-based Algorithm 1 is extensionally identical to the
    /// full-rescan reference formulation: same span set, same parent
    /// edges, no tombstoned spans, no duplicates — for arbitrary corpora,
    /// arbitrary tombstone subsets and arbitrary size caps.
    #[test]
    fn frontier_assembly_matches_reference(
        specs in proptest::collection::vec(
            (
                0u8..11,          // tap side
                0u64..20,         // req time bucket
                1u64..30,         // duration bucket
                proptest::option::of(0u32..8),   // tcp_seq_req pool
                proptest::option::of(0u32..8),   // tcp_seq_resp pool
                proptest::option::of(0u64..6),   // systrace_req pool
                proptest::option::of(0u64..6),   // systrace_resp pool
                proptest::option::of(0u128..4),  // x_request_id pool
                proptest::option::of(0u128..3),  // otel trace pool
                proptest::option::of(0u64..4),   // pseudo-thread pool
            ),
            1..60,
        ),
        start_idx in 0usize..60,
        tombstone_mask in any::<u64>(),
        max_spans in 1usize..80,
    ) {
        use deepflow::server::assemble::{
            assemble_trace, assemble_trace_reference, AssembleConfig,
        };
        use deepflow::storage::SpanStore;
        use deepflow::types::SpanId;

        let mut store = SpanStore::new();
        for (tap, t, d, seq_r, seq_p, sys_r, sys_p, xr, ot, pth) in &specs {
            store.insert(prop_span(*tap, *t, *d, *seq_r, *seq_p, *sys_r, *sys_p, *xr, *ot, *pth));
        }
        let mut tombstoned = Vec::new();
        for i in 0..specs.len().min(64) {
            if tombstone_mask & (1 << i) != 0 {
                let id = SpanId(i as u64 + 1);
                store.tombstone(id);
                tombstoned.push(id);
            }
        }
        let start = SpanId((start_idx % specs.len()) as u64 + 1);
        let cfg = AssembleConfig { max_spans, ..Default::default() };
        let fast = assemble_trace(&store, start, &cfg);
        let slow = assemble_trace_reference(&store, start, &cfg);

        let edges = |t: &deepflow::types::trace::Trace| {
            let mut e: Vec<(SpanId, Option<SpanId>)> =
                t.spans.iter().map(|s| (s.span.span_id, s.parent)).collect();
            e.sort_unstable();
            e
        };
        prop_assert_eq!(edges(&fast), edges(&slow), "frontier vs reference diverged");
        // No tombstoned span ever appears.
        for t in [&fast, &slow] {
            prop_assert!(
                t.spans.iter().all(|s| !store.is_tombstoned(s.span.span_id)),
                "tombstoned span in trace"
            );
        }
        // No duplicate span ids.
        let mut ids: Vec<SpanId> = fast.spans.iter().map(|s| s.span.span_id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), fast.spans.len(), "duplicate span in trace");
        // The cap is honoured and the start span kept unless tombstoned.
        prop_assert!(fast.len() <= max_spans);
        if !store.is_tombstoned(start) {
            prop_assert!(fast.spans.iter().any(|s| s.span.span_id == start));
        } else {
            prop_assert!(fast.is_empty());
        }
    }
}

proptest! {
    /// Cross-shard assembly is extensionally identical to the single-store
    /// reference oracle at every shard count: the sharded store assigns
    /// the same global sequential ids a single store would, and
    /// `assemble_trace_sharded` must produce the same span set and parent
    /// edges whether the corpus lives in 1, 4 or 16 shards. Spans of one
    /// logical exchange are deliberately spread over *different* flows
    /// (per-index five-tuples) so the frontier search genuinely crosses
    /// shard boundaries.
    #[test]
    fn sharded_assembly_matches_reference(
        specs in proptest::collection::vec(
            (
                0u8..11,          // tap side
                0u64..20,         // req time bucket
                1u64..30,         // duration bucket
                proptest::option::of(0u32..8),   // tcp_seq_req pool
                proptest::option::of(0u32..8),   // tcp_seq_resp pool
                proptest::option::of(0u64..6),   // systrace_req pool
                proptest::option::of(0u64..6),   // systrace_resp pool
                proptest::option::of(0u128..4),  // x_request_id pool
                proptest::option::of(0u128..3),  // otel trace pool
                proptest::option::of(0u64..4),   // pseudo-thread pool
            ),
            1..60,
        ),
        start_idx in 0usize..60,
        tombstone_mask in any::<u64>(),
        max_spans in 1usize..80,
    ) {
        use deepflow::server::assemble::{assemble_trace_reference, AssembleConfig};
        use deepflow::server::sharded::{
            assemble_trace_sharded, assemble_trace_sharded_parallel, ShardedSpanStore,
        };
        use deepflow::storage::{ShardPolicy, SpanStore};
        use deepflow::types::SpanId;

        // Vary each span's flow by its index so linked spans land in
        // different shards and assembly has to merge across them.
        let spans: Vec<deepflow::types::Span> = specs
            .iter()
            .enumerate()
            .map(|(i, (tap, t, d, seq_r, seq_p, sys_r, sys_p, xr, ot, pth))| {
                let mut s = prop_span(*tap, *t, *d, *seq_r, *seq_p, *sys_r, *sys_p, *xr, *ot, *pth);
                s.five_tuple = FiveTuple::tcp(
                    Ipv4Addr::new(10, 0, 0, (i % 8) as u8),
                    1,
                    Ipv4Addr::new(10, 0, 1, (i % 8) as u8),
                    2,
                );
                s
            })
            .collect();

        let mut reference = SpanStore::new();
        for s in &spans {
            reference.insert(s.clone());
        }
        for i in 0..spans.len().min(64) {
            if tombstone_mask & (1 << i) != 0 {
                reference.tombstone(SpanId(i as u64 + 1));
            }
        }
        let start = SpanId((start_idx % spans.len()) as u64 + 1);
        let cfg = AssembleConfig { max_spans, ..Default::default() };
        let oracle = assemble_trace_reference(&reference, start, &cfg);
        let edges = |t: &deepflow::types::trace::Trace| {
            let mut e: Vec<(SpanId, Option<SpanId>)> =
                t.spans.iter().map(|s| (s.span.span_id, s.parent)).collect();
            e.sort_unstable();
            e
        };

        for shards in [1usize, 4, 16] {
            let mut sharded = ShardedSpanStore::new(ShardPolicy::with_shards(shards));
            let ids = sharded.insert_batch(spans.clone());
            prop_assert_eq!(
                ids.last().copied(),
                Some(SpanId(spans.len() as u64)),
                "global ids are sequential"
            );
            for i in 0..spans.len().min(64) {
                if tombstone_mask & (1 << i) != 0 {
                    sharded.tombstone(SpanId(i as u64 + 1));
                }
            }
            let got = assemble_trace_sharded(&sharded, start, &cfg);
            prop_assert_eq!(
                edges(&got),
                edges(&oracle),
                "sharded ({}) vs reference diverged",
                shards
            );
            // The scoped-thread fan-out of Phase 1 must be extensionally
            // identical to the sequential walk (same merge order).
            let par = assemble_trace_sharded_parallel(&sharded, start, &cfg);
            prop_assert_eq!(
                edges(&par),
                edges(&oracle),
                "parallel Phase 1 ({}) vs reference diverged",
                shards
            );
        }
    }

    /// Index eviction is semantically invisible: tombstoning then
    /// compacting (`evict_tombstoned`) yields exactly the traces that
    /// probe-time filtering alone yields, on both the plain store and the
    /// sharded store — for every possible start span.
    #[test]
    fn eviction_equals_probe_time_filtering(
        specs in proptest::collection::vec(
            (
                0u8..11,          // tap side
                0u64..20,         // req time bucket
                1u64..30,         // duration bucket
                proptest::option::of(0u32..8),   // tcp_seq_req pool
                proptest::option::of(0u32..8),   // tcp_seq_resp pool
                proptest::option::of(0u64..6),   // systrace_req pool
                proptest::option::of(0u64..6),   // systrace_resp pool
                proptest::option::of(0u128..4),  // x_request_id pool
                proptest::option::of(0u128..3),  // otel trace pool
                proptest::option::of(0u64..4),   // pseudo-thread pool
            ),
            1..40,
        ),
        tombstone_mask in any::<u64>(),
    ) {
        use deepflow::server::assemble::{assemble_trace, AssembleConfig};
        use deepflow::server::sharded::{assemble_trace_sharded, ShardedSpanStore};
        use deepflow::storage::{ShardPolicy, SpanStore};
        use deepflow::types::SpanId;

        let cfg = AssembleConfig::default();
        let edges = |t: &deepflow::types::trace::Trace| {
            let mut e: Vec<(SpanId, Option<SpanId>)> =
                t.spans.iter().map(|s| (s.span.span_id, s.parent)).collect();
            e.sort_unstable();
            e
        };

        // Plain store: tombstones pending (probe-time filtering only)...
        let mut store = SpanStore::new();
        for (tap, t, d, seq_r, seq_p, sys_r, sys_p, xr, ot, pth) in &specs {
            store.insert(prop_span(*tap, *t, *d, *seq_r, *seq_p, *sys_r, *sys_p, *xr, *ot, *pth));
        }
        for i in 0..specs.len().min(64) {
            if tombstone_mask & (1 << i) != 0 {
                store.tombstone(SpanId(i as u64 + 1));
            }
        }
        let before: Vec<_> = (1..=specs.len() as u64)
            .map(|id| edges(&assemble_trace(&store, SpanId(id), &cfg)))
            .collect();
        // ...then compacted out of the indexes entirely.
        store.evict_tombstoned();
        prop_assert_eq!(store.pending_evictions(), 0);
        let after: Vec<_> = (1..=specs.len() as u64)
            .map(|id| edges(&assemble_trace(&store, SpanId(id), &cfg)))
            .collect();
        prop_assert_eq!(&before, &after, "eviction changed an assembled trace");

        // Sharded store: same invariant across shards.
        let mut sharded = ShardedSpanStore::new(ShardPolicy::with_shards(4));
        for (tap, t, d, seq_r, seq_p, sys_r, sys_p, xr, ot, pth) in &specs {
            sharded.insert(prop_span(*tap, *t, *d, *seq_r, *seq_p, *sys_r, *sys_p, *xr, *ot, *pth));
        }
        for i in 0..specs.len().min(64) {
            if tombstone_mask & (1 << i) != 0 {
                sharded.tombstone(SpanId(i as u64 + 1));
            }
        }
        let before: Vec<_> = (1..=specs.len() as u64)
            .map(|id| edges(&assemble_trace_sharded(&sharded, SpanId(id), &cfg)))
            .collect();
        sharded.evict_tombstoned();
        let after: Vec<_> = (1..=specs.len() as u64)
            .map(|id| edges(&assemble_trace_sharded(&sharded, SpanId(id), &cfg)))
            .collect();
        prop_assert_eq!(&before, &after, "sharded eviction changed an assembled trace");
    }
}

proptest! {
    /// Algorithm 1 always terminates and yields a well-formed trace (no
    /// cycles, no dangling parents, no duplicates) for arbitrary span
    /// corpora with randomly shared association attributes.
    #[test]
    fn assembly_is_total_and_well_formed(
        specs in proptest::collection::vec(
            (
                0u8..11,          // tap side
                0u64..20,         // req time bucket
                1u64..30,         // duration bucket
                proptest::option::of(0u32..8),   // tcp_seq_req pool
                proptest::option::of(0u32..8),   // tcp_seq_resp pool
                proptest::option::of(0u64..6),   // systrace_req pool
                proptest::option::of(0u64..6),   // systrace_resp pool
                proptest::option::of(0u128..4),  // x_request_id pool
                proptest::option::of(0u128..3),  // otel trace pool
            ),
            1..60,
        ),
        start_idx in 0usize..60,
    ) {
        use deepflow::server::assemble::{assemble_trace, AssembleConfig};
        use deepflow::storage::SpanStore;
        use deepflow::types::span::{CapturePoint, SpanKind};
        use deepflow::types::ids::*;
        use deepflow::types::tags::TagSet;

        let tap_sides = [
            TapSide::ClientApp, TapSide::ClientProcess, TapSide::ClientPodNic,
            TapSide::ClientNodeNic, TapSide::ClientHypervisor, TapSide::Gateway,
            TapSide::ServerHypervisor, TapSide::ServerNodeNic, TapSide::ServerPodNic,
            TapSide::ServerProcess, TapSide::ServerApp,
        ];
        let mut store = SpanStore::new();
        for (tap, t, d, seq_r, seq_p, sys_r, sys_p, xr, ot) in &specs {
            let req = *t * 1_000_000;
            let span = deepflow::types::Span {
                span_id: SpanId(0),
                kind: if *tap == 0 || *tap == 10 { SpanKind::App } else { SpanKind::Sys },
                capture: CapturePoint {
                    node: NodeId(1),
                    tap_side: tap_sides[*tap as usize % 11],
                    interface: None,
                },
                agent: AgentId(1),
                flow_id: FlowId(u64::from(seq_r.unwrap_or(99))),
                five_tuple: FiveTuple::tcp(
                    Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 0, 0, 2), 2,
                ),
                l7_protocol: L7Protocol::Http1,
                endpoint: "op".to_string(),
                req_time: TimeNs(req),
                resp_time: TimeNs(req + d * 1_000_000),
                status: SpanStatus::Ok,
                status_code: Some(200),
                req_bytes: 0,
                resp_bytes: 0,
                pid: None,
                tid: None,
                process_name: None,
                systrace_id_req: sys_r.map(SysTraceId),
                systrace_id_resp: sys_p.map(SysTraceId),
                pseudo_thread_id: None,
                x_request_id_req: xr.map(XRequestId),
                x_request_id_resp: None,
                tcp_seq_req: *seq_r,
                tcp_seq_resp: *seq_p,
                otel_trace_id: ot.map(OtelTraceId),
                otel_span_id: ot.map(|v| OtelSpanId(v as u64)),
                otel_parent_span_id: None,
                tags: TagSet::default(),
                flow_metrics: None,
            };
            store.insert(span);
        }
        let start = SpanId((start_idx % specs.len()) as u64 + 1);
        let trace = assemble_trace(&store, start, &AssembleConfig::default());
        prop_assert!(!trace.is_empty());
        prop_assert!(trace.is_well_formed(), "trace:\n{}", trace.render_text());
        // The start span is always in its own trace.
        prop_assert!(trace.spans.iter().any(|s| s.span.span_id == start));
    }
}
