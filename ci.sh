#!/usr/bin/env bash
# Tier-1 gate for this repo. Run from the workspace root:
#
#   ./ci.sh
#
# Everything builds against the vendored stand-in crates in vendor/ (see
# vendor/README.md), so no network access is required.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> df-lint (sync-discipline lint over the shipped tree)"
cargo run -q -p df-check --bin df-lint -- .

# The DFW1 wire spec (docs/WIRE_FORMAT.md) must match the codec constants
# in df_types::wire (magic, version, field order) — see df_check::spec.
echo "==> df-spec-sync (wire spec matches df_types::wire)"
cargo run -q -p df-check --bin df-spec-sync -- .

# Structure-aware static analysis (docs/LINTS.md): decoder
# panic-totality over wire.rs/rpc.rs/persist.rs, the static lock-order
# graph (AB/BA cycles fail; the model suite cross-checks it against
# runtime-observed edges), and RPC-kind / presence-bit exhaustiveness.
echo "==> df-audit (panic-totality, lock-order, spec exhaustiveness)"
cargo run -q -p df-check --bin df-audit -- .

echo "==> cargo test"
cargo test --workspace -q

# The concurrency suite (per-shard ingest workers, parallel Phase 1,
# bounded-staleness cache) re-runs with forced test-thread parallelism so
# its producer/worker threads contend with other test threads for real.
echo "==> concurrency tests under RUST_TEST_THREADS=8"
RUST_TEST_THREADS=8 cargo test -q --test concurrency
RUST_TEST_THREADS=8 cargo test -q -p df-server concurrent::

# Model-checking gates. df-check's own suite runs with the `checked`
# scheduler compiled in; the df-server model tests (including the
# mutation-detection tests) already ran checked inside the workspace test
# run above (dev-dependency feature unification), and re-run here under a
# bounded schedule budget so a 1-core CI box stays within its time box.
echo "==> df-check model suite (checked scheduler)"
cargo test -q -p df-check --features checked
DF_CHECK_MAX_SCHEDULES=2000 cargo test -q -p df-server --test df_check_models
DF_CHECK_MAX_SCHEDULES=2000 cargo test -q -p df-cluster --test df_check_models
DF_CHECK_MAX_SCHEDULES=2000 cargo test -q -p df-storage --test df_check_models

# The distributed-assembly differential suite (cluster vs the concurrent
# oracle at 1/2/4 nodes, plus loss-retry and partition-degradation): runs
# in the workspace pass above, re-run here by name so a failure is
# attributed to the distributed protocol rather than the umbrella run.
echo "==> distributed assembly differential suite"
cargo test -q -p df-cluster --test distributed

# Replication robustness gates: targeted failover / anti-entropy /
# crash-recovery tests, then the seeded chaos sweep (24 derived fault
# schedules — kill, partition+heal, kill+join, leave — asserting RF=2
# loses nothing and answers oracle-identically, and RF=1 degrades
# loudly). Both run in the workspace pass; re-run by name for
# attribution.
echo "==> replication / anti-entropy / crash-recovery suite"
cargo test -q -p df-cluster --test replication

echo "==> chaos fault-schedule sweep"
cargo test -q -p df-cluster --test chaos

# Doc gates cover the first-party crates; the vendored stand-ins in
# vendor/ are excluded (they are minimal API shims, not documentation
# surface).
FIRST_PARTY_EXCLUDES=(
  --exclude bytes --exclude serde --exclude serde_derive
  --exclude serde_json --exclude rand --exclude proptest --exclude criterion
)

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace "${FIRST_PARTY_EXCLUDES[@]}"

echo "==> cargo test --doc"
cargo test --doc --workspace -q "${FIRST_PARTY_EXCLUDES[@]}"

echo "==> alg1 assembly bench (smoke, release, --test mode)"
cargo bench -p df-bench --bench alg1_assembly -- --test

echo "==> alg1 parallel ingest/phase1 bench (smoke, release, --test mode)"
cargo bench -p df-bench --bench alg1_parallel -- --test

echo "==> distributed cluster assembly bench (smoke, release, --test mode)"
cargo bench -p df-bench --bench cluster_assembly -- --test

echo "==> DFW1 wire decode bench (smoke, release, --test mode)"
cargo bench -p df-bench --bench wire_decode -- --test

# The tiered-storage bench also *asserts* the LRU-K scan-resistance claim
# (hit rate above LRU and FIFO on a scan-then-point workload), so the
# smoke run is a correctness gate, not just a does-it-compile check.
echo "==> tiered storage buffer-pool bench (smoke, release, --test mode)"
cargo bench -p df-bench --bench storage_tiered -- --test

echo "ci.sh: all gates passed"
