//! The §4.1.2 case study: newly scheduled pods suffer 20–120 minutes of
//! network inaccessibility. The paper's operators spent months discovering
//! "an extra ARP request had been generated during the connection" — and
//! still couldn't tell WHERE from. DeepFlow's per-hop network coverage
//! answers it: the redundant ARPs appear only at one faulty physical NIC.
//!
//! ```sh
//! cargo run --release --example arp_storm_nic
//! ```

use deepflow::agent::net_spans::TapContext;
use deepflow::mesh::apps;
use deepflow::net::faults::Fault;
use deepflow::net::taps::{TapFilter, TapKind};
use deepflow::net::topology::ElementId;
use deepflow::prelude::*;

fn main() {
    println!("== Case study: accurate diagnosis of network infrastructure anomalies (§4.1.2) ==\n");
    let mut make_tracer = || apps::no_tracer();
    let (mut world, handles) =
        apps::springboot_demo(40.0, DurationNs::from_secs(2), &mut make_tracer);

    // The hidden fault: node-1's physical NIC floods redundant ARP requests
    // and stalls resolution on every new connection.
    let victim = world.fabric.topology.node_ids()[0];
    world.fabric.faults.inject(
        ElementId::PhysNic(victim),
        Fault::ArpStorm {
            extra_requests: 7,
            resolution_delay: DurationNs::from_millis(400),
        },
    );

    let mut df = Deployment::install(&mut world).expect("install");
    // Extend coverage to the physical NICs (Appendix A extension taps).
    for node in world.fabric.topology.node_ids() {
        world.fabric.taps.install(
            ElementId::PhysNic(node),
            node,
            TapKind::PhysNic,
            TapFilter::all(),
        );
        df.agents.get_mut(&node).unwrap().register_tap(
            "phys0",
            TapContext {
                kind: TapKind::PhysNic,
                local_ips: Default::default(),
            },
        );
    }
    df.run(
        &mut world,
        TimeNs::from_secs(3),
        DurationNs::from_millis(100),
    );

    let client = &world.clients[handles.client];
    println!(
        "Symptom: new connections stall. p99 latency {} (healthy baseline would be ~1ms).\n",
        client.hist.p99()
    );

    println!("DeepFlow view: ARP requests observed per interface, per node —\n");
    println!(
        "  {:<10} {:>16} {:>16} {:>16}",
        "node", "veth (pods)", "eth0 (node)", "phys0 (NIC)"
    );
    for (node, agent) in &df.agents {
        let name = world
            .fabric
            .topology
            .node_name(*node)
            .unwrap_or("?")
            .to_string();
        let veth: u64 = agent
            .flows
            .arp_requests
            .iter()
            .filter(|(k, _)| k.starts_with("veth"))
            .map(|(_, v)| *v)
            .sum();
        let eth = agent.flows.arp_requests_on("eth0");
        let phys = agent.flows.arp_requests_on("phys0");
        let marker = if phys > eth * 3 && phys > 0 {
            "   <-- redundant ARPs ORIGINATE here"
        } else {
            ""
        };
        println!("  {name:<10} {veth:>16} {eth:>16} {phys:>16}{marker}");
    }

    println!();
    println!("After ruling out containers and virtual switches (their interfaces show the");
    println!("normal request count), the counters isolate the malfunctioning physical NIC");
    println!("on node-1 — the conclusion that took the paper's operators months by hand.");

    // And the impact is visible on traces: connection-setup-dominated spans.
    let slowest = df
        .server
        .slowest_span(TimeNs::ZERO, TimeNs::from_secs(3))
        .expect("spans");
    let trace = df.server.trace(slowest);
    println!(
        "\nSlowest trace ({} end-to-end) — the stall sits before the first hop:\n",
        trace.duration()
    );
    print!("{}", trace.render_text());
}
