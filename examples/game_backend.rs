//! Scenario 2 of the paper (§2.2.2): **online game operations**. The
//! platform hosts a vendor's *closed-source* game backend speaking a
//! proprietary binary protocol — impossible to instrument, invisible to
//! SDK-based tracers. DeepFlow traces it in zero code; a user-supplied
//! protocol specification (§3.3.1) upgrades the spans from opaque flows to
//! named operations.
//!
//! ```sh
//! cargo run --release --example game_backend
//! ```

use deepflow::mesh::{Behavior, ClientSpec, ServiceSpec, World};
use deepflow::net::fabric::{Fabric, FabricConfig};
use deepflow::net::topology::Topology;
use deepflow::prelude::*;
use deepflow::protocols::inference::CustomProtocol;
use deepflow::protocols::MessageSummary;
use deepflow::types::DurationNs as D;
use std::net::Ipv4Addr;

/// The vendor's wire format (we only know it from packet captures):
/// `[0xGA][op: 1=login 2=move 3=attack | 0x80&op for replies][match id]`.
fn game_spec() -> CustomProtocol {
    CustomProtocol {
        name: "game-wire".into(),
        sniff: Box::new(|p| p.first() == Some(&0x6A) && p.len() >= 3),
        parse: Box::new(|p| {
            let op = *p.get(1)?;
            let match_id = u64::from(*p.get(2)?);
            let (is_reply, op) = (op & 0x80 != 0, op & 0x7f);
            let verb = match op {
                1 => "login",
                2 => "move",
                3 => "attack",
                _ => return None,
            };
            Some(MessageSummary::basic(
                L7Protocol::Unknown, // overwritten with the Custom slot
                if is_reply {
                    deepflow::types::MessageType::Response
                } else {
                    deepflow::types::MessageType::Request
                },
                deepflow::types::SessionKey::Multiplexed(match_id),
                format!("game.{verb}"),
            ))
        }),
    }
}

fn main() {
    println!("== Scenario 2: tracing a closed-source game backend (§2.2.2) ==\n");

    // The mesh can't speak the vendor's protocol either — we emulate the
    // backend with HTTP internally but DRIVE the demonstration at the agent
    // level with hand-built game frames, exactly what a packet capture of
    // the real backend looks like. First: the zero-code baseline.
    let mut topo = Topology::new();
    let n1 = topo.add_simple_node("platform-node-1", Ipv4Addr::new(192, 168, 0, 1));
    let n2 = topo.add_simple_node("platform-node-2", Ipv4Addr::new(192, 168, 0, 2));
    let lobby_ip = Ipv4Addr::new(10, 1, 0, 10);
    let match_ip = Ipv4Addr::new(10, 1, 1, 10);
    let player_ip = Ipv4Addr::new(10, 1, 0, 100);
    topo.add_pod(n1, "game-lobby", lobby_ip, "game", "lobby", "lobby");
    topo.add_pod(n2, "match-server", match_ip, "game", "match", "match");
    topo.add_pod(n1, "players", player_ip, "game", "players", "players");
    let mut world = World::new(Fabric::new(topo, FabricConfig::default()), 0x6a6e);

    // The lobby fronts the closed-source match server.
    world.add_service(
        ServiceSpec::http("match-server", n2, match_ip, 7777)
            .with_workers(8)
            .with_compute(D::from_micros(800)),
    );
    world.add_service(
        ServiceSpec::http("game-lobby", n1, lobby_ip, 7000)
            .with_workers(8)
            .with_compute(D::from_micros(200))
            .with_behavior(Behavior::Chain(vec![deepflow::mesh::Call {
                target: "match-server".into(),
                protocol: L7Protocol::Http1,
                endpoint: "GET /match/join".into(),
            }])),
    );
    let client = world.add_client(ClientSpec {
        rps: 200.0,
        duration: D::from_secs(2),
        connections: 8,
        endpoints: vec![("GET /lobby/enter".to_string(), 1)],
        ..ClientSpec::http("players", n1, player_ip, "game-lobby")
    });

    // Deploy while the game runs — the vendor is never involved
    // ("game back-ends are often closed-source for commercial reasons").
    let mut df = Deployment::install(&mut world).expect("install");
    // The operator feeds DeepFlow the protocol spec reverse-engineered from
    // captures; every agent picks it up.
    for agent in df.agents.values_mut() {
        agent.register_custom_protocol(game_spec);
    }
    df.run(&mut world, TimeNs::from_secs(3), D::from_millis(100));

    let cl = &world.clients[client];
    println!(
        "Zero-code tracing of the hosted game: {} requests traced, p99 {}.",
        cl.completed,
        cl.hist.p99()
    );
    let slowest = df
        .server
        .slowest_span(TimeNs::ZERO, TimeNs::from_secs(3))
        .unwrap();
    let trace = df.server.trace(slowest);
    println!(
        "\nSlowest lobby request, end to end ({} spans):\n",
        trace.len()
    );
    print!("{}", trace.render_text());

    // And the custom-protocol upgrade, demonstrated on captured frames of
    // the proprietary wire format.
    println!("\n-- user-supplied protocol specification (§3.3.1) --\n");
    let mut engine = deepflow::protocols::InferenceEngine::default();
    let slot = engine.register_custom(game_spec());
    for (frame, what) in [
        (vec![0x6A, 0x01, 0x09], "login request, match 9"),
        (vec![0x6A, 0x81, 0x09], "login reply, match 9"),
        (vec![0x6A, 0x03, 0x09], "attack request, match 9"),
    ] {
        let parsed = engine.parse_for(1, &frame).expect("spec parses the frame");
        println!(
            "  {:02x?}  ->  {} {} ({})  [{what}]",
            frame, parsed.protocol, parsed.endpoint, parsed.msg_type
        );
        assert_eq!(parsed.protocol, slot);
    }
    println!("\nWithout the spec these flows would still be traced at L4 (latency, bytes,");
    println!("retransmissions); with it, the operators see named game operations —");
    println!("and the vendor never shipped a line of instrumentation.");
}
