//! Appendix A: the full coverage of a request in the data center — from
//! end-host processes through pod veths, node NICs, an L4 gateway (traced
//! by preserved TCP sequence) and a ToR mirror, down to the backend.
//!
//! ```sh
//! cargo run --release --example datacenter_path
//! ```

use deepflow::agent::net_spans::TapContext;
use deepflow::mesh::apps;
use deepflow::net::taps::{TapFilter, TapKind};
use deepflow::net::topology::ElementId;
use deepflow::prelude::*;

fn main() {
    println!("== Appendix A: requests traveling through a data center ==\n");
    let (mut world, _handles, vip) =
        apps::nginx_ingress_cluster(30.0, DurationNs::from_secs(2), usize::MAX);

    let mut df = Deployment::install(&mut world).expect("install");

    // Extend the default deployment with every Appendix A capture point:
    // physical NICs, the ToR mirror, and the L4 gateway itself.
    let nodes = world.fabric.topology.node_ids();
    let capture_node = nodes[0];
    world.fabric.topology.set_tor_mirror("rack-1", capture_node);
    for node in &nodes {
        world.fabric.taps.install(
            ElementId::PhysNic(*node),
            *node,
            TapKind::PhysNic,
            TapFilter::all(),
        );
        df.agents.get_mut(node).unwrap().register_tap(
            "phys0",
            TapContext {
                kind: TapKind::PhysNic,
                local_ips: Default::default(),
            },
        );
    }
    for rack in ["rack-1", "rack-2"] {
        world.fabric.taps.install(
            ElementId::Tor(rack.to_string()),
            capture_node,
            TapKind::TorMirror,
            TapFilter::all(),
        );
        df.agents.get_mut(&capture_node).unwrap().register_tap(
            &format!("tor-{rack}"),
            TapContext {
                kind: TapKind::TorMirror,
                local_ips: Default::default(),
            },
        );
    }
    world.fabric.taps.install(
        ElementId::L4Gw("ingress-vip".into()),
        capture_node,
        TapKind::Gateway,
        TapFilter::all(),
    );
    df.agents.get_mut(&capture_node).unwrap().register_tap(
        "gw-ingress-vip",
        TapContext {
            kind: TapKind::Gateway,
            local_ips: Default::default(),
        },
    );

    df.run(
        &mut world,
        TimeNs::from_secs(3),
        DurationNs::from_millis(100),
    );

    // Assemble one request's trace starting from the client process span.
    let all = df.server.span_list(&SpanQuery {
        limit: usize::MAX,
        ..Default::default()
    });
    let start = all
        .iter()
        .find(|s| {
            s.capture.tap_side == TapSide::ClientProcess
                && s.five_tuple.dst_ip == vip
                && s.kind == SpanKind::Sys
                && s.status == SpanStatus::Ok
        })
        .expect("client span to the VIP");
    let trace = df.server.trace(start.span_id);

    println!(
        "One GET /api/checkout, traced across {} capture points:\n",
        trace.len()
    );
    print!("{}", trace.render_text());

    println!("\nCapture-point inventory of this trace:");
    let mut sides: Vec<String> = trace
        .spans
        .iter()
        .map(|s| {
            format!(
                "{} ({})",
                s.span.capture.tap_side,
                s.span
                    .capture
                    .interface
                    .clone()
                    .unwrap_or_else(|| "process".to_string())
            )
        })
        .collect();
    sides.sort();
    sides.dedup();
    for s in sides {
        println!("  - {s}");
    }
    println!();
    println!("The client dialed the VIP {vip}; the L4 gateway DNATed it without touching");
    println!("the TCP sequence, so the VIP leg and the backend leg stitched into one");
    println!("trace; the L7 ingress terminated TCP, so its two legs joined through the");
    println!("proxy's X-Request-ID instead. \"We have now completed the full coverage of");
    println!("a request in the data center.\"");
}
